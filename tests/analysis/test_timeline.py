"""Timeline rendering and Chrome-trace export."""

import json
import os

import pytest

from repro.analysis import ascii_gantt, chrome_trace, write_chrome_trace
from repro.ps import ClusterSpec, build_cluster_graph
from repro.sim import CompiledCore, SimConfig, SimVariant

from ..conftest import tiny_model
from ..sim.test_engine import FLAT


@pytest.fixture(scope="module")
def run():
    cluster = build_cluster_graph(tiny_model(), ClusterSpec(2, 1, "training"))
    sim = SimVariant(CompiledCore(cluster, FLAT), None, SimConfig(iterations=1))
    return sim, sim.run_iteration(0)


def test_gantt_has_all_busy_resources(run):
    sim, record = run
    text = ascii_gantt(sim, record)
    assert "compute:worker:0" in text
    assert "nic_out:ps:0" in text
    assert "makespan" in text.splitlines()[0]
    assert "#" in text


def test_gantt_resource_filter(run):
    sim, record = run
    text = ascii_gantt(sim, record, resources=["compute:worker:0"])
    assert "compute:worker:0" in text
    assert "nic_out:ps:0" not in text


def test_gantt_width_respected(run):
    sim, record = run
    text = ascii_gantt(sim, record, width=40)
    bars = [l for l in text.splitlines()[1:]]
    assert all(l.count("|") == 2 for l in bars)
    inner = bars[0].split("|")[1]
    assert len(inner) == 40


def test_chrome_trace_events_well_formed(run):
    sim, record = run
    events = chrome_trace(sim, record)
    slices = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert slices and metas
    for e in slices:
        assert e["dur"] >= 0
        assert e["ts"] >= 0
        assert e["cat"] in ("compute", "transfer")
    # every track has a name
    tids = {e["tid"] for e in slices}
    named = {e["tid"] for e in metas}
    assert tids <= named


def test_chrome_trace_covers_span(run):
    sim, record = run
    events = [e for e in chrome_trace(sim, record) if e["ph"] == "X"]
    last_end = max(e["ts"] + e["dur"] for e in events)
    assert last_end == pytest.approx(record.makespan * 1e6, rel=1e-6)


def test_write_chrome_trace_roundtrip(run, tmp_path):
    sim, record = run
    path = write_chrome_trace(os.path.join(tmp_path, "t", "trace.json"),
                              sim, record)
    data = json.load(open(path))
    assert isinstance(data, list) and len(data) > 10
