"""Statistics helpers and text rendering."""

import os

import numpy as np
import pytest

from repro.analysis import (
    bar_chart,
    coefficient_of_variation,
    empirical_cdf,
    format_table,
    linear_regression,
    normalized_step_time,
    percentile,
    scatter_sketch,
    write_csv,
)


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
def test_regression_recovers_known_line():
    x = np.linspace(0, 1, 50)
    y = 2.5 * x + 1.0
    fit = linear_regression(x, y)
    assert fit.slope == pytest.approx(2.5)
    assert fit.intercept == pytest.approx(1.0)
    assert fit.r2 == pytest.approx(1.0)
    assert fit.predict([0.0, 1.0]) == pytest.approx([1.0, 3.5])


def test_regression_r2_drops_with_noise():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 1, 200)
    clean = linear_regression(x, x).r2
    noisy = linear_regression(x, x + rng.normal(0, 0.5, 200)).r2
    assert noisy < clean


def test_regression_input_validation():
    with pytest.raises(ValueError):
        linear_regression([1, 2], [1, 2])
    with pytest.raises(ValueError):
        linear_regression([1, 2, 3], [1, 2])


def test_empirical_cdf_monotone():
    xs, ps = empirical_cdf([3.0, 1.0, 2.0, 2.0])
    assert xs.tolist() == [1.0, 2.0, 2.0, 3.0]
    assert ps.tolist() == [0.25, 0.5, 0.75, 1.0]
    with pytest.raises(ValueError):
        empirical_cdf([])


def test_normalized_step_time_best_is_one():
    norm = normalized_step_time([2.0, 4.0, 8.0])
    assert norm.tolist() == [1.0, 0.5, 0.25]
    with pytest.raises(ValueError):
        normalized_step_time([0.0, 1.0])


def test_percentile_and_cv():
    vals = list(range(1, 101))
    assert percentile(vals, 95) == pytest.approx(95.05)
    assert coefficient_of_variation([5, 5, 5]) == 0.0
    assert coefficient_of_variation([1, 3]) > 0


# ----------------------------------------------------------------------
# render
# ----------------------------------------------------------------------
def test_format_table_alignment():
    rows = [{"model": "VGG-16", "gain": 12.345}, {"model": "AlexNet", "gain": 3.0}]
    text = format_table(rows, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "model" in lines[1] and "gain" in lines[1]
    assert "12.35" in text  # default .2f
    assert len(set(len(l) for l in lines[2:])) <= 2  # aligned body


def test_format_table_empty():
    assert "(no rows)" in format_table([], title="x")


def test_format_table_column_selection():
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "b" in text and "a" not in text.splitlines()[0]


def test_bar_chart_scales_and_signs():
    text = bar_chart(["up", "down"], [10.0, -5.0], width=10, unit="%")
    lines = text.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("-") >= 5
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])


def test_scatter_sketch_contains_markers():
    text = scatter_sketch([0, 1, 2], [0, 1, 4], rows=5, cols=20)
    assert text.count("*") >= 2
    with pytest.raises(ValueError):
        scatter_sketch([], [])


def test_write_csv_roundtrip(tmp_path):
    path = os.path.join(tmp_path, "sub", "out.csv")
    rows = [{"a": 1, "b": "x"}, {"a": 2, "c": 3.5}]
    write_csv(path, rows)
    content = open(path).read().splitlines()
    assert content[0] == "a,b,c"
    assert content[1].startswith("1,x")
    with pytest.raises(ValueError):
        write_csv(os.path.join(tmp_path, "empty.csv"), [])
