"""Time oracles: Eq. 5, mapping/perturbed oracles, the min-of-5 estimator."""

import numpy as np
import pytest

from repro.graph import Graph, OpKind
from repro.timing import (
    GeneralTimeOracle,
    MappingTimeOracle,
    PerturbedOracle,
    TimeOracle,
    oracle_from_runs,
)


@pytest.fixture
def ops():
    g = Graph()
    r = g.add_op("r", OpKind.RECV, cost=10.0)
    c = g.add_op("c", OpKind.COMPUTE, cost=5.0)
    a = g.add_op("a", OpKind.AUX)
    return g, r, c, a


def test_general_oracle_is_eq5(ops):
    g, r, c, a = ops
    oracle = GeneralTimeOracle()
    assert oracle(r) == 1.0
    assert oracle(c) == 0.0
    assert oracle(a) == 0.0


def test_general_oracle_vector(ops):
    g, *_ = ops
    assert GeneralTimeOracle().vector(g).tolist() == [1.0, 0.0, 0.0]


def test_mapping_oracle_lookup_and_default(ops):
    g, r, c, a = ops
    oracle = MappingTimeOracle({"r": 3.0}, default=0.5)
    assert oracle(r) == 3.0
    assert oracle(c) == 0.5


def test_mapping_oracle_strict_mode(ops):
    g, r, c, a = ops
    oracle = MappingTimeOracle({"r": 3.0}, strict=True)
    assert oracle(r) == 3.0
    with pytest.raises(KeyError):
        oracle(c)


def test_wrap_accepts_mapping_callable_oracle(ops):
    g, r, *_ = ops
    assert TimeOracle.wrap({"r": 2.0})(r) == 2.0
    assert TimeOracle.wrap(lambda op: 7.0)(r) == 7.0
    base = GeneralTimeOracle()
    assert TimeOracle.wrap(base) is base
    with pytest.raises(TypeError):
        TimeOracle.wrap(42)


def test_perturbed_oracle_is_consistent_per_op(ops):
    g, r, c, a = ops
    base = MappingTimeOracle({"r": 10.0, "c": 5.0})
    noisy = PerturbedOracle(base, sigma=0.5, seed=1)
    assert noisy(r) == noisy(r)  # deterministic per name
    assert noisy(r) > 0


def test_perturbed_oracle_zero_sigma_is_identity(ops):
    g, r, *_ = ops
    base = MappingTimeOracle({"r": 10.0})
    assert PerturbedOracle(base, sigma=0.0)(r) == 10.0


def test_perturbed_oracle_seeds_differ(ops):
    g, r, *_ = ops
    base = MappingTimeOracle({"r": 10.0})
    a = PerturbedOracle(base, sigma=0.5, seed=1)(r)
    b = PerturbedOracle(base, sigma=0.5, seed=2)(r)
    assert a != b


# ----------------------------------------------------------------------
# estimator
# ----------------------------------------------------------------------
def test_oracle_from_runs_min_is_paper_default():
    runs = [{"op": 5.0}, {"op": 3.0}, {"op": 4.0}]
    assert oracle_from_runs(runs).table["op"] == 3.0


def test_oracle_from_runs_mean_and_median():
    runs = [{"op": 1.0}, {"op": 2.0}, {"op": 9.0}]
    assert oracle_from_runs(runs, reducer="mean").table["op"] == 4.0
    assert oracle_from_runs(runs, reducer="median").table["op"] == 2.0


def test_oracle_from_runs_handles_partial_coverage():
    runs = [{"a": 1.0}, {"a": 2.0, "b": 7.0}]
    oracle = oracle_from_runs(runs)
    assert oracle.table == {"a": 1.0, "b": 7.0}


def test_oracle_from_runs_rejects_empty_and_bad_reducer():
    with pytest.raises(ValueError, match="at least one"):
        oracle_from_runs([])
    with pytest.raises(ValueError, match="reducer"):
        oracle_from_runs([{"a": 1.0}], reducer="max")
