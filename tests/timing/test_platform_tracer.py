"""Platform cost models and the tracing/estimation pipeline."""

import numpy as np
import pytest

from repro.graph import Graph, OpKind
from repro.timing import (
    ENV_C,
    ENV_G,
    Platform,
    TraceRecord,
    TracingModule,
    estimate_time_oracle,
    get_platform,
    sample_ground_truth,
    trace_platform_runs,
)


def test_presets_exist_and_differ():
    assert get_platform("envG") is ENV_G
    assert get_platform("envC") is ENV_C
    assert ENV_G.worker_flops > ENV_C.worker_flops
    assert ENV_G.bandwidth_bps > ENV_C.bandwidth_bps
    with pytest.raises(KeyError, match="unknown platform"):
        get_platform("envX")


def test_envc_is_more_communication_bound():
    """The calibration property behind Fig. 13's larger envC gains."""
    ratio_g = ENV_G.bandwidth_bps / ENV_G.worker_flops
    ratio_c = ENV_C.bandwidth_bps / ENV_C.worker_flops
    assert ratio_c < ratio_g


def test_compute_time_uses_device_rate():
    p = Platform("t", worker_flops=1e9, ps_flops=1e6, bandwidth_bps=1e6)
    assert p.compute_time(1e9, "worker:0") == pytest.approx(1.0)
    assert p.compute_time(1e6, "ps:0") == pytest.approx(1.0)


def test_transfer_time_includes_latency():
    p = Platform("t", 1e9, 1e9, bandwidth_bps=1e6, rpc_latency_s=0.1)
    assert p.transfer_time(1e6) == pytest.approx(1.1)


def test_op_time_dispatch():
    p = Platform("t", 1e9, 1e8, bandwidth_bps=1e6, op_overhead_s=1e-3)
    g = Graph()
    recv = g.add_op("r", OpKind.RECV, cost=2e6)
    aux = g.add_op("a", OpKind.AUX)
    comp = g.add_op("c", OpKind.COMPUTE, cost=1e9, device="worker:0")
    act = g.add_op("s", OpKind.SEND, cost=0.0, activation_only=True)
    assert p.op_time(recv) == pytest.approx(2.0)
    assert p.op_time(aux) == pytest.approx(1e-3)
    assert p.op_time(comp) == pytest.approx(1.0 + 1e-3)
    assert p.op_time(act) == pytest.approx(1e-3), "activations are not transfers"


def test_nic_slots_by_device_class():
    assert ENV_G.nic_slots("ps:0") == ENV_G.ps_nic_slots > 1
    assert ENV_G.nic_slots("worker:3") == 1
    assert ENV_C.nic_slots("ps:0") == 1


def test_scaled_returns_modified_copy():
    p2 = ENV_G.scaled(bandwidth_bps=1.0)
    assert p2.bandwidth_bps == 1.0
    assert ENV_G.bandwidth_bps != 1.0
    assert p2.worker_flops == ENV_G.worker_flops


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
@pytest.fixture
def small_graph():
    g = Graph()
    g.add_op("r", OpKind.RECV, cost=1e6)
    g.add_op("c", OpKind.COMPUTE, ["r"], cost=1e9, device="worker:0")
    return g


def test_sample_ground_truth_jitters_around_base(small_graph):
    rng = np.random.default_rng(0)
    plat = ENV_G.scaled(jitter_sigma=0.1)
    times = sample_ground_truth(small_graph, plat, rng)
    base = plat.op_time(small_graph.op("c"))
    assert times["c"] != base
    assert 0.5 * base < times["c"] < 2.0 * base


def test_sample_ground_truth_zero_jitter_is_exact(small_graph):
    rng = np.random.default_rng(0)
    times = sample_ground_truth(small_graph, ENV_G, rng, jitter_sigma=0.0)
    assert times["c"] == pytest.approx(ENV_G.op_time(small_graph.op("c")))


def test_trace_platform_runs_collects_k_records(small_graph):
    tracer = trace_platform_runs(small_graph, ENV_G, runs=5, seed=1)
    assert len(tracer) == 5
    with pytest.raises(ValueError, match="positive"):
        trace_platform_runs(small_graph, ENV_G, runs=0)


def test_estimator_takes_min_across_runs(small_graph):
    tracer = trace_platform_runs(small_graph, ENV_G, runs=5, seed=1)
    oracle = tracer.estimate_oracle()
    samples = [r.times["c"] for r in tracer.records]
    assert oracle.table["c"] == min(samples)


def test_estimator_requires_records():
    with pytest.raises(ValueError, match="no trace records"):
        TracingModule().estimate_oracle()


def test_trace_record_rejects_negative_times():
    with pytest.raises(ValueError, match="negative"):
        TraceRecord(times={"a": -1.0})


def test_estimate_time_oracle_deterministic(small_graph):
    a = estimate_time_oracle(small_graph, ENV_G, seed=3)
    b = estimate_time_oracle(small_graph, ENV_G, seed=3)
    assert a.table == b.table


def test_estimated_oracle_near_ground_truth(small_graph):
    """min-of-5 under lognormal jitter lands below—but near—the base."""
    oracle = estimate_time_oracle(small_graph, ENV_G, runs=5, seed=0)
    base = ENV_G.op_time(small_graph.op("c"))
    assert 0.7 * base < oracle.table["c"] <= base * 1.05
