"""Exporters and Trace reductions: schema, columns, error surfaces."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.obs.capture import capture_trace, trace_cell
from repro.obs.export import (
    EXPORTERS,
    UnknownExporterError,
    chrome_trace,
    get_exporter,
    trace_rows,
    validate_chrome_trace,
    write_csv,
)


@pytest.fixture(scope="module")
def cap():
    """One traced headline cell, shared by every test in the module."""
    return capture_trace("headline", kernel="portable")


@pytest.fixture(scope="module")
def jobmix_trace():
    from repro.api.jobmix_scenarios import CONTENTION_MIX
    from repro.sim import SimConfig

    cell = CONTENTION_MIX.cells(SimConfig(iterations=2, warmup=1))[1]
    return trace_cell(cell).trace


# ----------------------------------------------------------------------
# chrome exporter
# ----------------------------------------------------------------------
def test_chrome_trace_validates_and_round_trips(cap, tmp_path):
    path = str(tmp_path / "t.json")
    doc = chrome_trace(cap.trace, path)
    validate_chrome_trace(doc)
    validate_chrome_trace(path)  # the on-disk JSON parses identically
    with open(path) as fh:
        assert json.load(fh) == doc


def test_chrome_trace_event_inventory(cap):
    doc = chrome_trace(cap.trace)
    tr = cap.trace
    events = doc["traceEvents"]
    by_ph = {}
    for ev in events:
        by_ph.setdefault(ev["ph"], []).append(ev)
    n_compute = int((~tr.is_transfer).sum())
    # one X event per compute op + one per wire chunk, nothing else
    assert len(by_ph["X"]) == n_compute + tr.n_chunk_events
    names = {ev["args"]["name"] for ev in by_ph["M"]
             if ev["name"] == "thread_name"}
    assert any(name.startswith("wire ") for name in names)
    assert doc["otherData"]["makespan_s"] == tr.makespan
    assert doc["otherData"]["priority_inversions"] == tr.out_of_order_handoffs
    # args carry the observability columns for the detail pane
    x0 = by_ph["X"][0]["args"]
    assert {"ready_us", "wait_us", "queue_depth", "priority"} <= set(x0)


def test_chrome_trace_jobmix_process_groups(jobmix_trace):
    doc = chrome_trace(jobmix_trace)
    procs = {
        ev["args"]["name"]
        for ev in doc["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "process_name"
    }
    assert procs == {"job:j0", "job:j1"}
    pids = {ev["pid"] for ev in doc["traceEvents"] if ev["ph"] == "X"}
    assert pids == {1, 2}


@pytest.mark.parametrize(
    "doc, msg",
    [
        ([], "object with 'traceEvents'"),
        ({"traceEvents": []}, "non-empty list"),
        ({"traceEvents": [{"ph": "X", "pid": 0, "tid": 0}]}, "missing required"),
        ({"traceEvents": [{"name": "a", "ph": "X", "pid": 0, "tid": 0}]},
         "'ts' and 'dur'"),
        ({"traceEvents": [{"name": "a", "ph": "X", "pid": 0, "tid": 0,
                           "ts": -1.0, "dur": 2.0}]}, "negative"),
        ({"traceEvents": [{"name": "bogus", "ph": "M", "pid": 0, "tid": 0,
                           "args": {"name": "x"}}]}, "unknown name"),
        ({"traceEvents": [{"name": "process_name", "ph": "M", "pid": 0,
                           "tid": 0, "args": {}}]}, "args.name"),
        ({"traceEvents": [{"name": "a", "ph": "B", "pid": 0, "tid": 0}]},
         "unsupported phase"),
    ],
)
def test_validate_chrome_trace_rejects(doc, msg):
    with pytest.raises(ValueError, match=msg):
        validate_chrome_trace(doc)


# ----------------------------------------------------------------------
# csv exporter + registry
# ----------------------------------------------------------------------
def test_csv_columns_and_content(cap, tmp_path):
    path = str(tmp_path / "t.csv")
    rows = write_csv(cap.trace, path)
    assert rows == trace_rows(cap.trace)
    assert len(rows) == cap.trace.n_ops
    with open(path) as fh:
        read = list(csv.DictReader(fh))
    assert len(read) == len(rows)
    assert set(read[0]) == {
        "op", "name", "kind", "resource", "job", "ready_s", "start_s",
        "end_s", "wait_s", "queue_depth", "priority", "dedicated_s",
    }
    kinds = {row["kind"] for row in read}
    assert "transfer" in kinds and kinds <= {"compute", "transfer", "barrier"}


def test_get_exporter_did_you_mean():
    assert get_exporter("csv") is EXPORTERS["csv"]
    with pytest.raises(UnknownExporterError) as exc:
        get_exporter("chrmoe")
    assert "did you mean 'chrome'" in str(exc.value)
    with pytest.raises(UnknownExporterError) as exc:
        get_exporter("flamegraph")
    assert "available" in str(exc.value)


# ----------------------------------------------------------------------
# capture_trace error surface
# ----------------------------------------------------------------------
def test_capture_trace_rejects_cell_less_scenarios():
    with pytest.raises(ValueError, match="traceable scenarios"):
        capture_trace("table1")


# ----------------------------------------------------------------------
# Trace reductions (sanity on a real headline trace)
# ----------------------------------------------------------------------
def test_queue_depth_histogram(cap):
    hist = cap.trace.queue_depth_histogram()
    assert set(hist) == {"compute", "transfer"}
    assert sum(hist["compute"].values()) == int((~cap.trace.is_transfer).sum())
    assert sum(hist["transfer"].values()) == int(cap.trace.is_transfer.sum())
    assert all(d >= 1 for d in hist["transfer"])


def test_link_utilization_bounds(cap):
    edges, utils = cap.trace.link_utilization(bins=20)
    assert len(edges) == 21
    assert edges[0] == 0.0 and edges[-1] == pytest.approx(cap.trace.makespan)
    assert utils  # at least one NIC transferred
    for util in utils.values():
        assert util.shape == (20,)
        assert (util >= 0).all() and (util <= 1.0 + 1e-9).all()
    # something actually moved on some link
    assert max(float(u.max()) for u in utils.values()) > 0


def test_overlap_consistency(cap):
    ov = cap.trace.overlap()
    assert 0 <= ov["overlap_frac"] <= 1
    assert ov["overlap_s"] <= min(ov["comm_busy_s"], ov["comp_busy_s"])
    assert ov["comm_busy_s"] > 0 and ov["comp_busy_s"] > 0


def test_critical_path_attribution(cap):
    tr = cap.trace
    cp = tr.critical_path()
    assert cp["ops"]
    ends = [step["end"] for step in cp["ops"]]
    assert ends == sorted(ends)
    assert ends[-1] == pytest.approx(tr.makespan)
    total = cp["compute_s"] + cp["comm_s"] + cp["wait_s"]
    assert total == pytest.approx(tr.makespan, rel=1e-6)


def test_job_stats_single_vs_multi(cap, jobmix_trace):
    single = cap.trace.job_stats()
    assert len(single) == 1
    assert single[0]["starvation"] == pytest.approx(1.0)
    multi = jobmix_trace.job_stats()
    assert [row["job"] for row in multi] == ["j0", "j1"]
    assert all(row["n_transfers"] > 0 for row in multi)
    # starvation is normalized: the mean across ops stays near 1
    assert min(row["starvation"] for row in multi) < 1.0 < max(
        row["starvation"] for row in multi
    )


def test_summary_keys(cap):
    summary = cap.trace.summary()
    assert summary["n_ops"] == cap.trace.n_ops
    assert summary["n_jobs"] == 1
    assert summary["makespan_s"] > 0
    assert {"critical_compute_s", "critical_comm_s", "critical_wait_s",
            "overlap_frac", "priority_inversions"} <= set(summary)
