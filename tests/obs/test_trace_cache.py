"""Tracing vs the sweep cache: one keyspace, zero poisoning.

``SimConfig.trace`` is excluded from cell cache keys (like ``kernel``):
a traced run computes the exact numbers an untraced one would, so the
two must share entries — a traced sweep never misses a warm cache, and
a traced run's entry serves untraced callers with identical results.
"""

from __future__ import annotations

import pytest

from repro.ps import ClusterSpec
from repro.sim import SimConfig
from repro.sweep import SimCell, SweepRunner

SPEC = ClusterSpec(2, 1, "training")


def _cell(**cfg) -> SimCell:
    return SimCell(
        model="AlexNet v2",
        spec=SPEC,
        algorithm="baseline",
        config=SimConfig(iterations=2, warmup=1, **cfg),
    )


def test_trace_flag_does_not_change_cache_key():
    keys = {
        _cell(trace=t).cache_key_material() for t in (False, True)
    }
    assert len(keys) == 1
    # ...but a genuinely different config still gets its own key
    assert _cell(seed=1).cache_key_material() not in keys


def test_traced_run_hits_untraced_cache_and_vice_versa(tmp_path):
    with SweepRunner(cache_dir=str(tmp_path)) as runner:
        cold = runner.run_cells([_cell()])[0]
        assert runner.stats.as_dict() == {"hits": 0, "misses": 1, "writes": 1}
        warm = runner.run_cells([_cell(trace=True)])[0]
        assert runner.stats.hits == 1 and runner.stats.writes == 1
        assert [s.makespan for s in warm.iterations] == [
            s.makespan for s in cold.iterations
        ]
    # fresh runner, traced first: the entry it writes serves untraced
    with SweepRunner(cache_dir=str(tmp_path / "b")) as runner:
        traced = runner.run_cells([_cell(trace=True)])[0]
        again = runner.run_cells([_cell()])[0]
        assert runner.stats.as_dict() == {"hits": 1, "misses": 1, "writes": 1}
        assert [s.makespan for s in again.iterations] == [
            s.makespan for s in traced.iterations
        ]
        assert [s.makespan for s in traced.iterations] == [
            s.makespan for s in cold.iterations
        ]


def test_traced_cells_stay_cacheable():
    assert _cell(trace=True).cacheable
    # keep_op_times still opts out (per-op arrays don't fit the cache)
    assert not _cell(trace=True, keep_op_times=True).cacheable
