"""Telemetry: the counter bag, the sweep integration, the API surface."""

from __future__ import annotations

import pytest

from repro.api import Context, Scale, registry
from repro.api.engine import execute_scenario
from repro.obs.telemetry import Telemetry, memo_counters, merge_rows
from repro.ps import ClusterSpec
from repro.sim import SimConfig
from repro.sweep import SimCell, SweepRunner

MICRO = Scale(
    name="micro",
    models=("AlexNet v2",),
    worker_counts=(2,),
    ps_counts=(1,),
    iterations=2,
    warmup=0,
    consistency_runs=8,
    loss_iterations=10,
)


# ----------------------------------------------------------------------
# the counter bag itself
# ----------------------------------------------------------------------
def test_add_peak_get():
    t = Telemetry()
    assert not t
    t.add("cells")
    t.add("cells", 2)
    t.peak("cell_wall_max_s", 0.5)
    t.peak("cell_wall_max_s", 0.2)  # smaller: ignored
    assert t
    assert t.get("cells") == 3.0
    assert t.get("cell_wall_max_s") == 0.5
    assert t.get("absent") == 0.0


def test_timer_accumulates():
    t = Telemetry()
    with t.timer("wall_s"):
        pass
    with t.timer("wall_s"):
        pass
    assert t.get("wall_s") > 0.0


def test_merge_and_rows_round_trip():
    a = Telemetry({"x": 1.0, "y": 2.0})
    b = Telemetry({"y": 3.0, "z": 4.0})
    a.merge(b)
    assert a.as_dict() == {"x": 1.0, "y": 5.0, "z": 4.0}
    assert merge_rows(a.rows() + b.rows()) == {
        "x": 1.0, "y": 8.0, "z": 8.0,
    }


def test_delta_since_sums_vs_peaks():
    t = Telemetry({"cells": 2.0, "cell_wall_max_s": 0.3})
    before = t.as_dict()
    t.add("cells", 3)
    t.add("new", 1)
    t.peak("cell_wall_max_s", 0.9)
    delta = t.delta_since(before)
    # sums report the increment, peaks the current value, zeros vanish
    assert delta == {"cells": 3.0, "cell_wall_max_s": 0.9, "new": 1.0}
    assert t.delta_since(t.as_dict()) == {}


def test_memo_counters_shape():
    counters = memo_counters()
    assert set(counters) == {
        "graph_memo_hits", "graph_memo_misses",
        "wizard_memo_hits", "wizard_memo_misses",
    }
    assert all(isinstance(v, float) for v in counters.values())


# ----------------------------------------------------------------------
# sweep-runner integration
# ----------------------------------------------------------------------
def test_run_cells_populates_counters(tmp_path):
    cells = [
        SimCell(
            model="AlexNet v2",
            spec=ClusterSpec(2, 1, "training"),
            algorithm=alg,
            config=SimConfig(iterations=2, warmup=1),
        )
        for alg in ("baseline", "tic")
    ]
    with SweepRunner(cache_dir=str(tmp_path)) as runner:
        runner.run_cells(cells + cells[:1])  # one in-batch duplicate
        t = runner.telemetry
        assert t.get("run_cells_calls") == 1
        assert t.get("cells_requested") == 3
        assert t.get("cells_deduped") == 1
        assert t.get("cells_simulated") == 2
        assert t.get("cells_cached") == 0
        assert t.get("sim_wall_s") > 0
        assert 0 < t.get("cell_wall_max_s") <= t.get("sim_wall_s")
        assert t.get("run_cells_wall_s") >= t.get("cell_wall_max_s")

        runner.run_cells(cells)  # warm: served from the on-disk cache
        assert t.get("run_cells_calls") == 2
        assert t.get("cells_cached") == 2
        assert t.get("cells_simulated") == 2  # unchanged


# ----------------------------------------------------------------------
# API surface: ResultSet.telemetry
# ----------------------------------------------------------------------
def test_execute_scenario_publishes_telemetry(tmp_path):
    ctx = Context(scale=MICRO, results_dir=str(tmp_path), verbose=False)
    try:
        first = execute_scenario(ctx, registry.scenario("headline"))
        assert first.telemetry["cells_requested"] > 0
        assert first.telemetry["cells_simulated"] > 0
        assert first.telemetry["cache_writes"] > 0
        assert first.telemetry.get("cells_cached", 0) == 0
        assert first.telemetry["run_cells_wall_s"] > 0

        second = execute_scenario(ctx, registry.scenario("headline"))
        # same scenario again: everything comes back from the cache,
        # and the delta only covers the second run
        assert second.telemetry["cells_cached"] == first.telemetry[
            "cells_simulated"
        ]
        assert "cells_simulated" not in second.telemetry
        assert second.telemetry["cache_hits"] > 0

        rows = second.telemetry_rows()
        assert rows == sorted(rows, key=lambda r: r["counter"])
        assert merge_rows(rows) == second.telemetry
    finally:
        ctx.close()
