"""Tracing is observational: bit-identity and cross-kernel parity.

The trace subsystem's one hard invariant is that turning it on changes
*nothing* — no RNG draw, no event reorder, no float — and that both
event-loop kernels record the *same* streams. Pinned four ways:

* traced vs untraced records are bit-identical (start/end/dedicated/
  makespan/out-of-order), per kernel;
* the committed golden matrix replays byte-identically with tracing ON
  (tracing can never change ENGINE_REV semantics);
* python-loop and array-kernel event streams are identical on every
  golden case and on a co-scheduled job mix;
* a traced run against a shared-memory attached core matches the
  in-process streams (the sharedcore round trip adds nothing).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import CompiledCore, SimConfig, SimVariant
from repro.sweep import sharedcore
from repro.timing import get_platform

from ..sim.test_engine_golden import (
    _GOLDEN,
    FLAT,
    build_cluster,
    layerwise,
    make_config,
)
from ..sim.test_kernel_parity import run_golden_case

CASES = [c["case"] for c in _GOLDEN["cases"]]
IDS = [c["name"] for c in CASES]


def _variant(case: dict, **overrides) -> SimVariant:
    ir, cluster = build_cluster(case["backend"])
    platform = FLAT if case["platform"] == "flat" else get_platform(case["platform"])
    schedule = None if case["schedule"] == "baseline" else layerwise(ir)
    cfg = make_config(case["config"]).with_(**overrides)
    return SimVariant(CompiledCore(cluster, platform), schedule, cfg)


def _records_identical(a, b) -> bool:
    return (
        a.makespan == b.makespan
        and a.out_of_order_handoffs == b.out_of_order_handoffs
        and np.array_equal(a.start, b.start)
        and np.array_equal(a.end, b.end)
        and np.array_equal(a.dedicated, b.dedicated)
    )


# ----------------------------------------------------------------------
# traced == untraced, per kernel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kern", ["python", "portable"])
@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_tracing_never_changes_results(case, kern):
    plain = _variant(case, kernel=kern).run_iteration(0)
    traced = _variant(case, kernel=kern, trace=True).run_iteration(0)
    assert plain.trace is None
    assert traced.trace is not None
    assert _records_identical(plain, traced)


@pytest.mark.parametrize("case", CASES[:4], ids=IDS[:4])
def test_golden_matrix_replays_traced(case):
    """The golden digests hold with tracing forced on — strongest form
    of 'tracing is observational only'."""
    golden = next(c for c in _GOLDEN["cases"] if c["case"]["name"] == case["name"])
    traced_case = dict(case, config=dict(case["config"], trace=True))
    assert run_golden_case(traced_case, "portable") == golden["iterations"]


# ----------------------------------------------------------------------
# python vs portable event streams
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_kernels_record_identical_streams(case):
    py = _variant(case, kernel="python", trace=True).run_iteration(0)
    arr = _variant(case, kernel="portable", trace=True).run_iteration(0)
    assert py.trace.same_stream(arr.trace)
    assert py.trace.n_chunk_events == arr.trace.n_chunk_events > 0


def test_jobmix_cell_streams_agree_across_kernels():
    """A co-scheduled 2-job mix (shared-NIC packed placement) traces
    identically under both kernels, and the joined Trace carries the
    job tags."""
    from repro.obs.capture import trace_cell
    from repro.api.jobmix_scenarios import CONTENTION_MIX

    cell = CONTENTION_MIX.cells(SimConfig(iterations=2, warmup=1))[1]
    py = trace_cell(cell, kernel="python")
    arr = trace_cell(cell, kernel="portable")
    assert py.trace.ready.tolist() == arr.trace.ready.tolist()
    assert py.trace.depth.tolist() == arr.trace.depth.tolist()
    assert py.trace.chunk_start.tolist() == arr.trace.chunk_start.tolist()
    assert py.trace.jobs == ("j0", "j1")
    assert set(np.unique(py.trace.job)) == {0, 1}


# ----------------------------------------------------------------------
# event-stream semantics
# ----------------------------------------------------------------------
def test_stream_shapes_and_semantics():
    case = dict(
        name="ps", backend="ps", platform="flat", schedule="layerwise",
        config={"enforcement": "sender", "iterations": 1, "seed": 7},
    )
    variant = _variant(case, trace=True)
    record = variant.run_iteration(0)
    ev = record.trace
    n = variant.n
    assert ev.ready.shape == ev.depth.shape == (n,)
    # every op was released and dispatched exactly once
    assert not np.isnan(ev.ready).any()
    assert (ev.depth >= 1).all()
    # queue-enter never after dispatch
    assert (ev.ready <= record.start + 1e-12).all()
    # chunk events tile each transfer's wire occupancy
    assert ev.n_chunk_events >= int(variant.is_transfer.sum())
    assert (ev.chunk_dur > 0).all()


def test_ooo_recount_matches_engine_audit():
    """Trace.scheduler_diagnostics re-derives the engine's out-of-order
    audit from the traced wire order — totals must agree exactly."""
    from repro.obs.trace import Trace

    for case in CASES[:6]:
        variant = _variant(case, trace=True)
        record = variant.run_iteration(0)
        trace = Trace.from_record(variant, record)
        diag = trace.scheduler_diagnostics()
        assert diag["total_inversions"] == record.out_of_order_handoffs


# ----------------------------------------------------------------------
# shared-core round trip
# ----------------------------------------------------------------------
def test_attached_core_traces_identically():
    ir, cluster = build_cluster("ps")
    core = CompiledCore(cluster, FLAT)
    cfg = SimConfig(enforcement="sender", iterations=1, seed=7, trace=True)
    local = SimVariant(core, layerwise(ir), cfg).run_iteration(0)
    handle = sharedcore.publish(core, meta={"model": ir.name})
    try:
        attached, _ = sharedcore.attach(handle)
        remote = SimVariant(attached, layerwise(ir), cfg).run_iteration(0)
    finally:
        handle.unlink()
    assert _records_identical(local, remote)
    assert local.trace.same_stream(remote.trace)
