"""Algorithm 1 — reference implementation on the paper's own examples,
and vectorized-vs-reference equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PropertyEngine, update_properties_reference
from repro.timing import GeneralTimeOracle, MappingTimeOracle

from ..conftest import make_worker_graph
from ..strategies import worker_dags


def oracle_from_costs(g):
    return MappingTimeOracle({op.name: op.cost for op in g})


# ----------------------------------------------------------------------
# Reference implementation on the paper's worked examples (§4.1).
# ----------------------------------------------------------------------
def test_fig1a_properties(fig1a):
    """§4.1's running example: op1.M = Time(recv1); op2.M = both;
    recv1.P = Time(op1); recv2.P = 0."""
    recvs = {op.name: op.op_id for op in fig1a.recv_ops()}
    tables = update_properties_reference(
        fig1a, oracle_from_costs(fig1a), recvs.values()
    )
    op1, op2 = fig1a.op("op1").op_id, fig1a.op("op2").op_id
    assert tables.M[op1] == 1.0
    assert tables.M[op2] == 2.0
    assert tables.P[recvs["recv1"]] == 1.0  # Time(op1)
    assert tables.P[recvs["recv2"]] == 0.0  # "no op can execute with recv2 alone"
    # op2 has |dep ∩ R| = 2 -> M+ of both recvs = op2.M = 2
    assert tables.M_plus[recvs["recv1"]] == 2.0
    assert tables.M_plus[recvs["recv2"]] == 2.0


def test_fig1a_after_recv1_completes(fig1a):
    """Removing recv1 from R: op2 now has a single outstanding dep, so
    recv2 collects op2's compute time in P."""
    recvs = {op.name: op.op_id for op in fig1a.recv_ops()}
    tables = update_properties_reference(
        fig1a, oracle_from_costs(fig1a), [recvs["recv2"]]
    )
    assert tables.P[recvs["recv2"]] == 1.0  # Time(op2)
    assert recvs["recv1"] not in tables.P
    assert tables.M[fig1a.op("op2").op_id] == 1.0
    assert tables.M_plus[recvs["recv2"]] == np.inf


def test_fig4b_m_plus_prefers_cheap_pair(fig4b):
    """Case 2: recvA.M+ = recvB.M+ = Time(A)+Time(B), strictly below the
    C/D pair's M+ (the paper's tie-break rationale)."""
    recvs = {op.name: op.op_id for op in fig4b.recv_ops()}
    tables = update_properties_reference(
        fig4b, oracle_from_costs(fig4b), recvs.values()
    )
    ab = tables.M_plus[recvs["recvA"]]
    assert ab == tables.M_plus[recvs["recvB"]] == 2.0
    cd = tables.M_plus[recvs["recvC"]]
    assert cd == tables.M_plus[recvs["recvD"]] == 8.0
    assert ab < cd
    # all P are 0 while everything is outstanding
    assert all(v == 0.0 for v in tables.P.values())


def test_completed_recvs_do_not_count_in_m():
    g = make_worker_graph(
        {"recv1": [], "recv2": [], "op": ["recv1", "recv2"]},
        costs={"recv1": 5.0, "recv2": 7.0},
    )
    r2 = g.op("recv2").op_id
    tables = update_properties_reference(g, oracle_from_costs(g), [r2])
    assert tables.M[g.op("op").op_id] == 7.0  # only the outstanding one


def test_outstanding_must_be_recvs(fig1a):
    with pytest.raises(ValueError, match="non-recv"):
        update_properties_reference(
            fig1a, oracle_from_costs(fig1a), [fig1a.op("op1").op_id]
        )


def test_general_oracle_counts_recvs(fig4b):
    """Under TimeGeneral (Eq. 5), M equals the number of outstanding
    recv dependencies."""
    recv_ids = [op.op_id for op in fig4b.recv_ops()]
    tables = update_properties_reference(fig4b, GeneralTimeOracle(), recv_ids)
    op3 = fig4b.op("op3").op_id
    assert tables.M[op3] == 4.0


# ----------------------------------------------------------------------
# Vectorized engine == reference.
# ----------------------------------------------------------------------
def assert_engines_agree(g, outstanding_ids):
    oracle = oracle_from_costs(g)
    ref = update_properties_reference(g, oracle, outstanding_ids)
    engine = PropertyEngine(g, oracle)
    mask = np.zeros(engine.n_recv, dtype=bool)
    for op_id in outstanding_ids:
        mask[engine.recv_index_of(op_id)] = True
    snap = engine.update(mask)
    for op in g:
        assert snap.M[op.op_id] == pytest.approx(ref.M[op.op_id])
    for k, recv in enumerate(engine.recv_ops):
        if mask[k]:
            assert snap.P[k] == pytest.approx(ref.P[recv.op_id])
            if np.isinf(ref.M_plus[recv.op_id]):
                assert np.isinf(snap.M_plus[k])
            else:
                assert snap.M_plus[k] == pytest.approx(ref.M_plus[recv.op_id])


def test_vectorized_matches_reference_fig4b(fig4b):
    assert_engines_agree(fig4b, [op.op_id for op in fig4b.recv_ops()])


@given(worker_dags(), st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_vectorized_matches_reference_random(g, rnd):
    recvs = [op.op_id for op in g.recv_ops()]
    outstanding = [r for r in recvs if rnd.random() < 0.7]
    assert_engines_agree(g, outstanding)


def test_empty_outstanding_mask(fig1a):
    engine = PropertyEngine(fig1a, oracle_from_costs(fig1a))
    snap = engine.update(np.zeros(engine.n_recv, dtype=bool))
    assert not snap.M.any()
    assert np.isinf(snap.M_plus).all()


def test_full_snapshot_equals_all_outstanding(fig4a):
    engine = PropertyEngine(fig4a, oracle_from_costs(fig4a))
    full = engine.full_snapshot()
    manual = engine.update(np.ones(engine.n_recv, dtype=bool))
    assert np.array_equal(full.P, manual.P)
    assert np.array_equal(full.M_plus, manual.M_plus)


def test_bad_mask_shape_rejected(fig1a):
    engine = PropertyEngine(fig1a, oracle_from_costs(fig1a))
    with pytest.raises(ValueError, match="shape"):
        engine.update(np.ones(5, dtype=bool))


def test_negative_oracle_rejected(fig1a):
    with pytest.raises(ValueError, match="negative"):
        PropertyEngine(fig1a, MappingTimeOracle({"recv1": -1.0}))


def test_recv_index_of_rejects_compute(fig1a):
    engine = PropertyEngine(fig1a, oracle_from_costs(fig1a))
    with pytest.raises(KeyError):
        engine.recv_index_of("op1")
