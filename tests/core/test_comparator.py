"""TAC's comparator: Eq. 6 semantics, derivation checks, erratum."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RecvProps, precedes, precedes_as_printed

finite = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


def props(M, P, M_plus=0.0, index=0):
    return RecvProps(M=M, P=P, M_plus=M_plus, index=index)


def makespan(first, second):
    """Case 1's two-recv makespan: M_f + max{P_f, M_s} + P_s."""
    return first.M + max(first.P, second.M) + second.P


def test_fig1a_decision():
    """recv1 (P=Time(op1)) must precede recv2 (P=0)."""
    recv1 = props(M=1.0, P=1.0)
    recv2 = props(M=1.0, P=0.0, index=1)
    assert precedes(recv1, recv2)
    assert not precedes(recv2, recv1)


def test_printed_comparator_inverts_fig1a():
    """The Algorithm-3-as-printed form makes the opposite (wrong) call —
    the documented erratum."""
    recv1 = props(M=1.0, P=1.0)
    recv2 = props(M=1.0, P=0.0, index=1)
    assert precedes_as_printed(recv2, recv1)
    assert not precedes_as_printed(recv1, recv2)


@given(finite, finite, finite, finite)
@settings(max_examples=200, deadline=None)
def test_eq6_agrees_with_makespan_algebra(ma, pa, mb, pb):
    """Whenever the two orders have different makespans, Eq. 6 picks the
    smaller one (the derivation in §4.3, Case 1)."""
    a, b = props(ma, pa, index=0), props(mb, pb, index=1)
    ab, ba = makespan(a, b), makespan(b, a)
    # tolerance: the two makespans are algebraically tied whenever
    # min{P_B, M_A} == min{P_A, M_B}; float summation order can put them
    # 1 ulp apart, which must not count as a strict preference.
    tol = 1e-9 * max(1.0, abs(ab), abs(ba))
    if ab < ba - tol:
        assert precedes(a, b)
    elif ba < ab - tol:
        assert precedes(b, a)


@given(finite, finite, finite, finite, finite, finite)
@settings(max_examples=200, deadline=None)
def test_antisymmetry(ma, pa, mplusa, mb, pb, mplusb):
    a = props(ma, pa, mplusa, index=0)
    b = props(mb, pb, mplusb, index=1)
    assert precedes(a, b) != precedes(b, a)  # total order, no ties left


def test_tie_broken_by_m_plus():
    a = props(M=1.0, P=0.0, M_plus=2.0, index=0)
    b = props(M=1.0, P=0.0, M_plus=5.0, index=1)
    assert precedes(a, b)
    assert not precedes(b, a)


def test_final_tie_broken_by_index():
    a = props(M=1.0, P=0.0, M_plus=2.0, index=0)
    b = props(M=1.0, P=0.0, M_plus=2.0, index=1)
    assert precedes(a, b)
    assert not precedes(b, a)


positive = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)


def eq6_strict(a: RecvProps, b: RecvProps) -> bool:
    """The strict Eq. 6 preference, without tie-breaking."""
    return min(b.P, a.M) < min(a.P, b.M)


@given(st.lists(st.tuples(positive, finite), min_size=3, max_size=3))
@settings(max_examples=200, deadline=None)
def test_strict_eq6_has_no_cycles_with_positive_transfer_times(triple):
    """The strict Eq. 6 preference is acyclic on the physical domain
    (positive transfer times) — the defensible core of the paper's
    transitivity claim."""
    items = [props(m, p, index=i) for i, (m, p) in enumerate(triple)]
    for a, b, c in itertools.permutations(items, 3):
        assert not (eq6_strict(a, b) and eq6_strict(b, c) and eq6_strict(c, a))


def test_tie_chaining_counterexample_positive_times():
    """Documented boundary of the paper's 'transitive / partial ordering'
    claim: Eq. 6 ties are not an equivalence — a ~ b and b ~ c can coexist
    with c ≺ a, so the tie-broken total relation cycles. TAC is unaffected
    (argmin scan, not sort)."""
    a = props(M=2.0, P=1.0, index=0)
    b = props(M=1.0, P=1.0, index=1)
    c = props(M=1.0, P=2.0, index=2)
    assert not eq6_strict(a, b) and not eq6_strict(b, a)  # tie
    assert not eq6_strict(b, c) and not eq6_strict(c, b)  # tie
    assert eq6_strict(c, a)  # ...yet strictly ordered across the chain
    assert precedes(a, b) and precedes(b, c) and precedes(c, a)


def test_transitivity_counterexample_with_zero_transfer_times():
    """With zero-duration transfers even the strict relation cycles."""
    a = props(M=1.0, P=0.0, index=0)
    b = props(M=0.0, P=0.0, index=1)
    c = props(M=0.0, P=1.0, index=2)
    assert precedes(a, b) and precedes(b, c) and precedes(c, a)


def test_infinite_m_plus_sorts_last_on_ties():
    a = props(M=1.0, P=0.0, M_plus=float("inf"), index=0)
    b = props(M=1.0, P=0.0, M_plus=3.0, index=1)
    assert precedes(b, a)
