"""Schedule persistence round trips."""

import json
import os

import pytest

from repro.core import (
    Schedule,
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
    tic,
)
from repro.ps import build_reference_partition

from ..conftest import tiny_model


def test_roundtrip_preserves_priorities(tmp_path):
    schedule = Schedule("tac", {"b": 1, "a": 0}, meta={"wizard_seconds": 0.5})
    path = save_schedule(tmp_path / "s.json", schedule)
    loaded = load_schedule(path)
    assert loaded.priorities == {"a": 0, "b": 1}
    assert loaded.algorithm == "tac"
    assert loaded.meta["wizard_seconds"] == 0.5


def test_roundtrip_real_wizard_output(tmp_path):
    ref = build_reference_partition(tiny_model(), workload="training", n_ps=1)
    schedule = tic(ref.graph)
    loaded = load_schedule(save_schedule(tmp_path / "tic.json", schedule))
    assert loaded.priorities == dict(schedule.priorities)
    # Tie order within a priority group is insignificant (§3.1) and may
    # change across serialization (JSON sorts keys); the groups themselves
    # must survive exactly.
    def groups(s):
        out = {}
        for p, pr in s.priorities.items():
            out.setdefault(pr, set()).add(p)
        return out

    assert groups(loaded) == groups(schedule)


def test_document_is_stable_json(tmp_path):
    schedule = Schedule("tic", {"x": 0})
    p1 = save_schedule(tmp_path / "a.json", schedule)
    p2 = save_schedule(tmp_path / "b.json", schedule)
    assert open(p1).read() == open(p2).read()


def test_non_serializable_meta_dropped():
    schedule = Schedule("tic", {"x": 0}, meta={"ok": 1, "bad": object()})
    doc = schedule_to_dict(schedule)
    assert doc["meta"] == {"ok": 1}


def test_version_checked():
    with pytest.raises(ValueError, match="version"):
        schedule_from_dict({"format_version": 99, "algorithm": "x",
                            "priorities": {}})


def test_missing_fields_rejected():
    with pytest.raises(ValueError, match="missing"):
        schedule_from_dict({"format_version": 1})


def test_bad_priorities_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        schedule_from_dict(
            {"format_version": 1, "algorithm": "x", "priorities": {"a": -2}}
        )


def test_creates_parent_directories(tmp_path):
    path = save_schedule(tmp_path / "deep" / "dir" / "s.json",
                         Schedule("tic", {"x": 0}))
    assert os.path.exists(path)
    assert json.load(open(path))["algorithm"] == "tic"
