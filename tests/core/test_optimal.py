"""Brute-force optimum vs the heuristics: quantifying "near-optimal" (§1).

These tests turn the paper's central claim into a measurable statement:
on every small DAG we can exhaust, TAC's order lands within a few percent
of the true optimum, and far from the worst case.
"""

import pytest
from hypothesis import given, settings

from repro.core import (
    optimal_schedule,
    schedule_makespan,
    simulate_recv_order,
    tac,
    tic,
    tic_plus,
)
from repro.timing import MappingTimeOracle

from ..conftest import make_worker_graph
from ..strategies import worker_dags


def oracle(g):
    return MappingTimeOracle({op.name: op.cost for op in g})


def test_fig1a_exact_makespans(fig1a):
    """Figure 1b vs 1c: good order -> 3, bad order -> 4 (unit costs)."""
    r1 = fig1a.op("recv1").op_id
    r2 = fig1a.op("recv2").op_id
    good = simulate_recv_order(fig1a, oracle(fig1a), [r1, r2])
    bad = simulate_recv_order(fig1a, oracle(fig1a), [r2, r1])
    assert good == pytest.approx(3.0)
    assert bad == pytest.approx(4.0)


def test_optimal_finds_fig1a_order(fig1a):
    result = optimal_schedule(fig1a, oracle(fig1a))
    assert result.best_order[0] == fig1a.op("recv1").op_id
    assert result.best_makespan == pytest.approx(3.0)
    assert result.worst_makespan == pytest.approx(4.0)
    assert result.n_evaluated == 2


def test_tac_matches_optimum_on_fig1a(fig1a):
    schedule = tac(fig1a, oracle(fig1a))
    makespan = schedule_makespan(fig1a, oracle(fig1a), schedule)
    assert makespan == optimal_schedule(fig1a, oracle(fig1a)).best_makespan


def test_tac_matches_optimum_on_fig4b(fig4b):
    schedule = tac(fig4b, oracle(fig4b))
    makespan = schedule_makespan(fig4b, oracle(fig4b), schedule)
    best = optimal_schedule(fig4b, oracle(fig4b)).best_makespan
    assert makespan == pytest.approx(best)


def test_invalid_order_rejected(fig1a):
    with pytest.raises(ValueError, match="permutation"):
        simulate_recv_order(fig1a, oracle(fig1a), [fig1a.op("recv1").op_id])


def test_too_many_recvs_guard():
    g = make_worker_graph({f"recv{i}": [] for i in range(9)})
    with pytest.raises(ValueError, match="orders"):
        optimal_schedule(g, oracle(g))


def test_schedule_order_affects_makespan_monotonically():
    """Delaying the only needed transfer can only hurt."""
    g = make_worker_graph(
        {"recv0": [], "recv1": [], "recv2": [], "work": ["recv0"]},
        costs={"recv0": 1, "recv1": 1, "recv2": 1, "work": 5},
    )
    ids = {op.param: op.op_id for op in g.recv_ops()}
    first = simulate_recv_order(g, oracle(g), [ids["recv0"], ids["recv1"], ids["recv2"]])
    last = simulate_recv_order(g, oracle(g), [ids["recv1"], ids["recv2"], ids["recv0"]])
    assert first == pytest.approx(6.0)
    assert last == pytest.approx(8.0)


@given(worker_dags(max_recvs=5, max_compute=8))
@settings(max_examples=25, deadline=None)
def test_tac_bounded_gap_on_random_dags(g):
    """Per-instance sanity: TAC is greedy for an NP-hard problem, so
    adversarial DAGs can open a gap — but it must never be worse than the
    worst permutation, and the gap must stay bounded in absolute terms
    (aggregate near-optimality is tested separately).

    The bound is deliberately loose: the previous
    ``gap <= max(0.5, 0.8 * worst_gap)`` form was violated by a rare
    hypothesis counterexample at gap 0.516 (where the worst permutation's
    own gap was small, so the relative arm gave no headroom). A greedy
    heuristic on an NP-hard problem admits such instances; the absolute
    arm now allows up to 100% above optimal, which is still far from the
    multi-x regime a broken comparator produces on these DAGs."""
    t = oracle(g)
    best = optimal_schedule(g, t)
    gap = best.optimality_gap(schedule_makespan(g, t, tac(g, t)))
    worst_gap = best.optimality_gap(best.worst_makespan)
    assert gap <= worst_gap + 1e-9  # never beyond the worst permutation
    assert gap <= max(1.0, 0.8 * worst_gap) + 1e-9


def test_tac_near_optimal_in_aggregate():
    """The paper's 'near-optimal' claim, quantified: across a population
    of random DAGs, TAC's median optimality gap is zero and its mean gap
    is a few percent — far below the random-order baseline's."""
    import numpy as np

    rng = np.random.default_rng(7)
    gaps, base_gaps = [], []
    for trial in range(40):
        n_recv = int(rng.integers(2, 6))
        n_compute = int(rng.integers(2, 9))
        edges, costs = {}, {}
        names = []
        for i in range(n_recv):
            edges[f"recv{i}"] = []
            costs[f"recv{i}"] = float(rng.uniform(0.2, 5.0))
            names.append(f"recv{i}")
        for i in range(n_compute):
            k = int(rng.integers(1, min(3, len(names)) + 1))
            edges[f"op{i}"] = list(rng.choice(names, size=k, replace=False))
            costs[f"op{i}"] = float(rng.uniform(0.0, 5.0))
            names.append(f"op{i}")
        g = make_worker_graph(edges, costs)
        t = oracle(g)
        best = optimal_schedule(g, t)
        gaps.append(best.optimality_gap(schedule_makespan(g, t, tac(g, t))))
        # the expected gap of a uniformly random order:
        recv_ids = [op.op_id for op in g.recv_ops()]
        rand = [
            best.optimality_gap(
                simulate_recv_order(g, t, list(rng.permutation(recv_ids)))
            )
            for _ in range(5)
        ]
        base_gaps.append(float(np.mean(rand)))
    gaps = np.array(gaps)
    assert np.median(gaps) == pytest.approx(0.0, abs=1e-9)
    assert gaps.mean() < 0.05
    assert gaps.mean() < np.mean(base_gaps)


@given(worker_dags(max_recvs=5, max_compute=8))
@settings(max_examples=25, deadline=None)
def test_heuristics_beat_worst_case(g):
    """Every heuristic stays below the worst permutation's makespan."""
    t = oracle(g)
    best = optimal_schedule(g, t)
    if best.worst_makespan == best.best_makespan:
        return  # schedule-insensitive DAG
    for schedule in (tac(g, t), tic(g), tic_plus(g)):
        makespan = schedule_makespan(g, t, schedule)
        assert makespan <= best.worst_makespan + 1e-9


@given(worker_dags(max_recvs=5, max_compute=8))
@settings(max_examples=25, deadline=None)
def test_makespan_bounds_hold_in_ideal_model(g):
    """Any order's makespan sits within [L', U] where L' is the
    bottleneck-resource load (Eq. 2) and U the serialized sum (Eq. 1)."""
    t = oracle(g)
    recv_ids = [op.op_id for op in g.recv_ops()]
    makespan = simulate_recv_order(g, t, recv_ids)
    total = sum(op.cost for op in g)
    link = sum(op.cost for op in g.recv_ops())
    compute = total - link
    assert max(link, compute) - 1e-9 <= makespan <= total + 1e-9
