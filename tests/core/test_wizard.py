"""Ordering-wizard facade: dispatch, model-level entry point."""

import pytest

from repro.core import compute_schedule, schedule_model
from repro.core.wizard import ALGORITHMS
from repro.ps import build_reference_partition
from repro.timing import ENV_G, estimate_time_oracle

from ..conftest import tiny_model


@pytest.fixture(scope="module")
def reference():
    return build_reference_partition(tiny_model(), workload="training", n_ps=1)


def test_every_algorithm_dispatches(reference):
    oracle = estimate_time_oracle(reference.graph, ENV_G, seed=0)
    for algorithm in ALGORITHMS:
        schedule = compute_schedule(reference, algorithm, oracle=oracle)
        assert schedule.algorithm == algorithm
        if algorithm != "baseline":
            assert set(schedule.priorities) == set(reference.recv_params)


def test_tac_without_oracle_rejected(reference):
    with pytest.raises(ValueError, match="oracle"):
        compute_schedule(reference, "tac")


def test_unknown_algorithm_rejected(reference):
    with pytest.raises(ValueError, match="unknown algorithm"):
        compute_schedule(reference, "poseidon")


def test_schedule_model_tic_end_to_end():
    schedule = schedule_model("AlexNet v2", "tic", workload="inference")
    assert len(schedule.priorities) == 16
    # conv1 weights must be in the earliest priority group
    first_group = min(schedule.priorities.values())
    assert schedule.priorities["conv1/weights"] == first_group


def test_schedule_model_tac_uses_traced_oracle():
    schedule = schedule_model(
        "AlexNet v2", "tac", workload="inference", platform="envG", trace_runs=3
    )
    order = schedule.order()
    assert order[0].startswith("conv1/")
    assert order[-1].startswith("fc8/")


def test_schedule_model_accepts_ir_instance():
    ir = tiny_model()
    schedule = schedule_model(ir, "tic", workload="training")
    assert set(schedule.priorities) == {p.name for p in ir.params}


def test_schedule_model_batch_factor_changes_nothing_structural():
    a = schedule_model("AlexNet v2", "tic", workload="inference", batch_factor=0.5)
    b = schedule_model("AlexNet v2", "tic", workload="inference", batch_factor=2.0)
    assert a.priorities == b.priorities  # TIC is timing-independent
