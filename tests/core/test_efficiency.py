"""Eq. 1-4: makespan bounds, scheduling efficiency, speedup."""

import pytest

from repro.core import (
    EfficiencyReport,
    lower_makespan,
    scheduling_efficiency,
    theoretical_speedup,
    upper_makespan,
)
from repro.graph import PartitionedGraph

from ..conftest import make_worker_graph


@pytest.fixture
def toy():
    g = make_worker_graph(
        {"recv1": [], "recv2": [], "op1": ["recv1"], "op2": ["op1", "recv2"]},
        costs={"recv1": 1.0, "recv2": 1.0, "op1": 1.0, "op2": 1.0},
    )
    return PartitionedGraph(g)


def times(partition):
    return [op.cost for op in partition.graph]


def test_upper_is_total_serialization(toy):
    assert upper_makespan(toy.graph, times(toy)) == 4.0


def test_lower_is_bottleneck_load(toy):
    # link load 2, compute load 2 -> L = 2
    assert lower_makespan(toy, times(toy)) == 2.0


def test_lower_with_skewed_loads():
    g = make_worker_graph(
        {"recv1": [], "op1": ["recv1"]}, costs={"recv1": 10.0, "op1": 1.0}
    )
    assert lower_makespan(PartitionedGraph(g), [10.0, 1.0]) == 10.0


def test_efficiency_extremes(toy):
    t = times(toy)
    best = scheduling_efficiency(toy, t, makespan=2.0)
    worst = scheduling_efficiency(toy, t, makespan=4.0)
    assert best.efficiency == 1.0
    assert worst.efficiency == 0.0


def test_efficiency_midpoint(toy):
    report = scheduling_efficiency(toy, times(toy), makespan=3.0)
    assert report.efficiency == pytest.approx(0.5)


def test_fig1a_good_vs_bad_order(toy):
    """Figure 1b/1c: good order finishes in 3, bad order in 4."""
    t = times(toy)
    good = scheduling_efficiency(toy, t, makespan=3.0)
    bad = scheduling_efficiency(toy, t, makespan=4.0)
    assert good.efficiency > bad.efficiency


def test_speedup_eq4(toy):
    # S = (U - L) / L = (4 - 2) / 2 = 1 -> "double the throughput"
    assert theoretical_speedup(toy, times(toy)) == pytest.approx(1.0)


def test_speedup_zero_when_one_resource_dominates():
    g = make_worker_graph({"recv1": []}, costs={"recv1": 5.0})
    part = PartitionedGraph(g)
    # single loaded resource: U == L -> S = 0, E degenerates to 1
    assert theoretical_speedup(part, [5.0]) == 0.0
    assert scheduling_efficiency(part, [5.0], makespan=5.0).efficiency == 1.0


def test_degenerate_zero_lower_bound():
    report = EfficiencyReport(makespan=0.0, upper=0.0, lower=0.0)
    assert report.efficiency == 1.0
    assert report.speedup == 0.0


def test_times_mapping_form(toy):
    t = {op.op_id: op.cost for op in toy.graph}
    assert upper_makespan(toy.graph, t) == 4.0


def test_times_shape_validated(toy):
    with pytest.raises(ValueError, match="shape"):
        upper_makespan(toy.graph, [1.0, 2.0])


def test_negative_times_rejected(toy):
    with pytest.raises(ValueError, match="negative"):
        upper_makespan(toy.graph, [-1.0, 1.0, 1.0, 1.0])


def test_negative_makespan_rejected(toy):
    with pytest.raises(ValueError, match="makespan"):
        scheduling_efficiency(toy, times(toy), makespan=-1.0)
