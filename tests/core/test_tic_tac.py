"""TIC (Algorithm 2) and TAC (Algorithm 3) behaviour on known DAGs."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import Schedule, dense_ranks, tac, tic, tic_plus
from repro.timing import MappingTimeOracle

from ..conftest import make_worker_graph
from ..strategies import worker_dags


def cost_oracle(g):
    return MappingTimeOracle({op.name: op.cost for op in g})


# ----------------------------------------------------------------------
# TIC
# ----------------------------------------------------------------------
def test_tic_fig4b_prefers_cheap_pair(fig4b):
    """Under TimeGeneral both pairs cost the same number of transfers, so
    TIC groups {A,B} with op1's M+ = 2 and {C,D} with op2's M+ = 2 — a tie
    — but op3 does not tighten further; with equal counts priorities tie."""
    schedule = tic(fig4b)
    p = schedule.priorities
    assert p["recvA"] == p["recvB"]
    assert p["recvC"] == p["recvD"]
    # both pairs activate an op after 2 transfers -> same group under TIC
    assert p["recvA"] == p["recvC"]


def test_tic_orders_layers_first_to_last():
    """In a layered chain, earlier layers' recvs must come first."""
    g = make_worker_graph(
        {
            "recv0": [], "recv1": [], "recv2": [],
            "l0": ["recv0"],
            "l1": ["l0", "recv1"],
            "l2": ["l1", "recv2"],
        }
    )
    schedule = tic(g)
    p = schedule.priorities
    assert p["recv1"] < p["recv2"]
    # recv0's only multi-dep consumer is l1 {recv0, recv1} -> ties recv1
    assert p["recv0"] == p["recv1"]


def test_tic_infinite_m_plus_goes_last():
    g = make_worker_graph(
        {
            "recvA": [], "recvB": [], "recvC": [],
            "join": ["recvA", "recvB"],
            "solo": ["recvC"],  # recvC never shares a consumer
        }
    )
    schedule = tic(g)
    assert schedule.meta["n_infinite_m_plus"] == 1
    assert schedule.priorities["recvC"] > schedule.priorities["recvA"]


def test_dense_ranks_handles_inf_and_ties():
    ranks = dense_ranks(np.array([3.0, 1.0, 3.0, np.inf]))
    assert ranks.tolist() == [1, 0, 1, 2]


def test_tic_priorities_cover_all_recvs(fig4b):
    schedule = tic(fig4b)
    assert set(schedule.priorities) == {op.param for op in fig4b.recv_ops()}


# ----------------------------------------------------------------------
# TAC
# ----------------------------------------------------------------------
def test_tac_fig1a_order(fig1a):
    schedule = tac(fig1a, cost_oracle(fig1a))
    assert schedule.order() == ["recv1", "recv2"]


def test_tac_fig4b_cheap_pair_first(fig4b):
    """§4.3 Case 2: 'obviously, recvA and recvB should precede other
    recvs'."""
    schedule = tac(fig4b, cost_oracle(fig4b))
    order = schedule.order()
    assert set(order[:2]) == {"recvA", "recvB"}
    assert order[2:] == ["recvC", "recvD"]


def test_tac_assigns_distinct_consecutive_priorities(fig4b):
    schedule = tac(fig4b, cost_oracle(fig4b))
    assert sorted(schedule.priorities.values()) == [0, 1, 2, 3]


def test_tac_prioritizes_heavy_compute_branch():
    """Two independent branches: the one unblocking more compute per
    transfer second goes first."""
    g = make_worker_graph(
        {
            "recvH": [], "recvL": [],
            "heavy": ["recvH"],
            "light": ["recvL"],
        },
        costs={"recvH": 1.0, "recvL": 1.0, "heavy": 10.0, "light": 0.5},
    )
    schedule = tac(g, cost_oracle(g))
    assert schedule.order() == ["recvH", "recvL"]


def test_tac_deterministic(fig4b):
    a = tac(fig4b, cost_oracle(fig4b)).priorities
    b = tac(fig4b, cost_oracle(fig4b)).priorities
    assert a == b


@given(worker_dags())
@settings(max_examples=40, deadline=None)
def test_tac_is_a_permutation(g):
    schedule = tac(g, cost_oracle(g))
    n = len(g.recv_ops())
    assert sorted(schedule.priorities.values()) == list(range(n))


@given(worker_dags())
@settings(max_examples=40, deadline=None)
def test_tic_plus_is_a_permutation(g):
    schedule = tic_plus(g)
    n = len(g.recv_ops())
    assert sorted(schedule.priorities.values()) == list(range(n))


def test_tic_plus_orders_solo_recv_by_structure():
    """Unlike single-shot TIC, the iterative variant gives every recv a
    definite rank (no +inf group)."""
    g = make_worker_graph(
        {
            "recvA": [], "recvB": [], "recvC": [],
            "join": ["recvA", "recvB"],
            "solo": ["recvC"],
        }
    )
    schedule = tic_plus(g)
    assert sorted(schedule.priorities.values()) == [0, 1, 2]


def test_tac_requires_oracle_values_for_recvs(fig1a):
    # a zero-time oracle is legal (degenerate) and must still terminate
    schedule = tac(fig1a, MappingTimeOracle({}, default=0.0))
    assert len(schedule.priorities) == 2
