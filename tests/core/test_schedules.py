"""Schedule semantics: ordering, §5.1 normalization, baselines."""

import pytest

from repro.core import (
    Schedule,
    layerwise_schedule,
    no_schedule,
    random_schedule,
    reverse_layerwise_schedule,
)


def test_order_sorts_by_priority():
    s = Schedule("x", {"a": 2, "b": 0, "c": 1})
    assert s.order() == ["b", "c", "a"]


def test_order_is_stable_within_ties():
    s = Schedule("x", {"a": 0, "b": 0, "c": 0})
    assert s.order(["c", "a", "b"]) == ["c", "a", "b"]


def test_order_puts_unprioritized_last():
    s = Schedule("x", {"a": 1})
    assert s.order(["z", "a"]) == ["a", "z"]


def test_normalized_is_dense_over_subset():
    """§5.1: per channel, priorities become consecutive ints in [0, n)."""
    s = Schedule("x", {"a": 10, "b": 40, "c": 20})
    ranks = s.normalized(["b", "c"])
    assert ranks == {"c": 0, "b": 1}


def test_normalized_with_ties_and_missing():
    s = Schedule("x", {"a": 0, "b": 0})
    ranks = s.normalized(["b", "a", "zzz"])
    assert sorted(ranks.values()) == [0, 1, 2]
    assert ranks["zzz"] == 2


def test_negative_priority_rejected():
    with pytest.raises(ValueError, match="negative"):
        Schedule("x", {"a": -1})


def test_no_schedule_is_empty():
    s = no_schedule()
    assert s.is_empty
    assert s.order() == []
    assert s.algorithm == "baseline"


def test_random_schedule_is_seeded_permutation():
    params = [f"p{i}" for i in range(10)]
    a = random_schedule(params, seed=1)
    b = random_schedule(params, seed=1)
    c = random_schedule(params, seed=2)
    assert a.priorities == b.priorities
    assert a.priorities != c.priorities
    assert sorted(a.priorities.values()) == list(range(10))


def test_layerwise_and_reverse_are_mirrors():
    params = ["p0", "p1", "p2"]
    fwd = layerwise_schedule(params)
    rev = reverse_layerwise_schedule(params)
    assert fwd.order() == params
    assert rev.order() == list(reversed(params))
