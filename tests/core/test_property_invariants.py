"""Paper-stated invariants of the Algorithm-1 properties, as properties."""

import numpy as np
from hypothesis import given, settings

from repro.core import PropertyEngine
from repro.timing import MappingTimeOracle

from ..strategies import worker_dags


def oracle(g):
    return MappingTimeOracle({op.name: op.cost for op in g})


@given(worker_dags())
@settings(max_examples=60, deadline=None)
def test_m_plus_includes_own_transfer_time(g):
    """§4.1: 'recvOp.M+ includes the communication time of that recvOp' —
    so any finite M+ is at least the recv's own time."""
    engine = PropertyEngine(g, oracle(g))
    snap = engine.full_snapshot()
    for k in range(engine.n_recv):
        if np.isfinite(snap.M_plus[k]):
            assert snap.M_plus[k] >= snap.recv_time[k] - 1e-9


@given(worker_dags())
@settings(max_examples=60, deadline=None)
def test_m_is_monotone_in_outstanding_set(g):
    """Shrinking R can only decrease every op's outstanding transfer time."""
    engine = PropertyEngine(g, oracle(g))
    full = engine.update(np.ones(engine.n_recv, dtype=bool))
    half_mask = np.ones(engine.n_recv, dtype=bool)
    half_mask[:: 2] = False
    half = engine.update(half_mask)
    assert np.all(half.M <= full.M + 1e-9)


@given(worker_dags())
@settings(max_examples=60, deadline=None)
def test_p_total_bounded_by_compute_total(g):
    """ΣP over outstanding recvs never exceeds total compute time: each
    op's time is credited to at most one recv (its unique blocker)."""
    engine = PropertyEngine(g, oracle(g))
    snap = engine.full_snapshot()
    total_compute = sum(op.cost for op in g if not op.is_recv)
    assert snap.P.sum() <= total_compute + 1e-6


@given(worker_dags())
@settings(max_examples=60, deadline=None)
def test_m_of_op_bounded_by_total_transfer_time(g):
    engine = PropertyEngine(g, oracle(g))
    snap = engine.full_snapshot()
    assert np.all(snap.M <= snap.recv_time.sum() + 1e-9)


@given(worker_dags())
@settings(max_examples=60, deadline=None)
def test_retiring_recvs_moves_their_p_elsewhere(g):
    """After removing a recv from R, the compute it used to gate either
    activates or re-attaches to other recvs — P values remain finite and
    non-negative throughout the TAC loop."""
    engine = PropertyEngine(g, oracle(g))
    mask = np.ones(engine.n_recv, dtype=bool)
    order = list(range(engine.n_recv))
    for k in order:
        snap = engine.update(mask)
        assert np.all(snap.P[mask] >= 0)
        assert np.all(np.isfinite(snap.P[mask]))
        mask[k] = False
