"""Per-architecture structural checks against published layouts."""

import pytest

from repro.models import build_model


def params_of(name):
    return [p.name for p in build_model(name).params]


def test_alexnet_layer_roster():
    names = params_of("AlexNet v2")
    weights = [n for n in names if n.endswith("/weights")]
    assert weights == [
        "conv1/weights", "conv2/weights", "conv3/weights", "conv4/weights",
        "conv5/weights", "fc6/weights", "fc7/weights", "fc8/weights",
    ]


def test_alexnet_conv1_shape():
    ir = build_model("AlexNet v2")
    conv1 = next(p for p in ir.params if p.name == "conv1/weights")
    assert conv1.shape == (11, 11, 3, 64)


def test_vgg16_has_13_convs_and_3_fc():
    names = params_of("VGG-16")
    convs = [n for n in names if n.startswith("conv") and n.endswith("/weights")]
    fcs = [n for n in names if n.startswith("fc") and n.endswith("/weights")]
    assert len(convs) == 13 and len(fcs) == 3


def test_vgg_fc6_is_the_wall_tensor():
    """fc6 (7x7x512x4096) dominates VGG's bytes — the transfer whose
    placement in the order decides the baseline's fate."""
    ir = build_model("VGG-16")
    fc6 = next(p for p in ir.params if p.name == "fc6/weights")
    assert fc6.shape == (7, 7, 512, 4096)
    assert fc6.nbytes > 0.7 * max(p.nbytes for p in ir.params if p.name != "fc6/weights") * 6


def test_inception_v1_has_9_modules():
    ir = build_model("Inception v1")
    concats = [n for n in ir.nodes if n.endswith("/concat")]
    assert len(concats) == 9


def test_inception_v1_conv_count():
    names = params_of("Inception v1")
    convs = [n for n in names if n.endswith("/weights")]
    assert len(convs) == 57 + 1  # 57 convs + logits fc


def test_inception_v2_separable_stem():
    names = params_of("Inception v2")
    assert "Conv2d_1a_7x7/depthwise/depthwise_weights" in names
    assert "Conv2d_1a_7x7/pointwise/weights" in names


def test_inception_v3_input_is_299():
    ir = build_model("Inception v3")
    assert ir.node("input").out_shape == (299, 299, 3)


def test_inception_v3_has_aux_head():
    ir = build_model("Inception v3")
    assert ir.node("predictions").attrs["aux_head"] == "AuxLogits/flatten"
    aux_params = [p for p in ir.params if p.name.startswith("AuxLogits")]
    assert len(aux_params) == 6  # 2 BN convs (2x2) + conv-fc w+b


def test_inception_v3_factorized_kernels():
    ir = build_model("Inception v3")
    k1x7 = [p for p in ir.params if p.shape[:2] == (1, 7)]
    k7x1 = [p for p in ir.params if p.shape[:2] == (7, 1)]
    assert k1x7 and k7x1


@pytest.mark.parametrize(
    "name, n_units",
    [("ResNet-50 v1", 16), ("ResNet-101 v1", 33),
     ("ResNet-50 v2", 16), ("ResNet-101 v2", 33)],
)
def test_resnet_unit_counts(name, n_units):
    ir = build_model(name)
    conv3s = [p for p in ir.params if p.name.endswith("conv3/weights")]
    assert len(conv3s) == n_units


@pytest.mark.parametrize("name", ["ResNet-50 v1", "ResNet-50 v2"])
def test_resnet_four_projection_shortcuts(name):
    ir = build_model(name)
    shortcuts = [p for p in ir.params if "shortcut" in p.name and p.name.endswith("weights")]
    assert len(shortcuts) == 4


def test_resnet_v1_final_stage_width():
    ir = build_model("ResNet-50 v1")
    logits = next(p for p in ir.params if p.name == "logits/weights")
    assert logits.shape == (2048, 1000)


def test_resnet_spatial_progression():
    ir = build_model("ResNet-50 v1")
    # 224 -> conv1 s2 -> 112 -> pool s2 -> 56 -> stages s2 x3 -> 7
    last_add = [n for n in ir.nodes if n.endswith("/add")][-1]
    assert ir.node(last_add).out_shape[:2] == (7, 7)


def test_all_models_end_in_softmax():
    from repro.models import MODEL_NAMES

    for name in MODEL_NAMES:
        ir = build_model(name)
        assert list(ir.nodes)[-1] == "predictions"
        assert ir.node("predictions").out_shape == (1000,)
