"""Models referenced outside Table 1 (§2.2's ResNet-v2-152)."""

import pytest

from repro.models import EXTRA_MODEL_BUILDERS, build_model


def test_resnet152_matches_section_2_2():
    """'ResNet-v2-152 has 363 parameters with an aggregate size of
    229.5 MB' — reproduced exactly by the zoo."""
    ir = build_model("ResNet-152 v2")
    assert ir.n_param_tensors == 363
    assert ir.total_param_mib == pytest.approx(229.5, abs=0.1)


def test_resnet152_unit_structure():
    ir = build_model("ResNet-152 v2")
    conv3s = [p for p in ir.params if p.name.endswith("conv3/weights")]
    preacts = [p for p in ir.params if "preact" in p.name]
    assert len(conv3s) == 3 + 8 + 36 + 3
    assert len(preacts) == 50


def test_extra_models_not_in_table1_sweeps():
    from repro.models import MODEL_NAMES, PAPER_TABLE_1

    assert "ResNet-152 v2" in EXTRA_MODEL_BUILDERS
    assert "ResNet-152 v2" not in MODEL_NAMES
    assert "ResNet-152 v2" not in PAPER_TABLE_1


def test_extra_model_default_batch():
    assert build_model("ResNet-152 v2").batch_size == 32
    assert build_model("ResNet-152 v2", batch_factor=0.5).batch_size == 16
