"""Table 1 parity: the model zoo against the paper's published numbers.

Parameter-tensor counts must match exactly; sizes to within 0.01 MiB;
op counts are structural (not padded to the paper's numbers) and must
land within a documented band.
"""

import pytest

from repro.models import (
    MODEL_NAMES,
    PAPER_TABLE_1,
    build_model,
    op_counts,
    standard_batch_size,
)


@pytest.fixture(scope="module")
def zoo():
    return {name: build_model(name) for name in MODEL_NAMES}


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_param_tensor_count_exact(zoo, name):
    assert zoo[name].n_param_tensors == PAPER_TABLE_1[name].n_params


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_param_size_matches_to_hundredth_mib(zoo, name):
    assert zoo[name].total_param_mib == pytest.approx(
        PAPER_TABLE_1[name].param_mib, abs=0.01
    )


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_batch_size_matches(zoo, name):
    assert zoo[name].batch_size == PAPER_TABLE_1[name].batch_size
    assert standard_batch_size(name) == PAPER_TABLE_1[name].batch_size


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_op_counts_within_structural_band(name):
    """Structural emission lands within 40% of TF's counts for every
    model (most are within ~10%; see EXPERIMENTS.md)."""
    ref = PAPER_TABLE_1[name]
    inf, tr = op_counts(build_model(name))
    assert abs(inf - ref.ops_inference) / ref.ops_inference < 0.40
    assert abs(tr - ref.ops_training) / ref.ops_training < 0.40


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_training_graph_larger_than_inference(name):
    inf, tr = op_counts(build_model(name))
    assert 1.4 < tr / inf < 2.3  # the paper's ratios cluster near 2


def test_known_flops_sanity(zoo):
    """Forward GFLOPs per image (2 x MAC convention) against published
    figures."""
    expectations = {
        "VGG-16": (29, 33),
        "ResNet-50 v1": (7, 9),
        "Inception v3": (10.5, 12.5),
        "AlexNet v2": (1.2, 1.8),
        "Inception v1": (2.5, 3.5),
    }
    for name, (lo, hi) in expectations.items():
        ir = zoo[name]
        per_image = ir.forward_flops() / ir.batch_size / 1e9
        assert lo < per_image < hi, f"{name}: {per_image:.2f} GFLOPs/img"


def test_batch_factor_scales_batch():
    ir = build_model("VGG-16", batch_factor=0.5)
    assert ir.batch_size == 16
    ir2 = build_model("VGG-16", batch_factor=2.0)
    assert ir2.batch_size == 64


def test_batch_factor_never_rounds_to_zero():
    assert build_model("Inception v3", batch_factor=0.01).batch_size == 1


def test_unknown_model_rejected():
    with pytest.raises(KeyError, match="unknown model"):
        build_model("LeNet-5")


def test_vgg19_is_strictly_larger_than_vgg16(zoo):
    assert zoo["VGG-19"].n_param_tensors > zoo["VGG-16"].n_param_tensors
    assert zoo["VGG-19"].total_param_bytes > zoo["VGG-16"].total_param_bytes
    assert zoo["VGG-19"].forward_flops() > zoo["VGG-16"].forward_flops()


def test_resnet_v2_adds_preact_betas(zoo):
    v1 = {p.name for p in zoo["ResNet-50 v1"].params}
    v2 = {p.name for p in zoo["ResNet-50 v2"].params}
    preacts = [n for n in v2 if "preact" in n]
    assert len(preacts) == 16  # one per bottleneck unit
    assert any("postnorm" in n for n in v2)
    assert not any("preact" in n for n in v1)
