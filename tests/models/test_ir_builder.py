"""Layer IR and shape-tracking builder."""

import pytest

from repro.models import ModelIR, Node, ParamTensor, conv_out_hw
from repro.models.builder import NetBuilder


# ----------------------------------------------------------------------
# ParamTensor / Node / ModelIR
# ----------------------------------------------------------------------
def test_param_tensor_accounting():
    p = ParamTensor("w", (3, 3, 64, 128))
    assert p.n_elements == 3 * 3 * 64 * 128
    assert p.nbytes == p.n_elements * 4


def test_ir_rejects_duplicate_nodes():
    ir = ModelIR("m", 4)
    ir.add(Node("a", "input", [], (4,)))
    with pytest.raises(ValueError, match="duplicate"):
        ir.add(Node("a", "relu", [], (4,)))


def test_ir_rejects_unknown_input():
    ir = ModelIR("m", 4)
    with pytest.raises(ValueError, match="unknown input"):
        ir.add(Node("b", "relu", ["ghost"], (4,)))


def test_ir_rejects_bad_batch():
    with pytest.raises(ValueError, match="batch_size"):
        ModelIR("m", 0)


def test_validate_rejects_shared_param():
    ir = ModelIR("m", 1)
    p = ParamTensor("w", (2,))
    ir.add(Node("a", "input", [], (2,)))
    ir.add(Node("b", "fc", ["a"], (2,), params=[p]))
    ir.add(Node("c", "fc", ["b"], (2,), params=[p]))
    with pytest.raises(ValueError, match="two nodes"):
        ir.validate()


def test_consumers_map():
    ir = ModelIR("m", 1)
    ir.add(Node("a", "input", [], (2,)))
    ir.add(Node("b", "relu", ["a"], (2,)))
    ir.add(Node("c", "relu", ["a"], (2,)))
    assert sorted(ir.consumers()["a"]) == ["b", "c"]


# ----------------------------------------------------------------------
# conv arithmetic
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "h, k, s, padding, expected",
    [
        (224, 3, 1, "SAME", 224),
        (224, 3, 2, "SAME", 112),
        (224, 7, 2, "SAME", 112),
        (224, 11, 4, "VALID", 54),  # AlexNet conv1
        (224, 7, 1, "VALID", 218),
        (5, 5, 1, "VALID", 1),
    ],
)
def test_conv_out_hw(h, k, s, padding, expected):
    assert conv_out_hw(h, h, k, k, s, padding) == (expected, expected)


def test_conv_valid_smaller_than_kernel_rejected():
    with pytest.raises(ValueError, match="smaller than kernel"):
        conv_out_hw(3, 3, 5, 5, 1, "VALID")


def test_unknown_padding_rejected():
    with pytest.raises(ValueError, match="padding"):
        conv_out_hw(8, 8, 3, 3, 1, "HALF")


# ----------------------------------------------------------------------
# Builder shape inference and parameter conventions
# ----------------------------------------------------------------------
def test_conv_with_bn_has_weight_and_beta():
    b = NetBuilder("m", 2, (8, 8), 3)
    b.conv("c", 3, 16)
    params = b.ir.params
    assert [p.name for p in params] == ["c/weights", "c/BatchNorm/beta"]
    assert params[0].shape == (3, 3, 3, 16)
    assert params[1].shape == (16,)


def test_conv_with_bias_no_bn():
    b = NetBuilder("m", 2, (8, 8), 3)
    b.conv("c", 3, 16, bias=True, bn=False)
    assert [p.name for p in b.ir.params] == ["c/weights", "c/biases"]


def test_conv_flops_formula():
    b = NetBuilder("m", 4, (8, 8), 3)
    b.conv("c", 3, 16, bn=False, relu=False)
    node = b.ir.node("c")
    assert node.flops == 2 * 3 * 3 * 3 * 16 * 8 * 8 * 4


def test_conv_stride_changes_shape():
    b = NetBuilder("m", 1, (32, 32), 3)
    out = b.conv("c", 3, 8, stride=2)
    assert b.ir.node(out).out_shape == (16, 16, 8)


def test_asymmetric_kernel():
    b = NetBuilder("m", 1, (17, 17), 4)
    b.conv("c", (1, 7), 8, bn=False, relu=False)
    assert b.ir.node("c").params[0].shape == (1, 7, 4, 8)
    assert b.ir.node("c").out_shape == (17, 17, 8)


def test_depthwise_conv_channels_multiply():
    b = NetBuilder("m", 1, (16, 16), 3)
    out = b.depthwise_conv("dw", 7, depth_multiplier=8, stride=2,
                           bn=False, relu=False)
    assert b.ir.node(out).out_shape == (8, 8, 24)
    assert b.ir.node("dw").params[0].shape == (7, 7, 3, 8)


def test_fc_flattens_spatial_input():
    b = NetBuilder("m", 2, (4, 4), 8)
    b.fc("logits", 10)
    flat = b.ir.node("logits/flatten")
    assert flat.out_shape == (4 * 4 * 8,)
    assert b.ir.node("logits").params[0].shape == (128, 10)
    assert b.ir.node("logits").flops == 2 * 128 * 10 * 2


def test_concat_requires_matching_spatial():
    b = NetBuilder("m", 1, (8, 8), 3)
    a = b.conv("a", 3, 4)
    c = b.conv("c", 3, 4, stride=2, input="input")
    with pytest.raises(ValueError, match="spatial"):
        b.concat("cat", [a, c])


def test_concat_sums_channels():
    b = NetBuilder("m", 1, (8, 8), 3)
    a = b.conv("a", 3, 4)
    c = b.conv("c", 3, 6, input="input")
    out = b.concat("cat", [a, c])
    assert b.ir.node(out).out_shape == (8, 8, 10)


def test_add_requires_same_shape():
    b = NetBuilder("m", 1, (8, 8), 3)
    a = b.conv("a", 3, 4)
    c = b.conv("c", 3, 6, input="input")
    with pytest.raises(ValueError, match="mismatch"):
        b.add("sum", a, c)


def test_residual_add_with_relu():
    b = NetBuilder("m", 1, (8, 8), 3)
    a = b.conv("a", 3, 4)
    c = b.conv("c", 3, 4, input="input")
    out = b.add("sum", a, c, relu=True)
    assert out == "sum/Relu"


def test_global_avg_pool_collapses_spatial():
    b = NetBuilder("m", 1, (7, 7), 32)
    out = b.global_avg_pool("gap")
    assert b.ir.node(out).out_shape == (32,)


def test_batch_norm_standalone_has_beta():
    b = NetBuilder("m", 1, (8, 8), 16)
    b.batch_norm("preact", relu=True)
    assert b.ir.node("preact").params[0].shape == (16,)


def test_build_final_assertion():
    b = NetBuilder("m", 1, (8, 8), 3)
    b.conv("c", 3, 4)
    with pytest.raises(ValueError, match="final node"):
        b.build(final="something_else")
