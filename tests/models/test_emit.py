"""Graph emission: worker/canonical modes, backward mirror, invariants."""

import pytest

from repro.graph import GraphError, OpKind
from repro.models import emit_graph
from repro.models.emit import (
    CANONICAL_INFERENCE,
    CANONICAL_TRAINING,
    WORKER_INFERENCE,
    WORKER_TRAINING,
)

from ..conftest import tiny_model


@pytest.fixture(scope="module")
def ir():
    return tiny_model()


@pytest.fixture(scope="module")
def placement(ir):
    return {p.name: "ps:0" for p in ir.params}


def test_worker_inference_has_recv_per_param(ir, placement):
    res = emit_graph(ir, WORKER_INFERENCE, placement=placement)
    recvs = res.graph.recv_ops()
    assert len(recvs) == ir.n_param_tensors
    assert set(res.recv_ops) == {p.name for p in ir.params}
    assert not res.send_ops


def test_worker_recvs_are_roots_with_byte_costs(ir, placement):
    res = emit_graph(ir, WORKER_INFERENCE, placement=placement)
    sizes = {p.name: p.nbytes for p in ir.params}
    for op in res.graph.recv_ops():
        assert res.graph.in_degree(op) == 0
        assert op.cost == sizes[op.param]
        assert op.attrs["ps"] == "ps:0"


def test_worker_training_has_send_per_param(ir, placement):
    res = emit_graph(ir, WORKER_TRAINING, placement=placement)
    sends = res.graph.ops_of_kind(OpKind.SEND)
    assert len(sends) == ir.n_param_tensors
    for op in sends:
        assert res.graph.out_degree(op) == 0, "grad sends must be leaves"
        assert op.cost > 0


def test_every_param_receives_a_gradient(ir, placement):
    res = emit_graph(ir, WORKER_TRAINING, placement=placement)
    assert set(res.grad_ops) == {p.name for p in ir.params}


def test_send_depends_on_its_grad_op(ir, placement):
    res = emit_graph(ir, WORKER_TRAINING, placement=placement)
    for param, send_name in res.send_ops.items():
        preds = {p.name for p in res.graph.predecessors(send_name)}
        assert res.grad_ops[param] in preds


def test_canonical_modes_have_no_transfers(ir):
    for mode in (CANONICAL_INFERENCE, CANONICAL_TRAINING):
        res = emit_graph(ir, mode)
        assert not res.graph.recv_ops()
        assert not res.graph.ops_of_kind(OpKind.SEND)


def test_canonical_training_has_optimizer_per_param(ir):
    res = emit_graph(ir, CANONICAL_TRAINING)
    applies = [
        op for op in res.graph if op.name.endswith("/ApplyGradientDescent")
    ]
    assert len(applies) == ir.n_param_tensors


def test_worker_emission_requires_placement(ir):
    with pytest.raises(GraphError, match="placement"):
        emit_graph(ir, WORKER_INFERENCE)


def test_unknown_mode_rejected(ir):
    with pytest.raises(ValueError, match="emit mode"):
        emit_graph(ir, "serving")


def test_timing_keys_present_on_every_op(ir, placement):
    res = emit_graph(ir, WORKER_TRAINING, placement=placement)
    for op in res.graph:
        assert op.attrs["timing_key"] == op.name


def test_forward_costs_match_ir_flops(ir, placement):
    res = emit_graph(ir, WORKER_INFERENCE, placement=placement)
    conv = ir.node("conv2")
    kernel_op = res.graph.op(res.output_ops["conv2"])
    assert kernel_op.cost == conv.flops


def test_backward_mirrors_conv_with_two_backprops(ir, placement):
    res = emit_graph(ir, WORKER_TRAINING, placement=placement)
    names = {op.name for op in res.graph}
    assert "gradients/conv2/BackpropInput" in names
    assert "gradients/conv2/BackpropFilter" in names
    # grad of the conv costs as much as the forward conv, twice
    bp = res.graph.op("gradients/conv2/BackpropFilter")
    assert bp.cost == ir.node("conv2").flops


def test_training_graph_is_acyclic_and_validates(ir, placement):
    res = emit_graph(ir, WORKER_TRAINING, placement=placement)
    res.graph.validate()
    order = res.graph.topological_order()
    assert len(order) == len(res.graph)


def test_multi_consumer_forward_output_gets_addn():
    """A branchy model (residual add) must sum gradients at the fan-out."""
    from repro.models.builder import NetBuilder

    b = NetBuilder("branchy", 2, (8, 8), 3)
    trunk = b.conv("trunk", 3, 4)
    left = b.conv("left", 3, 4, input=trunk)
    b.add("join", trunk, left)
    b.fc("logits", 4)
    b.softmax("predictions")
    ir2 = b.build()
    placement2 = {p.name: "ps:0" for p in ir2.params}
    res = emit_graph(ir2, WORKER_TRAINING, placement=placement2)
    addns = [op for op in res.graph if "/AddN" in op.name]
    assert addns, "fan-out point must accumulate gradients with AddN"
