"""Trace ingestion: schema validation, generators, determinism."""

from __future__ import annotations

import dataclasses

import pytest

from repro.replay.trace import (
    JobTrace,
    SyntheticTraceSpec,
    TraceError,
    TraceGenerator,
    UnknownGeneratorError,
    generate_trace,
    get_generator,
    register_generator,
    trace_generators,
)


def job(**kw):
    base = dict(job_id="j", model="AlexNet v2", iterations=4.0)
    base.update(kw)
    return JobTrace(**base)


class TestJobTraceValidation:
    def test_valid_job(self):
        t = job(n_workers=4, n_ps=2, arrival_s=3.5)
        assert t.slots == 6

    def test_unknown_model_suggests(self):
        with pytest.raises(TraceError, match="AlexNet v2"):
            job(model="AlexNet v22")

    def test_unknown_algorithm_suggests(self):
        with pytest.raises(TraceError, match="did you mean 'tic'"):
            job(algorithm="ticc")

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_bad_arrival_rejected(self, bad):
        with pytest.raises(TraceError, match="arrival_s"):
            job(arrival_s=bad)

    def test_exactly_one_budget(self):
        with pytest.raises(TraceError, match="exactly one"):
            job(iterations=4.0, duration_s=10.0)
        with pytest.raises(TraceError, match="exactly one"):
            job(iterations=None)

    @pytest.mark.parametrize("bad", [0.0, -3.0, float("nan"), float("inf")])
    def test_bad_budget_rejected(self, bad):
        with pytest.raises(TraceError, match="budget"):
            job(iterations=bad)

    def test_duration_budget_accepted(self):
        assert job(iterations=None, duration_s=60.0).duration_s == 60.0

    def test_empty_job_id(self):
        with pytest.raises(TraceError, match="job_id"):
            job(job_id="")

    def test_nonpositive_shape(self):
        with pytest.raises(TraceError, match="positive"):
            job(n_workers=0)


class TestGeneratorRegistry:
    def test_builtins_registered(self):
        assert {"poisson", "uniform", "bursty"} <= set(trace_generators())

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownGeneratorError, match="did you mean 'poisson'"):
            get_generator("poison")

    def test_register_and_lookup(self):
        gen = TraceGenerator(
            name="_test_frontload",
            description="all jobs at t=0",
            fn=lambda u, n, h: [0.0] * n,
        )
        register_generator(gen)
        try:
            assert get_generator("_test_frontload") is gen
            spec = SyntheticTraceSpec(n_jobs=3, arrival="_test_frontload")
            assert all(t.arrival_s == 0.0 for t in generate_trace(spec))
        finally:
            trace_generators()  # registry copy unaffected by cleanup below
            from repro.replay import trace as trace_mod

            del trace_mod._GENERATORS["_test_frontload"]


class TestSyntheticSpecValidation:
    def test_unknown_arrival_process(self):
        with pytest.raises(UnknownGeneratorError, match="unknown trace generator"):
            SyntheticTraceSpec(arrival="possion")

    def test_unknown_model_in_mix(self):
        with pytest.raises(TraceError, match="unknown model"):
            SyntheticTraceSpec(models=(("NoNet", 1.0),))

    def test_bad_weight(self):
        with pytest.raises(TraceError, match="weight"):
            SyntheticTraceSpec(models=(("AlexNet v2", 0.0),))

    def test_bad_iteration_range(self):
        with pytest.raises(TraceError, match="iterations"):
            SyntheticTraceSpec(iterations=(8, 4))

    def test_bad_horizon(self):
        with pytest.raises(TraceError, match="horizon_s"):
            SyntheticTraceSpec(horizon_s=float("inf"))


class TestGenerateTrace:
    def test_deterministic_per_seed(self):
        spec = SyntheticTraceSpec(n_jobs=40)
        assert generate_trace(spec, seed=3) == generate_trace(spec, seed=3)
        assert generate_trace(spec, seed=3) != generate_trace(spec, seed=4)

    def test_sorted_arrivals_and_ids(self):
        trace = generate_trace(SyntheticTraceSpec(n_jobs=25), seed=1)
        arrivals = [t.arrival_s for t in trace]
        assert arrivals == sorted(arrivals)
        assert [t.job_id for t in trace] == [f"job-{i:04d}" for i in range(25)]

    def test_draws_respect_spec(self):
        spec = SyntheticTraceSpec(
            n_jobs=60,
            models=(("AlexNet v2", 0.5), ("Inception v1", 0.5)),
            algorithms=(("tic", 1.0),),
            workers=((2, 1.0), (4, 1.0)),
            iterations=(3, 5),
        )
        trace = generate_trace(spec, seed=0)
        assert {t.model for t in trace} == {"AlexNet v2", "Inception v1"}
        assert {t.algorithm for t in trace} == {"tic"}
        assert {t.n_workers for t in trace} == {2, 4}
        assert all(3 <= t.iterations <= 5 for t in trace)
        assert all(t.arrival_s <= spec.horizon_s for t in trace)

    @pytest.mark.parametrize("arrival", ["poisson", "uniform", "bursty"])
    def test_every_builtin_generator_yields_valid_traces(self, arrival):
        spec = SyntheticTraceSpec(n_jobs=16, arrival=arrival)
        trace = generate_trace(spec, seed=2)
        assert len(trace) == 16
        assert all(isinstance(t, JobTrace) for t in trace)

    def test_frozen(self):
        t = generate_trace(SyntheticTraceSpec(n_jobs=1), seed=0)[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            t.model = "VGG-16"
