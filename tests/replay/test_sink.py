"""Chunked sinks: commit/manifest semantics and crash-resume."""

from __future__ import annotations

import json
import os

import pytest

from repro.replay.aggregate import ReplayAggregate
from repro.replay.sink import (
    CsvChunkSink,
    ListSink,
    SinkError,
    UnknownSinkError,
    make_sink,
    sink_backends,
)

COLUMNS = ("algorithm", "job_id", "status", "jct_s", "queue_delay_s",
           "wait_s", "run_s", "finish_s", "slowdown", "slots")


def row(i, alg="mix"):
    return {
        "algorithm": alg, "job_id": f"job-{i:04d}", "status": "done",
        "jct_s": 100.0 + i, "queue_delay_s": float(i), "wait_s": float(i),
        "run_s": 90.0 + i, "finish_s": 200.0 + 10 * i,
        "slowdown": 1.0 + i / 100.0, "slots": 3,
    }


def fresh_sink(path, **kw):
    kw.setdefault("chunk_rows", 4)
    kw.setdefault("aggregate", ReplayAggregate(total_slots=16))
    return CsvChunkSink(str(path), COLUMNS, **kw)


class TestCsvChunkSink:
    def test_chunked_commits_and_manifest(self, tmp_path):
        sink = fresh_sink(tmp_path / "jobs.csv")
        for i in range(10):
            sink.append(row(i))
        info = sink.close()
        assert info["rows"] == 10
        assert info["chunks"] == 3  # 4 + 4 + final partial 2
        manifest = json.loads((tmp_path / "jobs.csv.manifest.json").read_text())
        assert manifest["rows"] == 10
        assert manifest["complete"] is True
        assert manifest["bytes"] == os.path.getsize(tmp_path / "jobs.csv")
        lines = (tmp_path / "jobs.csv").read_text().splitlines()
        assert len(lines) == 11  # header + 10 rows
        assert lines[0].split(",")[0] == "algorithm"

    def test_resume_truncates_uncommitted_tail(self, tmp_path):
        path = tmp_path / "jobs.csv"
        rows = [row(i) for i in range(11)]

        # uninterrupted reference run
        ref = fresh_sink(tmp_path / "ref.csv")
        for r in rows:
            ref.append(r)
        ref.close()

        # interrupted run: 2 chunks (8 rows) committed, 2 rows buffered
        # in an uncommitted third chunk never made it to the manifest —
        # simulate the crash by writing garbage past the committed
        # offset, as a dying process' final partial write would.
        sink = fresh_sink(path)
        for r in rows[:8]:
            sink.append(r)
        assert sink.chunks_committed == 2
        with open(path, "a") as fh:
            fh.write("partial,garbage,row")
        del sink  # no close: the manifest stays at 8 rows

        resumed = fresh_sink(path, resume=True)
        for r in rows:  # deterministic replay regenerates the stream
            resumed.append(r)
        resumed.close()

        assert path.read_bytes() == (tmp_path / "ref.csv").read_bytes()
        assert resumed.aggregate.summary_rows() == ref.aggregate.summary_rows()
        assert resumed.aggregate.state() == ref.aggregate.state()

    def test_resume_without_manifest(self, tmp_path):
        with pytest.raises(SinkError, match="no manifest"):
            fresh_sink(tmp_path / "missing.csv", resume=True)

    def test_resume_column_mismatch(self, tmp_path):
        path = tmp_path / "jobs.csv"
        fresh_sink(path).close()
        with pytest.raises(SinkError, match="columns"):
            CsvChunkSink(str(path), ("other",), resume=True)

    def test_resume_file_shorter_than_manifest(self, tmp_path):
        path = tmp_path / "jobs.csv"
        sink = fresh_sink(path)
        for i in range(8):
            sink.append(row(i))
        sink.close()
        path.write_text("gone")
        with pytest.raises(SinkError, match="shorter"):
            fresh_sink(path, resume=True)

    def test_diverged_resume_refuses_close(self, tmp_path):
        path = tmp_path / "jobs.csv"
        sink = fresh_sink(path)
        for i in range(8):
            sink.append(row(i))
        sink.close()
        resumed = fresh_sink(path, resume=True)
        resumed.append(row(0))  # only 1 of the 8 committed rows replayed
        with pytest.raises(SinkError, match="diverged"):
            resumed.close()

    def test_resume_restores_aggregate_from_manifest(self, tmp_path):
        path = tmp_path / "jobs.csv"
        sink = fresh_sink(path)
        for i in range(4):
            sink.append(row(i))
        sink.close()
        resumed = CsvChunkSink(str(path), COLUMNS, resume=True)
        assert resumed.aggregate is not None
        (summary,) = resumed.aggregate.summary_rows()
        assert summary["jobs"] == 4
        for i in range(4):
            resumed.append(row(i))
        resumed.close()

    def test_bad_chunk_rows(self, tmp_path):
        with pytest.raises(SinkError, match="chunk_rows"):
            fresh_sink(tmp_path / "jobs.csv", chunk_rows=0)


class TestListSink:
    def test_collects_and_aggregates(self):
        sink = ListSink(aggregate=ReplayAggregate(total_slots=16))
        sink.append(row(0))
        sink.append(row(1))
        assert len(sink.rows) == 2
        assert sink.aggregate.summary_rows()[0]["jobs"] == 2
        assert sink.close()["rows"] == 2


class TestMakeSink:
    def test_backends(self):
        assert set(sink_backends()) == {"csv", "parquet"}

    def test_unknown_backend_suggests(self):
        with pytest.raises(UnknownSinkError, match="did you mean 'csv'"):
            make_sink("cvs", "x.csv", COLUMNS)

    def test_csv_roundtrip(self, tmp_path):
        sink = make_sink("csv", str(tmp_path / "jobs.csv"), COLUMNS)
        sink.append(row(0))
        assert sink.close()["rows"] == 1

    def test_parquet_gated_without_pyarrow(self, tmp_path):
        try:
            import pyarrow  # noqa: F401

            pytest.skip("pyarrow installed: the gate does not trip")
        except ImportError:
            pass
        with pytest.raises(SinkError, match="pyarrow"):
            make_sink("parquet", str(tmp_path / "jobs.parquet"), COLUMNS)

    def test_parquet_never_resumes(self, tmp_path):
        try:
            import pyarrow  # noqa: F401
        except ImportError:
            pytest.skip("needs pyarrow to reach the resume gate")
        with pytest.raises(SinkError, match="resume"):
            make_sink(
                "parquet", str(tmp_path / "jobs.parquet"), COLUMNS,
                resume=True,
            )
