"""The epoch replay scheduler: admission, departures, determinism.

Every test drives tiny traces (a handful of 3-slot AlexNet jobs) so a
composition simulation costs a fraction of a second; the shared
module-scoped runner lets compositions memoize across tests.
"""

from __future__ import annotations

import pytest

from repro.replay.admission import AdmissionPolicy, register_admission
from repro.replay.aggregate import ReplayAggregate
from repro.replay.engine import (
    JOB_COLUMNS,
    ReplayCluster,
    ReplayError,
    replay,
)
from repro.replay.sink import ListSink
from repro.replay.trace import JobTrace
from repro.sim import SimConfig
from repro.sweep import SweepRunner

CFG = SimConfig(seed=0)


@pytest.fixture(scope="module")
def runner():
    with SweepRunner(jobs=1) as r:
        yield r


def jt(i, arrival=0.0, iterations=2.0, model="AlexNet v2", workers=2,
       algorithm="tic", **kw):
    return JobTrace(
        job_id=f"job-{i:04d}", model=model, n_workers=workers,
        algorithm=algorithm, arrival_s=arrival, iterations=iterations, **kw
    )


def run(traces, runner, cluster=None, **kw):
    cluster = cluster or ReplayCluster(n_hosts=4, slots_per_host=2)
    sink = ListSink(aggregate=ReplayAggregate(cluster.total_slots))
    kw.setdefault("config", CFG)
    result = replay(traces, cluster, runner=runner, sink=sink, **kw)
    return result, sink


class TestClusterValidation:
    def test_unknown_placement_suggests(self):
        with pytest.raises(KeyError, match="packed"):
            ReplayCluster(placement="packedd")

    def test_unknown_platform(self):
        with pytest.raises(ReplayError, match="platform"):
            ReplayCluster(platform="envZ")

    def test_bad_shape(self):
        with pytest.raises(ReplayError, match="positive"):
            ReplayCluster(n_hosts=0)

    def test_total_slots(self):
        assert ReplayCluster(n_hosts=4, slots_per_host=2).total_slots == 8


class TestReplaySemantics:
    def test_all_jobs_complete_with_consistent_rows(self, runner):
        traces = [jt(i, arrival=30.0 * i) for i in range(4)]
        result, sink = run(traces, runner)
        assert result.done == 4
        assert result.quarantined == []
        assert len(sink.rows) == 4
        for row in sink.rows:
            assert set(row) == set(JOB_COLUMNS)
            assert row["status"] == "done"
            assert row["admit_s"] >= row["arrival_s"]
            assert row["finish_s"] > row["admit_s"]
            assert row["jct_s"] == pytest.approx(
                row["finish_s"] - row["arrival_s"], abs=1e-5
            )
            assert row["queue_delay_s"] == pytest.approx(
                row["admit_s"] - row["arrival_s"], abs=1e-5
            )
        finishes = [r["finish_s"] for r in sink.rows]
        assert result.makespan_s == pytest.approx(max(finishes), abs=1e-5)

    def test_capacity_forces_queueing(self, runner):
        # 8 slots, 3-slot jobs, all arriving at t=0: at most 2 run at
        # once, so the third job must wait for a departure.
        traces = [jt(i) for i in range(3)]
        result, sink = run(traces, runner)
        delays = sorted(r["queue_delay_s"] for r in sink.rows)
        assert delays[0] == 0.0 and delays[1] == 0.0
        assert delays[2] > 0.0
        assert result.queued == 1
        assert result.queue_peak >= 1

    def test_contention_slows_coscheduled_jobs(self, runner):
        # two 3-slot jobs packed onto 3 two-slot hosts must share the
        # middle host's NICs: at least one runs slower than dedicated
        traces = [jt(0), jt(1)]
        _, sink = run(
            traces, runner, cluster=ReplayCluster(n_hosts=3, slots_per_host=2)
        )
        slowdowns = [r["slowdown"] for r in sink.rows]
        # scheduling jitter can nudge one job fractionally below 1.0;
        # contention must still slow at least one of them measurably
        assert all(s > 0.99 for s in slowdowns)
        assert max(slowdowns) > 1.0

    def test_oversized_job_quarantined(self, runner):
        traces = [jt(0), jt(1, workers=20)]
        result, sink = run(traces, runner)
        assert result.done == 1
        assert [j for j, _ in result.quarantined] == ["job-0001"]
        statuses = {r["job_id"]: r["status"] for r in sink.rows}
        assert statuses == {"job-0000": "done", "job-0001": "quarantined"}

    def test_duration_budget_converted(self, runner):
        # a duration budget runs ~duration seconds uncontended
        traces = [jt(0, iterations=None, duration_s=40.0)]
        _, sink = run(traces, runner)
        (row,) = sink.rows
        assert row["iterations"] > 0
        assert row["run_s"] == pytest.approx(40.0, rel=0.35)

    def test_uniform_mode_overrides_job_algorithms(self, runner):
        traces = [jt(0, algorithm="tic"), jt(1, algorithm="tac")]
        _, sink = run(traces, runner, algorithm="baseline")
        assert {r["job_algorithm"] for r in sink.rows} == {"baseline"}
        assert {r["algorithm"] for r in sink.rows} == {"baseline"}

    def test_mix_mode_keeps_job_algorithms(self, runner):
        traces = [jt(0, algorithm="tic"), jt(1, algorithm="tac")]
        _, sink = run(traces, runner, algorithm="mix")
        assert {r["job_algorithm"] for r in sink.rows} == {"tic", "tac"}

    def test_backfill_slips_around_blocked_head(self, runner):
        # 8 slots: a 5-slot job runs; a second 5-slot job blocks the
        # fifo queue head while a 3-slot job behind it would fit.
        traces = [
            jt(0, workers=4),
            jt(1, arrival=1.0, workers=4),
            jt(2, arrival=2.0, workers=2),
        ]
        _, fifo_sink = run(traces, runner, admission="fifo")
        _, bf_sink = run(traces, runner, admission="backfill")
        fifo = {r["job_id"]: r["queue_delay_s"] for r in fifo_sink.rows}
        backfill = {r["job_id"]: r["queue_delay_s"] for r in bf_sink.rows}
        assert fifo["job-0002"] > 0.0
        assert backfill["job-0002"] == 0.0

    def test_stalled_policy_raises(self, runner):
        register_admission(
            AdmissionPolicy("_test_never", "admits nothing", lambda s, f: [])
        )
        try:
            with pytest.raises(ReplayError, match="stalled"):
                run([jt(0)], runner, admission="_test_never")
        finally:
            from repro.replay import admission as admission_mod

            del admission_mod._ADMISSIONS["_test_never"]

    def test_overcommitting_policy_raises(self, runner):
        register_admission(AdmissionPolicy(
            "_test_greedy", "ignores capacity",
            lambda s, f: list(range(len(s))),
        ))
        try:
            with pytest.raises(ReplayError, match="free"):
                run([jt(i) for i in range(4)], runner,
                    admission="_test_greedy")
        finally:
            from repro.replay import admission as admission_mod

            del admission_mod._ADMISSIONS["_test_greedy"]

    def test_telemetry_counters(self, runner):
        before = runner.telemetry.as_dict()
        result, _ = run([jt(i) for i in range(3)], runner)
        delta = runner.telemetry.delta_since(before)
        assert delta["replay_jobs_admitted"] == 3
        assert delta["replay_jobs_done"] == 3
        assert delta["replay_epochs"] == result.epochs


class TestDeterminism:
    def test_serial_equals_two_workers(self):
        traces = [jt(i, arrival=20.0 * i) for i in range(4)]
        rows = []
        for jobs in (1, 2):
            with SweepRunner(jobs=jobs) as r:
                _, sink = run(traces, r)
                rows.append(sink.rows)
        assert rows[0] == rows[1]

    def test_same_inputs_same_rows(self, runner):
        traces = [jt(i, arrival=25.0 * i) for i in range(3)]
        _, first = run(traces, runner)
        _, second = run(traces, runner)
        assert first.rows == second.rows

    def test_compositions_memoized(self, runner):
        # 4 identical jobs arriving together: the (2-job) steady-state
        # composition appears repeatedly but is simulated once.
        traces = [jt(i) for i in range(4)]
        result, _ = run(traces, runner)
        assert result.epochs > result.compositions
