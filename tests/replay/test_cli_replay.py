"""``tictac-repro replay``: end-to-end CLI runs + SIGKILL crash-resume.

The crash-resume test is the subsystem's acceptance scenario (ISSUE 10
satellite): a replay killed mid-stream by SIGKILL (the
``REPRO_REPLAY_CRASH_AFTER_CHUNKS`` sink hook, the same crash shape the
sweep-resilience suite injects into pool workers) and resumed with
``--resume`` must leave the per-job CSV **and** the aggregated summary
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys

import pytest

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def run_cli(args, cwd, env_extra=None, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_SCALE", None)
    env.pop("REPRO_JOBS", None)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "replay", *args],
        cwd=cwd, env=env, capture_output=True, text=True,
    )
    if check:
        assert proc.returncode == 0, proc.stderr
    return proc


SMALL = ["--n-jobs", "6", "--horizon-s", "400", "--n-hosts", "4",
         "--chunk-rows", "2", "--quiet"]


class TestReplayCli:
    def test_end_to_end_synthetic(self, tmp_path):
        run_cli([*SMALL, "--results-dir", "out"], tmp_path)
        jobs = (tmp_path / "out" / "replay_jobs.csv").read_bytes()
        assert jobs.count(b"\r\n") == 7  # header + 6 job rows
        summary = (tmp_path / "out" / "replay.csv").read_text()
        assert "mean_jct_s" in summary and "mix" in summary

    def test_unknown_arrival_suggests(self, tmp_path):
        proc = run_cli(
            [*SMALL, "--arrival", "poison"], tmp_path, check=False
        )
        assert proc.returncode == 2
        assert "did you mean 'poisson'" in proc.stderr

    def test_unknown_admission_suggests(self, tmp_path):
        proc = run_cli(
            [*SMALL, "--admission", "fifi"], tmp_path, check=False
        )
        assert proc.returncode == 2
        assert "did you mean 'fifo'" in proc.stderr

    def test_unknown_sink_suggests(self, tmp_path):
        proc = run_cli([*SMALL, "--sink", "cvs"], tmp_path, check=False)
        assert proc.returncode == 2
        assert "did you mean 'csv'" in proc.stderr

    def test_resume_without_prior_run_fails(self, tmp_path):
        proc = run_cli([*SMALL, "--resume"], tmp_path, check=False)
        assert proc.returncode == 2
        assert "no manifest" in proc.stderr


class TestCrashResume:
    @pytest.mark.slow
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        """Kill the replay right after its second committed chunk, then
        resume: final jobs CSV and aggregated summary are byte-identical
        to an uninterrupted run of the same seed."""
        args = [*SMALL, "--results-dir", "out"]

        # uninterrupted reference (separate directory, separate cache)
        run_cli([*SMALL, "--results-dir", "ref"], tmp_path)

        crashed = run_cli(
            args, tmp_path,
            env_extra={"REPRO_REPLAY_CRASH_AFTER_CHUNKS": "2"},
            check=False,
        )
        assert crashed.returncode == -signal.SIGKILL
        out = tmp_path / "out"
        assert (out / "replay_jobs.csv.manifest.json").exists()
        assert not (out / "replay.csv").exists()  # died before summary

        run_cli([*args, "--resume"], tmp_path)

        ref = tmp_path / "ref"
        assert (out / "replay_jobs.csv").read_bytes() == (
            ref / "replay_jobs.csv"
        ).read_bytes()
        assert (out / "replay.csv").read_bytes() == (
            ref / "replay.csv"
        ).read_bytes()
