"""The Alibaba-style CSV trace loader."""

from __future__ import annotations

import pytest

from repro.replay.loader import DEFAULT_MODEL_MIX, load_alibaba_csv
from repro.replay.trace import TraceError


def write(tmp_path, text, name="trace.csv"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


GOOD = """job_name,start_time,end_time,inst_num,status
b,1100,1400,4,Terminated
a,1000,1250,2,Terminated
c,1200,1300,99,Terminated
failed,1300,1500,2,Failed
backwards,1400,1100,2,Terminated
"""


class TestLoadAlibabaCsv:
    def test_rebased_sorted_and_filtered(self, tmp_path):
        trace = load_alibaba_csv(write(tmp_path, GOOD))
        assert [t.job_id for t in trace] == ["a", "b", "c"]
        assert [t.arrival_s for t in trace] == [0.0, 100.0, 200.0]
        assert [t.duration_s for t in trace] == [250.0, 300.0, 100.0]
        assert all(t.iterations is None for t in trace)

    def test_workers_clamped(self, tmp_path):
        trace = load_alibaba_csv(write(tmp_path, GOOD), workers_cap=8)
        assert [t.n_workers for t in trace] == [2, 4, 8]

    def test_model_round_robin(self, tmp_path):
        trace = load_alibaba_csv(write(tmp_path, GOOD))
        assert [t.model for t in trace] == list(DEFAULT_MODEL_MIX)

    def test_model_column_wins(self, tmp_path):
        text = (
            "job_name,start_time,end_time,model\n"
            "a,0,10,VGG-16\n"
        )
        trace = load_alibaba_csv(write(tmp_path, text))
        assert trace[0].model == "VGG-16"

    def test_limit(self, tmp_path):
        trace = load_alibaba_csv(write(tmp_path, GOOD), limit=2)
        assert [t.job_id for t in trace] == ["a", "b"]

    def test_missing_column_suggests(self, tmp_path):
        text = "job_name,start_tim,end_time\na,0,10\n"
        with pytest.raises(TraceError, match="did you mean 'start_tim'"):
            load_alibaba_csv(write(tmp_path, text))

    def test_no_usable_rows(self, tmp_path):
        text = "job_name,start_time,end_time,status\na,0,10,Failed\n"
        with pytest.raises(TraceError, match="no usable"):
            load_alibaba_csv(write(tmp_path, text))

    def test_unparsable_timestamps_skipped(self, tmp_path):
        text = (
            "job_name,start_time,end_time\n"
            "bad,zero,ten\n"
            "good,0,10\n"
        )
        trace = load_alibaba_csv(write(tmp_path, text))
        assert [t.job_id for t in trace] == ["good"]
