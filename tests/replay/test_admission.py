"""Admission policies: fifo vs backfill semantics + registry errors."""

from __future__ import annotations

import pytest

from repro.replay.admission import (
    AdmissionPolicy,
    UnknownAdmissionError,
    admission_policies,
    get_admission,
    register_admission,
)


class TestRegistry:
    def test_builtins(self):
        assert {"fifo", "backfill"} <= set(admission_policies())

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownAdmissionError, match="did you mean 'fifo'"):
            get_admission("fifi")

    def test_register_custom(self):
        policy = AdmissionPolicy("_test_none", "admits nothing", lambda s, f: [])
        register_admission(policy)
        try:
            assert get_admission("_test_none") is policy
        finally:
            from repro.replay import admission as admission_mod

            del admission_mod._ADMISSIONS["_test_none"]


class TestFifo:
    def test_prefix_admitted(self):
        fifo = get_admission("fifo").fn
        assert fifo([3, 3, 3], 16) == [0, 1, 2]
        assert fifo([3, 3, 3], 7) == [0, 1]

    def test_head_of_line_blocking(self):
        fifo = get_admission("fifo").fn
        # the 5-slot head does not fit -> nothing behind it may pass
        assert fifo([5, 3, 3], 4) == []

    def test_empty_queue(self):
        assert get_admission("fifo").fn([], 16) == []


class TestBackfill:
    def test_slips_around_blocked_head(self):
        backfill = get_admission("backfill").fn
        assert backfill([5, 3, 3], 4) == [1]
        assert backfill([5, 3, 3], 7) == [0]
        assert backfill([5, 3, 3], 8) == [0, 1]
        assert backfill([5, 3, 2], 4) == [1]  # first fit, not best fit

    def test_fifo_when_everything_fits(self):
        backfill = get_admission("backfill").fn
        assert backfill([3, 3, 3], 16) == [0, 1, 2]

    def test_respects_capacity(self):
        backfill = get_admission("backfill").fn
        picks = backfill([4, 4, 4, 4], 9)
        assert sum(4 for _ in picks) <= 9
