"""Streaming aggregation: P² quantiles + the replay summary."""

from __future__ import annotations

import json
import math

import pytest

from repro.replay.aggregate import P2Quantile, ReplayAggregate


def lcg(seed=1):
    """Tiny deterministic uniform stream (no numpy needed here)."""
    state = seed
    while True:
        state = (1103515245 * state + 12345) % (1 << 31)
        yield state / (1 << 31)


class TestP2Quantile:
    def test_exact_below_five(self):
        est = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            est.add(x)
        assert est.value() == 3.0

    def test_empty(self):
        assert P2Quantile(0.9).value() == 0.0

    def test_bad_q(self):
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_tracks_true_quantile(self, q):
        stream = lcg(7)
        xs = [next(stream) * 100.0 for _ in range(5000)]
        est = P2Quantile(q)
        for x in xs:
            est.add(x)
        true = sorted(xs)[int(q * (len(xs) - 1))]
        # P^2 is an estimator: a few percent of the value range is the
        # documented accuracy regime at this sample size.
        assert abs(est.value() - true) < 2.5

    def test_state_roundtrip_is_exact(self):
        stream = lcg(3)
        xs = [next(stream) * 10.0 for _ in range(200)]
        full = P2Quantile(0.95)
        for x in xs:
            full.add(x)
        # interrupt after 120 observations, persist through JSON, resume
        resumed = P2Quantile(0.95)
        for x in xs[:120]:
            resumed.add(x)
        resumed = P2Quantile.from_state(
            json.loads(json.dumps(resumed.state()))
        )
        for x in xs[120:]:
            resumed.add(x)
        assert resumed.value() == full.value()
        assert resumed.state() == full.state()


def done_row(alg="mix", jct=100.0, queue=5.0, wait=6.0, run=95.0,
             finish=200.0, slowdown=1.1, slots=3):
    return {
        "algorithm": alg, "status": "done", "jct_s": jct,
        "queue_delay_s": queue, "wait_s": wait, "run_s": run,
        "finish_s": finish, "slowdown": slowdown, "slots": slots,
    }


class TestReplayAggregate:
    def test_summary_math(self):
        agg = ReplayAggregate(total_slots=16)
        agg.observe(done_row(jct=100.0, run=90.0, finish=100.0))
        agg.observe(done_row(jct=200.0, run=110.0, finish=250.0))
        agg.observe({"algorithm": "mix", "status": "quarantined"})
        (row,) = agg.summary_rows()
        assert row["algorithm"] == "mix"
        assert row["jobs"] == 2
        assert row["quarantined"] == 1
        assert row["makespan_s"] == 250.0
        assert row["mean_jct_s"] == 150.0
        assert row["p50_jct_s"] == 150.0
        assert row["utilization"] == round(
            (90.0 + 110.0) * 3 / (250.0 * 16), 4
        )

    def test_groups_sorted(self):
        agg = ReplayAggregate(total_slots=4)
        agg.observe(done_row(alg="tic"))
        agg.observe(done_row(alg="baseline"))
        assert [r["algorithm"] for r in agg.summary_rows()] == [
            "baseline", "tic",
        ]

    def test_jain_fairness_unfair_mix(self):
        agg = ReplayAggregate(total_slots=4)
        agg.observe(done_row(slowdown=1.0))
        agg.observe(done_row(slowdown=3.0))
        (row,) = agg.summary_rows()
        assert row["jain_fairness"] == round(16.0 / (2 * 10.0), 4)

    def test_state_roundtrip_is_exact(self):
        stream = lcg(11)
        rows = [
            done_row(
                alg=("tic", "tac")[int(next(stream) * 2)],
                jct=next(stream) * 500.0,
                run=next(stream) * 400.0,
                finish=next(stream) * 5000.0,
                slowdown=1.0 + next(stream),
            )
            for _ in range(300)
        ]
        full = ReplayAggregate(total_slots=16)
        for r in rows:
            full.observe(r)
        resumed = ReplayAggregate(total_slots=16)
        for r in rows[:170]:
            resumed.observe(r)
        resumed = ReplayAggregate.from_state(
            json.loads(json.dumps(resumed.state()))
        )
        for r in rows[170:]:
            resumed.observe(r)
        assert resumed.summary_rows() == full.summary_rows()
        assert resumed.state() == full.state()

    def test_bad_total_slots(self):
        with pytest.raises(ValueError):
            ReplayAggregate(total_slots=0)
