"""Golden parity: ``Session.run`` reproduces the committed results CSVs
byte-for-byte for a quick-scale subset (the full set is verified by
``tictac-repro all --quick`` against ``results/`` — same engine, same
registry path)."""

from pathlib import Path

import pytest

from repro.api import Session

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_DIR = REPO_ROOT / "results"

#: Cheap quick-scale scenarios whose committed CSVs we replay exactly.
PARITY = (
    ("table1", "table1_models"),
    ("stragglers", "straggler_decomposition"),
    ("pipelining", "pipelining_ablation"),
)


@pytest.fixture(scope="module")
def quick_session(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("golden")
    with Session(
        scale="quick", results_dir=str(tmp), cache=False, verbose=False
    ) as session:
        yield session


@pytest.mark.parametrize("name,output", PARITY)
def test_session_reproduces_committed_csv(quick_session, name, output):
    golden = GOLDEN_DIR / f"{output}.csv"
    assert golden.exists(), f"committed golden CSV missing: {golden}"
    rs = quick_session.run(name)
    paths = rs.to_csv(quick_session.results_dir)
    regenerated = Path(paths[output]).read_bytes()
    assert regenerated == golden.read_bytes(), (
        f"{output}.csv is no longer byte-identical through the scenario "
        f"path; if an engine/scenario change is intentional, regenerate "
        f"results/ with `tictac-repro all --quick --rerun`"
    )
