"""Job-mix scenarios: registry integration, metrics, acceptance bars."""

from __future__ import annotations

import os

import pytest

from repro.api import JobMixScenario, execute_scenario, scenario
from repro.api.jobmix_scenarios import CONTENTION_MIX, CROSSTALK_MIX, _jain
from repro.experiments import Context, Scale
from repro.sim import JobSpec

MICRO = Scale(
    name="micro",
    models=("AlexNet v2",),
    worker_counts=(2,),
    ps_counts=(1,),
    iterations=2,
    warmup=1,
    consistency_runs=12,
    loss_iterations=20,
)


@pytest.fixture
def ctx(tmp_path):
    return Context(scale=MICRO, results_dir=str(tmp_path), verbose=False)


def test_jain_index_bounds():
    assert _jain([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert _jain([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
    assert _jain([]) == 1.0


def test_jobmix_scenario_helper_surface():
    assert CONTENTION_MIX.all_placements() == ("dedicated", "packed", "spread")
    assert CONTENTION_MIX.hosts_used("dedicated") == 6
    assert CONTENTION_MIX.hosts_used("packed") == 3
    assert CONTENTION_MIX.hosts_used("spread") == 6
    cells = CONTENTION_MIX.cells(None)
    assert len(cells) == 3  # one algorithm x three placements
    assert {c.spec.placement for c in cells} == {"dedicated", "packed", "spread"}


def test_contention_scenario_meets_acceptance_bar(ctx):
    """The PR's acceptance criterion: the contended (packed) makespan
    strictly exceeds each job's dedicated makespan on the contention
    platform, and the CSVs carry per-job JCT/slowdown + fairness."""
    out = execute_scenario(ctx, "jobmix_contention")
    rows = out.rows
    summary = out.tables["jobmix_contention_summary"]

    by_pl = {r["placement"]: r for r in summary}
    packed = by_pl["packed"]
    # strict domination of every job's dedicated completion
    for r in rows:
        if r["placement"] == "dedicated":
            dedicated_finish = r["dedicated_jct_s"] + r["arrival_s"]
            assert packed["makespan_s"] > dedicated_finish
    # the late arrival is the one paying the contention tax
    packed_rows = {r["job"]: r for r in rows if r["placement"] == "packed"}
    assert packed_rows["j1"]["slowdown"] > 1.02
    # spread (one host per device) recovers dedicated behaviour
    assert by_pl["spread"]["stretch"] == pytest.approx(1.0, abs=0.01)
    assert by_pl["dedicated"]["stretch"] == 1.0
    for r in summary:
        assert 1.0 / len(CONTENTION_MIX.jobs) <= r["jain_fairness"] <= 1.0

    paths = out.save(ctx.results_dir)
    assert os.path.exists(paths["jobmix_contention"])
    assert os.path.exists(paths["jobmix_contention_summary"])
    assert out.extras["summary_csv"] == paths["jobmix_contention_summary"]


def test_crosstalk_scenario_scheduling_survives_contention(ctx):
    out = execute_scenario(ctx, "jobmix_crosstalk")
    rows = {(r["algorithm"], r["placement"], r["job"]): r for r in out.rows}
    # per-job dispatch ("mix") ran alongside the uniform algorithms
    assert ("mix", "packed", "j0") in rows
    # scheduling beats no scheduling for the big job even while contended
    assert (
        rows[("tic", "packed", "j0")]["jct_s"]
        < rows[("baseline", "packed", "j0")]["jct_s"]
    )
    # dedicated rows are the slowdown denominator: exactly 1.0
    for (alg, placement, job), r in rows.items():
        if placement == "dedicated":
            assert r["slowdown"] == 1.0


def test_scenario_registry_lists_jobmix_entries():
    sc = scenario("jobmix_contention")
    assert sc.backends == ("jobmix",)
    assert sc.analyze == "jobmix"
    assert "jobmix" in sc.tags
    assert dict(scenario("jobmix_crosstalk").params)["mix"] is CROSSTALK_MIX


def test_custom_mix_through_generic_analysis(ctx):
    """A user-defined mix binds through the same scenario machinery."""
    custom = JobMixScenario(
        jobs=(
            JobSpec("AlexNet v2", n_workers=2, n_ps=1),
            JobSpec("AlexNet v2", n_workers=2, n_ps=1, arrival=6.0),
        ),
        placements=("rack_aware",),
        platform="envC",
        algorithms=("baseline",),
        n_hosts=8,
    )
    out = execute_scenario(ctx, "jobmix_contention", mix=custom)
    assert {r["placement"] for r in out.rows} == {"dedicated", "rack_aware"}


def test_cli_list_shows_placements_and_jobmix(capsys):
    from repro.experiments.cli import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "placement policies" in out
    for name in ("dedicated", "packed", "spread", "rack_aware"):
        assert name in out
    assert "jobmix_contention" in out and "jobmix_crosstalk" in out
