"""The Session/Scenario facade: validation, registry, execution, results."""

import csv

import pytest

from repro.api import (
    Grid,
    Scenario,
    ScenarioError,
    Session,
    UnknownScenarioError,
    execute_scenario,
    register_analysis,
    scenario,
    scenario_names,
)
from repro.api.context import Context, Scale
from repro.sim.engine import ENGINE_REV
from repro.sim.kernel import KERNELS

MICRO = Scale(
    name="micro",
    models=("AlexNet v2",),
    worker_counts=(2,),
    ps_counts=(1,),
    iterations=2,
    warmup=0,
    consistency_runs=8,
    loss_iterations=10,
)


@pytest.fixture
def ctx(tmp_path):
    return Context(scale=MICRO, results_dir=str(tmp_path), verbose=False)


# ----------------------------------------------------------------------
# Scenario validation (construction fails fast, names spelled out)
# ----------------------------------------------------------------------

def test_scenario_rejects_unknown_backend():
    with pytest.raises(ScenarioError, match="unknown communication backend"):
        Scenario(name="x", title="x", output="x", analyze="table1",
                 backends=("carrier-pigeon",))


def test_scenario_rejects_unknown_platform():
    with pytest.raises(ScenarioError, match="unknown platform"):
        Scenario(name="x", title="x", output="x", analyze="table1",
                 platforms=("envZ",))


def test_scenario_rejects_unknown_model():
    with pytest.raises(ScenarioError, match="unknown model"):
        Scenario(name="x", title="x", output="x", analyze="table1",
                 models=("SkyNet v1",))


def test_scenario_rejects_unknown_algorithm():
    with pytest.raises(ScenarioError, match="unknown algorithm"):
        Scenario(name="x", title="x", output="x", analyze="table1",
                 algorithms=("chaos",))


def test_scenario_rejects_unregistered_analysis():
    with pytest.raises(ScenarioError, match="unregistered analysis"):
        Scenario(name="x", title="x", output="x", analyze="no-such-callback")


def test_grid_rejects_undeclared_param_reference():
    with pytest.raises(ScenarioError, match="does not declare"):
        Scenario(
            name="x", title="x", output="x", analyze="table1",
            grid=Grid(algorithms=("$algorithm",)),  # no params declared
        )


def test_scenario_rejects_unaliased_extras_table():
    with pytest.raises(ScenarioError, match="undeclared table"):
        Scenario(
            name="x", title="x", output="x", analyze="table1",
            extras_csv=(("foo_csv", "not-declared"),),
        )


def test_bind_rejects_unknown_override():
    sc = scenario("fig7")
    with pytest.raises(ScenarioError, match="accepts no parameter"):
        sc.bind(warp=9)


def test_bind_validates_model_and_algorithm_values():
    with pytest.raises(ScenarioError, match="unknown model"):
        scenario("fig12").bind(model="SkyNet v1")
    with pytest.raises(ScenarioError, match="unknown algorithm"):
        scenario("fig7").bind(algorithm="chaos")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_covers_every_table_and_figure():
    names = scenario_names()
    assert names == (
        "table1", "motivation", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12", "fig13", "headline", "ablations", "stragglers",
        "fault_resilience", "pipelining", "allreduce", "jobmix_contention",
        "jobmix_crosstalk", "jobmix_starvation", "cluster_day",
    )


def test_unknown_scenario_suggests_near_matches():
    with pytest.raises(UnknownScenarioError) as exc:
        scenario("fig77")
    assert "did you mean" in str(exc.value)
    assert "fig7" in str(exc.value)


def test_register_scenario_makes_it_runnable(ctx):
    @register_analysis("_test_tiny")
    def _tiny(run):
        from repro.api import Report

        return Report(rows=[{"p": run.param("p")}], text="tiny")

    sc = Scenario(
        name="_test_tiny", title="t", output="_test_tiny",
        analyze="_test_tiny", backends=(), platforms=(), models=(),
        params=(("p", 1),),
    )
    out = execute_scenario(ctx, sc, p=7)
    assert out.rows == [{"p": 7}]


# ----------------------------------------------------------------------
# Grid resolution mirrors the legacy drivers exactly
# ----------------------------------------------------------------------

def test_fig7_grid_resolution_matches_legacy_gridspec(ctx):
    from repro.api.scenarios import FIG7_GRID
    from repro.sweep import GridSpec

    sc = scenario("fig7")
    cells = sc.grid.resolve(ctx.scale, sc.bind(), ctx.sim_config)
    # the grid the deleted fig7 driver built, spelled out
    legacy = GridSpec(
        models=ctx.scale.models,
        workloads=FIG7_GRID.workloads,
        worker_counts=ctx.scale.worker_counts,
        ps_from_workers=True,
        algorithms=("tic",),
        platforms=FIG7_GRID.platforms,
    ).cells(ctx.sim_config())
    assert cells == legacy


def test_fig9_quick_clamp_only_applies_at_quick_scale():
    from repro.api.context import QUICK

    sc = scenario("fig9")
    quick_cells = sc.grid.resolve(QUICK, sc.bind(), lambda **kw: None)
    assert {c.spec.n_workers for c in quick_cells} == {8}
    micro_cells = sc.grid.resolve(MICRO, sc.bind(), lambda **kw: None)
    assert {c.spec.n_workers for c in micro_cells} == {8}  # 'micro' != 'quick'
    quick_16 = sc.grid.resolve(QUICK, sc.bind(n_workers=16), lambda **kw: None)
    assert {c.spec.n_workers for c in quick_16} == {8}  # clamped


# ----------------------------------------------------------------------
# ResultSet: schema, round-trip, provenance
# ----------------------------------------------------------------------

def test_resultset_schema_and_table(ctx):
    out = execute_scenario(ctx, "table1")
    assert out.schema[:2] == ("model", "params")
    assert "params_paper" in out.to_table()
    assert len(out) == len(out.rows)


def test_resultset_csv_round_trip(ctx, tmp_path):
    out = execute_scenario(ctx, "table1")
    paths = out.to_csv(str(tmp_path))
    with open(paths[out.name], newline="") as fh:
        reread = list(csv.DictReader(fh))
    # DictWriter stringifies values; the round trip must preserve every
    # cell and the column order exactly.
    expected = [{k: str(v) for k, v in row.items()} for row in out.rows]
    assert reread == expected
    assert tuple(reread[0].keys()) == out.schema


def test_resultset_aux_tables_and_save_aliases(ctx, tmp_path):
    import os

    out = execute_scenario(ctx, "allreduce")
    assert set(out.tables) == {"allreduce_wire_check", "allreduce_vs_ps"}
    assert out.table_names()[0] == "allreduce_comparison"
    with pytest.raises(KeyError, match="no table"):
        out.to_table("nope")
    paths = out.save(str(tmp_path))
    assert os.path.exists(out.extras["wire_check_csv"])
    assert out.extras["vs_ps_csv"] == paths["allreduce_vs_ps"]


def test_resultset_frame_is_columnar(ctx):
    out = execute_scenario(ctx, "table1")
    frame = out.frame()
    # no pandas in the test environment -> plain columnar dict
    assert isinstance(frame, dict)
    assert list(frame) == list(out.schema)
    assert len(frame["model"]) == len(out.rows)


def test_provenance_fields(ctx):
    out = execute_scenario(ctx, "stragglers")
    prov = out.provenance
    assert prov.scenario == "stragglers"
    assert prov.scale == "micro"
    assert prov.seed == 0 and prov.jobs == 1
    assert prov.engine_rev == ENGINE_REV
    assert prov.kernel in KERNELS and prov.kernel != "auto"
    assert prov.elapsed_s > 0
    assert set(prov.cache) == {"hits", "misses", "writes"}
    assert prov.cache["misses"] > 0  # cold cache: everything simulated
    d = prov.as_dict()
    assert d["scenario"] == "stragglers" and d["engine_rev"] == ENGINE_REV


def test_provenance_reports_cache_hits_on_rerun(tmp_path):
    ctx = Context(scale=MICRO, results_dir=str(tmp_path), verbose=False)
    cold = execute_scenario(ctx, "stragglers")
    warm = execute_scenario(ctx, "stragglers")
    assert cold.provenance.cache["misses"] > 0
    assert warm.provenance.cache["misses"] == 0
    assert warm.provenance.cache["hits"] > 0
    assert warm.rows == cold.rows


# ----------------------------------------------------------------------
# Session lifecycle
# ----------------------------------------------------------------------

def test_session_runs_by_name_and_closes(tmp_path):
    with Session(scale=MICRO, results_dir=str(tmp_path)) as session:
        out = session.run("table1")
        assert out.rows
        assert session.scale.name == "micro"
        runner = session.sweep
    # __exit__ released the runner
    assert session.context._sweep is None
    assert runner._pool is None


def test_fresh_process_can_reference_builtin_analyses():
    """Scenario construction must load the built-in callbacks itself —
    it cannot rely on something else having touched the registry first
    (regression: has_analysis skipped default loading, so constructing a
    Scenario in a fresh process spuriously rejected 'table1')."""
    import os
    import pathlib
    import subprocess
    import sys

    repo_root = pathlib.Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    script = (
        "from repro.api import Scenario\n"
        "Scenario(name='x', title='x', output='x', analyze='table1',\n"
        "         backends=(), platforms=(), models=())\n"
        "print('ok')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        cwd=repo_root,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


def test_session_explicit_cache_dir_beats_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    with Session(
        scale=MICRO, results_dir=str(tmp_path), cache=str(tmp_path / "c")
    ) as session:
        assert session.context.use_cache is True
        assert session.context.cache_dir == str(tmp_path / "c")
    with Session(scale=MICRO, results_dir=str(tmp_path)) as session:
        # the default (cache=True) still honours the ambient env toggle
        assert session.context.use_cache is False


def test_session_named_scales_and_overrides(tmp_path):
    session = Session(scale="quick", results_dir=str(tmp_path), cache=False)
    try:
        assert session.scale.name == "quick"
        assert session.context.use_cache is False
    finally:
        session.close()
    with pytest.raises(ValueError, match="unknown scale"):
        Session(scale="humongous")


def test_session_run_all_subset(tmp_path):
    with Session(scale=MICRO, results_dir=str(tmp_path)) as session:
        results = session.run_all(["table1", "stragglers"])
        assert list(results) == ["table1", "stragglers"]
        assert all(rs.rows for rs in results.values())
        paths = session.save(results["stragglers"])
        assert paths["straggler_decomposition"].startswith(str(tmp_path))


def test_session_scenarios_listing(tmp_path):
    with Session(scale=MICRO, results_dir=str(tmp_path)) as session:
        assert "fig7" in session.scenarios()


def test_quarantined_extras_carry_cell_params():
    """A quarantined cell's row names the exact simulation point that was
    lost — model/algorithm/platform plus the bound spec and config params —
    so a failed sweep can be re-run surgically from the CSV alone."""
    from repro.api.engine import _quarantined_row
    from repro.ps import ClusterSpec
    from repro.sim import SimConfig
    from repro.sweep.spec import SimCell

    cell = SimCell(
        model="AlexNet v2", spec=ClusterSpec(4, 2, "training"),
        algorithm="tic", platform="envC", batch_factor=2.0,
        config=SimConfig(seed=13),
    )
    row = _quarantined_row(cell, "boom: worker died")
    assert row["model"] == "AlexNet v2"
    assert row["algorithm"] == "tic"
    assert row["platform"] == "envC"
    assert row["workers"] == 4
    assert row["ps"] == 2
    assert row["workload"] == "training"
    assert row["batch_factor"] == 2.0
    assert row["seed"] == 13
    assert row["error"] == "boom: worker died"
    # a malformed cell still yields a schema-complete row
    sparse = _quarantined_row(object(), "late failure")
    assert sparse["model"] == "" and sparse["error"] == "late failure"
