"""Tests for the repro.api facade."""
