"""Numeric training substrate: gradients, order-invariance, learning."""

import numpy as np
import pytest

from repro.training import (
    baseline_ordering,
    enforced_ordering,
    forward_loss,
    gradients,
    init_params,
    make_dataset,
    train_data_parallel,
)


# ----------------------------------------------------------------------
# dataset
# ----------------------------------------------------------------------
def test_dataset_shapes_and_determinism():
    a = make_dataset(n_samples=128, dim=16, n_classes=4, seed=7)
    b = make_dataset(n_samples=128, dim=16, n_classes=4, seed=7)
    assert a.x.shape == (128, 16) and a.y.shape == (128,)
    assert np.array_equal(a.x, b.x) and np.array_equal(a.y, b.y)
    assert a.y.max() < 4


def test_dataset_validation():
    with pytest.raises(ValueError):
        make_dataset(n_samples=0)
    with pytest.raises(ValueError):
        make_dataset(n_classes=1)


def test_shards_partition_the_data():
    ds = make_dataset(n_samples=100, dim=4, seed=0)
    shards = [ds.shard(w, 3) for w in range(3)]
    assert sum(s.n for s in shards) == 100
    with pytest.raises(ValueError):
        ds.shard(3, 3)


def test_batches_cycle_deterministically():
    ds = make_dataset(n_samples=64, dim=4, seed=0)
    it1, it2 = ds.batches(16, seed=5), ds.batches(16, seed=5)
    for _ in range(6):
        x1, y1 = next(it1)
        x2, y2 = next(it2)
        assert np.array_equal(x1, x2) and np.array_equal(y1, y2)
        assert x1.shape == (16, 4)


# ----------------------------------------------------------------------
# network: analytic gradients vs finite differences
# ----------------------------------------------------------------------
def test_gradients_match_finite_differences():
    rng = np.random.default_rng(0)
    params = init_params(dim=5, hidden=7, n_classes=3, seed=1)
    x = rng.normal(size=(6, 5))
    y = rng.integers(3, size=6)
    _, grads = gradients(params, x, y)
    eps = 1e-6
    for name, tensor in params.items():
        flat_grad = grads[name].ravel()
        for idx in [0, tensor.size // 2, tensor.size - 1]:
            orig = tensor.ravel()[idx]
            tensor.ravel()[idx] = orig + eps
            up = forward_loss(params, x, y)
            tensor.ravel()[idx] = orig - eps
            down = forward_loss(params, x, y)
            tensor.ravel()[idx] = orig
            numeric = (up - down) / (2 * eps)
            assert flat_grad[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-7), name


def test_loss_matches_gradients_loss():
    params = init_params(4, 8, 3, seed=0)
    ds = make_dataset(32, 4, 3, seed=0)
    loss_a = forward_loss(params, ds.x, ds.y)
    loss_b, _ = gradients(params, ds.x, ds.y)
    assert loss_a == pytest.approx(loss_b)


# ----------------------------------------------------------------------
# data-parallel trainer (Fig. 8's claims)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ds():
    return make_dataset(n_samples=512, dim=16, n_classes=5, seed=2)


def test_loss_decreases(ds):
    log = train_data_parallel(ds, n_workers=2, iterations=60, seed=2)
    first = np.mean(log.losses[:10])
    last = np.mean(log.losses[-10:])
    assert last < first * 0.9
    assert log.eval_accuracy > 1.5 / 5  # clearly better than chance


def test_transfer_order_does_not_change_loss(ds):
    """Fig. 8: the whole point — bit-identical trajectories."""
    a = train_data_parallel(ds, n_workers=3, iterations=40,
                            ordering=baseline_ordering(9), seed=2)
    b = train_data_parallel(ds, n_workers=3, iterations=40,
                            ordering=enforced_ordering(), seed=2)
    c = train_data_parallel(ds, n_workers=3, iterations=40,
                            ordering=enforced_ordering(
                                ["fc2/weights", "fc1/weights",
                                 "fc2/biases", "fc1/biases"]), seed=2)
    assert np.array_equal(a.loss_array, b.loss_array)
    assert np.array_equal(a.loss_array, c.loss_array)


def test_baseline_ordering_varies_per_worker_and_iteration(ds):
    policy = baseline_ordering(0)
    names = ["a", "b", "c", "d", "e"]
    orders = {
        (w, it): tuple(policy(w, it, names)) for w in range(3) for it in range(3)
    }
    assert len(set(orders.values())) > 1
    # deterministic for the same (worker, iteration)
    assert orders[(1, 2)] == tuple(policy(1, 2, names))


def test_enforced_ordering_is_constant(ds):
    policy = enforced_ordering(["b", "a"])
    assert policy(0, 0, ["a", "b"]) == ["b", "a"]
    assert policy(5, 9, ["a", "b"]) == ["b", "a"]
    # unknown names appended
    assert policy(0, 0, ["a", "b", "z"]) == ["b", "a", "z"]


def test_bad_ordering_policy_rejected(ds):
    def broken(worker, it, names):
        return names[:-1]  # drops a tensor

    with pytest.raises(ValueError, match="permute"):
        train_data_parallel(ds, n_workers=2, iterations=1, ordering=broken)


def test_more_workers_same_initial_loss(ds):
    """Initial loss is architecture+init determined, not worker count."""
    a = train_data_parallel(ds, n_workers=1, iterations=1, seed=2)
    b = train_data_parallel(ds, n_workers=4, iterations=1, seed=2)
    assert a.losses[0] == pytest.approx(b.losses[0], rel=0.15)
