"""End-to-end reproduction of the paper's qualitative claims, at reduced
scale. These are the tests that say 'the system behaves like TicTac', not
just 'the code runs'."""

import numpy as np
import pytest

from repro.core import tac, tic
from repro.ps import ClusterSpec, build_cluster_graph, build_reference_partition
from repro.sim import SimConfig, simulate_cluster, speedup_vs_baseline
from repro.timing import ENV_G, estimate_time_oracle

MODEL = "ResNet-50 v1"
CFG = SimConfig(iterations=4, warmup=1, seed=0)


@pytest.fixture(scope="module")
def training_pair():
    spec = ClusterSpec(n_workers=4, n_ps=1, workload="training")
    gain, sched, base = speedup_vs_baseline(
        MODEL, spec, algorithm="tic", platform="envG", config=CFG
    )
    return gain, sched, base


@pytest.fixture(scope="module")
def inference_pair():
    spec = ClusterSpec(n_workers=4, n_ps=1, workload="inference")
    gain, sched, base = speedup_vs_baseline(
        MODEL, spec, algorithm="tic", platform="envG", config=CFG
    )
    return gain, sched, base


def test_tic_improves_training_throughput(training_pair):
    gain, _, _ = training_pair
    assert gain > 5.0  # the paper reports double-digit training gains


def test_tic_improves_inference_throughput(inference_pair):
    gain, _, _ = inference_pair
    assert gain > 10.0


def test_inference_gains_exceed_training(training_pair, inference_pair):
    """§6.1: 'In general, we obtain higher gains in the inference phase
    than training.'"""
    assert inference_pair[0] > training_pair[0]


def test_scheduling_reduces_stragglers(training_pair):
    _, sched, base = training_pair
    assert sched.max_straggler_pct < base.max_straggler_pct


def test_efficiency_approaches_one_with_tic(training_pair):
    """§6.2: 'across all models the efficiency metric approaches 1' under
    scheduling; the baseline scatters lower."""
    _, sched, base = training_pair
    assert sched.mean_efficiency > 0.97
    assert sched.mean_efficiency > base.mean_efficiency


def test_step_time_variance_shrinks(training_pair):
    """Fig. 12b: enforced ordering yields consistent step times."""
    _, sched, base = training_pair
    cv = lambda r: r.iteration_times.std() / r.iteration_times.mean()
    assert cv(sched) < cv(base)


def test_residual_out_of_order_rate_near_paper(training_pair):
    """§5.1 measured 0.4-0.5% residual gRPC reordering; with the default
    noise knob ours lands in the same decade."""
    _, sched, _ = training_pair
    assert 0.0 <= sched.out_of_order_rate < 0.03


def test_tic_and_tac_comparable():
    """Fig. 13: 'Performance of TIC is comparable to that of TAC'."""
    ir_ref = build_reference_partition(
        __import__("repro.models", fromlist=["build_model"]).build_model(MODEL),
        workload="training", n_ps=1,
    )
    oracle = estimate_time_oracle(ir_ref.graph, ENV_G, seed=0)
    s_tic = tic(ir_ref.graph)
    s_tac = tac(ir_ref.graph, oracle)
    spec = ClusterSpec(n_workers=2, n_ps=1, workload="training")
    r_tic = simulate_cluster(MODEL, spec, schedule=s_tic, platform="envG", config=CFG)
    r_tac = simulate_cluster(MODEL, spec, schedule=s_tac, platform="envG", config=CFG)
    assert abs(r_tic.throughput - r_tac.throughput) / r_tac.throughput < 0.05


def test_enforced_random_order_still_reduces_stragglers():
    """§6.3: 'Enforcing any order reduces straggler effect regardless of
    the quality of the chosen order.'"""
    from repro.core import random_schedule
    from repro.models import build_model

    ir = build_model(MODEL)
    spec = ClusterSpec(n_workers=4, n_ps=1, workload="training")
    base = simulate_cluster(ir, spec, algorithm="baseline", platform="envG", config=CFG)
    rand = simulate_cluster(
        ir, spec,
        schedule=random_schedule([p.name for p in ir.params], seed=3),
        platform="envG", config=CFG,
    )
    assert rand.max_straggler_pct < base.max_straggler_pct
    # ...even though a random order may not beat the baseline on speed.


def test_envc_gains_exceed_envg():
    """Fig. 13 vs Fig. 7: the 1 GbE cluster is more communication-bound,
    so scheduling pays more there (for the same model/cluster shape)."""
    spec = ClusterSpec(n_workers=4, n_ps=1, workload="inference")
    gain_c, *_ = speedup_vs_baseline("Inception v2", spec, algorithm="tic",
                                     platform="envC", config=CFG)
    gain_g, *_ = speedup_vs_baseline("Inception v2", spec, algorithm="tic",
                                     platform="envG", config=CFG)
    assert gain_c > gain_g


def test_wizard_cost_is_offline_and_small():
    """§6: computing the heuristics takes ~10 s in the paper; ours is
    well under that, and it is a one-time offline cost."""
    from repro.models import build_model

    ref = build_reference_partition(build_model("ResNet-101 v2"),
                                    workload="training", n_ps=1)
    schedule = tic(ref.graph)
    assert schedule.meta["wizard_seconds"] < 10.0
