"""The shipped examples must run to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")
SRC = os.path.abspath(os.path.join(EXAMPLES, "..", "src"))


def run_example(name, *args, timeout=600):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


def test_quickstart():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "TAC transfer order: ['p1', 'p2']" in proc.stdout
    assert "speedup" in proc.stdout


@pytest.mark.slow
def test_rl_inference_agents():
    proc = run_example("rl_inference_agents.py")
    assert proc.returncode == 0, proc.stderr
    assert "tic" in proc.stdout


@pytest.mark.slow
def test_cloud_training_campaign():
    proc = run_example("cloud_training_campaign.py", "AlexNet v2")
    assert proc.returncode == 0, proc.stderr
    assert "Eq. 4" in proc.stdout


@pytest.mark.slow
def test_enforcement_tour():
    proc = run_example("enforcement_tour.py")
    assert proc.returncode == 0, proc.stderr
    assert "ready_queue" in proc.stdout


@pytest.mark.slow
def test_timeline_visualization(tmp_path):
    proc = run_example("timeline_visualization.py")
    assert proc.returncode == 0, proc.stderr
    assert "chrome trace" in proc.stdout
    assert "tic: one inference iteration" in proc.stdout
