"""Parameter placement strategies."""

import pytest

from repro.models.ir import ParamTensor
from repro.ps import (
    ps_device_names,
    shard_loads,
    shard_parameters,
    worker_device_names,
)


def tensors(sizes):
    return [ParamTensor(f"p{i}", (s,)) for i, s in enumerate(sizes)]


def test_device_names():
    assert ps_device_names(2) == ["ps:0", "ps:1"]
    assert worker_device_names(3) == ["worker:0", "worker:1", "worker:2"]
    with pytest.raises(ValueError):
        ps_device_names(0)
    with pytest.raises(ValueError):
        worker_device_names(0)


def test_round_robin_cycles():
    params = tensors([1, 1, 1, 1, 1])
    placement = shard_parameters(params, ["ps:0", "ps:1"], "round_robin")
    assert [placement[p.name] for p in params] == [
        "ps:0", "ps:1", "ps:0", "ps:1", "ps:0",
    ]


def test_greedy_balances_bytes():
    # one huge tensor followed by many small: greedy sends smalls elsewhere
    params = tensors([1000, 10, 10, 10, 10, 10])
    placement = shard_parameters(params, ["ps:0", "ps:1"])
    loads = shard_loads(params, placement)
    assert placement["p0"] == "ps:0"
    assert all(placement[f"p{i}"] == "ps:1" for i in range(1, 6))
    assert loads["ps:0"] == 4000 and loads["ps:1"] == 200


def test_greedy_beats_round_robin_on_skew():
    params = tensors([100, 100, 1, 1, 1, 1])
    g = shard_loads(params, shard_parameters(params, ["ps:0", "ps:1"], "greedy"))
    r = shard_loads(params, shard_parameters(params, ["ps:0", "ps:1"], "round_robin"))
    assert max(g.values()) <= max(r.values())


def test_single_ps_takes_everything():
    params = tensors([5, 5])
    placement = shard_parameters(params, ["ps:0"])
    assert set(placement.values()) == {"ps:0"}


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError, match="strategy"):
        shard_parameters(tensors([1]), ["ps:0"], "hash")


def test_empty_ps_list_rejected():
    with pytest.raises(ValueError, match="non-empty"):
        shard_parameters(tensors([1]), [])


def test_greedy_ties_go_to_lowest_index():
    params = tensors([7])
    placement = shard_parameters(params, ["ps:0", "ps:1", "ps:2"])
    assert placement["p0"] == "ps:0"
