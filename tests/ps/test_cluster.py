"""Cluster-graph assembly: PS subgraphs, replicas, stitching."""

import pytest

from repro.graph import GraphError, OpKind, PartitionedGraph, Resource
from repro.ps import ClusterSpec, build_cluster_graph, build_reference_partition

from ..conftest import tiny_model


@pytest.fixture(scope="module")
def ir():
    return tiny_model()


@pytest.fixture(scope="module")
def train_cluster(ir):
    return build_cluster_graph(ir, ClusterSpec(3, 2, "training"))


@pytest.fixture(scope="module")
def infer_cluster(ir):
    return build_cluster_graph(ir, ClusterSpec(2, 1, "inference"))


def test_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(0, 1)
    with pytest.raises(ValueError):
        ClusterSpec(1, 0)
    with pytest.raises(ValueError):
        ClusterSpec(1, 1, workload="serving")
    assert ClusterSpec(4, 2).workers == ["worker:0", "worker:1", "worker:2", "worker:3"]


def test_cluster_validates_and_partitions(train_cluster):
    train_cluster.graph.validate()
    PartitionedGraph(train_cluster.graph)


def test_param_transfer_count(ir, train_cluster):
    # one param pull per (param, worker)
    assert len(train_cluster.param_transfers) == ir.n_param_tensors * 3


def test_grad_transfer_count(ir, train_cluster):
    grads = [
        t
        for ts in train_cluster.transfers_by_link.values()
        for t in ts
        if t.kind == "grad"
    ]
    assert len(grads) == ir.n_param_tensors * 3


def test_inference_has_no_grad_path(ir, infer_cluster):
    g = infer_cluster.graph
    assert not g.ops_of_kind(OpKind.AGGREGATE)
    assert not g.ops_of_kind(OpKind.UPDATE)
    kinds = {t.kind for ts in infer_cluster.transfers_by_link.values() for t in ts}
    assert kinds == {"param"}


def test_ps_five_op_subgraph_per_param_training(ir, train_cluster):
    """§2.2: 'PS DAG has five ops per parameter: aggregation, send, recv,
    read, and update' (send/recv once per worker)."""
    g = train_cluster.graph
    W = train_cluster.spec.n_workers
    n = ir.n_param_tensors
    assert len(g.ops_of_kind(OpKind.READ)) == n
    assert len(g.ops_of_kind(OpKind.AGGREGATE)) == n
    assert len(g.ops_of_kind(OpKind.UPDATE)) == n
    ps_sends = [o for o in g.ops_of_kind(OpKind.SEND) if o.attrs.get("activation_only")]
    ps_recvs = [o for o in g.ops_of_kind(OpKind.RECV) if o.attrs.get("activation_only")]
    assert len(ps_sends) == n * W
    assert len(ps_recvs) == n * W


def test_update_is_leaf_and_read_is_root(train_cluster):
    g = train_cluster.graph
    for op in g.ops_of_kind(OpKind.UPDATE):
        assert g.out_degree(op) == 0, "update feeds the *next* iteration"
    for op in g.ops_of_kind(OpKind.READ):
        assert g.in_degree(op) == 0, "read serves last iteration's value"


def test_aggregate_waits_for_all_workers(train_cluster):
    g = train_cluster.graph
    W = train_cluster.spec.n_workers
    for op in g.ops_of_kind(OpKind.AGGREGATE):
        assert g.in_degree(op) == W
        assert op.cost > 0


def test_transfer_links_match_placement(train_cluster):
    placement = train_cluster.placement
    for link, transfers in train_cluster.transfers_by_link.items():
        for t in transfers:
            if t.kind == "param":
                assert link == Resource.link(placement[t.param], t.dst)
            else:
                assert link == Resource.link(t.src, placement[t.param])


def test_worker_ops_cover_replicas(ir, train_cluster):
    for worker, ids in train_cluster.worker_ops.items():
        devices = {train_cluster.graph.op(i).device for i in ids}
        assert devices == {worker}
    # every worker sees one recv per param
    for worker, recvs in train_cluster.param_recvs.items():
        assert set(recvs) == {p.name for p in ir.params}


def test_explicit_placement_roundtrip(ir):
    placement = {p.name: "ps:0" for p in ir.params}
    cluster = build_cluster_graph(ir, ClusterSpec(2, 1, "training"),
                                  placement=placement)
    assert cluster.placement == placement


def test_incomplete_placement_rejected(ir):
    with pytest.raises(ValueError, match="missing"):
        build_cluster_graph(ir, ClusterSpec(2, 1), placement={"x": "ps:0"})


# ----------------------------------------------------------------------
# reference partition
# ----------------------------------------------------------------------
def test_reference_partition_resources(ir):
    ref = build_reference_partition(ir, workload="training", n_ps=2)
    names = {r.name for r in ref.partition.resources}
    assert "compute:worker:0" in names
    assert "link:ps:0->worker:0" in names
    assert "link:worker:0->ps:1" in names


def test_reference_partition_recv_params_ordered(ir):
    ref = build_reference_partition(ir, workload="inference", n_ps=1)
    assert ref.recv_params == [p.name for p in ir.params]


def test_reference_partition_inference_has_no_sends(ir):
    ref = build_reference_partition(ir, workload="inference", n_ps=1)
    assert not ref.graph.ops_of_kind(OpKind.SEND)
