"""Unrolled (pipelined) cluster graphs."""

import pytest

from repro.graph import OpKind, PartitionedGraph
from repro.ps import ClusterSpec, build_cluster_graph

from ..conftest import tiny_model


@pytest.fixture(scope="module")
def unrolled_train():
    return build_cluster_graph(
        tiny_model(), ClusterSpec(2, 1, "training"), n_iterations=3
    )


@pytest.fixture(scope="module")
def unrolled_infer():
    return build_cluster_graph(
        tiny_model(), ClusterSpec(2, 1, "inference"), n_iterations=3
    )


def test_invalid_window_rejected():
    with pytest.raises(ValueError, match="n_iterations"):
        build_cluster_graph(tiny_model(), ClusterSpec(1, 1), n_iterations=0)


def test_unrolled_validates_and_partitions(unrolled_train):
    unrolled_train.graph.validate()
    PartitionedGraph(unrolled_train.graph)


def test_iteration_ops_partition_the_graph(unrolled_train):
    ids = [i for k in range(3) for i in unrolled_train.iteration_ops[k]]
    assert sorted(ids) == list(range(len(unrolled_train.graph)))


def test_ops_scale_linearly_with_window():
    one = build_cluster_graph(tiny_model(), ClusterSpec(2, 1, "training"))
    three = build_cluster_graph(
        tiny_model(), ClusterSpec(2, 1, "training"), n_iterations=3
    )
    assert len(three.graph) == 3 * len(one.graph)
    assert three.n_iterations == 3


def test_read_depends_on_previous_update(unrolled_train):
    """Per-parameter pipelining: it1's read consumes it0's update."""
    g = unrolled_train.graph
    param = unrolled_train.model.params[0].name
    read1 = g.op(f"it1/ps:0/{param}/read")
    preds = {p.name for p in g.predecessors(read1)}
    assert f"it0/ps:0/{param}/update" in preds
    read0 = g.op(f"it0/ps:0/{param}/read")
    assert g.in_degree(read0) == 0


def test_inference_agent_loop_edges(unrolled_infer):
    """it1's send activations wait for the agent's it0 output."""
    g = unrolled_infer.graph
    param = unrolled_infer.model.params[0].name
    send1 = g.op(f"it1/ps:0/{param}/send->worker:0")
    preds = {p.name for p in g.predecessors(send1)}
    assert any(p.startswith("it0/worker:0/") for p in preds)
    send0 = g.op(f"it0/ps:0/{param}/send->worker:0")
    assert all(p.name.startswith("it0/") for p in g.predecessors(send0))


def test_transfers_tagged_with_iteration(unrolled_train):
    iterations = {
        t.iteration
        for ts in unrolled_train.transfers_by_link.values()
        for t in ts
    }
    assert iterations == {0, 1, 2}


def test_update_leaves_only_in_last_iteration(unrolled_train):
    g = unrolled_train.graph
    for op in g.ops_of_kind(OpKind.UPDATE):
        if op.name.startswith("it2/"):
            assert g.out_degree(op) == 0
        else:
            assert g.out_degree(op) >= 1  # consumed by the next read
