"""Graph construction, lookup, edges and validation."""

import pytest

from repro.graph import Graph, GraphError, OpKind, Resource


def test_add_op_assigns_dense_ids():
    g = Graph()
    a = g.add_op("a")
    b = g.add_op("b", inputs=["a"])
    assert (a.op_id, b.op_id) == (0, 1)
    assert len(g) == 2


def test_duplicate_name_rejected():
    g = Graph()
    g.add_op("a")
    with pytest.raises(GraphError, match="duplicate"):
        g.add_op("a")


def test_unknown_input_rejected():
    g = Graph()
    with pytest.raises(GraphError, match="unknown op name"):
        g.add_op("a", inputs=["ghost"])


def test_negative_cost_rejected():
    g = Graph()
    with pytest.raises(GraphError, match="negative cost"):
        g.add_op("a", cost=-1.0)


def test_inputs_by_name_id_and_object():
    g = Graph()
    a = g.add_op("a")
    g.add_op("b", inputs=[a])
    g.add_op("c", inputs=[0, "b"])
    assert [p.name for p in g.predecessors("c")] == ["a", "b"]


def test_pred_succ_symmetry():
    g = Graph()
    g.add_op("a")
    g.add_op("b", inputs=["a"])
    g.add_op("c", inputs=["a", "b"])
    assert [s.name for s in g.successors("a")] == ["b", "c"]
    assert g.in_degree("c") == 2
    assert g.out_degree("c") == 0


def test_duplicate_inputs_collapse_to_one_edge():
    g = Graph()
    g.add_op("a")
    g.add_op("b", inputs=["a", "a", 0])
    assert g.in_degree("b") == 1


def test_roots_and_leaves():
    g = Graph()
    g.add_op("r1")
    g.add_op("r2")
    g.add_op("mid", inputs=["r1", "r2"])
    g.add_op("leaf", inputs=["mid"])
    assert {op.name for op in g.roots()} == {"r1", "r2"}
    assert [op.name for op in g.leaves()] == ["leaf"]


def test_add_edge_rejects_cycle():
    g = Graph()
    g.add_op("a")
    g.add_op("b", inputs=["a"])
    g.add_op("c", inputs=["b"])
    with pytest.raises(GraphError, match="cycle"):
        g.add_edge("c", "a")


def test_add_edge_rejects_self_loop():
    g = Graph()
    g.add_op("a")
    with pytest.raises(GraphError, match="self-loop"):
        g.add_edge("a", "a")


def test_add_edge_idempotent():
    g = Graph()
    g.add_op("a")
    g.add_op("b")
    g.add_edge("a", "b")
    g.add_edge("a", "b")
    assert g.in_degree("b") == 1


def test_merge_with_rename():
    src = Graph("src")
    src.add_op("x", cost=2.0, tag="keep")
    src.add_op("y", inputs=["x"])
    dst = Graph("dst")
    dst.add_op("existing")
    mapping = dst.merge(src, rename=lambda n: f"w/{n}")
    assert set(mapping.values()) == {1, 2}
    assert dst.op("w/x").cost == 2.0
    assert dst.op("w/x").attrs["tag"] == "keep"
    assert [p.name for p in dst.predecessors("w/y")] == ["w/x"]


def test_merge_attrs_are_independent_copies():
    src = Graph("src")
    src.add_op("x", tag="orig")
    dst = Graph("dst")
    dst.merge(src)
    dst.op("x").attrs["tag"] = "changed"
    assert src.op("x").attrs["tag"] == "orig"


def test_topological_order_with_key():
    g = Graph()
    g.add_op("b")
    g.add_op("a")
    g.add_op("c", inputs=["a", "b"])
    order = [op.name for op in g.topological_order(key=lambda op: op.name)]
    assert order == ["a", "b", "c"]


def test_insertion_order_is_topological():
    g = Graph()
    g.add_op("a")
    g.add_op("b", inputs=["a"])
    g.add_op("c", inputs=["a"])
    order = g.topological_order()
    pos = {op.name: i for i, op in enumerate(order)}
    assert pos["a"] < pos["b"] and pos["a"] < pos["c"]


def test_validate_rejects_recv_with_same_device_pred():
    g = Graph()
    g.add_op("pre", device="worker:0")
    g.add_op("r", OpKind.RECV, inputs=["pre"], device="worker:0")
    with pytest.raises(GraphError, match="roots"):
        g.validate()


def test_validate_allows_recv_with_cross_device_pred():
    g = Graph()
    g.add_op("send", OpKind.SEND, device="ps:0")
    g.add_op("r", OpKind.RECV, inputs=["send"], device="worker:0")
    g.validate()


def test_total_cost_filters_by_kind():
    g = Graph()
    g.add_op("a", OpKind.COMPUTE, cost=2.0)
    g.add_op("r", OpKind.RECV, cost=3.0)
    assert g.total_cost() == 5.0
    assert g.total_cost([OpKind.RECV]) == 3.0


def test_contains_and_lookup_errors():
    g = Graph()
    g.add_op("a")
    assert "a" in g and 0 in g
    assert "nope" not in g and 5 not in g
    with pytest.raises(GraphError):
        g.op("nope")
