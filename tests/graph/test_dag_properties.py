"""Property-based structural invariants on random worker DAGs."""

from hypothesis import given, settings

from repro.graph import (
    PartitionedGraph,
    critical_path_cost,
    dependency_matrix,
    dependency_sets,
)

from ..strategies import worker_dags


@given(worker_dags())
@settings(max_examples=60, deadline=None)
def test_dependency_sets_monotone_along_edges(g):
    """An op's dep set contains every predecessor's dep set (transitivity)."""
    deps = dependency_sets(g)
    for op in g:
        for p in g.pred_ids(op.op_id):
            assert deps[p] <= deps[op.op_id]


@given(worker_dags())
@settings(max_examples=60, deadline=None)
def test_recv_dep_sets_are_self_singletons(g):
    deps = dependency_sets(g)
    for op in g.recv_ops():
        assert deps[op.op_id] == {op.op_id}


@given(worker_dags())
@settings(max_examples=60, deadline=None)
def test_matrix_row_sums_match_set_sizes(g):
    mat = dependency_matrix(g)
    deps = dependency_sets(g)
    for op in g:
        assert mat[op.op_id].sum() == len(deps[op.op_id])


@given(worker_dags())
@settings(max_examples=60, deadline=None)
def test_critical_path_between_bounds(g):
    """max op cost <= critical path <= total cost (Eq. 1's U)."""
    cp = critical_path_cost(g)
    total = g.total_cost()
    biggest = max(op.cost for op in g)
    assert biggest - 1e-9 <= cp <= total + 1e-9


@given(worker_dags())
@settings(max_examples=60, deadline=None)
def test_partition_load_sums_to_total_cost(g):
    loads = PartitionedGraph(g).load()
    assert abs(sum(loads.values()) - g.total_cost()) < 1e-9
