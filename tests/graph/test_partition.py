"""PartitionedGraph invariants and worker resource assignment."""

import pytest

from repro.graph import (
    Graph,
    GraphError,
    OpKind,
    PartitionedGraph,
    Resource,
    ResourceKind,
    assign_worker_resources,
)

from ..conftest import make_worker_graph


def test_partition_groups_by_resource(fig1a):
    part = PartitionedGraph(fig1a)
    link = Resource.link("ps:0", "worker:0")
    compute = Resource.compute("worker:0")
    assert {r.name for r in part.resources} == {link.name, compute.name}
    assert {op.name for op in part.ops_on(link)} == {"recv1", "recv2"}
    assert {op.name for op in part.ops_on(compute)} == {"op1", "op2"}


def test_partition_rejects_untagged_op():
    g = Graph()
    g.add_op("a")
    with pytest.raises(GraphError, match="no resource tag"):
        PartitionedGraph(g)


def test_partition_rejects_transfer_on_compute():
    g = Graph()
    g.add_op("r", OpKind.RECV, resource=Resource.compute("worker:0"))
    with pytest.raises(GraphError, match="non-link"):
        PartitionedGraph(g)


def test_partition_allows_activation_only_on_compute():
    g = Graph()
    g.add_op("s", OpKind.SEND, resource=Resource.compute("ps:0"),
             activation_only=True)
    PartitionedGraph(g)


def test_partition_rejects_compute_on_link():
    g = Graph()
    g.add_op("a", OpKind.COMPUTE, resource=Resource.link("a", "b"))
    with pytest.raises(GraphError, match="link resource"):
        PartitionedGraph(g)


def test_loads_default_to_costs():
    g = make_worker_graph(
        {"recv1": [], "op1": ["recv1"]}, costs={"recv1": 2.0, "op1": 5.0}
    )
    part = PartitionedGraph(g)
    loads = part.load()
    assert loads[Resource.link("ps:0", "worker:0")] == 2.0
    assert loads[Resource.compute("worker:0")] == 5.0
    assert part.bottleneck().kind is ResourceKind.COMPUTE


def test_loads_accept_measured_times(fig1a):
    part = PartitionedGraph(fig1a)
    times = {op.op_id: 10.0 if op.is_recv else 1.0 for op in fig1a}
    loads = part.load(times)
    assert loads[Resource.link("ps:0", "worker:0")] == 20.0
    assert part.bottleneck(times).kind is ResourceKind.LINK


def test_assign_worker_resources_tags_everything():
    g = Graph()
    g.add_op("p/recv", OpKind.RECV, cost=4.0, param="p", ps="ps:1")
    g.add_op("compute", inputs=["p/recv"])
    g.add_op("p/send", OpKind.SEND, inputs=["compute"], param="p", ps="ps:1")
    assign_worker_resources(g, "worker:3", ["ps:1"])
    assert g.op("p/recv").resource == Resource.link("ps:1", "worker:3")
    assert g.op("p/send").resource == Resource.link("worker:3", "ps:1")
    assert g.op("compute").resource == Resource.compute("worker:3")
    assert all(op.device == "worker:3" for op in g)


def test_assign_worker_resources_requires_ps_attr():
    g = Graph()
    g.add_op("recv", OpKind.RECV)
    with pytest.raises(GraphError, match="missing 'ps'"):
        assign_worker_resources(g, "worker:0", ["ps:0"])


def test_resource_constructors():
    assert Resource.compute("worker:1").name == "compute:worker:1"
    assert Resource.link("ps:0", "worker:1").name == "link:ps:0->worker:1"
    assert Resource.compute("x").kind is ResourceKind.COMPUTE
    assert Resource.link("a", "b").kind is ResourceKind.LINK
