"""Communication-dependency extraction and critical path."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    OpKind,
    communication_dependency_masks,
    critical_path_cost,
    dependency_matrix,
    dependency_sets,
    recv_index,
)

from ..conftest import make_worker_graph


def test_fig1a_dependency_sets(fig1a):
    deps = dependency_sets(fig1a)
    by_name = {op.name: deps[op.op_id] for op in fig1a}
    r1 = fig1a.op("recv1").op_id
    r2 = fig1a.op("recv2").op_id
    assert by_name["recv1"] == {r1}
    assert by_name["recv2"] == {r2}
    assert by_name["op1"] == {r1}
    assert by_name["op2"] == {r1, r2}  # the paper's §4.1 example


def test_masks_match_sets(fig4b):
    masks = communication_dependency_masks(fig4b)
    sets = dependency_sets(fig4b)
    recvs = fig4b.recv_ops()
    for op in fig4b:
        expanded = {
            recvs[k].op_id for k in range(len(recvs)) if masks[op.op_id] >> k & 1
        }
        assert expanded == set(sets[op.op_id])


def test_matrix_matches_sets(fig4a):
    mat = dependency_matrix(fig4a)
    sets = dependency_sets(fig4a)
    idx = recv_index(fig4a)
    for op in fig4a:
        cols = {k for k in range(mat.shape[1]) if mat[op.op_id, k]}
        assert cols == {idx[r] for r in sets[op.op_id]}


def test_matrix_shape_without_recvs():
    g = Graph()
    g.add_op("a")
    mat = dependency_matrix(g)
    assert mat.shape == (1, 0)
    assert dependency_sets(g) == [frozenset()]


def test_transitive_dependency_through_chain():
    g = make_worker_graph(
        {"recv0": [], "a": ["recv0"], "b": ["a"], "c": ["b"]}
    )
    deps = dependency_sets(g)
    r = g.op("recv0").op_id
    assert deps[g.op("c").op_id] == {r}


def test_recv_index_follows_given_order(fig4b):
    recvs = list(reversed(fig4b.recv_ops()))
    idx = recv_index(fig4b, recvs)
    assert idx[recvs[0].op_id] == 0
    mat = dependency_matrix(fig4b, recvs)
    # column 0 now corresponds to recvD
    d_col = mat[:, 0]
    op2 = fig4b.op("op2").op_id
    assert d_col[op2]


def test_critical_path_linear_chain():
    g = make_worker_graph(
        {"recv0": [], "a": ["recv0"], "b": ["a"]},
        costs={"recv0": 2.0, "a": 3.0, "b": 4.0},
    )
    assert critical_path_cost(g) == pytest.approx(9.0)


def test_critical_path_takes_max_branch(fig4a):
    # all costs 1: longest path recvA->op1->op3 has length 3
    assert critical_path_cost(fig4a) == pytest.approx(3.0)


def test_critical_path_empty_graph():
    assert critical_path_cost(Graph()) == 0.0
