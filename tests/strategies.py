"""Hypothesis strategies for randomized structural tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph import Graph, OpKind, Resource

WORKER = "worker:0"
PS = "ps:0"


@st.composite
def worker_dags(draw, max_recvs: int = 6, max_compute: int = 14):
    """A random single-worker partitioned DAG.

    recv ops are roots; compute ops draw inputs from earlier ops. Costs
    are small non-negative floats with occasional zeros (exercising the
    tie-break paths of the property algorithms).
    """
    n_recv = draw(st.integers(min_value=1, max_value=max_recvs))
    n_compute = draw(st.integers(min_value=1, max_value=max_compute))
    g = Graph("hypo")
    link = Resource.link(PS, WORKER)
    compute = Resource.compute(WORKER)
    cost = st.one_of(
        st.just(0.0),
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    names = []
    for i in range(n_recv):
        name = f"recv{i}"
        g.add_op(name, OpKind.RECV, (), cost=draw(cost) + 0.1, param=name,
                 resource=link, device=WORKER, timing_key=name)
        names.append(name)
    for i in range(n_compute):
        k = draw(st.integers(min_value=1, max_value=min(3, len(names))))
        inputs = draw(
            st.lists(st.sampled_from(names), min_size=k, max_size=k, unique=True)
        )
        name = f"op{i}"
        g.add_op(name, OpKind.COMPUTE, inputs, cost=draw(cost),
                 resource=compute, device=WORKER, timing_key=name)
        names.append(name)
    return g
