"""Hypothesis strategies for randomized structural tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph import Graph, OpKind, Resource
from repro.models.builder import NetBuilder

WORKER = "worker:0"
PS = "ps:0"


@st.composite
def worker_dags(draw, max_recvs: int = 6, max_compute: int = 14):
    """A random single-worker partitioned DAG.

    recv ops are roots; compute ops draw inputs from earlier ops. Costs
    are small non-negative floats with occasional zeros (exercising the
    tie-break paths of the property algorithms).
    """
    n_recv = draw(st.integers(min_value=1, max_value=max_recvs))
    n_compute = draw(st.integers(min_value=1, max_value=max_compute))
    g = Graph("hypo")
    link = Resource.link(PS, WORKER)
    compute = Resource.compute(WORKER)
    cost = st.one_of(
        st.just(0.0),
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    names = []
    for i in range(n_recv):
        name = f"recv{i}"
        g.add_op(name, OpKind.RECV, (), cost=draw(cost) + 0.1, param=name,
                 resource=link, device=WORKER, timing_key=name)
        names.append(name)
    for i in range(n_compute):
        k = draw(st.integers(min_value=1, max_value=min(3, len(names))))
        inputs = draw(
            st.lists(st.sampled_from(names), min_size=k, max_size=k, unique=True)
        )
        name = f"op{i}"
        g.add_op(name, OpKind.COMPUTE, inputs, cost=draw(cost),
                 resource=compute, device=WORKER, timing_key=name)
        names.append(name)
    return g


@st.composite
def model_irs(draw, max_convs: int = 4):
    """A random small convnet :class:`~repro.models.ir.ModelIR`.

    Varies depth, channel widths, bias/bn mix and batch size — enough
    shape diversity to exercise tensor partitioning/fusion and collective
    graph assembly without the cost of a zoo model.
    """
    n_convs = draw(st.integers(min_value=1, max_value=max_convs))
    batch = draw(st.sampled_from([1, 4, 16]))
    b = NetBuilder("hypo_net", batch, input_hw=(16, 16))
    for i in range(n_convs):
        out_ch = draw(st.sampled_from([4, 8, 24]))
        bias = draw(st.booleans())
        b.conv(f"conv{i}", 3, out_ch, bias=bias, bn=not bias)
    b.max_pool("pool", 2, 2)
    b.fc("logits", draw(st.sampled_from([10, 100])))
    b.softmax("predictions")
    return b.build()
