"""Shared fixtures: the paper's toy DAGs and a fast miniature model."""

from __future__ import annotations

import pytest

from repro.graph import Graph, OpKind, Resource
from repro.models.builder import NetBuilder

WORKER = "worker:0"
PS = "ps:0"


def make_worker_graph(edges, costs=None, params=None):
    """Build a single-worker partitioned toy graph.

    ``edges`` maps op name -> list of input names; names starting with
    'recv' become RECV ops on the PS->worker link, others COMPUTE ops.
    ``costs`` maps name -> cost (default 1.0).
    """
    costs = costs or {}
    g = Graph("toy")
    link = Resource.link(PS, WORKER)
    compute = Resource.compute(WORKER)
    for name, inputs in edges.items():
        is_recv = name.startswith("recv")
        g.add_op(
            name,
            OpKind.RECV if is_recv else OpKind.COMPUTE,
            inputs,
            cost=float(costs.get(name, 1.0)),
            param=name if is_recv else None,
            resource=link if is_recv else compute,
            device=WORKER,
            timing_key=name,
        )
    return g


@pytest.fixture
def fig1a():
    """Figure 1a: recv1 -> op1; op2 needs op1 AND recv2."""
    return make_worker_graph(
        {
            "recv1": [],
            "recv2": [],
            "op1": ["recv1"],
            "op2": ["op1", "recv2"],
        }
    )


@pytest.fixture
def fig4a():
    """Figure 4a (Case 1): recvA -> op1 -> op3; recvB -> op2 -> op3."""
    return make_worker_graph(
        {
            "recvA": [],
            "recvB": [],
            "op1": ["recvA"],
            "op2": ["recvB"],
            "op3": ["op1", "op2"],
        }
    )


@pytest.fixture
def fig4b():
    """Figure 4b (Case 2): all recvs outstanding, P = 0 everywhere.

    op1 needs {A, B}; op2 needs {C, D} with C, D costlier; op3 joins.
    M+ should prefer the cheap {A, B} pair.
    """
    return make_worker_graph(
        {
            "recvA": [],
            "recvB": [],
            "recvC": [],
            "recvD": [],
            "op1": ["recvA", "recvB"],
            "op2": ["recvC", "recvD"],
            "op3": ["op1", "op2"],
        },
        costs={"recvC": 3.0, "recvD": 5.0},
    )


def tiny_model(batch_size: int = 8):
    """A miniature 3-conv + fc model: fast to emit, schedule and simulate."""
    b = NetBuilder("tinynet", batch_size, input_hw=(32, 32))
    b.conv("conv1", 3, 8, bias=True, bn=False)
    b.max_pool("pool1", 2, 2)
    b.conv("conv2", 3, 16)
    b.conv("conv3", 3, 16)
    b.fc("logits", 10)
    b.softmax("predictions")
    return b.build()


@pytest.fixture
def tinynet():
    return tiny_model()
