"""Experiment drivers at micro scale: every table/figure regenerates."""

import os

import pytest

from repro.experiments import Context, Scale, make_context
from repro.experiments import common as common_mod
from repro.experiments.cli import DRIVERS, main

MICRO = Scale(
    name="micro",
    models=("AlexNet v2",),
    worker_counts=(2,),
    ps_counts=(1,),
    iterations=2,
    warmup=0,
    consistency_runs=12,
    loss_iterations=20,
)


@pytest.fixture
def ctx(tmp_path):
    return Context(scale=MICRO, results_dir=str(tmp_path), verbose=False)


def test_make_context_env(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    monkeypatch.delenv("REPRO_FULL", raising=False)
    assert make_context().scale.name == "quick"
    monkeypatch.setenv("REPRO_SCALE", "full")
    assert make_context().scale.name == "full"
    monkeypatch.delenv("REPRO_SCALE")
    monkeypatch.setenv("REPRO_FULL", "1")
    assert make_context().scale.name == "full"
    assert make_context(full=False).scale.name == "quick"


def test_ps_for_workers_ratio():
    assert [common_mod.ps_for_workers(w) for w in (1, 2, 4, 8, 16)] == [1, 1, 1, 2, 4]


@pytest.mark.parametrize("name", sorted(DRIVERS))
def test_driver_produces_rows_and_csv(ctx, name):
    out = DRIVERS[name](ctx)
    assert out.rows, f"{name} produced no rows"
    assert os.path.exists(out.csv_path)
    assert out.text


def test_table1_rows_cover_all_models(ctx):
    out = DRIVERS["table1"](ctx)
    assert len(out.rows) == 10
    assert all("params" in r and "ops_inf" in r for r in out.rows)


def test_fig8_reports_identical_curves(ctx):
    out = DRIVERS["fig8"](ctx)
    assert out.extras["identical"] is True


def test_fig12_extras_have_fit(ctx):
    out = DRIVERS["fig12"](ctx)
    assert 0.0 <= out.extras["r2"] <= 1.0
    assert out.extras["p95_tac"] >= out.extras["p95_baseline"]


def test_cli_runs_selected_driver(tmp_path, capsys):
    rc = main(["table1", "--results-dir", str(tmp_path), "--quiet"])
    assert rc == 0
    assert os.path.exists(os.path.join(tmp_path, "table1_models.csv"))


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["figure99"])
