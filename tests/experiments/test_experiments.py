"""Scenario registry at micro scale: every table/figure regenerates."""

import os

import pytest

from repro.api import execute_scenario, scenario, scenario_names
from repro.experiments import Context, Scale, make_context
from repro.experiments import common as common_mod
from repro.experiments.cli import main

MICRO = Scale(
    name="micro",
    models=("AlexNet v2",),
    worker_counts=(2,),
    ps_counts=(1,),
    iterations=2,
    warmup=0,
    consistency_runs=12,
    loss_iterations=20,
)


@pytest.fixture
def ctx(tmp_path):
    return Context(scale=MICRO, results_dir=str(tmp_path), verbose=False)


def test_make_context_env(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    monkeypatch.delenv("REPRO_FULL", raising=False)
    assert make_context().scale.name == "quick"
    monkeypatch.setenv("REPRO_SCALE", "full")
    assert make_context().scale.name == "full"
    monkeypatch.delenv("REPRO_SCALE")
    monkeypatch.setenv("REPRO_FULL", "1")
    assert make_context().scale.name == "full"
    assert make_context(full=False).scale.name == "quick"


def test_ps_for_workers_ratio():
    assert [common_mod.ps_for_workers(w) for w in (1, 2, 4, 8, 16)] == [1, 1, 1, 2, 4]


@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_scenario_produces_rows_and_csv(ctx, name):
    out = execute_scenario(ctx, scenario(name))
    assert out.rows, f"{name} produced no rows"
    paths = out.save(ctx.results_dir)
    assert os.path.exists(paths[out.name])
    assert out.text
    assert out.provenance.scenario == name


def test_table1_rows_cover_all_models(ctx):
    out = execute_scenario(ctx, "table1")
    assert len(out.rows) == 10
    assert all("params" in r and "ops_inf" in r for r in out.rows)


def test_fig8_reports_identical_curves(ctx):
    out = execute_scenario(ctx, "fig8")
    assert out.extras["identical"] is True


def test_fig12_extras_have_fit(ctx):
    out = execute_scenario(ctx, "fig12")
    assert 0.0 <= out.extras["r2"] <= 1.0
    assert out.extras["p95_tac"] >= out.extras["p95_baseline"]


# -- make_spec error paths ---------------------------------------------

def test_make_spec_unknown_backend_lists_available():
    with pytest.raises(KeyError, match="unknown communication backend"):
        common_mod.make_spec("carrier-pigeon", n_workers=2)
    with pytest.raises(KeyError, match="allreduce"):
        common_mod.make_spec("carrier-pigeon", n_workers=2)


def test_make_spec_bad_kwargs_names_accepted_fields():
    with pytest.raises(TypeError) as exc:
        common_mod.make_spec("ps", n_workers=2, warp_drive=9)
    message = str(exc.value)
    assert "invalid arguments for backend 'ps'" in message
    assert "ClusterSpec" in message
    # the spec type's accepted fields are spelled out
    assert "n_workers" in message and "n_ps" in message and "workload" in message


def test_make_spec_bad_kwargs_collective_backend():
    with pytest.raises(TypeError, match="partition_bytes"):
        common_mod.make_spec("allreduce", n_workers=2, topology="ring", chunx=1)


def test_make_spec_valid_specs_still_build():
    assert common_mod.make_spec("ps", n_workers=4, n_ps=1).n_workers == 4
    spec = common_mod.make_spec("allreduce", n_workers=4, topology="ring")
    assert spec.topology == "ring"


# -- the deprecated driver layer stays deleted --------------------------

def test_driver_shims_are_gone():
    """The legacy ``repro.experiments.<driver>.run(ctx)`` modules were
    deprecated for a release and then removed; scenarios are reachable
    only through the registry/engine (and the CLI shell over it)."""
    import importlib

    for name in ("table1", "fig7", "allreduce", "_shim"):
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module(f"repro.experiments.{name}")


# -- CLI ----------------------------------------------------------------

def test_cli_runs_selected_scenario(tmp_path, capsys):
    rc = main(["table1", "--results-dir", str(tmp_path), "--quiet"])
    assert rc == 0
    assert os.path.exists(os.path.join(tmp_path, "table1_models.csv"))


def test_cli_rejects_unknown_scenario_with_suggestion(capsys):
    with pytest.raises(SystemExit):
        main(["figure99"])
    err = capsys.readouterr().err
    assert "unknown scenario" in err


def test_cli_suggests_near_matches(capsys):
    with pytest.raises(SystemExit):
        main(["fig77"])
    err = capsys.readouterr().err
    assert "did you mean" in err and "fig7" in err


def test_cli_rejects_unknown_name_even_alongside_all(capsys):
    # regression: 'all' must not swallow misspelled scenario names
    with pytest.raises(SystemExit):
        main(["all", "fig77"])
    err = capsys.readouterr().err
    assert "unknown scenario" in err and "fig77" in err


def test_cli_list_enumerates_surface(capsys):
    rc = main(["list"])
    assert rc == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out
    assert "allreduce_comparison.csv" in out
    assert "ps" in out and "allreduce" in out  # backends
    assert "engine kernels" in out and "python" in out
    assert "platforms" in out


def test_cli_list_is_exclusive(capsys):
    with pytest.raises(SystemExit):
        main(["list", "table1"])
