"""Sweep-runner behavior: hit/miss, rerun, dedupe, parallel == serial,
lossless serialization, and grid expansion."""

import numpy as np
import pytest

from repro.ps import ClusterSpec
from repro.sim import SimConfig, simulate_cluster, speedup_vs_baseline
from repro.sweep import (
    FnTask,
    GridSpec,
    SimCell,
    SweepRunner,
    cache_key,
    result_from_dict,
    result_to_dict,
)

CFG = SimConfig(iterations=2, warmup=0)


def cache_key_of(cell: SimCell) -> str:
    return cache_key(cell.cache_key_material())


def tiny_cells():
    return [
        SimCell(model="AlexNet v2", spec=ClusterSpec(2, 1, "training"),
                algorithm=a, config=CFG)
        for a in ("baseline", "tic")
    ]


def assert_results_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.summary() == y.summary()
        assert x.iteration_times.tolist() == y.iteration_times.tolist()
        for ix, iy in zip(x.iterations, y.iterations):
            assert ix.worker_finish == iy.worker_finish
            assert ix.efficiency.upper == iy.efficiency.upper
            assert ix.efficiency.lower == iy.efficiency.lower


class TestSerialization:
    def test_roundtrip_is_bitwise(self):
        result = simulate_cluster(
            "AlexNet v2", ClusterSpec(2, 1, "training"), algorithm="tic",
            config=SimConfig(iterations=2, warmup=1),
        )
        back = result_from_dict(result_to_dict(result))
        assert back.summary() == result.summary()
        assert back.iteration_times.tolist() == result.iteration_times.tolist()
        assert len(back.warmup) == len(result.warmup)
        assert back.warmup[0].makespan == result.warmup[0].makespan

    def test_json_roundtrip_is_bitwise(self):
        import json

        result = simulate_cluster(
            "AlexNet v2", ClusterSpec(2, 1, "training"), config=CFG
        )
        payload = json.loads(json.dumps(result_to_dict(result)))
        assert_results_identical([result_from_dict(payload)], [result])

    def test_version_check(self):
        with pytest.raises(ValueError, match="format"):
            result_from_dict({"format": 999})


class TestCacheBehavior:
    def test_second_run_hits(self, tmp_path):
        runner = SweepRunner(jobs=1, cache_dir=str(tmp_path))
        cells = tiny_cells()
        first = runner.run_cells(cells)
        assert runner.stats.misses == len(cells)
        assert runner.stats.writes == len(cells)
        second = runner.run_cells(cells)
        assert runner.stats.hits == len(cells)
        assert runner.stats.writes == len(cells)  # no re-simulation
        assert_results_identical(first, second)

    def test_cached_equals_fresh(self, tmp_path):
        cells = tiny_cells()
        cached_runner = SweepRunner(jobs=1, cache_dir=str(tmp_path))
        cached_runner.run_cells(cells)
        warm = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run_cells(cells)
        fresh = SweepRunner(jobs=1, cache_dir=None).run_cells(cells)
        assert_results_identical(warm, fresh)

    def test_rerun_recomputes(self, tmp_path):
        cells = tiny_cells()
        SweepRunner(jobs=1, cache_dir=str(tmp_path)).run_cells(cells)
        rerunner = SweepRunner(jobs=1, cache_dir=str(tmp_path), rerun=True)
        rerunner.run_cells(cells)
        assert rerunner.stats.hits == 0
        assert rerunner.stats.writes == len(cells)

    def test_no_cache_dir_disables_cache(self):
        runner = SweepRunner(jobs=1, cache_dir=None)
        runner.run_cells(tiny_cells())
        assert runner.stats.as_dict() == {"hits": 0, "misses": 0, "writes": 0}

    def test_dedupe_collapses_equal_cells(self, tmp_path):
        runner = SweepRunner(jobs=1, cache_dir=str(tmp_path))
        cells = tiny_cells()
        results = runner.run_cells(cells + cells)
        assert runner.stats.misses == len(cells)  # not 2x
        assert_results_identical(results[: len(cells)], results[len(cells):])

    def test_keep_op_times_bypasses_cache(self, tmp_path):
        runner = SweepRunner(jobs=1, cache_dir=str(tmp_path))
        cell = tiny_cells()[0].with_(
            config=CFG.with_(keep_op_times=True)
        )
        result, = runner.run_cells([cell])
        assert result.iterations[0].start is not None
        assert runner.stats.writes == 0

    def test_stale_format_entry_recomputes_and_counts_as_miss(self, tmp_path):
        import json

        runner = SweepRunner(jobs=1, cache_dir=str(tmp_path))
        cells = tiny_cells()
        runner.run_cells(cells)
        # Corrupt one entry with a future format version.
        cache = runner._cache
        victim = cache.path(sorted(
            key for key in (
                cache_key_of(c) for c in cells
            )
        )[0])
        with open(victim) as fh:
            payload = json.load(fh)
        payload["format"] = 999
        with open(victim, "w") as fh:
            json.dump(payload, fh)

        fresh = SweepRunner(jobs=1, cache_dir=str(tmp_path))
        results = fresh.run_cells(cells)
        assert len(results) == len(cells)
        assert fresh.stats.hits == len(cells) - 1
        assert fresh.stats.misses == 1  # the rejected entry, reclassified
        assert fresh.stats.writes == 1  # recomputed and refreshed

    def test_fn_tasks_cache(self, tmp_path):
        runner = SweepRunner(jobs=1, cache_dir=str(tmp_path))
        task = FnTask(fn="repro.api.scenarios:model_characteristics",
                      kwargs=(("name", "AlexNet v2"),))
        first, = runner.run_tasks([task])
        assert runner.stats.misses == 1
        second, = runner.run_tasks([task])
        assert runner.stats.hits == 1
        assert first == second
        assert first["params"] > 0


class TestParallel:
    def test_parallel_equals_serial(self, tmp_path):
        cells = GridSpec(
            models=("AlexNet v2", "Inception v1"),
            workloads=("training", "inference"),
            worker_counts=(2,),
            ps_counts=(1,),
            algorithms=("baseline", "tic"),
        ).cells(CFG)
        serial = SweepRunner(jobs=1, cache_dir=None).run_cells(cells)
        parallel = SweepRunner(jobs=2, cache_dir=None).run_cells(cells)
        assert_results_identical(serial, parallel)

    def test_parallel_tasks_equal_serial(self):
        tasks = [
            FnTask(fn="repro.api.scenarios:model_characteristics",
                   kwargs=(("name", name),))
            for name in ("AlexNet v2", "Inception v1")
        ]
        serial = SweepRunner(jobs=1).run_tasks(tasks)
        parallel = SweepRunner(jobs=2).run_tasks(tasks)
        assert serial == parallel


class TestSpeedups:
    def test_matches_seed_helper(self):
        spec = ClusterSpec(2, 1, "training")
        cell = SimCell(model="AlexNet v2", spec=spec, algorithm="tic", config=CFG)
        (gain, sched, base), = SweepRunner(jobs=1).run_speedups([cell])
        ref_gain, ref_sched, ref_base = speedup_vs_baseline(
            "AlexNet v2", spec, algorithm="tic", config=CFG
        )
        assert gain == ref_gain
        assert_results_identical([sched, base], [ref_sched, ref_base])


class TestGridSpec:
    def test_expansion_size_and_order(self):
        grid = GridSpec(
            models=("A", "B"),
            workloads=("inference", "training"),
            worker_counts=(2, 4),
            ps_counts=(1, 2),
            algorithms=("tic",),
        )
        cells = list(grid.iter_cells(CFG))
        assert len(cells) == len(grid) == 16
        assert cells[0].spec.workload == "inference"
        assert [c.model for c in cells[:4]] == ["A"] * 4
        assert [c.spec.n_ps for c in cells[:4]] == [1, 2, 1, 2]

    def test_ps_from_workers_policy(self):
        grid = GridSpec(
            models=("A",), worker_counts=(2, 4, 8, 16), ps_from_workers=True
        )
        cells = grid.cells(CFG)
        assert len(cells) == len(grid) == 4
        assert [c.spec.n_ps for c in cells] == [1, 1, 2, 4]
