"""Size-capped LRU eviction for the sweep result cache."""

from __future__ import annotations

import os

import pytest

from repro.experiments import cli
from repro.experiments.common import make_context
from repro.sweep.cache import ResultCache, cache_key
from repro.sweep.runner import SweepRunner


def fill(cache: ResultCache, n: int, payload_bytes: int = 200) -> list[str]:
    """Create n entries with strictly increasing mtimes; returns keys in
    oldest-first order."""
    keys = []
    for i in range(n):
        key = cache_key(f"entry-{i}")
        cache.put(key, {"value": "x" * payload_bytes, "i": i})
        os.utime(cache.path(key), (1_000_000 + i, 1_000_000 + i))
        keys.append(key)
    return keys


def entry_size(cache: ResultCache, key: str) -> int:
    return os.stat(cache.path(key)).st_size


def test_gc_evicts_oldest_first(tmp_path):
    cache = ResultCache(str(tmp_path))
    keys = fill(cache, 6)
    size = entry_size(cache, keys[0])
    summary = cache.gc(max_bytes=3 * size)
    assert summary["entries_removed"] == 3
    assert summary["entries_kept"] == 3
    for key in keys[:3]:
        assert key not in cache
    for key in keys[3:]:
        assert key in cache


def test_gc_noop_under_cap(tmp_path):
    cache = ResultCache(str(tmp_path))
    keys = fill(cache, 3)
    summary = cache.gc(max_bytes=10 * entry_size(cache, keys[0]))
    assert summary["entries_removed"] == 0
    assert cache.entry_count() == 3


def test_gc_zero_cap_empties_cache_and_prunes_dirs(tmp_path):
    cache = ResultCache(str(tmp_path))
    fill(cache, 4)
    summary = cache.gc(max_bytes=0)
    assert summary["entries_kept"] == 0
    assert cache.entry_count() == 0
    # fan-out subdirectories are pruned, the root survives
    assert os.path.isdir(cache.root)
    assert os.listdir(cache.root) == []


def test_get_refreshes_recency(tmp_path):
    """A cache hit bumps the entry to most-recently-used: LRU, not FIFO."""
    cache = ResultCache(str(tmp_path))
    keys = fill(cache, 4)
    assert cache.get(keys[0]) is not None  # touch the oldest
    size = entry_size(cache, keys[0])
    cache.gc(max_bytes=2 * size)
    assert keys[0] in cache  # survived: recently used
    assert keys[1] not in cache and keys[2] not in cache


def test_gc_removes_stale_tmp_files(tmp_path):
    cache = ResultCache(str(tmp_path))
    fill(cache, 1)
    stale = tmp_path / "ab" / ".tmp-crashed.json"
    stale.parent.mkdir(exist_ok=True)
    stale.write_text("{}")
    cache.gc(max_bytes=10**9)
    assert not stale.exists()


def test_sweep_runner_gc_passthrough(tmp_path):
    runner = SweepRunner(cache_dir=str(tmp_path / "cache"))
    fill(runner._cache, 3, payload_bytes=2**20)  # ~1 MiB each
    summary = runner.gc_cache(max_mb=1.5)
    assert summary["entries_removed"] == 2
    assert SweepRunner(cache_dir=None).gc_cache(max_mb=1) is None


def test_context_cap_from_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "12.5")
    ctx = make_context(results_dir=str(tmp_path))
    assert ctx.cache_max_mb == 12.5
    monkeypatch.delenv("REPRO_CACHE_MAX_MB")
    assert make_context(results_dir=str(tmp_path)).cache_max_mb is None


def test_cli_cache_gc_entry_point(tmp_path, capsys):
    """`repro experiments --cache-gc` works with no experiments named and
    empties the cache when no cap is configured."""
    cache = ResultCache(str(tmp_path / ".sweep-cache"))
    fill(cache, 3)
    rc = cli.main(["--cache-gc", "--results-dir", str(tmp_path)])
    assert rc == 0
    assert cache.entry_count() == 0
    assert "sweep cache gc" in capsys.readouterr().out


def test_cli_cache_gc_respects_cap(tmp_path):
    cache = ResultCache(str(tmp_path / ".sweep-cache"))
    keys = fill(cache, 4, payload_bytes=2**20)
    rc = cli.main(
        ["--cache-gc", "--results-dir", str(tmp_path), "--cache-max-mb", "2.5",
         "--quiet"]
    )
    assert rc == 0
    assert cache.entry_count() == 2
    assert keys[-1] in cache


def test_cli_requires_experiment_or_gc(tmp_path, capsys):
    with pytest.raises(SystemExit):
        cli.main(["--results-dir", str(tmp_path)])
