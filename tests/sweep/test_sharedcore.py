"""Cross-process shared cores: zero-copy fidelity + lifecycle hygiene.

Covers the ISSUE 4 sweep tentpole: workers attaching a published
:class:`~repro.sim.engine.CompiledCore` must see byte-identical arrays
and produce bit-identical simulations; the persistent pool must actually
persist; and shared-memory blocks must never outlive their runner
(``close``/``finally``/``atexit``), even when the sweep dies mid-run.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.ps import ClusterSpec, build_cluster_graph
from repro.models import build_model
from repro.sim import CompiledCore, SimConfig, SimVariant
from repro.sweep import FnTask, SimCell, SweepRunner, sharedcore
from repro.timing import ENV_G

CFG = SimConfig(iterations=2, warmup=0)


def make_core() -> CompiledCore:
    ir = build_model("AlexNet v2")
    cluster = build_cluster_graph(ir, ClusterSpec(2, 1, "training"))
    return CompiledCore(cluster, ENV_G)


def grid_cells() -> list[SimCell]:
    cells = [
        SimCell(model="AlexNet v2", spec=ClusterSpec(2, 1, "training"),
                algorithm=a, config=CFG)
        for a in ("baseline", "tic", "tac")
    ]
    # a second group with a single cell (exercises the legacy lane of
    # the mixed phase-A map) and a different seed variant
    cells.append(SimCell(model="AlexNet v2", spec=ClusterSpec(4, 1, "training"),
                         algorithm="tic", config=CFG))
    cells.append(SimCell(model="AlexNet v2", spec=ClusterSpec(2, 1, "training"),
                         algorithm="tic", config=CFG.with_(seed=3)))
    return cells


def core_checksum(core: CompiledCore) -> str:
    digest = hashlib.sha256()
    for attr in sharedcore.ARRAY_ATTRS:
        digest.update(np.ascontiguousarray(getattr(core, attr)).tobytes())
    return digest.hexdigest()


def _attach_checksum(handle) -> tuple[int, str]:
    """Worker probe: attach and fingerprint the shared arrays."""
    core, _meta = sharedcore.attach(handle)
    return os.getpid(), core_checksum(core)


def _pid(_=None, tag=None) -> int:
    return os.getpid()


def assert_unlinked(names):
    """The given blocks are gone (other live runners' blocks may remain)."""
    live = set(sharedcore.leaked_segments())
    assert not (set(names) & live), (names, live)


def assert_results_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.summary() == y.summary()
        assert x.iteration_times.tolist() == y.iteration_times.tolist()


# ----------------------------------------------------------------------
# publish/attach fidelity
# ----------------------------------------------------------------------
class TestPublishAttach:
    def test_roundtrip_arrays_and_simulation(self):
        core = make_core()
        handle = sharedcore.publish(
            core, meta={"model": "AlexNet v2", "batch_size": 1, "n_params": 1}
        )
        try:
            attached, meta = sharedcore.attach(handle)
            assert meta["model"] == "AlexNet v2"
            assert core_checksum(attached) == core_checksum(core)
            assert attached.n == core.n
            assert attached.param_groups == core.param_groups
            assert attached.resource_names() == core.resource_names()
            # the attached arrays are zero-copy views, enforced read-only
            assert not attached.op_res.flags.writeable
            with pytest.raises(ValueError):
                attached.op_res[0] = 1
            # simulations on the attached core are bit-identical
            cfg = SimConfig(iterations=1, seed=4)
            a = SimVariant(core, None, cfg).run_iteration(0)
            b = SimVariant(attached, None, cfg).run_iteration(0)
            assert a.makespan == b.makespan
            assert np.array_equal(a.start, b.start)
            assert np.array_equal(a.end, b.end)
        finally:
            sharedcore.detach_all()
            handle.unlink()
        assert_unlinked([handle.shm_name])

    def test_attach_is_cached_per_process(self):
        core = make_core()
        handle = sharedcore.publish(core, meta={})
        try:
            first, _ = sharedcore.attach(handle)
            again, _ = sharedcore.attach(handle)
            assert first is again
        finally:
            sharedcore.detach_all()
            handle.unlink()

    def test_unlink_is_idempotent(self):
        handle = sharedcore.publish(make_core(), meta={})
        assert handle.shm_name in sharedcore.leaked_segments()
        handle.unlink()
        handle.unlink()  # second call is a no-op, not an error
        assert_unlinked([handle.shm_name])

    def test_workers_see_identical_cores(self):
        """Every pool worker attaches the same bytes the parent published."""
        from concurrent.futures import ProcessPoolExecutor

        core = make_core()
        handle = sharedcore.publish(core, meta={})
        want = core_checksum(core)
        try:
            with ProcessPoolExecutor(max_workers=2) as pool:
                got = list(pool.map(_attach_checksum, [handle] * 4))
            assert {checksum for _pid_, checksum in got} == {want}
            assert len({pid for pid, _ in got}) >= 1  # ran somewhere real
        finally:
            handle.unlink()
        assert_unlinked([handle.shm_name])


# ----------------------------------------------------------------------
# runner integration
# ----------------------------------------------------------------------
class TestSharedSweep:
    def test_shared_parallel_equals_serial(self):
        cells = grid_cells()
        serial = SweepRunner(jobs=1).run_cells(cells)
        with SweepRunner(jobs=2) as runner:
            parallel = runner.run_cells(cells)
            assert runner._group_cores  # the multi-cell group was published
            # cross-call reuse: same grid again attaches, not recompiles
            published = {
                k: p.handle.shm_name for k, p in runner._group_cores.items()
            }
            again = runner.run_cells(cells)
            assert {
                k: p.handle.shm_name for k, p in runner._group_cores.items()
            } == published
        assert_results_identical(serial, parallel)
        assert_results_identical(serial, again)
        assert_unlinked(published.values())

    def test_reused_core_with_new_algorithm_is_not_baseline(self):
        """Regression: a core published for {baseline, tic} must not
        silently serve a later tic_plus/tac cell as baseline — the
        schedule set is topped up on reuse."""
        spec = ClusterSpec(2, 1, "training")
        first_call = [
            SimCell(model="AlexNet v2", spec=spec, algorithm=a, config=CFG)
            for a in ("baseline", "tic")
        ]
        second_call = [
            SimCell(model="AlexNet v2", spec=spec, algorithm=a, config=CFG)
            for a in ("tac", "tic_plus")
        ]
        third_call = [  # single-cell batch against the published core
            SimCell(model="AlexNet v2", spec=spec, algorithm="tac",
                    config=CFG.with_(seed=5))
        ]
        serial = SweepRunner(jobs=1).run_cells(
            first_call + second_call + third_call
        )
        with SweepRunner(jobs=2) as runner:
            got = runner.run_cells(first_call)
            got += runner.run_cells(second_call)  # reuses the published core
            got += runner.run_cells(third_call)  # 1 pending cell, still shared
            assert len(runner._group_cores) == 1  # never republished
        assert_results_identical(serial, got)
        assert [r.algorithm for r in got] == [
            "baseline", "tic", "tac", "tic_plus", "tac",
        ]

    def test_batched_lane_equals_per_cell_lane(self):
        """ISSUE 8: the variant-batched phase-B lane (chunks of a
        group's cells per worker task) is bit-identical to one task per
        cell, and telemetry shows which lane ran."""
        cells = grid_cells()
        with SweepRunner(jobs=2, batch_cells=False) as per_cell:
            dispatched = per_cell.run_cells(cells)
            assert per_cell.telemetry.get("shared_batch_tasks") == 0
            assert per_cell.telemetry.get("shared_cell_tasks") > 0
        with SweepRunner(jobs=2) as batched:  # batch_cells defaults on
            fanned = batched.run_cells(cells)
            assert batched.telemetry.get("shared_batch_tasks") > 0
        assert_results_identical(dispatched, fanned)

    def test_batched_group_with_wizarded_algorithm_never_baseline(self):
        """ISSUE 8 regression: a batched group whose schedule was JUST
        wizarded (phase A of the same run_cells call) must carry that
        schedule into the batched task — never silently run baseline."""
        spec = ClusterSpec(2, 1, "training")
        cells = [
            SimCell(model="AlexNet v2", spec=spec, algorithm=a, config=CFG)
            for a in ("baseline", "tic", "tac", "tic_plus")
        ]
        serial = SweepRunner(jobs=1).run_cells(cells)
        with SweepRunner(jobs=2) as runner:
            got = runner.run_cells(cells)
            assert runner.telemetry.get("shared_batch_tasks") > 0
            # top-up reuse stays correct through the batched lane too
            more = runner.run_cells(
                [SimCell(model="AlexNet v2", spec=spec, algorithm="tac",
                         config=CFG.with_(seed=5))]
            )
            assert len(runner._group_cores) == 1
        assert [r.algorithm for r in got] == ["baseline", "tic", "tac",
                                              "tic_plus"]
        assert more[0].algorithm == "tac"
        assert_results_identical(serial, got)
        # distinct algorithms must differ from baseline (tic reorders):
        # equality here would mean the schedule was dropped in transit
        base, tic = got[0], got[1]
        assert base.iteration_times.tolist() != tic.iteration_times.tolist()

    def test_shared_matches_legacy_grouped_path(self):
        cells = grid_cells()
        with SweepRunner(jobs=2, share_cores=False) as legacy:
            grouped = legacy.run_cells(cells)
        with SweepRunner(jobs=2) as shared:
            fanned = shared.run_cells(cells)
        assert_results_identical(grouped, fanned)

    def test_cached_shared_and_serial_share_entries(self, tmp_path):
        cells = grid_cells()
        with SweepRunner(jobs=2, cache_dir=str(tmp_path)) as runner:
            fresh = runner.run_cells(cells)
            assert runner.stats.writes == len(set(cells))
        warm = SweepRunner(jobs=1, cache_dir=str(tmp_path))
        hits = warm.run_cells(cells)
        assert warm.stats.hits == len(set(cells))
        assert_results_identical(fresh, hits)

    def test_failed_group_prep_leaks_nothing(self):
        """A wizard failure during group prep must not strand a published
        block (the wizard runs before publish; an unreachable handle
        could never be unlinked). The resilient runner quarantines the
        failing cell after its retries and completes the rest of the
        batch instead of raising."""
        before = set(sharedcore.leaked_segments())
        cells = [
            SimCell(model="AlexNet v2", spec=ClusterSpec(2, 1, "training"),
                    algorithm=a, config=CFG)
            for a in ("baseline", "nonexistent_algo")
        ]
        with SweepRunner(jobs=2, retry_backoff_s=0.0) as runner:
            results = runner.run_cells(cells)
            assert results[0] is not None  # the healthy cell completed
            assert results[1] is None  # the poisoned cell was given up on
            assert len(runner.quarantined) == 1
            cell, error = runner.quarantined[0]
            assert cell.algorithm == "nonexistent_algo"
            assert "nonexistent_algo" in error
            counters = runner.telemetry.as_dict()
            assert counters["quarantined"] == 1
            assert counters["retries"] >= 1
        assert set(sharedcore.leaked_segments()) <= before

    def test_close_unlinks_published_cores(self):
        runner = SweepRunner(jobs=2)
        runner.run_cells(grid_cells())
        names = [p.handle.shm_name for p in runner._group_cores.values()]
        assert names
        live = set(sharedcore.leaked_segments())
        assert set(names) <= live
        runner.close()
        assert runner._group_cores == {}
        assert_unlinked(names)

    def test_pool_is_persistent_across_maps(self):
        with SweepRunner(jobs=2) as runner:
            first = runner._map(_pid, list(range(8)))
            pool = runner._pool
            assert pool is not None
            second = runner._map(_pid, list(range(8)))
            assert runner._pool is pool
            assert set(first) & set(second)  # same worker processes
            assert os.getpid() not in first
        assert runner._pool is None

    def test_fn_tasks_use_persistent_pool(self):
        with SweepRunner(jobs=2) as runner:
            runner.run_cells(grid_cells()[:3])
            pool = runner._pool
            assert pool is not None
            # two DISTINCT tasks (identical ones dedupe to a single
            # pending item, which _map would run inline in the parent)
            values = runner.run_tasks(
                [FnTask.make(_pid, tag=1), FnTask.make(_pid, tag=2)]
            )
            assert runner._pool is pool  # same pool, not a fresh spawn
            assert os.getpid() not in values  # ran on workers, not inline


def test_crashed_sweep_leaves_no_segments(tmp_path):
    """A sweep that dies mid-run must not leak /dev/shm blocks: the
    runner's atexit hook unlinks everything it published."""
    script = textwrap.dedent(
        """
        import sys
        from repro.ps import ClusterSpec
        from repro.sim import SimConfig
        from repro.sweep import SimCell, SweepRunner, sharedcore

        cells = [
            SimCell(model="AlexNet v2", spec=ClusterSpec(2, 1, "training"),
                    algorithm=a, config=SimConfig(iterations=1))
            for a in ("baseline", "tic")
        ]
        runner = SweepRunner(jobs=2)
        runner.run_cells(cells)
        mine = [p.handle.shm_name for p in runner._group_cores.values()]
        assert mine and set(mine) <= set(sharedcore.leaked_segments())
        print("LIVE", *mine, flush=True)
        raise RuntimeError("simulated crash before close()")
        """
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True
    )
    assert proc.returncode != 0
    assert "simulated crash" in proc.stderr
    live = [ln for ln in proc.stdout.splitlines() if ln.startswith("LIVE")]
    # blocks named by the crashed process existed mid-run...
    names = live[0].split()[1:]
    assert names
    # ...and its atexit hook removed them on the way down
    assert not (set(names) & set(sharedcore.leaked_segments()))
