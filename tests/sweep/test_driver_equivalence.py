"""End-to-end: a figure driver through the sweep runner reproduces the
seed's hand-rolled serial loop exactly, serial == parallel, and a warm
cache serves the same rows without simulating."""

import csv

import pytest

from repro.api import execute_scenario
from repro.experiments import Context, Scale
from repro.ps import ClusterSpec
from repro.sim import speedup_vs_baseline


def run_fig7(ctx: Context):
    """The scenario path every caller now goes through (the deprecated
    ``experiments.fig7.run`` shim routes here too)."""
    out = execute_scenario(ctx, "fig7")
    paths = out.save(ctx.results_dir)
    return out, paths[out.name]

MICRO = Scale(
    name="micro",
    models=("AlexNet v2", "Inception v1"),
    worker_counts=(2, 4),
    ps_counts=(1,),
    iterations=2,
    warmup=0,
    consistency_runs=8,
    loss_iterations=10,
)


def micro_ctx(tmp_path, **overrides) -> Context:
    kwargs = dict(scale=MICRO, results_dir=str(tmp_path), verbose=False)
    kwargs.update(overrides)
    return Context(**kwargs)


def seed_style_fig7_rows(ctx: Context, algorithm: str = "tic") -> list[dict]:
    """The seed's original fig7 loop, kept verbatim as the reference."""
    rows = []
    for workload in ("inference", "training"):
        for model in ctx.scale.models:
            for w in ctx.scale.worker_counts:
                spec = ClusterSpec(
                    n_workers=w, n_ps=max(1, w // 4), workload=workload
                )
                gain, sched, base = speedup_vs_baseline(
                    model, spec, algorithm=algorithm, platform="envG",
                    config=ctx.sim_config(),
                )
                rows.append(
                    {
                        "model": model,
                        "workload": workload,
                        "workers": w,
                        "ps": spec.n_ps,
                        "baseline_sps": round(base.throughput, 1),
                        f"{algorithm}_sps": round(sched.throughput, 1),
                        "speedup_pct": round(gain, 1),
                    }
                )
    return rows


@pytest.fixture(scope="module")
def reference_rows(tmp_path_factory):
    ctx = micro_ctx(tmp_path_factory.mktemp("ref"), use_cache=False)
    return seed_style_fig7_rows(ctx)


def test_fig7_matches_seed_serial_loop(tmp_path, reference_rows):
    out, _ = run_fig7(micro_ctx(tmp_path))
    assert out.rows == reference_rows


def test_fig7_parallel_matches_serial(tmp_path, reference_rows):
    out, _ = run_fig7(micro_ctx(tmp_path, jobs=2, use_cache=False))
    assert out.rows == reference_rows


def test_fig7_warm_cache_matches_and_skips_simulation(tmp_path, reference_rows):
    cold_ctx = micro_ctx(tmp_path)
    cold, _ = run_fig7(cold_ctx)
    assert cold_ctx.sweep.stats.hits == 0

    warm_ctx = micro_ctx(tmp_path)
    warm, warm_csv = run_fig7(warm_ctx)
    assert warm.rows == cold.rows == reference_rows
    assert warm_ctx.sweep.stats.misses == 0  # everything served from cache
    assert warm_ctx.sweep.stats.hits > 0

    with open(warm_csv) as fh:
        csv_rows = list(csv.DictReader(fh))
    assert len(csv_rows) == len(reference_rows)
    assert csv_rows[0]["speedup_pct"] == str(reference_rows[0]["speedup_pct"])
