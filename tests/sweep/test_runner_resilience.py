"""Crash-resilient sweep execution (ISSUE 9).

The resilient :class:`~repro.sweep.runner.SweepRunner` must survive the
three field failure modes without losing the batch:

* a **worker process dying mid-sweep** (OOM killer, segfault): the
  broken pool is rebuilt, in-flight cells are retried and the batch
  completes with the exact same results a healthy run produces;
* a **cell that keeps failing**: bounded retries, then quarantine — the
  rest of the batch completes and the failed cell surfaces as ``None``
  plus a ``(cell, error)`` row on :attr:`SweepRunner.quarantined`;
* a **cell that hangs**: ``cell_timeout_s`` writes it off and retries
  it on a fresh task.

The SIGKILL test is the acceptance scenario: kill a pool worker while a
multi-cell sweep is in flight, assert the run completes, results match
a clean serial run, ``pool_rebuilds >= 1`` and nothing is quarantined.
"""

from __future__ import annotations

import os
import signal
import threading
import time

from repro.ps import ClusterSpec
from repro.sim import SimConfig
from repro.sweep import SimCell, SweepRunner

CFG = SimConfig(iterations=2, warmup=0)


def grid_cells():
    return [
        SimCell(model="AlexNet v2", spec=ClusterSpec(2, 1, "training"),
                algorithm=a, config=CFG.with_(seed=s))
        for a in ("baseline", "tic")
        for s in (0, 1, 2)
    ]


def assert_results_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.summary() == y.summary()
        assert x.iteration_times.tolist() == y.iteration_times.tolist()


class TestPoolCrashRecovery:
    def test_sigkill_mid_sweep_completes_with_rebuilt_pool(self):
        """Kill one pool worker while the sweep is in flight: the runner
        rebuilds the pool, retries every lost cell and the batch
        completes — same results as a clean run, empty quarantine."""
        cells = grid_cells()
        with SweepRunner(jobs=1) as serial:
            want = serial.run_cells(cells)

        with SweepRunner(jobs=2, retry_backoff_s=0.0) as runner:
            pool = runner._get_pool()
            # spawn the workers now so there is something to kill, then
            # shoot one shortly after the sweep starts.
            victims = []

            def shoot() -> None:
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    procs = list(pool._processes.values())
                    if procs:
                        victims.append(procs[0].pid)
                        os.kill(procs[0].pid, signal.SIGKILL)
                        return
                    time.sleep(0.01)

            killer = threading.Timer(0.05, shoot)
            killer.start()
            try:
                got = runner.run_cells(cells)
            finally:
                killer.cancel()
            assert victims, "test harness never found a worker to kill"
            counters = runner.telemetry.as_dict()
            assert counters.get("pool_rebuilds", 0) >= 1
            assert runner.quarantined == []
            assert all(r is not None for r in got)
        assert_results_identical(got, want)

    def test_broken_pool_map_lane_retries_on_fresh_pool(self):
        """The classic map lane (fn tasks, one-task-per-group) also
        survives a dead pool: one rebuild, one retry, same values."""
        with SweepRunner(jobs=2) as runner:
            pool = runner._get_pool()
            pids = {pool.submit(os.getpid).result() for _ in range(8)}
            os.kill(next(iter(pids)), signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while not pool._broken and time.monotonic() < deadline:
                time.sleep(0.01)
            # the map raises BrokenProcessPool internally; the runner
            # rebuilds and retries, so the caller sees only the values.
            assert runner._map(len, [[1], [1, 2], [1, 2, 3]]) == [1, 2, 3]
            assert runner.telemetry.as_dict().get("pool_rebuilds", 0) >= 1


class TestQuarantine:
    def test_poison_cell_quarantined_batch_completes(self):
        cells = grid_cells()[:2] + [
            SimCell(model="AlexNet v2", spec=ClusterSpec(2, 1, "training"),
                    algorithm="no_such_algorithm", config=CFG)
        ]
        with SweepRunner(jobs=2, retry_backoff_s=0.0, max_retries=1) as runner:
            got = runner.run_cells(cells)
            assert got[0] is not None and got[1] is not None
            assert got[2] is None
            assert len(runner.quarantined) == 1
            cell, error = runner.quarantined[0]
            assert cell.algorithm == "no_such_algorithm"
            assert "no_such_algorithm" in error
            counters = runner.telemetry.as_dict()
            assert counters["quarantined"] == 1
            # the whole group fails with the poison cell, so every
            # member gets one retry; only the poison cell exhausts them
            assert counters["retries"] >= 1

    def test_retry_backoff_is_exponential(self):
        """attempt n sleeps retry_backoff_s * 2**(n-1); quarantine after
        max_retries attempts."""
        t0 = time.perf_counter()
        cells = [
            SimCell(model="AlexNet v2", spec=ClusterSpec(2, 1, "training"),
                    algorithm="no_such_algorithm", config=CFG),
            SimCell(model="AlexNet v2", spec=ClusterSpec(2, 1, "training"),
                    algorithm="still_wrong", config=CFG),
        ]
        with SweepRunner(jobs=2, retry_backoff_s=0.01, max_retries=2) as runner:
            got = runner.run_cells(cells)
            assert got == [None, None]
            assert len(runner.quarantined) == 2
            assert runner.telemetry.as_dict()["quarantined"] == 2
        assert time.perf_counter() - t0 > 0.01  # backoff actually slept


class TestTimeout:
    def test_hung_cell_times_out_and_retries(self):
        """A cell task exceeding cell_timeout_s is written off, retried
        and — when the retry also hangs — quarantined, while healthy
        cells complete untouched."""
        cells = grid_cells()
        with SweepRunner(
            jobs=2, cell_timeout_s=120.0, retry_backoff_s=0.0
        ) as runner:
            got = runner.run_cells(cells)
            # generous timeout: nothing should trip on a healthy sweep
            assert all(r is not None for r in got)
            assert runner.quarantined == []
            assert "retries" not in runner.telemetry.as_dict()
