"""Cache-poisoning guards: engine revision in cell keys, graph memo."""

from __future__ import annotations

import json

from repro import backends
from repro.ps import ClusterSpec
from repro.sim import ENGINE_REV, SimConfig
from repro.sweep import SimCell

from ..conftest import tiny_model


def test_sim_cell_key_pins_engine_revision():
    """A cell cached under one compiled-array layout must never be served
    to an engine with another: the revision is part of the key payload."""
    cell = SimCell(model="tinynet", spec=ClusterSpec(2, 1, "training"),
                   config=SimConfig(iterations=1))
    payload = cell.key_payload()
    assert payload["engine_rev"] == ENGINE_REV
    # and it survives the canonical-JSON round trip into key material
    assert f'"engine_rev":{ENGINE_REV}' in cell.cache_key_material().replace(" ", "")


def test_code_fingerprint_folds_engine_revision(monkeypatch):
    from repro.sweep import fingerprint as fp

    base = fp.code_fingerprint()
    try:
        fp.code_fingerprint.cache_clear()
        monkeypatch.setattr("repro.sim.engine.ENGINE_REV", ENGINE_REV + 1)
        bumped = fp.code_fingerprint()
    finally:
        monkeypatch.undo()
        fp.code_fingerprint.cache_clear()
    assert bumped != base
    assert fp.code_fingerprint() == base  # restored after the monkeypatch


def test_cache_key_material_is_json(tmp_path):
    cell = SimCell(model="tinynet", spec=ClusterSpec(1, 1, "inference"))
    material = json.loads(cell.cache_key_material())
    assert material["payload"]["kind"] == "sim_cell"


# ----------------------------------------------------------------------
# graph memo
# ----------------------------------------------------------------------
def test_build_comm_graph_memoizes_plain_calls():
    backends.clear_graph_memo()
    ir = tiny_model()
    spec = ClusterSpec(2, 1, "training")
    a = backends.build_comm_graph(ir, spec)
    b = backends.build_comm_graph(ir, spec)
    assert a is b
    assert backends.graph_memo_size() == 1
    # a different spec is a different graph
    c = backends.build_comm_graph(ir, ClusterSpec(3, 1, "training"))
    assert c is not a
    assert backends.graph_memo_size() == 2
    backends.clear_graph_memo()


def test_build_comm_graph_kwargs_bypass_memo():
    """Builder kwargs (e.g. unrolled windows) return private instances —
    callers may mutate those freely."""
    backends.clear_graph_memo()
    ir = tiny_model()
    spec = ClusterSpec(2, 1, "training")
    a = backends.build_comm_graph(ir, spec, n_iterations=2)
    b = backends.build_comm_graph(ir, spec, n_iterations=2)
    assert a is not b
    assert backends.graph_memo_size() == 0
    backends.clear_graph_memo()


def test_graph_memo_distinguishes_structurally_different_models():
    from repro.models.builder import NetBuilder

    def variant(flip: bool):
        b = NetBuilder("same_name", 8, input_hw=(16, 16))
        b.conv("conv0", 3, 8, bias=flip, bn=not flip)
        b.fc("logits", 10)
        b.softmax("predictions")
        return b.build()

    backends.clear_graph_memo()
    spec = ClusterSpec(2, 1, "training")
    a = backends.build_comm_graph(variant(True), spec)
    b = backends.build_comm_graph(variant(False), spec)
    assert a is not b
    assert backends.graph_memo_size() == 2
    backends.clear_graph_memo()


def test_graph_memo_capacity_bounded():
    backends.clear_graph_memo()
    ir = tiny_model()
    for w in range(1, backends._GRAPH_MEMO_CAP + 4):
        backends.build_comm_graph(ir, ClusterSpec(w, 1, "inference"))
    assert backends.graph_memo_size() == backends._GRAPH_MEMO_CAP
    backends.clear_graph_memo()
