"""Cache-key stability and on-disk cache behavior."""

import json
import os

from repro.ps import ClusterSpec
from repro.sim import SimConfig
from repro.sweep import FnTask, ResultCache, SimCell, cache_key


def make_cell(**overrides) -> SimCell:
    base = dict(
        model="AlexNet v2",
        spec=ClusterSpec(2, 1, "training"),
        algorithm="tic",
        platform="envG",
        config=SimConfig(iterations=2, warmup=0),
    )
    base.update(overrides)
    return SimCell(**base)


class TestKeyStability:
    def test_equal_cells_equal_keys(self):
        a = make_cell()
        b = make_cell()
        assert a is not b
        assert a.cache_key_material() == b.cache_key_material()
        assert cache_key(a.cache_key_material()) == cache_key(b.cache_key_material())

    def test_key_is_stable_across_calls(self):
        cell = make_cell()
        keys = {cache_key(cell.cache_key_material()) for _ in range(5)}
        assert len(keys) == 1

    def test_every_axis_changes_the_key(self):
        base = cache_key(make_cell().cache_key_material())
        variants = [
            make_cell(model="VGG-16"),
            make_cell(spec=ClusterSpec(4, 1, "training")),
            make_cell(spec=ClusterSpec(2, 2, "training")),
            make_cell(spec=ClusterSpec(2, 1, "inference")),
            make_cell(spec=ClusterSpec(2, 1, "training", sharding="round_robin")),
            make_cell(algorithm="tac"),
            make_cell(platform="envC"),
            make_cell(batch_factor=2.0),
            make_cell(config=SimConfig(iterations=3, warmup=0)),
            make_cell(config=SimConfig(iterations=2, warmup=1)),
            make_cell(config=SimConfig(iterations=2, warmup=0, seed=7)),
            make_cell(config=SimConfig(iterations=2, warmup=0, enforcement="dag")),
            make_cell(
                config=SimConfig(iterations=2, warmup=0, grpc_reorder_prob=0.0)
            ),
            make_cell(
                config=SimConfig(
                    iterations=2, warmup=0, device_slowdown=(("worker:0", 1.5),)
                )
            ),
        ]
        keys = [cache_key(v.cache_key_material()) for v in variants]
        assert len(set(keys + [base])) == len(variants) + 1

    def test_fn_task_keys(self):
        a = FnTask(fn="repro.api.scenarios:model_characteristics",
                   kwargs=(("name", "AlexNet v2"),))
        b = FnTask(fn="repro.api.scenarios:model_characteristics",
                   kwargs=(("name", "AlexNet v2"),))
        c = FnTask(fn="repro.api.scenarios:model_characteristics",
                   kwargs=(("name", "VGG-16"),))
        assert a.cache_key_material() == b.cache_key_material()
        assert a.cache_key_material() != c.cache_key_material()

    def test_fn_task_make_sorts_kwargs(self):
        from repro.api.scenarios import model_characteristics

        task = FnTask.make(model_characteristics, name="AlexNet v2")
        assert task.fn == "repro.api.scenarios:model_characteristics"
        assert task.resolve() is model_characteristics


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache_key("some material")
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        cache.put(key, {"value": 42})
        assert key in cache
        assert cache.get(key) == {"value": 42}
        assert cache.stats.hits == 1
        assert cache.entry_count() == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache_key("material")
        cache.put(key, {"value": 1})
        with open(cache.path(key), "w") as fh:
            fh.write("{not json")
        assert cache.get(key) is None

    def test_non_utf8_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache_key("material")
        cache.put(key, {"value": 1})
        with open(cache.path(key), "wb") as fh:
            fh.write(b"\xff\xfe\x00garbage")
        assert cache.get(key) is None
        assert cache.stats.misses == 1

    def test_note_invalid_reclassifies_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache_key("material")
        cache.put(key, {"weird": True})
        assert cache.get(key) is not None
        cache.note_invalid()
        assert cache.stats.hits == 0
        assert cache.stats.misses == 1

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for i in range(5):
            cache.put(cache_key(f"m{i}"), {"value": i})
        leftovers = [
            name
            for _dir, _subdirs, files in os.walk(tmp_path)
            for name in files
            if name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_entries_are_valid_json(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache_key("material")
        cache.put(key, {"a": [1.5, None, "x"]})
        with open(cache.path(key)) as fh:
            assert json.load(fh) == {"a": [1.5, None, "x"]}
