"""Placement-policy invariants (hypothesis) + registry error paths."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.placement import (
    PlacementError,
    UnknownPlacementError,
    get_placement,
    place_jobs,
    placements,
)

POLICIES = ("dedicated", "packed", "spread", "rack_aware")


def jobs_devices(n_jobs: int, sizes: list[int]) -> list[list[str]]:
    return [
        [f"j{j}/dev:{k}" for k in range(sizes[j])]
        for j in range(n_jobs)
    ]


#: (device lists per job, slots_per_host, extra hosts beyond the minimum)
mix_shapes = st.tuples(
    st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=6),
)


@settings(max_examples=60, deadline=None)
@given(shape=mix_shapes, policy=st.sampled_from(POLICIES))
def test_every_device_maps_to_exactly_one_host(shape, policy):
    sizes, slots, extra = shape
    devices = jobs_devices(len(sizes), sizes)
    total = sum(sizes)
    n_hosts = -(-total // slots) + extra
    mapping = place_jobs(
        devices, policy, n_hosts=n_hosts, slots_per_host=slots
    )
    all_devices = [d for devs in devices for d in devs]
    assert sorted(mapping) == sorted(all_devices)
    assert all(isinstance(h, str) and h for h in mapping.values())
    if policy != "dedicated":  # dedicated ignores the host budget
        loads: dict[str, int] = {}
        for host in mapping.values():
            loads[host] = loads.get(host, 0) + 1
        assert max(loads.values()) <= slots


@settings(max_examples=60, deadline=None)
@given(shape=mix_shapes)
def test_packed_uses_minimal_hosts(shape):
    sizes, slots, extra = shape
    devices = jobs_devices(len(sizes), sizes)
    total = sum(sizes)
    mapping = place_jobs(
        devices, "packed",
        n_hosts=-(-total // slots) + extra, slots_per_host=slots,
    )
    assert len(set(mapping.values())) == -(-total // slots)


@settings(max_examples=60, deadline=None)
@given(shape=mix_shapes)
def test_spread_never_colocates_jobs_while_hosts_remain_free(shape):
    sizes, slots, extra = shape
    devices = jobs_devices(len(sizes), sizes)
    total = sum(sizes)
    n_hosts = -(-total // slots) + extra
    mapping = place_jobs(
        devices, "spread", n_hosts=n_hosts, slots_per_host=slots
    )
    job_of = {d: j for j, devs in enumerate(devices) for d in devs}
    hosts_by_host: dict[str, set[int]] = {}
    for d, h in mapping.items():
        hosts_by_host.setdefault(h, set()).add(job_of[d])
    shared = any(len(jobs) > 1 for jobs in hosts_by_host.values())
    if shared:
        # co-location is only allowed once every host is occupied
        assert len(hosts_by_host) == n_hosts


@settings(max_examples=60, deadline=None)
@given(shape=mix_shapes)
def test_dedicated_is_identity(shape):
    sizes, _slots, _extra = shape
    devices = jobs_devices(len(sizes), sizes)
    mapping = place_jobs(devices, "dedicated")
    assert mapping == {d: d for devs in devices for d in devs}


def test_spread_separates_two_jobs_given_room():
    devices = jobs_devices(2, [2, 2])
    mapping = place_jobs(devices, "spread", n_hosts=4, slots_per_host=2)
    hosts0 = {mapping[d] for d in devices[0]}
    hosts1 = {mapping[d] for d in devices[1]}
    assert not (hosts0 & hosts1)


def test_rack_aware_keeps_a_job_in_one_rack_when_it_fits():
    devices = jobs_devices(2, [3, 3])
    mapping = place_jobs(
        devices, "rack_aware", n_hosts=8, slots_per_host=2, rack_size=4
    )

    def rack(host: str) -> int:
        return int(host.split(":")[1]) // 4

    assert len({rack(mapping[d]) for d in devices[0]}) == 1
    assert len({rack(mapping[d]) for d in devices[1]}) == 1


def test_overfull_mix_raises():
    devices = jobs_devices(2, [3, 3])
    with pytest.raises(PlacementError, match="do not fit"):
        place_jobs(devices, "packed", n_hosts=1, slots_per_host=2)


def test_unknown_placement_suggests_near_matches():
    with pytest.raises(UnknownPlacementError) as exc:
        get_placement("pakced")
    message = str(exc.value)
    assert "unknown placement policy" in message
    assert "packed" in message and "did you mean" in message
    assert exc.value.hints[0] == "packed"


def test_registry_lists_all_builtins():
    assert set(POLICIES) <= set(placements())
    for policy in placements().values():
        assert policy.description
