"""Property-based simulator invariants under random schedules/configs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Schedule
from repro.ps import ClusterSpec, build_cluster_graph
from repro.sim import CompiledCore, SimConfig, SimVariant

from ..conftest import tiny_model
from .test_engine import FLAT

_CLUSTER = build_cluster_graph(tiny_model(), ClusterSpec(2, 1, "training"))
_PARAMS = [p.name for p in _CLUSTER.model.params]


@st.composite
def schedules(draw):
    n = len(_PARAMS)
    perm = draw(st.permutations(range(n)))
    subset = draw(st.integers(min_value=0, max_value=n))
    return Schedule("hypo", {p: perm[i] for i, p in enumerate(_PARAMS[:subset])})


@given(
    schedules(),
    st.sampled_from(["sender", "ready_queue", "dag", "none"]),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_invariants_hold_for_any_schedule_and_mode(schedule, mode, seed):
    config = SimConfig(iterations=1, enforcement=mode, seed=seed,
                       grpc_reorder_prob=0.0)
    sim = SimVariant(CompiledCore(_CLUSTER, FLAT), schedule, config)
    record = sim.run_iteration(0)
    g = _CLUSTER.graph
    # every op ran, no op before its dependencies
    assert not np.isnan(record.end).any()
    for op in g:
        for p in g.pred_ids(op.op_id):
            assert record.end[p] <= record.start[op.op_id] + 1e-12
    # makespan within the Eq. 1 / Eq. 2 band
    loads = sim.resource_loads(record)
    assert max(loads.values()) - 1e-9 <= record.makespan <= record.dedicated.sum() + 1e-9


@given(st.floats(min_value=0.0, max_value=0.2), st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_jitter_never_breaks_completion(sigma, seed):
    config = SimConfig(iterations=1, seed=seed)
    sim = SimVariant(CompiledCore(_CLUSTER, FLAT.scaled(jitter_sigma=sigma)), None, config)
    record = sim.run_iteration(seed)
    assert not np.isnan(record.end).any()
    assert record.makespan > 0
