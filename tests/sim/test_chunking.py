"""Chunked NIC-sharing semantics: serialization, capacity, invariance."""

import numpy as np
import pytest

from repro.ps import ClusterSpec, build_cluster_graph
from repro.sim import CompiledCore, SimConfig, SimVariant
from repro.timing import Platform

from ..conftest import tiny_model

# a platform where transfers dominate, to exercise the NIC paths
COMM_HEAVY = Platform(
    name="comm-heavy",
    worker_flops=1e12,
    ps_flops=1e12,
    bandwidth_bps=1e7,
    rpc_latency_s=1e-5,
    op_overhead_s=0.0,
    jitter_sigma=0.0,
)


@pytest.fixture(scope="module")
def cluster():
    return build_cluster_graph(tiny_model(), ClusterSpec(3, 1, "inference"))


def run(cluster, platform=COMM_HEAVY, **cfg):
    sim = SimVariant(CompiledCore(cluster, platform), None, SimConfig(**{"iterations": 1, **cfg}))
    return sim, sim.run_iteration(0)


def test_total_wire_time_independent_of_chunk_size(cluster):
    """Chunking changes interleaving, not work: with a single-slot PS NIC
    serving everything, the comm phase length is chunk-size invariant."""
    makespans = []
    for chunk in (1 << 18, 1 << 20, 1 << 24):
        _, record = run(cluster, chunk_bytes=chunk)
        makespans.append(record.makespan)
    assert max(makespans) / min(makespans) < 1.02


def test_transfer_spans_cover_their_wire_time(cluster):
    sim, record = run(cluster)
    for op_id in np.flatnonzero(sim.is_transfer):
        span = record.end[op_id] - record.start[op_id]
        assert span >= sim.wire_base[op_id] - 1e-12


def test_round_robin_interleaves_workers(cluster):
    """With 3 equal channels on one egress NIC and small chunks, the three
    workers' first transfers all start within one chunk round of each
    other (fairness — the TCP-sharing property the chunks model)."""
    sim, record = run(cluster, chunk_bytes=1 << 18)
    first_starts = []
    for link, transfers in cluster.transfers_by_link.items():
        starts = [record.start[t.op_id] for t in transfers]
        first_starts.append(min(starts))
    chunk_time = (1 << 18) / COMM_HEAVY.bandwidth_bps
    assert max(first_starts) - min(first_starts) <= 3.5 * chunk_time


def test_multislot_ps_nic_reaches_capacity():
    """With ps_nic_slots=3 and 3 workers, the PS egress serves all three
    concurrently: the pull phase shrinks by ~3x vs a single slot."""
    cluster = build_cluster_graph(tiny_model(), ClusterSpec(3, 1, "inference"))
    narrow = COMM_HEAVY
    wide = Platform(**{**COMM_HEAVY.__dict__, "name": "wide", "ps_nic_slots": 3})
    _, r_narrow = run(cluster, platform=narrow)
    _, r_wide = run(cluster, platform=wide)
    assert r_wide.makespan < r_narrow.makespan / 2


def test_makespan_at_least_critical_path(cluster):
    """Dependencies alone lower-bound the makespan (dedicated times)."""
    sim, record = run(cluster)
    g = cluster.graph
    finish = np.zeros(len(g))
    for op in g:
        start = max((finish[p] for p in g.pred_ids(op.op_id)), default=0.0)
        finish[op.op_id] = start + record.dedicated[op.op_id]
    assert record.makespan >= finish.max() - 1e-9


def test_zero_cost_transfer_legal():
    """Degenerate zero-byte transfers complete after one latency."""
    from repro.graph import Graph, OpKind, PartitionedGraph, Resource
    from repro.models.ir import ParamTensor
    from repro.ps.cluster import ClusterGraph, ClusterSpec, Transfer

    ir = tiny_model()
    cluster = build_cluster_graph(ir, ClusterSpec(1, 1, "inference"))
    # shrink one transfer to zero bytes
    t = cluster.param_transfers[0]
    cluster.graph.op(t.op_id).cost = 0.0
    sim = SimVariant(CompiledCore(cluster, COMM_HEAVY), None, SimConfig(iterations=1))
    record = sim.run_iteration(0)
    span = record.end[t.op_id] - record.start[t.op_id]
    assert span == pytest.approx(COMM_HEAVY.rpc_latency_s)
