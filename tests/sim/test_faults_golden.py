"""Fault-injection golden matrix + invariants (ISSUE 9).

``golden_faults.json`` pins per-iteration makespans and SHA-256 digests
of the raw start/end/dedicated arrays for a matrix of fault plans — one
per event type plus overlap/composition edges — and every case replays
under BOTH event-loop kernels (the tuned python loop and the array
kernel via ``portable``), which must be bit-identical to each other and
to the committed record. The hypothesis suites pin the two structural
invariants of the fault layer:

* an **empty or zero-magnitude** plan is byte-for-byte identical to no
  plan at all (the gating byte-identity contract);
* **host-failure recovery never loses or duplicates chunk bytes**: the
  traced chunk stream of a faulted run carries exactly the same chunk
  events per op as the fault-free run (each retransmitted chunk still
  completes exactly once), and every op still completes.

Regenerate the golden file ONLY for an intentional semantic change::

    PYTHONPATH=src python benchmarks/make_faults_golden.py
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultPlan,
    HostFailure,
    LinkDegradation,
    NicFlap,
    StragglerBurst,
)
from repro.sim import CompiledCore, SimConfig, SimVariant

from .test_engine_golden import FLAT, build_cluster, layerwise

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_faults.json")

ITERATIONS = 2

#: both kernels replay every case; bit-equality across them is asserted
#: per case (numba, where installed, shares the portable source and is
#: pinned by the parity suite).
KERNELS = ("python", "portable")

#: the tiny PS cluster (2 workers, 1 PS) these plans are written against.
FAULT_PLANS = {
    "link": FaultPlan((
        LinkDegradation("ps:0", "worker:0", start=0.0, duration=0.05, factor=0.25),
    )),
    "link-outage": FaultPlan((
        LinkDegradation("ps:0", "worker:1", start=0.01, duration=0.02, factor=0.0),
    )),
    "nic-flap": FaultPlan((
        NicFlap("worker:1", start=0.005, duration=0.03, factor=0.1),
    )),
    "straggler": FaultPlan((
        StragglerBurst("worker:0", start=0.0, duration=0.08, factor=2.5),
    )),
    "host-failure-ps": FaultPlan((
        HostFailure("ps:0", start=0.02, recovery=0.05),
    )),
    "host-failure-worker": FaultPlan((
        HostFailure("worker:1", start=0.01, recovery=0.03),
    )),
    # overlapping windows on one link compose multiplicatively
    "overlap": FaultPlan((
        LinkDegradation("ps:0", "worker:0", start=0.0, duration=0.06, factor=0.5),
        LinkDegradation("ps:0", "worker:0", start=0.03, duration=0.06, factor=0.5),
    )),
    # every event type at once
    "combo": FaultPlan((
        LinkDegradation("ps:0", "worker:0", start=0.0, duration=0.04, factor=0.3),
        NicFlap("worker:1", start=0.02, duration=0.03, factor=0.5),
        StragglerBurst("worker:0", start=0.01, duration=0.05, factor=3.0),
        HostFailure("ps:0", start=0.06, recovery=0.02),
    )),
}


def case_matrix() -> list[dict]:
    """Every golden fault case: each plan under the sender mode, plus
    jitter/ready-queue/baseline edges on the busiest plan."""
    cases = [
        {
            "name": plan_name,
            "plan": plan_name,
            "schedule": "layerwise",
            "config": {"enforcement": "sender", "iterations": 1, "seed": 7},
        }
        for plan_name in FAULT_PLANS
    ]
    cases += [
        {"name": "combo-jitter", "plan": "combo", "schedule": "layerwise",
         "config": {"enforcement": "sender", "jitter_sigma": 0.05,
                    "iterations": 1, "seed": 3}},
        {"name": "combo-ready-queue", "plan": "combo", "schedule": "layerwise",
         "config": {"enforcement": "ready_queue", "iterations": 1, "seed": 5}},
        {"name": "combo-baseline", "plan": "combo", "schedule": "baseline",
         "config": {"enforcement": "sender", "iterations": 1, "seed": 0}},
    ]
    return cases


def _digest(record) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(record.start).tobytes())
    digest.update(np.ascontiguousarray(record.end).tobytes())
    digest.update(np.ascontiguousarray(record.dedicated).tobytes())
    return digest.hexdigest()


def run_case(case: dict) -> dict:
    """Simulate one fault case under every kernel; assert the kernels
    agree bit-for-bit and return the (shared) fingerprints."""
    ir, cluster = build_cluster("ps")
    schedule = None if case["schedule"] == "baseline" else layerwise(ir)
    core = CompiledCore(cluster, FLAT)
    per_kernel = []
    for kernel in KERNELS:
        cfg = SimConfig(
            faults=FAULT_PLANS[case["plan"]], kernel=kernel, **case["config"]
        )
        sim = SimVariant(core, schedule, cfg)
        per_kernel.append([
            {
                "makespan": (record := sim.run_iteration(i)).makespan,
                "out_of_order": record.out_of_order_handoffs,
                "arrays_sha256": _digest(record),
            }
            for i in range(ITERATIONS)
        ])
    assert all(rows == per_kernel[0] for rows in per_kernel[1:]), (
        f"kernels disagree on fault case {case['name']!r}"
    )
    return {"case": case, "iterations": per_kernel[0]}


def _golden():
    if not os.path.exists(GOLDEN_PATH):  # regeneration bootstrap
        return {"iterations_per_case": ITERATIONS, "cases": []}
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


_GOLDEN = _golden()


@pytest.mark.parametrize(
    "case_rec", _GOLDEN["cases"], ids=[c["case"]["name"] for c in _GOLDEN["cases"]]
)
def test_faulted_engine_matches_golden_record(case_rec):
    """Faulted makespans and per-op arrays are bit-identical to the
    committed record under every kernel."""
    got = run_case(case_rec["case"])
    assert got["iterations"] == case_rec["iterations"]


def test_fault_golden_matrix_is_current():
    assert [c["case"] for c in _GOLDEN["cases"]] == case_matrix()
    assert _GOLDEN["iterations_per_case"] == ITERATIONS


# ----------------------------------------------------------------------
# invariants
# ----------------------------------------------------------------------
def _records_equal(a, b) -> bool:
    return (
        a.makespan == b.makespan
        and a.out_of_order_handoffs == b.out_of_order_handoffs
        and np.array_equal(a.start, b.start)
        and np.array_equal(a.end, b.end)
        and np.array_equal(a.dedicated, b.dedicated)
    )


_noop_events = st.one_of(
    st.builds(
        LinkDegradation,
        src=st.just("ps:0"),
        dst=st.sampled_from(["worker:0", "worker:1"]),
        start=st.floats(0.0, 0.1, allow_nan=False),
        duration=st.floats(0.001, 0.1, allow_nan=False, exclude_min=True),
        factor=st.just(1.0),
    ),
    st.builds(
        NicFlap,
        device=st.sampled_from(["ps:0", "worker:0", "worker:1"]),
        start=st.floats(0.0, 0.1, allow_nan=False),
        duration=st.floats(0.001, 0.1, allow_nan=False, exclude_min=True),
        factor=st.just(1.0),
    ),
    st.builds(
        StragglerBurst,
        device=st.sampled_from(["ps:0", "worker:0", "worker:1"]),
        start=st.floats(0.0, 0.1, allow_nan=False),
        duration=st.floats(0.001, 0.1, allow_nan=False, exclude_min=True),
        factor=st.just(1.0),
    ),
)


@given(
    st.lists(_noop_events, max_size=4),
    st.sampled_from(["python", "portable"]),
    st.integers(min_value=0, max_value=20),
)
@settings(max_examples=15, deadline=None)
def test_zero_magnitude_plan_is_byte_identical(events, kernel, seed):
    """Empty plans and plans whose windows retain 100% of capacity
    compile to nothing and reproduce the fault-free run byte-for-byte
    under both kernels."""
    ir, cluster = build_cluster("ps")
    core = CompiledCore(cluster, FLAT)
    schedule = layerwise(ir)
    cfg = SimConfig(iterations=1, seed=seed, kernel=kernel)
    ref = SimVariant(core, schedule, cfg).run_iteration(0)
    noop = SimVariant(
        core, schedule, cfg.with_(faults=FaultPlan(tuple(events)))
    ).run_iteration(0)
    assert _records_equal(ref, noop)


_outage_events = st.one_of(
    st.builds(
        HostFailure,
        device=st.sampled_from(["ps:0", "worker:0", "worker:1"]),
        start=st.floats(0.0, 0.2, allow_nan=False),
        recovery=st.floats(0.005, 0.1, allow_nan=False, exclude_min=True),
    ),
    st.builds(
        LinkDegradation,
        src=st.just("ps:0"),
        dst=st.sampled_from(["worker:0", "worker:1"]),
        start=st.floats(0.0, 0.2, allow_nan=False),
        duration=st.floats(0.005, 0.1, allow_nan=False, exclude_min=True),
        factor=st.just(0.0),
    ),
)


@given(st.lists(_outage_events, min_size=1, max_size=3), st.integers(0, 10))
@settings(max_examples=15, deadline=None)
def test_recovery_conserves_chunk_bytes(events, seed):
    """Outage retransmission neither loses nor duplicates chunks: the
    faulted run emits exactly the same chunk events per op as the
    fault-free run (a lost chunk retransmits from scratch but still
    completes exactly once), and every op still finishes."""
    ir, cluster = build_cluster("ps")
    core = CompiledCore(cluster, FLAT)
    schedule = layerwise(ir)
    cfg = SimConfig(iterations=1, seed=seed, trace=True)
    ref = SimVariant(core, schedule, cfg).run_iteration(0)
    faulted = SimVariant(
        core, schedule, cfg.with_(faults=FaultPlan(tuple(events)))
    ).run_iteration(0)
    ref_counts = np.bincount(ref.trace.chunk_op, minlength=core.n)
    fault_counts = np.bincount(faulted.trace.chunk_op, minlength=core.n)
    assert np.array_equal(ref_counts, fault_counts)
    assert np.isfinite(faulted.makespan) and faulted.makespan > 0
    # every op that completed fault-free still completes under faults
    assert np.array_equal(np.isnan(ref.end), np.isnan(faulted.end))
