"""Discrete-event engine: correctness invariants on a small cluster."""

import numpy as np
import pytest

from repro.core import Schedule
from repro.ps import ClusterSpec, build_cluster_graph
from repro.sim import CompiledCore, SimConfig, SimVariant
from repro.timing import ENV_G, Platform

from ..conftest import tiny_model

#: deterministic platform for exact assertions.
FLAT = Platform(
    name="flat",
    worker_flops=1e10,
    ps_flops=1e10,
    bandwidth_bps=1e8,
    rpc_latency_s=1e-4,
    op_overhead_s=1e-6,
    jitter_sigma=0.0,
)


@pytest.fixture(scope="module")
def cluster():
    return build_cluster_graph(tiny_model(), ClusterSpec(2, 1, "training"))


def compile_sim(cluster, schedule=None, **cfg):
    config = SimConfig(**{"iterations": 1, "grpc_reorder_prob": 0.0, **cfg})
    return SimVariant(CompiledCore(cluster, FLAT), schedule, config)


def layerwise(cluster):
    params = [p.name for p in cluster.model.params]
    return Schedule("layerwise", {p: i for i, p in enumerate(params)})


def test_every_op_runs_exactly_once(cluster):
    record = compile_sim(cluster).run_iteration(0)
    assert not np.isnan(record.end).any()
    assert (record.end >= record.start - 1e-12).all()
    assert record.makespan == pytest.approx(np.max(record.end))


def test_dependencies_respected(cluster):
    record = compile_sim(cluster).run_iteration(0)
    g = cluster.graph
    for op in g:
        for p in g.pred_ids(op.op_id):
            assert record.end[p] <= record.start[op.op_id] + 1e-12, (
                f"{g.op(p).name} must finish before {op.name} starts"
            )


def test_compute_resources_never_overlap(cluster):
    """Capacity-1 resource exclusivity: intervals on one compute resource
    are pairwise disjoint."""
    record = compile_sim(cluster).run_iteration(0)
    by_res = {}
    for op in cluster.graph:
        if not op.resource.name.startswith("link"):
            by_res.setdefault(op.resource.name, []).append(
                (record.start[op.op_id], record.end[op.op_id])
            )
    for intervals in by_res.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-12


def test_deterministic_given_seed(cluster):
    a = compile_sim(cluster, seed=5).run_iteration(3)
    b = compile_sim(cluster, seed=5).run_iteration(3)
    assert np.array_equal(a.end, b.end)
    assert a.makespan == b.makespan


def test_different_iterations_differ_under_jitter(cluster):
    sim = SimVariant(CompiledCore(cluster, FLAT.scaled(jitter_sigma=0.05)), None, SimConfig(iterations=1, seed=0))
    assert sim.run_iteration(0).makespan != sim.run_iteration(1).makespan


def test_baseline_iterations_shuffle_transfer_order(cluster):
    """Vanilla TF: the order of received parameters varies per iteration
    (the §2.2 observation that motivates the paper)."""
    sim = compile_sim(cluster)
    orders = set()
    link = next(iter(cluster.transfers_by_link))
    transfers = [t for t in cluster.transfers_by_link[link] if t.kind == "param"]
    for i in range(5):
        record = sim.run_iteration(i)
        orders.add(tuple(sorted(
            (t.param for t in transfers),
            key=lambda p: record.start[[x.op_id for x in transfers if x.param == p][0]],
        )))
    assert len(orders) > 1


def test_transfer_duration_is_wire_plus_latency(cluster):
    record = compile_sim(cluster).run_iteration(0)
    for transfers in cluster.transfers_by_link.values():
        for t in transfers:
            op = cluster.graph.op(t.op_id)
            expected = op.cost / FLAT.bandwidth_bps + FLAT.rpc_latency_s
            measured = record.end[t.op_id] - record.start[t.op_id]
            # chunked round-robin can stretch a transfer, never shrink it
            assert measured >= expected - 1e-12
            assert record.dedicated[t.op_id] == pytest.approx(expected)


def test_makespan_at_least_bottleneck_load(cluster):
    sim = compile_sim(cluster)
    record = sim.run_iteration(0)
    loads = sim.resource_loads(record)
    assert record.makespan >= max(loads.values()) - 1e-9


def test_makespan_at_most_serialized_time(cluster):
    record = compile_sim(cluster).run_iteration(0)
    assert record.makespan <= record.dedicated.sum() + 1e-9


def test_schedule_reduces_or_keeps_makespan(cluster):
    base = compile_sim(cluster).run_iteration(0)
    sched = compile_sim(cluster, layerwise(cluster)).run_iteration(0)
    assert sched.makespan <= base.makespan * 1.05


def test_untagged_resource_rejected():
    from repro.graph import Graph

    g = Graph()
    g.add_op("naked")
    bad = build_cluster_graph(tiny_model(), ClusterSpec(1, 1, "inference"))
    bad.graph._ops[0].resource = None
    with pytest.raises(ValueError, match="resource tag"):
        SimVariant(CompiledCore(bad, FLAT))


def test_resource_names_cover_nics_and_computes(cluster):
    sim = compile_sim(cluster)
    names = sim.resource_names()
    assert "compute:worker:0" in names
    assert "nic_out:ps:0" in names
    assert "nic_in:worker:1" in names
