"""SimConfig validation."""

import pytest

from repro.sim import SimConfig


def test_defaults_match_paper_protocol():
    cfg = SimConfig()
    assert cfg.enforcement == "sender"
    assert cfg.compute_queue == "random"
    assert 0 < cfg.grpc_reorder_prob < 0.02


def test_invalid_enforcement():
    with pytest.raises(ValueError, match="enforcement"):
        SimConfig(enforcement="hope")


def test_invalid_compute_queue():
    with pytest.raises(ValueError, match="compute_queue"):
        SimConfig(compute_queue="lifo")


def test_invalid_reorder_prob():
    with pytest.raises(ValueError, match="reorder"):
        SimConfig(grpc_reorder_prob=1.5)


def test_invalid_iterations():
    with pytest.raises(ValueError):
        SimConfig(iterations=0)
    with pytest.raises(ValueError):
        SimConfig(warmup=-1)


def test_invalid_chunk():
    with pytest.raises(ValueError, match="chunk"):
        SimConfig(chunk_bytes=0)


def test_with_override():
    cfg = SimConfig().with_(enforcement="dag", seed=9)
    assert cfg.enforcement == "dag" and cfg.seed == 9
    assert SimConfig().enforcement == "sender"
