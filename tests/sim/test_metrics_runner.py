"""Metrics summarization and the high-level runner."""

import numpy as np
import pytest

from repro.core import Schedule
from repro.ps import ClusterSpec, build_cluster_graph
from repro.sim import (
    CompiledCore,
    SimConfig,
    SimVariant,
    simulate_cluster,
    speedup_vs_baseline,
    summarize_iteration,
)

from ..conftest import tiny_model
from .test_engine import FLAT


@pytest.fixture(scope="module")
def cluster():
    return build_cluster_graph(tiny_model(), ClusterSpec(2, 1, "training"))


def test_summarize_iteration_fields(cluster):
    sim = SimVariant(CompiledCore(cluster, FLAT), None, SimConfig(iterations=1))
    record = sim.run_iteration(0)
    it = summarize_iteration(sim, record)
    assert set(it.worker_finish) == {"worker:0", "worker:1"}
    assert 0.0 <= it.efficiency.efficiency <= 1.0
    assert it.makespan == record.makespan
    assert it.start is None and it.end is None


def test_keep_op_times_flag(cluster):
    sim = SimVariant(CompiledCore(cluster, FLAT), None, SimConfig(iterations=1))
    record = sim.run_iteration(0)
    it = summarize_iteration(sim, record, keep_op_times=True)
    assert it.start is not None and len(it.end) == len(cluster.graph)


def test_straggler_pct_definition(cluster):
    sim = SimVariant(CompiledCore(cluster, FLAT.scaled(jitter_sigma=0.05)), None, SimConfig(iterations=1))
    it = summarize_iteration(sim, sim.run_iteration(0))
    finishes = list(it.worker_finish.values())
    expected = (max(finishes) - min(finishes)) / it.makespan * 100
    assert it.straggler_pct == pytest.approx(expected)
    assert 0 <= it.straggler_pct < 100


def test_single_worker_has_zero_straggler():
    cluster = build_cluster_graph(tiny_model(), ClusterSpec(1, 1, "inference"))
    sim = SimVariant(CompiledCore(cluster, FLAT), None, SimConfig(iterations=1))
    it = summarize_iteration(sim, sim.run_iteration(0))
    assert it.straggler_pct == 0.0


def test_worker_finish_no_later_than_makespan(cluster):
    sim = SimVariant(CompiledCore(cluster, FLAT), None, SimConfig(iterations=1))
    it = summarize_iteration(sim, sim.run_iteration(0))
    assert all(f <= it.makespan + 1e-12 for f in it.worker_finish.values())


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
def test_simulate_cluster_records_and_warmup():
    spec = ClusterSpec(2, 1, "training")
    cfg = SimConfig(iterations=3, warmup=2, seed=1)
    result = simulate_cluster(tiny_model(), spec, algorithm="baseline",
                              platform=FLAT, config=cfg)
    assert len(result.iterations) == 3
    assert len(result.warmup) == 2
    assert result.algorithm == "baseline"
    assert result.throughput == pytest.approx(
        2 * 8 / result.mean_iteration_time
    )


def test_simulate_cluster_summary_keys():
    spec = ClusterSpec(2, 1, "inference")
    result = simulate_cluster(tiny_model(), spec, algorithm="tic",
                              platform=FLAT, config=SimConfig(iterations=2))
    s = result.summary()
    for key in ("model", "workload", "algorithm", "throughput_sps",
                "straggler_pct_max", "efficiency_mean"):
        assert key in s
    assert s["algorithm"] == "tic"


def test_simulate_cluster_accepts_precomputed_schedule():
    ir = tiny_model()
    spec = ClusterSpec(2, 1, "training")
    params = [p.name for p in ir.params]
    schedule = Schedule("custom", {p: i for i, p in enumerate(params)})
    result = simulate_cluster(ir, spec, schedule=schedule, platform=FLAT,
                              config=SimConfig(iterations=2))
    assert result.algorithm == "custom"


def test_simulate_cluster_rejects_mismatched_cluster():
    ir = tiny_model()
    cluster = build_cluster_graph(ir, ClusterSpec(2, 1, "training"))
    with pytest.raises(ValueError, match="different spec"):
        simulate_cluster(ir, ClusterSpec(4, 1, "training"), cluster=cluster,
                         platform=FLAT)


def test_speedup_vs_baseline_signature():
    spec = ClusterSpec(2, 1, "inference")
    gain, sched, base = speedup_vs_baseline(
        tiny_model(), spec, algorithm="tic", platform=FLAT,
        config=SimConfig(iterations=2),
    )
    assert sched.algorithm == "tic" and base.algorithm == "baseline"
    assert gain == pytest.approx(
        (sched.throughput - base.throughput) / base.throughput * 100
    )


def test_results_reproducible_across_calls():
    spec = ClusterSpec(2, 1, "training")
    cfg = SimConfig(iterations=2, seed=4)
    a = simulate_cluster(tiny_model(), spec, algorithm="tic", platform=FLAT, config=cfg)
    b = simulate_cluster(tiny_model(), spec, algorithm="tic", platform=FLAT, config=cfg)
    assert np.array_equal(a.iteration_times, b.iteration_times)
