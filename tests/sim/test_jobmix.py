"""Multi-job union path: graph structure, schedules, contention, caching.

Complements :mod:`tests.sim.test_jobmix_golden` (1-job bit-exactness):
here the mixes are real — several jobs, arrival offsets, shared hosts —
and the invariants are structural (namespaces partition the union DAG),
semantic (contention can only hurt; arrivals delay roots) and
infrastructural (cache keys fold the mix structure in; shared-core
publication and JSON serialization carry the per-job surfaces).
"""

from __future__ import annotations

import pytest

from repro.backends import (
    backend_for_spec,
    build_comm_graph,
    make_spec,
    prepare_comm_schedule,
)
from repro.models import build_model
from repro.sim import (
    JobMixSpec,
    JobSpec,
    SimConfig,
    build_jobmix_graph,
    prepare_jobmix_schedule,
    simulate_cluster,
)
from repro.sim.jobmix import jobmix_schedule_key
from repro.sweep import SimCell
from repro.sweep.serialize import result_from_dict, result_to_dict
from repro.timing import get_platform

CFG = SimConfig(iterations=2, warmup=1)

TWO_ALEX = JobMixSpec(
    jobs=(
        JobSpec("AlexNet v2", n_workers=2, n_ps=1),
        JobSpec("AlexNet v2", n_workers=2, n_ps=1, arrival=6.0),
    ),
    placement="packed",
    n_hosts=6,
)


def test_mix_spec_compat_surface():
    assert TWO_ALEX.n_workers == 4
    assert TWO_ALEX.n_ps == 2
    assert TWO_ALEX.workload == "training"
    assert TWO_ALEX.labels == ("j0", "j1")
    solo = TWO_ALEX.solo(1)
    assert solo.placement == "dedicated" and len(solo.jobs) == 1
    assert solo.jobs[0].arrival == 6.0


def test_mix_spec_rejects_unknown_placement_with_hint():
    from repro.backends.placement import UnknownPlacementError

    with pytest.raises(UnknownPlacementError, match="did you mean"):
        JobMixSpec(jobs=TWO_ALEX.jobs, placement="spreed")


@pytest.mark.parametrize("arrival", [-1.0, float("nan"), float("inf")])
def test_job_spec_rejects_bad_arrival(arrival):
    # NaN would sail through a plain `< 0` check and poison the deferred-
    # release event table; infinities would defer the job forever.
    with pytest.raises(ValueError, match="arrival"):
        JobSpec("AlexNet v2", n_workers=2, n_ps=1, arrival=arrival)


def test_mix_spec_is_a_registered_backend():
    assert backend_for_spec(TWO_ALEX).name == "jobmix"


def test_union_graph_partitions_by_job():
    ir = build_model("AlexNet v2")
    mix = build_jobmix_graph(ir, TWO_ALEX)
    singles = [
        build_comm_graph(build_model(j.model), j.to_spec())
        for j in TWO_ALEX.jobs
    ]
    assert len(mix.graph) == sum(len(s.graph) for s in singles)
    ids0, ids1 = set(mix.job_ops["j0"]), set(mix.job_ops["j1"])
    assert not (ids0 & ids1)
    assert len(ids0 | ids1) == len(mix.graph)
    for op in mix.graph:
        label = op.name.split("/", 1)[0]
        assert label in ("j0", "j1")
        assert op.op_id in (ids0 if label == "j0" else ids1)
    mix.graph.validate()
    assert mix.job_arrivals == {"j0": 0.0, "j1": 6.0}
    # packed on 6 hosts x 2 slots -> the 6 devices share 3 hosts
    assert set(mix.host_map) == {
        f"j{i}/{d}" for i, j in enumerate(TWO_ALEX.jobs) for d in j.devices()
    }
    assert len(set(mix.host_map.values())) == 3


def test_transfers_and_worker_ops_are_namespaced():
    ir = build_model("AlexNet v2")
    mix = build_jobmix_graph(ir, TWO_ALEX)
    assert all(w.startswith(("j0/", "j1/")) for w in mix.worker_ops)
    for link, transfers in mix.transfers_by_link.items():
        prefixes = {t.param.split("/", 1)[0] for t in transfers}
        assert len(prefixes) == 1  # links never mix jobs' transfers


def test_schedule_composition_prefixes_priorities():
    platform = get_platform("envC")
    sched = prepare_jobmix_schedule(None, TWO_ALEX, "tic", platform)
    assert sched.priorities  # both jobs contribute
    assert all(k.startswith(("j0/", "j1/")) for k in sched.priorities)
    single = prepare_comm_schedule(
        build_model("AlexNet v2"), TWO_ALEX.jobs[0].to_spec(), "tic", platform
    )
    assert {
        k.removeprefix("j0/")
        for k in sched.priorities if k.startswith("j0/")
    } == set(single.priorities)


def test_mix_algorithm_dispatches_per_job():
    platform = get_platform("envC")
    spec = JobMixSpec(
        jobs=(
            JobSpec("AlexNet v2", n_workers=2, n_ps=1, algorithm="tic"),
            JobSpec("AlexNet v2", n_workers=2, n_ps=1, algorithm="baseline"),
        ),
    )
    sched = prepare_jobmix_schedule(None, spec, "mix", platform)
    assert sched.meta["jobs"] == ("tic", "baseline")
    assert all(k.startswith("j0/") for k in sched.priorities)  # j1 is baseline


def test_schedule_key_separates_mixes():
    other = JobMixSpec(jobs=(TWO_ALEX.jobs[0],))
    assert jobmix_schedule_key(TWO_ALEX) != jobmix_schedule_key(other)
    assert jobmix_schedule_key(TWO_ALEX) == jobmix_schedule_key(
        JobMixSpec(jobs=TWO_ALEX.jobs, placement="spread", n_hosts=6)
    )  # placement does not influence the wizard


# ----------------------------------------------------------------------
# Semantics: arrivals + contention
# ----------------------------------------------------------------------

def _finishes(spec: JobMixSpec, **kw) -> dict[str, list[float]]:
    res = simulate_cluster(
        spec.jobs[0].model, spec, platform="envC", config=CFG, **kw
    )
    return {
        label: [it.job_finish[label] for it in res.iterations]
        for label in spec.labels
    }


def test_arrival_offset_delays_a_job():
    dedicated = JobMixSpec(jobs=TWO_ALEX.jobs, placement="dedicated")
    fin = _finishes(dedicated)
    # j1 starts 6s late on its own hosts: it can never finish before 6s,
    # and it must outlast j0 (same model, same shape, later start).
    assert all(f > 6.0 for f in fin["j1"])
    assert all(f1 > f0 for f0, f1 in zip(fin["j0"], fin["j1"]))


def test_shared_makespan_dominates_dedicated_for_every_job():
    """Contention sanity: co-scheduling can only hurt — the shared-link
    (packed) makespan is >= the dedicated makespan of every job, and on
    the contention platform strictly exceeds each."""
    dedicated = JobMixSpec(jobs=TWO_ALEX.jobs, placement="dedicated")
    ded = _finishes(dedicated)
    packed = _finishes(TWO_ALEX)
    for i in range(len(packed["j0"])):
        mix_makespan = max(packed["j0"][i], packed["j1"][i])
        for label in ("j0", "j1"):
            assert mix_makespan > ded[label][i]


def test_spread_with_room_recovers_dedicated_behaviour():
    spread = JobMixSpec(jobs=TWO_ALEX.jobs, placement="spread", n_hosts=6)
    dedicated = JobMixSpec(jobs=TWO_ALEX.jobs, placement="dedicated")
    fin_s = _finishes(spread)
    fin_d = _finishes(dedicated)
    for label in ("j0", "j1"):
        for a, b in zip(fin_s[label], fin_d[label]):
            assert a == pytest.approx(b, rel=1e-3)


def test_kernels_agree_on_mixes():
    py = simulate_cluster(
        "AlexNet v2", TWO_ALEX, platform="envC",
        config=CFG.with_(kernel="python"),
    )
    portable = simulate_cluster(
        "AlexNet v2", TWO_ALEX, platform="envC",
        config=CFG.with_(kernel="portable"),
    )
    for a, b in zip(py.iterations, portable.iterations):
        assert a.makespan == b.makespan
        assert a.job_finish == b.job_finish


# ----------------------------------------------------------------------
# Infrastructure: cache keys, serialization, shared cores
# ----------------------------------------------------------------------

def _cell(spec: JobMixSpec, algorithm: str = "baseline") -> SimCell:
    return SimCell(
        model=spec.jobs[0].model, spec=spec, algorithm=algorithm,
        platform="envC", config=CFG,
    )


def test_cache_keys_fold_in_mix_structure():
    base = _cell(TWO_ALEX).cache_key_material()
    assert _cell(TWO_ALEX).cache_key_material() == base
    spread = JobMixSpec(jobs=TWO_ALEX.jobs, placement="spread", n_hosts=6)
    assert _cell(spread).cache_key_material() != base
    later = JobMixSpec(
        jobs=(TWO_ALEX.jobs[0],
              JobSpec("AlexNet v2", n_workers=2, n_ps=1, arrival=9.0)),
        placement="packed", n_hosts=6,
    )
    assert _cell(later).cache_key_material() != base


def test_result_serialization_round_trips_job_finish():
    res = simulate_cluster(
        "AlexNet v2", TWO_ALEX, platform="envC", config=CFG
    )
    back = result_from_dict(result_to_dict(res))
    for a, b in zip(res.iterations, back.iterations):
        assert a.job_finish == b.job_finish
        assert a.makespan == b.makespan


def test_sweep_runner_and_shared_cores_handle_mixes(tmp_path):
    from repro.sweep import SweepRunner

    cells = [
        _cell(TWO_ALEX),
        _cell(JobMixSpec(jobs=TWO_ALEX.jobs, placement="spread", n_hosts=6)),
    ]
    serial = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run_cells(cells)
    assert SweepRunner(jobs=1, cache_dir=str(tmp_path)).stats is not None
    parallel = SweepRunner(jobs=2, cache_dir=None).run_cells(cells)
    for a, b in zip(serial, parallel):
        assert a.iteration_times.tolist() == b.iteration_times.tolist()
        for x, y in zip(a.iterations, b.iterations):
            assert x.job_finish == y.job_finish
    # cached second pass reproduces the first exactly
    runner = SweepRunner(jobs=1, cache_dir=str(tmp_path))
    again = runner.run_cells(cells)
    assert runner.stats.hits == len(cells)
    for a, b in zip(serial, again):
        for x, y in zip(a.iterations, b.iterations):
            assert x.job_finish == y.job_finish
