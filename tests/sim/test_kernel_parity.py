"""Kernel-seam parity: the array kernel is bit-exact with the python loop.

Three layers of defence:

* the RNG re-implementation (buffered 32-bit Lemire + 53-bit doubles over
  a raw PCG64 stream) is pinned against ``numpy.random.Generator`` draw
  by draw — if a numpy upgrade ever changes the bounded-integer
  algorithm, these tests fail before any golden digest does;
* the committed golden matrix (``golden_engine.json``) is replayed under
  every available array kernel (``portable`` everywhere; ``numba`` where
  installed — they share one code path, compiled or not);
* hypothesis drives random model IRs / configs through both kernels and
  requires identical records.

Also covers kernel *selection*: auto-detection, the
``REPRO_ENGINE_KERNEL`` env override, loud failure for explicit
``numba`` requests without numba, and cache-key invariance (kernels are
interchangeable, so sweep cache entries are shared).
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import CollectiveSpec
from repro.backends import build_comm_graph
from repro.sim import (
    CompiledCore,
    SimConfig,
    SimVariant,
    kernel,
)
from repro.timing import get_platform

from ..strategies import model_irs
from .test_engine_golden import (
    _GOLDEN,
    FLAT,
    ITERATIONS,
    build_cluster,
    layerwise,
    make_config,
)

#: every array-kernel flavour runnable on this host. 'portable' selects
#: the same implementation as 'numba' (jitted where numba is installed,
#: uncompiled elsewhere), so covering 'portable' everywhere keeps the
#: numba algorithm pinned even on hosts without numba.
ARRAY_KERNELS = ["portable"] + (["numba"] if kernel.HAVE_NUMBA else [])


# ----------------------------------------------------------------------
# RNG emulation pinned against numpy.random.Generator
# ----------------------------------------------------------------------
class _KernelRNG:
    """Drive the kernel's RNG functions the way the event loop does."""

    def __init__(self, raw: np.ndarray) -> None:
        self.raw = raw
        self.st = np.zeros(8, np.int64)
        self.rsi = np.zeros(2, np.int64)
        self.rsu = np.zeros(1, np.uint64)

    def random(self) -> float:
        return kernel._rng_random(self.raw, self.rsi, self.st)

    def integers(self, total: int) -> int:
        return int(
            kernel._rng_integers(self.raw, self.rsi, self.rsu, self.st, total)
        )


@pytest.mark.parametrize("seed", [0, 7, (3, 41)])
def test_rng_emulation_matches_generator(seed):
    """Interleaved integers()/random() draws equal numpy's bit for bit."""
    ref = np.random.default_rng(np.random.SeedSequence(seed))
    bg = np.random.PCG64(np.random.SeedSequence(seed))
    ours = _KernelRNG(bg.random_raw(40000))
    mix = np.random.default_rng(123)  # drives the call pattern only
    for _ in range(5000):
        if mix.random() < 0.4:
            assert ours.random() == ref.random()
        else:
            total = int(mix.integers(2, 5000))
            assert ours.integers(total) == int(ref.integers(total))
    assert ours.st[4] == 0  # never exhausted


def test_rng_emulation_continues_after_lognormal():
    """The jitter path draws lognormal factors from the iteration's
    generator *before* the event loop; the raw stream picked up after
    that must continue numpy's stream exactly."""
    ref = np.random.default_rng(np.random.SeedSequence((2, 9)))
    mine = np.random.default_rng(np.random.SeedSequence((2, 9)))
    f_ref = ref.lognormal(0.0, 0.05, 64)
    f_mine = mine.lognormal(0.0, 0.05, 64)
    assert np.array_equal(f_ref, f_mine)
    ours = _KernelRNG(mine.bit_generator.random_raw(512))
    for total in (5, 17, 2, 999, 3, 3, 256):
        assert ours.integers(total) == int(ref.integers(total))
    for _ in range(5):
        assert ours.random() == ref.random()


def test_rng_exhaustion_sets_status():
    ours = _KernelRNG(np.zeros(1, np.uint64))
    ours.random()
    ours.random()  # buffer is dry now
    assert ours.st[4] == 1  # _RAW_EXHAUSTED


# ----------------------------------------------------------------------
# golden matrix under the array kernels
# ----------------------------------------------------------------------
def run_golden_case(case: dict, kern: str) -> dict:
    ir, cluster = build_cluster(case["backend"])
    platform = FLAT if case["platform"] == "flat" else get_platform(case["platform"])
    schedule = None if case["schedule"] == "baseline" else layerwise(ir)
    cfg = make_config(case["config"]).with_(kernel=kern)
    sim = SimVariant(CompiledCore(cluster, platform), schedule, cfg)
    iterations = []
    for i in range(ITERATIONS):
        record = sim.run_iteration(i)
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(record.start).tobytes())
        digest.update(np.ascontiguousarray(record.end).tobytes())
        digest.update(np.ascontiguousarray(record.dedicated).tobytes())
        loads = sim.resource_loads(record)
        iterations.append(
            {
                "makespan": record.makespan,
                "out_of_order": record.out_of_order_handoffs,
                "arrays_sha256": digest.hexdigest(),
                "loads_sha256": hashlib.sha256(
                    json.dumps(loads, sort_keys=True).encode()
                ).hexdigest(),
            }
        )
    return iterations


@pytest.mark.parametrize("kern", ARRAY_KERNELS)
@pytest.mark.parametrize(
    "case_rec", _GOLDEN["cases"], ids=[c["case"]["name"] for c in _GOLDEN["cases"]]
)
def test_array_kernel_matches_golden_record(case_rec, kern):
    assert run_golden_case(case_rec["case"], kern) == case_rec["iterations"]


# ----------------------------------------------------------------------
# hypothesis: python vs array kernel on random IRs / configs
# ----------------------------------------------------------------------
def _records_equal(a, b) -> bool:
    return (
        a.makespan == b.makespan
        and a.out_of_order_handoffs == b.out_of_order_handoffs
        and np.array_equal(a.start, b.start)
        and np.array_equal(a.end, b.end)
        and np.array_equal(a.dedicated, b.dedicated)
    )


@given(
    model_irs(max_convs=3),
    st.sampled_from(["sender", "ready_queue", "dag", "none"]),
    st.sampled_from([0.0, 0.05]),
    st.integers(min_value=0, max_value=99),
)
@settings(max_examples=12, deadline=None)
def test_kernels_agree_on_random_collective_irs(ir, mode, sigma, seed):
    """python and array kernels produce identical records on random
    models run through the collective backend (chunk queues, priority
    picks and ring channels all exercised)."""
    spec = CollectiveSpec(n_workers=3, partition_bytes=65536)
    cluster = build_comm_graph(ir, spec)
    core = CompiledCore(cluster, FLAT)
    schedule = None if mode == "none" else layerwise(ir)
    cfg = SimConfig(enforcement=mode, jitter_sigma=sigma, iterations=1, seed=seed)
    py = SimVariant(core, schedule, cfg.with_(kernel="python"))
    arr = SimVariant(core, schedule, cfg.with_(kernel="portable"))
    for i in (0, 1):
        assert _records_equal(py.run_iteration(i), arr.run_iteration(i))


@given(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=1, max_value=4),
    st.sampled_from(["sender", "ready_queue", "dag", "none"]),
)
@settings(max_examples=10, deadline=None)
def test_kernel_batch_equals_python_batch(first, count, mode):
    """run_iterations through the array kernel == the python loop,
    including the slabbed jitter path."""
    ir, cluster = build_cluster("ps")
    core = CompiledCore(cluster, FLAT)
    schedule = None if mode == "none" else layerwise(ir)
    cfg = SimConfig(enforcement=mode, jitter_sigma=0.05, iterations=1, seed=11)
    py = SimVariant(core, schedule, cfg.with_(kernel="python"))
    arr = SimVariant(core, schedule, cfg.with_(kernel="portable"))
    for a, b in zip(
        py.run_iterations(first, count), arr.run_iterations(first, count)
    ):
        assert _records_equal(a, b)


def test_raw_buffer_exhaustion_retry_is_bit_exact(monkeypatch):
    """A deliberately tiny raw budget forces the exhaust-and-replay path;
    the retried iteration must still match the python loop exactly."""
    ir, cluster = build_cluster("ps")
    core = CompiledCore(cluster, FLAT)
    schedule = layerwise(ir)
    cfg = SimConfig(enforcement="sender", iterations=1, seed=5)
    py = SimVariant(core, schedule, cfg.with_(kernel="python")).run_iteration(0)
    arr_variant = SimVariant(core, schedule, cfg.with_(kernel="portable"))
    monkeypatch.setattr(kernel.core_tables(core), "raw_init", 8)
    assert _records_equal(py, arr_variant.run_iteration(0))


# ----------------------------------------------------------------------
# kernel selection + config surface
# ----------------------------------------------------------------------
def test_auto_resolution(monkeypatch):
    monkeypatch.delenv(kernel.ENV_VAR, raising=False)
    assert kernel.resolve("auto") == ("numba" if kernel.HAVE_NUMBA else "python")
    assert kernel.resolve("python") == "python"
    assert kernel.resolve("portable") == "portable"


def test_env_override(monkeypatch):
    monkeypatch.setenv(kernel.ENV_VAR, "portable")
    assert kernel.resolve("auto") == "portable"
    # explicit config beats the env var
    assert kernel.resolve("python") == "python"
    monkeypatch.setenv(kernel.ENV_VAR, "bogus")
    with pytest.raises(ValueError, match="REPRO_ENGINE_KERNEL"):
        kernel.resolve("auto")


@pytest.mark.skipif(kernel.HAVE_NUMBA, reason="numba is installed here")
def test_explicit_numba_fails_loudly_when_missing(monkeypatch):
    """No silent fallback: CI's numba leg must die, not regress 2x."""
    with pytest.raises(RuntimeError, match="numba"):
        kernel.resolve("numba")
    monkeypatch.setenv(kernel.ENV_VAR, "numba")
    with pytest.raises(RuntimeError, match="numba"):
        kernel.resolve("auto")


def test_config_rejects_unknown_kernel():
    with pytest.raises(ValueError, match="kernel"):
        SimConfig(kernel="cython")


def test_kernel_choice_shares_cache_entries():
    """Bit-exact kernels are interchangeable: the sweep cache key must
    not depend on the kernel choice."""
    from repro.ps import ClusterSpec
    from repro.sweep import SimCell

    spec = ClusterSpec(2, 1, "training")
    keys = {
        SimCell(
            model="AlexNet v2", spec=spec,
            config=SimConfig(iterations=1, kernel=k),
        ).cache_key_material()
        for k in ("auto", "python", "portable")
    }
    assert len(keys) == 1


def test_compiled_simulation_is_gone():
    """The deprecated one-shot facade was removed; CompiledCore+SimVariant
    is the only compile path."""
    import repro.sim as sim_module

    assert not hasattr(sim_module, "CompiledSimulation")


def test_variant_reports_resolved_kernel(monkeypatch):
    monkeypatch.delenv(kernel.ENV_VAR, raising=False)
    ir, cluster = build_cluster("ps")
    core = CompiledCore(cluster, FLAT)
    v = SimVariant(core, None, SimConfig(iterations=1, kernel="portable"))
    assert v.kernel == "portable"
    v2 = SimVariant(core, None, SimConfig(iterations=1, kernel="python"))
    assert v2.kernel == "python" and v2._kernel_loop is None
