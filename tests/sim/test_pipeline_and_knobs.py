"""Pipelined simulation and the extension knobs (slowdown, fabric)."""

import numpy as np
import pytest

from repro.core import Schedule
from repro.ps import ClusterSpec, build_cluster_graph
from repro.sim import (
    CompiledCore,
    SimConfig,
    SimVariant,
    simulate_cluster,
    simulate_pipelined,
)

from ..conftest import tiny_model
from .test_engine import FLAT


# ----------------------------------------------------------------------
# pipelined windows
# ----------------------------------------------------------------------
def test_pipelined_requires_window_of_two():
    with pytest.raises(ValueError, match="window"):
        simulate_pipelined(tiny_model(), ClusterSpec(2, 1), window=1,
                           platform=FLAT)


def test_pipelined_iterations_finish_in_order():
    result = simulate_pipelined(
        tiny_model(), ClusterSpec(2, 1, "training"), window=3,
        platform=FLAT, config=SimConfig(iterations=2),
    )
    for finishes in result.finish_times:
        assert np.all(np.diff(finishes) > 0)
    assert result.window == 3


def test_pipelined_steady_state_near_barrier_time():
    """Steady-state spacing stays in the barrier model's neighbourhood.

    Pipelining usually helps, but it is not a guaranteed win at every
    scale: overlapping windows let iteration k+1's pulls contend with
    iteration k's pushes, and the random executor can interleave
    iterations. Sanity-bound the relationship rather than assert a
    direction (the pipelining experiment reports the measured one).
    """
    spec = ClusterSpec(2, 1, "training")
    cfg = SimConfig(iterations=2, jitter_sigma=0.0)
    barrier = simulate_cluster(tiny_model(), spec, algorithm="baseline",
                               platform=FLAT, config=cfg)
    pipelined = simulate_pipelined(tiny_model(), spec, window=4,
                                   algorithm="baseline", platform=FLAT,
                                   config=cfg)
    ratio = pipelined.mean_steady_iteration_time / barrier.mean_iteration_time
    assert 0.3 <= ratio <= 1.25


def test_pipelined_enforcement_exact_per_iteration():
    """Counters restart per iteration: every iteration's pulls follow the
    schedule independently."""
    ir = tiny_model()
    cluster = build_cluster_graph(ir, ClusterSpec(2, 1, "training"),
                                  n_iterations=2)
    params = [p.name for p in ir.params]
    schedule = Schedule("layerwise", {p: i for i, p in enumerate(params)})
    sim = SimVariant(CompiledCore(cluster, FLAT), schedule, SimConfig(iterations=1, grpc_reorder_prob=0.0))
    record = sim.run_iteration(0)
    assert record.out_of_order_handoffs == 0
    # channels: one per (link with params, iteration)
    n_links = sum(
        1
        for ts in cluster.transfers_by_link.values()
        if any(t.kind == "param" for t in ts)
    )
    assert sim.n_channels == n_links * 2


def test_pipelined_fill_latency_at_least_one_iteration():
    result = simulate_pipelined(
        tiny_model(), ClusterSpec(2, 1, "training"), window=3,
        platform=FLAT, config=SimConfig(iterations=1),
    )
    assert result.fill_latency > 0
    assert result.fill_latency >= result.mean_steady_iteration_time * 0.5


# ----------------------------------------------------------------------
# device slowdown (system-level stragglers, §6.3)
# ----------------------------------------------------------------------
def test_slow_worker_increases_iteration_time_and_straggling():
    spec = ClusterSpec(2, 1, "training")
    fast = simulate_cluster(tiny_model(), spec, platform=FLAT,
                            config=SimConfig(iterations=2))
    slow = simulate_cluster(
        tiny_model(), spec, platform=FLAT,
        config=SimConfig(iterations=2, device_slowdown=(("worker:1", 2.0),)),
    )
    assert slow.mean_iteration_time > fast.mean_iteration_time * 1.2
    assert slow.max_straggler_pct > fast.max_straggler_pct


def test_slowdown_applies_to_named_device_only():
    cluster = build_cluster_graph(tiny_model(), ClusterSpec(2, 1, "training"))
    sim = SimVariant(CompiledCore(cluster, FLAT), None, SimConfig(device_slowdown=(("worker:0", 3.0),)))
    g = cluster.graph
    for op in g:
        factor = sim.slowdown[op.op_id]
        if op.device == "worker:0" and not sim.is_transfer[op.op_id]:
            assert factor == 3.0
        else:
            assert factor == 1.0


def test_invalid_slowdown_rejected():
    with pytest.raises(ValueError, match="slowdown"):
        SimConfig(device_slowdown=(("worker:0", 0.0),))


# ----------------------------------------------------------------------
# fabric congestion (§7 future work)
# ----------------------------------------------------------------------
def test_fabric_capacity_one_serializes_all_transfers():
    spec = ClusterSpec(2, 1, "inference")
    free = simulate_cluster(tiny_model(), spec, platform=FLAT,
                            config=SimConfig(iterations=2, jitter_sigma=0.0))
    tight = simulate_cluster(
        tiny_model(), spec, platform=FLAT,
        config=SimConfig(iterations=2, jitter_sigma=0.0, fabric_slots=1),
    )
    assert tight.mean_iteration_time >= free.mean_iteration_time


def test_generous_fabric_is_a_noop():
    spec = ClusterSpec(2, 1, "inference")
    cfg = dict(iterations=2, jitter_sigma=0.0, seed=3)
    free = simulate_cluster(tiny_model(), spec, platform=FLAT,
                            config=SimConfig(**cfg))
    wide = simulate_cluster(tiny_model(), spec, platform=FLAT,
                            config=SimConfig(fabric_slots=1000, **cfg))
    assert wide.mean_iteration_time == pytest.approx(free.mean_iteration_time)


def test_fabric_load_reported():
    cluster = build_cluster_graph(tiny_model(), ClusterSpec(2, 1, "inference"))
    sim = SimVariant(CompiledCore(cluster, FLAT), None, SimConfig(iterations=1, fabric_slots=2))
    loads = sim.resource_loads(sim.run_iteration(0))
    assert "fabric" in loads and loads["fabric"] > 0


def test_invalid_fabric_rejected():
    with pytest.raises(ValueError, match="fabric"):
        SimConfig(fabric_slots=0)
