"""Golden regression: a 1-job mix on ``dedicated`` placement IS the
single-job path.

The union compile path (:mod:`repro.sim.jobmix`) namespaces every op,
device, parameter and link under ``j0/`` and reuses the engine's logical
(src, dst) channel numbering — so wrapping a single job in a
:class:`~repro.sim.jobmix.JobMixSpec` must change *nothing*: every
iteration's makespan, per-worker finish time and efficiency report is
bit-identical under both event-loop kernels, and the quick-grid CSV rows
(fig7's PS grid and the allreduce grid) regenerate byte-for-byte.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import write_csv
from repro.backends import make_spec
from repro.sim import JobMixSpec, JobSpec, SimConfig, simulate_cluster
from repro.sweep.serialize import iteration_to_dict

KERNELS = ("python", "portable")

#: micro slices of the fig7 (PS) and allreduce quick grids.
PS_CELLS = [
    ("AlexNet v2", dict(n_workers=2, n_ps=1), "baseline"),
    ("AlexNet v2", dict(n_workers=2, n_ps=1), "tic"),
    ("Inception v1", dict(n_workers=2, n_ps=1), "tac"),
]
AR_CELLS = [
    ("AlexNet v2", dict(n_workers=2), "baseline"),
    ("AlexNet v2", dict(n_workers=2), "tic"),
]


def _cfg(kernel: str) -> SimConfig:
    return SimConfig(iterations=3, warmup=1, kernel=kernel)


def _mix_of(backend: str, model: str, shape: dict, algorithm: str) -> JobMixSpec:
    job = JobSpec(model=model, backend=backend, algorithm=algorithm, **shape)
    return JobMixSpec(jobs=(job,), placement="dedicated")


def _strip_prefix(data: dict) -> dict:
    """Drop the ``j0/`` namespace + the mix-only job_finish block."""
    data = dict(data)
    data.pop("job_finish", None)
    data["worker_finish"] = {
        k.removeprefix("j0/"): v for k, v in data["worker_finish"].items()
    }
    return data


def _run_pair(backend, model, shape, algorithm, platform, kernel):
    spec = make_spec(backend, **shape)
    single = simulate_cluster(
        model, spec, algorithm=algorithm, platform=platform, config=_cfg(kernel)
    )
    mix = simulate_cluster(
        model,
        _mix_of(backend, model, shape, algorithm),
        algorithm=algorithm,
        platform=platform,
        config=_cfg(kernel),
    )
    return single, mix


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("model,shape,algorithm", PS_CELLS)
def test_one_job_mix_is_bit_identical_ps(model, shape, algorithm, kernel):
    single, mix = _run_pair("ps", model, shape, algorithm, "envG", kernel)
    for s_it, m_it in zip(
        single.warmup + single.iterations, mix.warmup + mix.iterations
    ):
        assert iteration_to_dict(s_it) == _strip_prefix(iteration_to_dict(m_it))
        # the mix bookkeeping agrees with the iteration it annotates
        assert m_it.job_finish == {"j0": m_it.makespan}


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("model,shape,algorithm", AR_CELLS)
def test_one_job_mix_is_bit_identical_allreduce(model, shape, algorithm, kernel):
    single, mix = _run_pair("allreduce", model, shape, algorithm, "envG", kernel)
    for s_it, m_it in zip(
        single.warmup + single.iterations, mix.warmup + mix.iterations
    ):
        assert iteration_to_dict(s_it) == _strip_prefix(iteration_to_dict(m_it))


@pytest.mark.parametrize("kernel", KERNELS)
def test_quick_grid_csv_rows_regenerate_byte_identical(tmp_path, kernel):
    """Assemble fig7/allreduce-style CSV rows from both paths and compare
    the written files byte for byte."""

    def rows_for(simulate):
        rows = []
        for backend, cells, platform in (
            ("ps", PS_CELLS, "envG"),
            ("allreduce", AR_CELLS, "envG"),
        ):
            for model, shape, algorithm in cells:
                res = simulate(backend, model, shape, algorithm, platform)
                rows.append(
                    {
                        "model": model,
                        "backend": backend,
                        "workers": res.n_workers,
                        "algorithm": algorithm,
                        "iteration_time_s": round(res.mean_iteration_time, 6),
                        "throughput_sps": round(res.throughput, 1),
                        "efficiency_mean": round(res.mean_efficiency, 4),
                    }
                )
        return rows

    def run_single(backend, model, shape, algorithm, platform):
        return simulate_cluster(
            model, make_spec(backend, **shape), algorithm=algorithm,
            platform=platform, config=_cfg(kernel),
        )

    def run_mix(backend, model, shape, algorithm, platform):
        return simulate_cluster(
            model, _mix_of(backend, model, shape, algorithm),
            algorithm=algorithm, platform=platform, config=_cfg(kernel),
        )

    single_csv = write_csv(
        os.path.join(tmp_path, "single.csv"), rows_for(run_single)
    )
    mix_csv = write_csv(os.path.join(tmp_path, "mix.csv"), rows_for(run_mix))
    with open(single_csv, "rb") as f:
        single_bytes = f.read()
    with open(mix_csv, "rb") as f:
        mix_bytes = f.read()
    assert single_bytes == mix_bytes
