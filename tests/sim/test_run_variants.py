"""Variant-batched dispatch (ISSUE 8): ``run_variants`` /
``iter_variant_records`` must be bit-identical to one-at-a-time
execution under every kernel, with or without the ``prange`` entry.

The batched lane stacks per-variant tables and runs whole
(variant, iteration) slabs as ONE kernel call; these tests pin that
batching — like the kernel choice and tracing — never changes results.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CompiledCore, SimConfig, SimVariant, run_variants
from repro.sim.engine import iter_variant_records
from repro.sim.kernel import HAVE_NUMBA, resolve_parallel

from .test_engine_golden import (
    _GOLDEN,
    FLAT,
    ITERATIONS,
    _records_equal,
    build_cluster,
    get_platform,
    layerwise,
    make_config,
)

#: kernels whose batched lane actually batches ("python" falls back to
#: per-iteration dispatch — covered separately below). "numba" is the
#: same algorithm compiled; explicit selection raises without numba, so
#: gate it rather than silently re-testing "portable".
BATCH_KERNELS = ["portable"] + (["numba"] if HAVE_NUMBA else [
    pytest.param("numba", marks=pytest.mark.skip(reason="numba not installed")),
])


def _batch_variant(case: dict, kernel: str) -> SimVariant:
    ir, cluster = build_cluster(case["backend"])
    platform = FLAT if case["platform"] == "flat" else get_platform(case["platform"])
    schedule = None if case["schedule"] == "baseline" else layerwise(ir)
    cfg = make_config(case["config"]).with_(kernel=kernel)
    return SimVariant(CompiledCore(cluster, platform), schedule, cfg)


@pytest.mark.parametrize("kernel", BATCH_KERNELS)
@pytest.mark.parametrize(
    "case_rec", _GOLDEN["cases"], ids=[c["case"]["name"] for c in _GOLDEN["cases"]]
)
def test_golden_matrix_through_batched_lane(case_rec, kernel):
    """Every golden case replayed through ``run_variants`` reproduces the
    committed reference fingerprints exactly."""
    sim = _batch_variant(case_rec["case"], kernel)
    (records,) = run_variants(sim.core, [sim], ITERATIONS)
    assert len(records) == ITERATIONS
    for record, expect in zip(records, case_rec["iterations"]):
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(record.start).tobytes())
        digest.update(np.ascontiguousarray(record.end).tobytes())
        digest.update(np.ascontiguousarray(record.dedicated).tobytes())
        loads = sim.resource_loads(record)
        ldigest = hashlib.sha256(
            json.dumps(loads, sort_keys=True).encode()
        ).hexdigest()
        assert record.makespan == expect["makespan"]
        assert record.out_of_order_handoffs == expect["out_of_order"]
        assert digest.hexdigest() == expect["arrays_sha256"]
        assert ldigest == expect["loads_sha256"]


@given(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=2, max_value=5),
    st.booleans(),
)
@settings(max_examples=15, deadline=None)
def test_run_variants_equals_one_at_a_time(first, count, n_variants, parallel):
    """A mixed-config variant set through the batched lane is bit-equal
    to each variant's own ``run_iterations`` (serial AND prange entry)."""
    ir, cluster = build_cluster("ps")
    core = CompiledCore(cluster, FLAT)
    sched = layerwise(ir)
    modes = ["sender", "ready_queue", "dag", "none"]
    variants = [
        SimVariant(
            core,
            None if modes[i % 4] == "none" else sched,
            SimConfig(
                enforcement=modes[i % 4],
                jitter_sigma=0.05 * (i % 2),
                kernel="portable",
                seed=11 + i,
            ),
        )
        for i in range(n_variants)
    ]
    batch = run_variants(core, variants, count, first, parallel=parallel)
    assert [len(records) for records in batch] == [count] * n_variants
    for v, records in zip(variants, batch):
        for record, ref in zip(records, v.run_iterations(first, count)):
            assert _records_equal(record, ref)


@pytest.mark.parametrize("kernel", ["python", "portable"])
def test_fallback_lane_matches_batched(kernel):
    """The python kernel (and any traced variant) falls back to
    per-iteration dispatch inside ``iter_variant_records`` — same yield
    order, same records."""
    ir, cluster = build_cluster("ps")
    core = CompiledCore(cluster, FLAT)
    sched = layerwise(ir)
    cfg = SimConfig(kernel=kernel, seed=3)
    variants = [SimVariant(core, sched, cfg.with_(seed=3 + i)) for i in range(3)]
    got = list(iter_variant_records(variants, 2))
    assert [vi for vi, _r in got] == [0, 0, 1, 1, 2, 2]
    ref = [
        (vi, r)
        for vi, v in enumerate(variants)
        for r in v.run_iterations(0, 2)
    ]
    for (vi_a, rec_a), (vi_b, rec_b) in zip(got, ref):
        assert vi_a == vi_b
        assert _records_equal(rec_a, rec_b)


def test_traced_variant_forces_fallback_with_trace_attached():
    """One traced variant in the set routes the whole set through the
    fallback; traced records still carry their TraceEvents."""
    ir, cluster = build_cluster("ps")
    core = CompiledCore(cluster, FLAT)
    sched = layerwise(ir)
    variants = [
        SimVariant(core, sched, SimConfig(kernel="portable", seed=5)),
        SimVariant(core, sched, SimConfig(kernel="portable", seed=5, trace=True)),
    ]
    plain, traced = run_variants(core, variants, 1)
    assert plain[0].trace is None
    assert traced[0].trace is not None
    ref = SimVariant(core, sched, SimConfig(kernel="portable", seed=5))
    assert _records_equal(traced[0], ref.run_iteration(0))


def test_run_variants_rejects_foreign_core():
    ir, cluster = build_cluster("ps")
    core_a = CompiledCore(cluster, FLAT)
    core_b = CompiledCore(cluster, FLAT)
    v = SimVariant(core_b, None, SimConfig(seed=1))
    with pytest.raises(ValueError, match="must wrap the given core"):
        run_variants(core_a, [v], 1)
    w = SimVariant(core_a, None, SimConfig(seed=1))
    with pytest.raises(ValueError, match="distinct cores"):
        list(iter_variant_records([w, v], 1))


def test_run_variants_empty_and_zero_iterations():
    ir, cluster = build_cluster("ps")
    core = CompiledCore(cluster, FLAT)
    assert run_variants(core, [], 3) == []
    v = SimVariant(core, None, SimConfig(kernel="portable", seed=2))
    assert run_variants(core, [v], 0) == [[]]


class TestResolveParallel:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_PARALLEL", raising=False)
        assert resolve_parallel() is False

    @pytest.mark.parametrize("value,expect", [
        ("1", True), ("on", True), ("ON", True), ("yes", True),
        ("0", False), ("off", False), ("", False), ("no", False),
    ])
    def test_spellings(self, monkeypatch, value, expect):
        monkeypatch.setenv("REPRO_ENGINE_PARALLEL", value)
        assert resolve_parallel() is expect

    def test_bad_value_suggests_closest(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_PARALLEL", "onn")
        with pytest.raises(ValueError, match="did you mean 'on'"):
            resolve_parallel()

    def test_bad_value_without_neighbor(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_PARALLEL", "sideways")
        with pytest.raises(ValueError, match="REPRO_ENGINE_PARALLEL"):
            resolve_parallel()
