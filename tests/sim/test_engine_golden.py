"""Engine equivalence: golden records and batch-API identity.

The compile-once/run-many engine rewrite (CompiledCore + SimVariant) is
required to be *bit-exact* against the reference implementation: same RNG
stream per (seed, iteration), same floating-point operation order, same
queue semantics. ``golden_engine.json`` pins the reference engine's output
— per-iteration makespans, out-of-order counts, and SHA-256 digests of the
raw start/end/dedicated arrays and resource loads — across every backend
(PS, ring, hierarchical) x enforcement mode (sender, ready_queue, dag,
none) x jitter on/off, plus edge configs (multi-slot NICs, fifo queues,
fabric caps, slowdowns, tiny wire chunks).

Regenerate the golden file ONLY for an intentional semantic change::

    PYTHONPATH=src python benchmarks/make_engine_golden.py
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import build_comm_graph
from repro.collectives import CollectiveSpec
from repro.core import Schedule
from repro.ps import ClusterSpec, build_cluster_graph
from repro.sim import (
    CompiledCore,
    SimConfig,
    SimVariant,
    simulate_cell_group,
    simulate_cluster,
)
from repro.timing import Platform, get_platform

from ..conftest import tiny_model

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_engine.json")

#: deterministic platform mirroring test_engine.FLAT (duplicated here so
#: the golden matrix is self-contained for the generator script).
FLAT = Platform(
    name="flat",
    worker_flops=1e10,
    ps_flops=1e10,
    bandwidth_bps=1e8,
    rpc_latency_s=1e-4,
    op_overhead_s=1e-6,
    jitter_sigma=0.0,
)

ITERATIONS = 3

SPECS = {
    "ps": ClusterSpec(2, 1, "training"),
    "ring": CollectiveSpec(n_workers=3, partition_bytes=65536),
    "hier": CollectiveSpec(n_workers=4, topology="hierarchical", partition_bytes=65536),
}

_cluster_cache: dict[str, tuple] = {}


def build_cluster(backend: str):
    """(model IR, cluster graph) for one golden backend, cached."""
    got = _cluster_cache.get(backend)
    if got is None:
        ir = tiny_model()
        spec = SPECS[backend]
        if isinstance(spec, ClusterSpec):
            cluster = build_cluster_graph(ir, spec)
        else:
            cluster = build_comm_graph(ir, spec)
        got = _cluster_cache[backend] = (ir, cluster)
    return got


def layerwise(ir) -> Schedule:
    return Schedule("layerwise", {p.name: i for i, p in enumerate(ir.params)})


def case_matrix() -> list[dict]:
    """Every golden case: the backend x mode x jitter core plus edges."""
    cases = []
    # The core matrix (flat platform, layerwise schedule, the default
    # gRPC slip noise left ON so the rng.random() noise path is covered).
    for backend in SPECS:
        for mode in ("sender", "ready_queue", "dag", "none"):
            for sigma in (0.0, 0.05):
                cases.append(
                    {
                        "name": f"{backend}-{mode}-j{sigma}",
                        "backend": backend,
                        "platform": "flat",
                        "schedule": "layerwise",
                        "config": {
                            "enforcement": mode,
                            "jitter_sigma": sigma,
                            "iterations": 1,
                            "seed": 7,
                        },
                    }
                )
    # Edge configs: each exercises one engine path the matrix misses.
    cases += [
        {"name": "ps-envG-sender", "backend": "ps", "platform": "envG",
         "schedule": "layerwise",
         "config": {"enforcement": "sender", "iterations": 1, "seed": 3}},
        {"name": "ps-baseline", "backend": "ps", "platform": "flat",
         "schedule": "baseline",
         "config": {"enforcement": "sender", "iterations": 1, "seed": 0}},
        {"name": "ps-fifo-compute", "backend": "ps", "platform": "flat",
         "schedule": "layerwise",
         "config": {"enforcement": "sender", "compute_queue": "fifo",
                    "iterations": 1, "seed": 1}},
        {"name": "ring-chunk-fifo", "backend": "ring", "platform": "flat",
         "schedule": "layerwise",
         "config": {"enforcement": "sender", "chunk_queue": "fifo",
                    "iterations": 1, "seed": 2}},
        {"name": "ps-fabric2", "backend": "ps", "platform": "flat",
         "schedule": "layerwise",
         "config": {"enforcement": "sender", "fabric_slots": 2,
                    "iterations": 1, "seed": 5}},
        {"name": "ps-slowdown", "backend": "ps", "platform": "flat",
         "schedule": "layerwise",
         "config": {"enforcement": "sender",
                    "device_slowdown": [["worker:1", 1.7]],
                    "iterations": 1, "seed": 5}},
        {"name": "ps-small-chunks", "backend": "ps", "platform": "flat",
         "schedule": "layerwise",
         "config": {"enforcement": "ready_queue", "chunk_bytes": 1 << 14,
                    "iterations": 1, "seed": 6}},
    ]
    return cases


def make_config(raw: dict) -> SimConfig:
    raw = dict(raw)
    if "device_slowdown" in raw:
        raw["device_slowdown"] = tuple(tuple(e) for e in raw["device_slowdown"])
    return SimConfig(**raw)


def run_case(case: dict) -> dict:
    """Simulate one golden case and fingerprint its records."""
    ir, cluster = build_cluster(case["backend"])
    platform = FLAT if case["platform"] == "flat" else get_platform(case["platform"])
    schedule = None if case["schedule"] == "baseline" else layerwise(ir)
    sim = SimVariant(CompiledCore(cluster, platform), schedule, make_config(case["config"]))
    iterations = []
    for i in range(ITERATIONS):
        record = sim.run_iteration(i)
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(record.start).tobytes())
        digest.update(np.ascontiguousarray(record.end).tobytes())
        digest.update(np.ascontiguousarray(record.dedicated).tobytes())
        loads = sim.resource_loads(record)
        ldigest = hashlib.sha256(
            json.dumps(loads, sort_keys=True).encode()
        ).hexdigest()
        iterations.append(
            {
                "makespan": record.makespan,
                "out_of_order": record.out_of_order_handoffs,
                "arrays_sha256": digest.hexdigest(),
                "loads_sha256": ldigest,
            }
        )
    return {"case": case, "iterations": iterations}


def _golden():
    if not os.path.exists(GOLDEN_PATH):  # regeneration bootstrap
        return {"iterations_per_case": ITERATIONS, "cases": []}
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


_GOLDEN = _golden()


@pytest.mark.parametrize(
    "case_rec", _GOLDEN["cases"], ids=[c["case"]["name"] for c in _GOLDEN["cases"]]
)
def test_engine_matches_golden_record(case_rec):
    """Makespans, out-of-order counts, per-op arrays and resource loads
    are bit-identical to the pre-refactor reference engine."""
    got = run_case(case_rec["case"])
    assert got["iterations"] == case_rec["iterations"]


def test_golden_matrix_is_current():
    """The committed golden file covers exactly the matrix defined here
    (a drifted matrix means cases silently stopped being checked)."""
    assert [c["case"] for c in _GOLDEN["cases"]] == case_matrix()
    assert _GOLDEN["iterations_per_case"] == ITERATIONS


# ----------------------------------------------------------------------
# batch API and core sharing
# ----------------------------------------------------------------------
def _records_equal(a, b) -> bool:
    return (
        a.makespan == b.makespan
        and a.out_of_order_handoffs == b.out_of_order_handoffs
        and np.array_equal(a.start, b.start)
        and np.array_equal(a.end, b.end)
        and np.array_equal(a.dedicated, b.dedicated)
    )


@given(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=1, max_value=5),
    st.sampled_from(["sender", "ready_queue", "dag", "none"]),
    st.sampled_from([0.0, 0.05]),
)
@settings(max_examples=15, deadline=None)
def test_run_iterations_equals_k_single_runs(first, count, mode, sigma):
    """run_iterations(first, k) is bit-equal to k run_iteration calls."""
    ir, cluster = build_cluster("ps")
    schedule = None if mode == "none" else layerwise(ir)
    cfg = SimConfig(enforcement=mode, jitter_sigma=sigma, iterations=1, seed=9)
    sim = SimVariant(CompiledCore(cluster, FLAT), schedule, cfg)
    batch = sim.run_iterations(first, count)
    assert len(batch) == count
    for i, record in enumerate(batch):
        assert _records_equal(record, sim.run_iteration(first + i))


def test_variants_share_core_without_interference():
    """Two variants on one core reproduce two private compilations, in
    either execution order (no hidden state leaks through the core)."""
    ir, cluster = build_cluster("ps")
    core = CompiledCore(cluster, FLAT)
    sched = layerwise(ir)
    cfg = SimConfig(iterations=1, seed=4)
    a = SimVariant(core, None, cfg)
    b = SimVariant(core, sched, cfg.with_(enforcement="ready_queue"))
    # interleave executions of both variants against the shared core
    got = [a.run_iteration(0), b.run_iteration(0), a.run_iteration(1)]
    ref_a = SimVariant(CompiledCore(cluster, FLAT), None, cfg)
    ref_b = SimVariant(CompiledCore(cluster, FLAT), sched, cfg.with_(enforcement="ready_queue"))
    assert _records_equal(got[0], ref_a.run_iteration(0))
    assert _records_equal(got[1], ref_b.run_iteration(0))
    assert _records_equal(got[2], ref_a.run_iteration(1))


def test_simulate_cluster_with_shared_core_matches_oneshot():
    spec = ClusterSpec(2, 1, "training")
    ir = tiny_model()
    cluster = build_cluster_graph(ir, spec)
    core = CompiledCore(cluster, FLAT)
    cfg = SimConfig(iterations=2, seed=1)
    with_core = simulate_cluster(
        ir, spec, algorithm="tic", platform=FLAT, config=cfg,
        cluster=cluster, core=core,
    )
    oneshot = simulate_cluster(ir, spec, algorithm="tic", platform=FLAT, config=cfg)
    assert np.array_equal(with_core.iteration_times, oneshot.iteration_times)


def test_simulate_cluster_rejects_foreign_core():
    ir = tiny_model()
    spec = ClusterSpec(2, 1, "training")
    cluster = build_cluster_graph(ir, spec)
    other = build_cluster_graph(ir, spec)
    core = CompiledCore(other, FLAT)
    with pytest.raises(ValueError, match="different cluster"):
        simulate_cluster(ir, spec, platform=FLAT, cluster=cluster, core=core)


def test_cell_group_matches_separate_simulations():
    """The sweep's unit of work — shared IR + graph + core — is bit-equal
    to fully independent simulate_cluster calls per variant."""
    spec = ClusterSpec(2, 1, "training")
    cfg = SimConfig(iterations=2, seed=3)
    variants = [("baseline", cfg), ("tic", cfg), ("tic", cfg.with_(seed=8))]
    grouped = simulate_cell_group(
        tiny_model(), spec, variants, platform=FLAT
    )
    for (algorithm, config), got in zip(variants, grouped):
        solo = simulate_cluster(
            tiny_model(), spec, algorithm=algorithm, platform=FLAT, config=config
        )
        assert np.array_equal(got.iteration_times, solo.iteration_times)
        assert got.algorithm == solo.algorithm
