"""Enforcement semantics (§5.1): exact order, counters, noise, modes."""

import numpy as np
import pytest

from repro.core import Schedule
from repro.ps import ClusterSpec, build_cluster_graph
from repro.sim import CompiledCore, SimConfig, SimVariant

from ..conftest import tiny_model
from .test_engine import FLAT


@pytest.fixture(scope="module")
def cluster():
    return build_cluster_graph(tiny_model(), ClusterSpec(2, 1, "training"))


@pytest.fixture(scope="module")
def schedule(cluster):
    params = [p.name for p in cluster.model.params]
    return Schedule("layerwise", {p: i for i, p in enumerate(params)})


def wire_order(cluster, record, link):
    transfers = [t for t in cluster.transfers_by_link[link] if t.kind == "param"]
    return [t.param for t in sorted(transfers, key=lambda t: record.start[t.op_id])]


def run(cluster, schedule, **cfg):
    config = SimConfig(**{"iterations": 1, "grpc_reorder_prob": 0.0, **cfg})
    sim = SimVariant(CompiledCore(cluster, FLAT), schedule, config)
    return sim.run_iteration(0)


@pytest.mark.parametrize("mode", ["sender", "dag"])
def test_exact_order_without_noise(cluster, schedule, mode):
    record = run(cluster, schedule, enforcement=mode)
    expected = schedule.order([p.name for p in cluster.model.params])
    for link, transfers in cluster.transfers_by_link.items():
        if any(t.kind == "param" for t in transfers):
            assert wire_order(cluster, record, link) == expected
    assert record.out_of_order_handoffs == 0


def test_same_order_at_every_worker(cluster, schedule):
    """The cross-worker consistency that kills stragglers (§2.2)."""
    record = run(cluster, schedule, enforcement="sender")
    orders = [
        tuple(wire_order(cluster, record, link))
        for link, ts in cluster.transfers_by_link.items()
        if any(t.kind == "param" for t in ts)
    ]
    assert len(set(orders)) == 1


def test_noise_produces_residual_reordering(cluster, schedule):
    """With the paper's measured slip rate, a few transfers land out of
    order — but only a few."""
    total = out = 0
    for i in range(20):
        config = SimConfig(iterations=1, grpc_reorder_prob=0.02, seed=i)
        sim = SimVariant(CompiledCore(cluster, FLAT), schedule, config)
        record = sim.run_iteration(i)
        out += record.out_of_order_handoffs
        total += len(cluster.param_transfers)
    rate = out / total
    assert 0.0 < rate < 0.15


def test_none_mode_ignores_priorities(cluster, schedule):
    record = run(cluster, schedule, enforcement="none")
    expected = schedule.order([p.name for p in cluster.model.params])
    mismatched = [
        link
        for link, ts in cluster.transfers_by_link.items()
        if any(t.kind == "param" for t in ts)
        and wire_order(cluster, record, link) != expected
    ]
    assert mismatched, "none-mode should not follow the schedule"
    assert record.out_of_order_handoffs == 0  # audit disabled in none mode


def test_ready_queue_mode_roughly_follows_priorities(cluster, schedule):
    """Greedy priority queues respect relative order among *queued*
    transfers; early hand-offs may overtake, so fidelity is approximate
    (the §5.1 objection)."""
    record = run(cluster, schedule, enforcement="ready_queue")
    expected = schedule.order([p.name for p in cluster.model.params])
    for link, ts in cluster.transfers_by_link.items():
        if not any(t.kind == "param" for t in ts):
            continue
        got = wire_order(cluster, record, link)
        # the very first prioritized transfer should win the wire early:
        assert got.index(expected[0]) <= len(got) // 2


def test_empty_schedule_disables_gates(cluster):
    sim = SimVariant(CompiledCore(cluster, FLAT), Schedule("baseline"), SimConfig(iterations=1))
    assert not sim.handoff_gate and not sim.dag_gate and not sim.prio
    assert sim.run_iteration(0).out_of_order_handoffs == 0


def test_gates_compiled_per_mode(cluster, schedule):
    sender = SimVariant(CompiledCore(cluster, FLAT), schedule, SimConfig(enforcement="sender"))
    dag = SimVariant(CompiledCore(cluster, FLAT), schedule, SimConfig(enforcement="dag"))
    rq = SimVariant(CompiledCore(cluster, FLAT), schedule, SimConfig(enforcement="ready_queue"))
    n = len(cluster.param_transfers)
    assert len(sender.handoff_gate) == n and not sender.dag_gate
    assert len(dag.dag_gate) == n and not dag.handoff_gate
    assert len(rq.prio) == n and not rq.handoff_gate


def test_partial_schedule_orders_known_params_first(cluster):
    """Params without priorities are legal (§3.1) and rank last."""
    params = [p.name for p in cluster.model.params]
    partial = Schedule("partial", {params[3]: 0, params[1]: 1})
    record = run(cluster, partial, enforcement="sender")
    for link, ts in cluster.transfers_by_link.items():
        if any(t.kind == "param" for t in ts):
            got = wire_order(cluster, record, link)
            assert got[0] == params[3] and got[1] == params[1]
