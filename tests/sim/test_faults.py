"""Fault-plan surface tests: validation, name resolution, cache keys,
job-mix scoping (ISSUE 9).

The bit-exactness of faulted execution lives in
``test_faults_golden.py``; this file pins the declarative layer — event
construction errors, compile-time did-you-mean diagnostics, the
``SimConfig.device_slowdown`` name validation (satellite 1), the fold of
fault plans into sweep cache keys (satellite 2) and the ``j<i>/``
scoping of per-job plans.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultPlan,
    FaultPlanError,
    HostFailure,
    LinkDegradation,
    NicFlap,
    StragglerBurst,
)
from repro.ps import ClusterSpec
from repro.sim import CompiledCore, SimConfig, SimVariant
from repro.sim.jobmix import JobMixSpec, JobSpec
from repro.sweep.spec import SimCell

from .test_engine_golden import FLAT, build_cluster, layerwise

PLAN = FaultPlan((
    LinkDegradation("ps:0", "worker:0", start=0.0, duration=0.05, factor=0.25),
    StragglerBurst("worker:1", start=0.01, duration=0.05, factor=3.0),
))


def _variant(config: SimConfig) -> SimVariant:
    ir, cluster = build_cluster("ps")
    return SimVariant(CompiledCore(cluster, FLAT), layerwise(ir), config)


# ----------------------------------------------------------------------
# event construction
# ----------------------------------------------------------------------
class TestEventValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(FaultPlanError, match="start"):
            StragglerBurst("worker:0", start=-0.1, duration=1.0, factor=2.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(FaultPlanError, match="duration"):
            NicFlap("worker:0", start=0.0, duration=0.0, factor=0.5)

    def test_bandwidth_factor_above_one_rejected(self):
        with pytest.raises(FaultPlanError, match="factor"):
            LinkDegradation("a", "b", start=0.0, duration=1.0, factor=1.5)

    def test_straggler_factor_below_one_rejected(self):
        with pytest.raises(FaultPlanError, match="factor"):
            StragglerBurst("worker:0", start=0.0, duration=1.0, factor=0.5)

    def test_host_failure_needs_positive_recovery(self):
        with pytest.raises(FaultPlanError, match="duration"):
            HostFailure("ps:0", start=0.0, recovery=0.0)

    def test_plan_rejects_foreign_events(self):
        with pytest.raises(FaultPlanError, match="fault events"):
            FaultPlan(("not an event",))

    def test_plan_compose_and_scope(self):
        plan = FaultPlan((PLAN.events[0],)) + FaultPlan((PLAN.events[1],))
        assert plan.events == PLAN.events
        scoped = plan.scoped("j0/")
        assert scoped.events[0].src == "j0/ps:0"
        assert scoped.events[0].dst == "j0/worker:0"
        assert scoped.events[1].device == "j0/worker:1"
        assert not plan.is_empty and FaultPlan().is_empty

    def test_config_rejects_non_plan(self):
        with pytest.raises(ValueError, match="FaultPlan"):
            SimConfig(faults="link down")
        with pytest.raises(ValueError, match="FaultPlan"):
            JobSpec(model="AlexNet v2", faults=("nope",))


# ----------------------------------------------------------------------
# compile-time name resolution
# ----------------------------------------------------------------------
class TestNameResolution:
    def test_unknown_straggler_device_suggests(self):
        plan = FaultPlan((StragglerBurst("worker:9", 0.0, 1.0, 2.0),))
        with pytest.raises(FaultPlanError, match="did you mean 'worker:1'"):
            _variant(SimConfig(faults=plan))

    def test_unknown_nic_device_suggests(self):
        plan = FaultPlan((NicFlap("wroker:0", 0.0, 1.0, 0.5),))
        with pytest.raises(FaultPlanError, match="did you mean 'worker:0'"):
            _variant(SimConfig(faults=plan))

    def test_unknown_link_lists_links(self):
        # both names exist but no channel connects the two workers in a
        # PS topology — the error enumerates the real links.
        plan = FaultPlan((LinkDegradation("worker:0", "worker:1", 0.0, 1.0, 0.5),))
        with pytest.raises(FaultPlanError, match="ps:0->worker:0"):
            _variant(SimConfig(faults=plan))

    def test_device_slowdown_typo_suggests(self):
        # satellite 1: static slowdowns get the same compile-time check
        with pytest.raises(ValueError, match="did you mean 'worker:0'"):
            _variant(SimConfig(device_slowdown=(("wroker:0", 2.0),)))

    def test_fault_windows_are_name_resolved(self):
        sim = _variant(SimConfig(faults=PLAN))
        kinds = {(kind, entity) for kind, entity, *_ in sim.fault_windows}
        assert ("compute", "worker:1") in kinds
        assert ("wire", "ps:0->worker:0") in kinds
        assert ("wire", "worker:0->ps:0") in kinds  # both directions


# ----------------------------------------------------------------------
# sweep cache keys (satellite 2)
# ----------------------------------------------------------------------
class TestCacheKeys:
    CELL = SimCell(
        model="AlexNet v2",
        spec=ClusterSpec(2, 1, "training"),
        config=SimConfig(iterations=2, warmup=0),
    )

    def test_none_plan_is_absent_from_key(self):
        # pre-fault cache entries keep their keys: a None plan never
        # appears in the payload at all.
        payload = self.CELL.key_payload()
        assert "faults" not in payload["cell"]["config"]

    def test_faulted_and_fault_free_never_share_an_entry(self):
        faulted = self.CELL.with_(config=self.CELL.config.with_(faults=PLAN))
        assert (
            faulted.cache_key_material() != self.CELL.cache_key_material()
        )
        assert "link_degradation" in faulted.cache_key_material()

    def test_distinct_plans_get_distinct_keys(self):
        a = self.CELL.with_(config=self.CELL.config.with_(faults=PLAN))
        b = self.CELL.with_(
            config=self.CELL.config.with_(
                faults=FaultPlan((HostFailure("ps:0", 0.1, 0.2),))
            )
        )
        assert a.cache_key_material() != b.cache_key_material()
        assert (
            a.cache_key_material()
            == self.CELL.with_(
                config=self.CELL.config.with_(faults=PLAN)
            ).cache_key_material()
        )

    def test_kernel_and_trace_still_excluded(self):
        faulted = self.CELL.with_(config=self.CELL.config.with_(faults=PLAN))
        twin = faulted.with_(
            config=faulted.config.with_(kernel="portable", trace=True)
        )
        assert twin.cache_key_material() == faulted.cache_key_material()


# ----------------------------------------------------------------------
# job-mix scoping
# ----------------------------------------------------------------------
class TestJobMixScoping:
    def test_job_plan_is_scoped_into_namespace(self):
        from repro.sim import build_jobmix_graph

        job_plan = FaultPlan((
            StragglerBurst("worker:0", start=0.0, duration=0.1, factor=2.0),
            LinkDegradation("ps:0", "worker:1", 0.0, 0.1, 0.5),
        ))
        spec = JobMixSpec(jobs=(
            JobSpec(model="AlexNet v2", n_workers=2, faults=job_plan),
        ))
        cluster = build_jobmix_graph(None, spec)
        core = CompiledCore(cluster, FLAT)
        assert core.job_faults is not None
        sim = SimVariant(core, None, SimConfig(iterations=1))
        entities = {entity for _kind, entity, *_ in sim.fault_windows}
        assert "j0/worker:0" in entities
        assert "j0/ps:0->j0/worker:1" in entities

    def test_job_and_config_plans_merge(self):
        from repro.sim import build_jobmix_graph

        spec = JobMixSpec(jobs=(
            JobSpec(
                model="AlexNet v2",
                n_workers=2,
                faults=FaultPlan((StragglerBurst("worker:0", 0.0, 0.1, 2.0),)),
            ),
        ))
        cluster = build_jobmix_graph(None, spec)
        core = CompiledCore(cluster, FLAT)
        cfg = SimConfig(
            iterations=1,
            faults=FaultPlan((StragglerBurst("j0/worker:1", 0.0, 0.1, 3.0),)),
        )
        sim = SimVariant(core, None, cfg)
        entities = {entity for _kind, entity, *_ in sim.fault_windows}
        assert {"j0/worker:0", "j0/worker:1"} <= entities
