"""Tensor partitioning/fusion: conservation and shape of the chunking."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import CollectiveSpec, partition_tensors
from repro.models.ir import FLOAT_BYTES, ParamTensor

from ..strategies import model_irs


def tensors(*shapes):
    return [ParamTensor(f"p{i}", shape) for i, shape in enumerate(shapes)]


def test_large_tensor_splits_and_conserves_elements():
    (p,) = tensors((1000,))
    chunks = partition_tensors([p], partition_bytes=300 * FLOAT_BYTES)
    assert len(chunks) == 4  # ceil(1000/300)
    assert sum(c.n_elements for c in chunks) == 1000
    assert all(c.params == ("p0",) for c in chunks)
    # near-equal split: sizes differ by at most one element
    sizes = [c.n_elements for c in chunks]
    assert max(sizes) - min(sizes) <= 1


def test_small_tensors_fuse_up_to_threshold():
    params = tensors((100,), (100,), (100,), (100,))
    chunks = partition_tensors(params, partition_bytes=250 * FLOAT_BYTES)
    assert [c.params for c in chunks] == [("p0", "p1"), ("p2", "p3")]
    assert [c.n_elements for c in chunks] == [200, 200]


def test_fuse_disabled_keeps_one_chunk_per_tensor():
    params = tensors((10,), (20,), (30,))
    chunks = partition_tensors(params, partition_bytes=2**20, fuse=False)
    assert [c.params for c in chunks] == [("p0",), ("p1",), ("p2",)]


def test_chunk_indices_are_dense_and_ordered():
    params = tensors((1000,), (10,), (10,), (900,))
    chunks = partition_tensors(params, partition_bytes=400 * FLOAT_BYTES)
    assert [c.index for c in chunks] == list(range(len(chunks)))
    assert [c.name for c in chunks] == [f"chunk:{i:04d}" for i in range(len(chunks))]


def test_partition_bytes_must_be_positive():
    with pytest.raises(ValueError, match="positive"):
        partition_tensors(tensors((4,)), partition_bytes=0)


@given(model_irs(), st.sampled_from([64, 1024, 2**20]), st.booleans())
@settings(max_examples=20, deadline=None)
def test_partition_conserves_model_bytes(ir, partition_bytes, fuse):
    chunks = partition_tensors(ir.params, partition_bytes, fuse=fuse)
    assert sum(c.n_elements for c in chunks) == sum(
        p.n_elements for p in ir.params
    )
    assert sum(c.nbytes for c in chunks) == ir.total_param_bytes
    # every parameter appears in at least one chunk, split pieces aside
    covered = {p for c in chunks for p in c.params}
    assert covered == {p.name for p in ir.params}


def test_spec_validation():
    with pytest.raises(ValueError, match="topology"):
        CollectiveSpec(n_workers=2, topology="butterfly")
    with pytest.raises(ValueError, match="positive"):
        CollectiveSpec(n_workers=0)
    with pytest.raises(ValueError, match="divide"):
        CollectiveSpec(n_workers=4, topology="hierarchical", group_size=3)
    spec = CollectiveSpec(n_workers=4)
    assert spec.workload == "training"
    assert spec.n_ps == 0
    assert spec.workers == ["worker:0", "worker:1", "worker:2", "worker:3"]


@pytest.mark.parametrize(
    "n_workers,expected_group",
    [(2, 1), (4, 2), (8, 4), (12, 4), (6, 3), (3, 1), (16, 4)],
)
def test_auto_group_size(n_workers, expected_group):
    spec = CollectiveSpec(n_workers=n_workers, topology="hierarchical")
    assert spec.effective_group_size == expected_group
    groups = spec.groups()
    assert sum(len(g) for g in groups) == n_workers
    assert all(len(g) == expected_group for g in groups)
