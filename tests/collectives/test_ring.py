"""Ring all-reduce: analytic wire bound, conservation, DAG structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import CollectiveSpec, build_collective_graph
from repro.graph import OpKind, ResourceKind
from repro.sim import SimConfig, simulate_cluster
from repro.timing.platform import WIRE

from ..conftest import tiny_model
from ..strategies import model_irs


def transfer_ops(cluster):
    return [
        op
        for op in cluster.graph
        if op.resource is not None and op.resource.kind is ResourceKind.LINK
    ]


def ring_bound_s(nbytes: float, n_workers: int) -> float:
    return 2 * (n_workers - 1) / n_workers * nbytes / WIRE.bandwidth_bps


@pytest.mark.parametrize("n_workers", [2, 3, 4, 8])
def test_ring_makespan_matches_analytic_bound(n_workers):
    """The acceptance bound: on a homogeneous comm-only platform the ring
    simulates to within 5% of 2(W-1)/W * M/B (single fused chunk)."""
    ir = tiny_model()
    spec = CollectiveSpec(n_workers=n_workers, topology="ring")
    res = simulate_cluster(
        ir, spec, algorithm="baseline", platform=WIRE,
        config=SimConfig(iterations=2, warmup=0),
    )
    bound = ring_bound_s(ir.total_param_bytes, n_workers)
    assert res.mean_iteration_time >= bound * (1 - 1e-9)
    assert res.mean_iteration_time <= bound * 1.05


def test_ring_bound_holds_under_partitioning():
    """Many chunks pipeline across the ring without opening bubbles."""
    ir = tiny_model()
    spec = CollectiveSpec(n_workers=4, topology="ring", partition_bytes=1024)
    cluster = build_collective_graph(ir, spec)
    assert len(cluster.chunks) > 5
    res = simulate_cluster(
        ir, spec, algorithm="baseline", platform=WIRE,
        config=SimConfig(iterations=2, warmup=0),
    )
    bound = ring_bound_s(ir.total_param_bytes, 4)
    assert bound * (1 - 1e-9) <= res.mean_iteration_time <= bound * 1.05


def test_ring_byte_conservation():
    """Every worker forwards 2(W-1) segments of E/W per chunk: total wire
    bytes are exactly 2(W-1) * M."""
    ir = tiny_model()
    W = 4
    cluster = build_collective_graph(
        ir, CollectiveSpec(n_workers=W, topology="ring", partition_bytes=4096)
    )
    total = sum(op.cost for op in transfer_ops(cluster))
    assert total == pytest.approx(2 * (W - 1) * ir.total_param_bytes, rel=1e-9)
    per_worker = {w: 0.0 for w in cluster.spec.workers}
    for op in transfer_ops(cluster):
        per_worker[op.device] += op.cost
    expected = 2 * (W - 1) / W * ir.total_param_bytes
    for w, sent in per_worker.items():
        assert sent == pytest.approx(expected, rel=1e-9)


def test_single_worker_degenerates_to_local_update():
    ir = tiny_model()
    cluster = build_collective_graph(ir, CollectiveSpec(n_workers=1))
    assert transfer_ops(cluster) == []
    res = simulate_cluster(
        ir, CollectiveSpec(n_workers=1), algorithm="baseline", platform=WIRE,
        config=SimConfig(iterations=1, warmup=0),
    )
    assert res.mean_iteration_time > 0


@given(
    model_irs(max_convs=3),
    st.sampled_from([1, 2, 3, 4]),
    st.sampled_from(["ring", "hierarchical"]),
    st.sampled_from([256, 4096, 2**20]),
    st.booleans(),
)
@settings(max_examples=15, deadline=None)
def test_collective_graph_structural_invariants(
    ir, n_workers, topology, partition_bytes, fuse
):
    """Property test: any (model, W, topology, partitioning) yields a
    valid acyclic resource-tagged DAG with per-worker update coverage."""
    spec = CollectiveSpec(
        n_workers=n_workers,
        topology=topology,
        partition_bytes=partition_bytes,
        fuse=fuse,
    )
    cluster = build_collective_graph(ir, spec)
    g = cluster.graph
    g.validate()  # structural invariants + cycle-free by construction
    assert len(g.topological_order()) == len(g)
    # every op carries a resource tag (the engine requires it)
    assert all(op.resource is not None for op in g)
    # one update per (worker, chunk)
    updates = g.ops_of_kind(OpKind.UPDATE)
    assert len(updates) == n_workers * len(cluster.chunks)
    # no PS-style recv/send survives: collective graphs gate locally
    assert g.ops_of_kind(OpKind.RECV) == []
    # chunk metadata covers every registered transfer
    for transfers in cluster.transfers_by_link.values():
        for t in transfers:
            assert t.kind == "chunk"
            assert t.param in cluster.chunk_params
    # the engine can execute it (no deadlock, all ops finish)
    res = simulate_cluster(
        ir, spec, algorithm="baseline", platform=WIRE,
        config=SimConfig(iterations=1, warmup=0),
    )
    assert np.isfinite(res.mean_iteration_time)
