"""The allreduce experiment driver: outputs, guarantees, determinism."""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import execute_scenario
from repro.experiments.common import Context, Scale

REPO_ROOT = Path(__file__).resolve().parents[2]

TINY_SCALE = Scale(
    name="quick",
    models=("AlexNet v2",),
    worker_counts=(2,),
    ps_counts=(1,),
    iterations=2,
    warmup=0,
    consistency_runs=1,
    loss_iterations=1,
)


def tiny_context(tmp_path, **kwargs) -> Context:
    return Context(
        scale=TINY_SCALE,
        results_dir=str(tmp_path),
        use_cache=False,
        verbose=False,
        **kwargs,
    )


@pytest.fixture(scope="module")
def driver_output(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("allreduce")
    ctx = tiny_context(tmp)
    out = execute_scenario(ctx, "allreduce")
    out.extras["csv_path"] = out.save(ctx.results_dir)[out.name]
    return out, tmp


def test_driver_covers_the_grid(driver_output):
    out, _ = driver_output
    rows = out.rows
    assert {r["topology"] for r in rows} == {"ring", "hierarchical"}
    assert {r["algorithm"] for r in rows} == {"baseline", "tic", "tac"}
    assert len({r["partition_mib"] for r in rows}) == 2
    assert len(rows) == 2 * 2 * 3  # topologies x partitions x algorithms


def test_driver_writes_all_csvs(driver_output):
    out, tmp = driver_output
    csv_path = out.extras["csv_path"]
    assert os.path.exists(csv_path)
    assert csv_path.endswith("allreduce_comparison.csv")
    assert os.path.exists(out.extras["wire_check_csv"])
    assert os.path.exists(out.extras["vs_ps_csv"])


def test_ring_wire_check_within_5pct(driver_output):
    out, _ = driver_output
    import csv

    with open(out.extras["wire_check_csv"]) as fh:
        for row in csv.DictReader(fh):
            assert 1.0 - 1e-6 <= float(row["ratio"]) <= 1.05


def test_tac_never_slower_than_baseline(driver_output):
    out, _ = driver_output
    for row in out.rows:
        if row["algorithm"] == "tac":
            assert row["speedup_pct"] >= 0.0


_SUBPROCESS_SCRIPT = """
import sys
from repro.api import execute_scenario
from repro.experiments.common import Context, Scale

scale = Scale(
    name="quick", models=("AlexNet v2",), worker_counts=(2,), ps_counts=(1,),
    iterations=2, warmup=0, consistency_runs=1, loss_iterations=1,
)
ctx = Context(scale=scale, results_dir=sys.argv[1], use_cache=False,
              verbose=False)
execute_scenario(ctx, "allreduce").save(ctx.results_dir)
"""


def _run_driver_in_subprocess(results_dir: Path) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT, str(results_dir)],
        check=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(results_dir.glob("*.csv"))
    }


def test_driver_is_deterministic_across_processes(tmp_path):
    """Two independent interpreter processes produce byte-identical CSVs
    (no caching involved)."""
    a = _run_driver_in_subprocess(tmp_path / "a")
    b = _run_driver_in_subprocess(tmp_path / "b")
    assert a and a == b
