"""Hierarchical (two-level) all-reduce: structure and wire accounting."""

from __future__ import annotations

import pytest

from repro.collectives import CollectiveSpec, build_collective_graph
from repro.graph import OpKind, ResourceKind
from repro.sim import SimConfig, simulate_cluster
from repro.timing.platform import WIRE

from ..conftest import tiny_model


def transfer_ops(cluster):
    return [
        op
        for op in cluster.graph
        if op.resource is not None and op.resource.kind is ResourceKind.LINK
    ]


def test_hierarchical_byte_conservation():
    """Per chunk: L(G-1) full-chunk reduces in, 2(L-1) ring bytes,
    L(G-1) full-chunk broadcasts out."""
    ir = tiny_model()
    spec = CollectiveSpec(n_workers=8, topology="hierarchical", group_size=4)
    cluster = build_collective_graph(ir, spec)
    L, G = spec.n_groups, spec.effective_group_size
    M = ir.total_param_bytes
    expected = (2 * L * (G - 1) + 2 * (L - 1)) * M
    total = sum(op.cost for op in transfer_ops(cluster))
    assert total == pytest.approx(expected, rel=1e-9)


def test_group_reduce_ops_on_leaders_only():
    ir = tiny_model()
    spec = CollectiveSpec(n_workers=4, topology="hierarchical", group_size=2)
    cluster = build_collective_graph(ir, spec)
    reduces = cluster.graph.ops_of_kind(OpKind.AGGREGATE)
    leaders = {group[0] for group in spec.groups()}
    assert len(reduces) == len(leaders) * len(cluster.chunks)
    assert {op.device for op in reduces} == leaders


def test_hierarchical_single_chunk_matches_leader_bottleneck():
    """One chunk serializes the three phases: (G-1)M/B in, the leaders'
    ring, (G-1)M/B out."""
    ir = tiny_model()
    spec = CollectiveSpec(n_workers=4, topology="hierarchical", group_size=2)
    res = simulate_cluster(
        ir, spec, algorithm="baseline", platform=WIRE,
        config=SimConfig(iterations=2, warmup=0),
    )
    M, B = ir.total_param_bytes, WIRE.bandwidth_bps
    L, G = spec.n_groups, spec.effective_group_size
    bound = ((G - 1) * M + 2 * (L - 1) / L * M + (G - 1) * M) / B
    assert res.mean_iteration_time >= bound * (1 - 1e-9)
    assert res.mean_iteration_time <= bound * 1.05


def test_group_of_one_degenerates_to_ring():
    """group_size=1 makes every worker a leader: the hierarchical emitter
    reduces to the plain ring (same wire bytes, same wire makespan)."""
    ir = tiny_model()
    ring = CollectiveSpec(n_workers=3, topology="ring")
    hier = CollectiveSpec(n_workers=3, topology="hierarchical", group_size=1)
    ring_bytes = sum(
        op.cost for op in transfer_ops(build_collective_graph(ir, ring))
    )
    hier_bytes = sum(
        op.cost for op in transfer_ops(build_collective_graph(ir, hier))
    )
    assert hier_bytes == pytest.approx(ring_bytes, rel=1e-12)
    cfg = SimConfig(iterations=1, warmup=0)
    r = simulate_cluster(ir, ring, algorithm="baseline", platform=WIRE, config=cfg)
    h = simulate_cluster(ir, hier, algorithm="baseline", platform=WIRE, config=cfg)
    assert h.mean_iteration_time == pytest.approx(r.mean_iteration_time, rel=1e-6)
