"""TIC/TAC on the collective backend: chunk ranks, gating, wizard memo."""

from __future__ import annotations

import pytest

from repro import backends
from repro.collectives import (
    CollectiveSpec,
    build_collective_graph,
    prepare_collective_schedule,
)
from repro.core.schedules import Schedule, chunk_ranks
from repro.ps.cluster import ClusterSpec
from repro.sim import SimConfig, simulate_cluster
from repro.sim.engine import CompiledCore, SimVariant
from repro.timing import get_platform

from ..conftest import tiny_model


def test_chunk_ranks_min_priority_and_tiebreak():
    schedule = Schedule("tic", priorities={"a": 3, "b": 0, "c": 1})
    params = {"chunk:0": ("a",), "chunk:1": ("c", "b"), "chunk:2": ("d",)}
    order = {"chunk:0": 0, "chunk:1": 1, "chunk:2": 2}
    ranks = chunk_ranks(schedule, params, order)
    # chunk:1 inherits b's priority 0; unprioritized chunk:2 ranks last
    assert ranks == {"chunk:1": 0, "chunk:0": 1, "chunk:2": 2}
    assert sorted(ranks.values()) == [0, 1, 2]


def test_chunk_ranks_tie_breaks_by_chunk_order():
    schedule = Schedule("tic", priorities={"a": 1, "b": 1})
    params = {"chunk:0": ("b",), "chunk:1": ("a",)}
    ranks = chunk_ranks(schedule, params, {"chunk:0": 0, "chunk:1": 1})
    assert ranks == {"chunk:0": 0, "chunk:1": 1}


@pytest.mark.parametrize("algorithm", ["tic", "tac", "tic_plus"])
def test_wizard_covers_all_parameters(algorithm):
    ir = tiny_model()
    spec = CollectiveSpec(n_workers=2)
    schedule = prepare_collective_schedule(
        ir, spec, algorithm, get_platform("envG")
    )
    assert set(schedule.priorities) == {p.name for p in ir.params}


def test_engine_assigns_priorities_to_every_chunk_transfer():
    ir = tiny_model()
    spec = CollectiveSpec(n_workers=3, partition_bytes=2048)
    plat = get_platform("envG")
    cluster = build_collective_graph(ir, spec)
    schedule = prepare_collective_schedule(ir, spec, "tic", plat)
    sim = SimVariant(CompiledCore(cluster, plat), schedule, SimConfig())
    chunk_op_ids = {
        t.op_id
        for transfers in cluster.transfers_by_link.values()
        for t in transfers
    }
    assert chunk_op_ids  # the graph does have chunk transfers
    assert chunk_op_ids <= set(sim.prio)
    # ranks lowered from the schedule are dense over chunks
    assert set(sim.prio.values()) <= set(range(len(cluster.chunks)))


def test_chunk_queue_fifo_disables_priorities():
    ir = tiny_model()
    spec = CollectiveSpec(n_workers=3)
    plat = get_platform("envG")
    cluster = build_collective_graph(ir, spec)
    schedule = prepare_collective_schedule(ir, spec, "tic", plat)
    sim = SimVariant(CompiledCore(cluster, plat), schedule, SimConfig(chunk_queue="fifo"))
    assert not sim.prio


@pytest.mark.parametrize("topology", ["ring", "hierarchical"])
def test_tac_not_slower_than_baseline(topology):
    """The acceptance guarantee, at test scale: scheduled chunk order
    never loses to the unscheduled executor order."""
    ir = tiny_model(batch_size=4)
    spec = CollectiveSpec(n_workers=4, topology=topology)
    cfg = SimConfig(iterations=3, warmup=1)
    base = simulate_cluster(
        ir, spec, algorithm="baseline", platform="envG", config=cfg
    )
    tac = simulate_cluster(
        ir, spec, algorithm="tac", platform="envG", config=cfg
    )
    assert tac.mean_iteration_time <= base.mean_iteration_time * (1 + 1e-9)


def test_wizard_memo_shares_passes_across_worker_counts():
    """One reference partition serves every collective spec of a model —
    and PS specs share across worker counts (the ROADMAP memo item)."""
    backends.clear_schedule_memo()
    ir = tiny_model()
    plat = get_platform("envG")
    s2 = backends.prepare_comm_schedule(
        ir, CollectiveSpec(n_workers=2), "tac", plat
    )
    s8 = backends.prepare_comm_schedule(
        ir, CollectiveSpec(n_workers=8, topology="hierarchical"), "tac", plat
    )
    assert s2 is s8  # memo hit: same reference projection
    assert backends.schedule_memo_size() == 1
    p2 = backends.prepare_comm_schedule(
        ir, ClusterSpec(n_workers=2, n_ps=2), "tac", plat
    )
    p16 = backends.prepare_comm_schedule(
        ir, ClusterSpec(n_workers=16, n_ps=2), "tac", plat
    )
    assert p2 is p16
    # ...but a different shard count is a different reference partition
    p_other = backends.prepare_comm_schedule(
        ir, ClusterSpec(n_workers=2, n_ps=1), "tac", plat
    )
    assert p_other is not p2
    backends.clear_schedule_memo()


def test_wizard_memo_distinguishes_structurally_different_models():
    """Two models with the same name, batch and parameter *census* but
    different structure must not share a memo entry (the key is the IR's
    structural fingerprint, not summary statistics)."""
    from repro.models.builder import NetBuilder

    def variant(bias_first: bool):
        b = NetBuilder("same_name", 8, input_hw=(16, 16))
        b.conv("conv0", 3, 8, bias=bias_first, bn=not bias_first)
        b.conv("conv1", 3, 8, bias=not bias_first, bn=bias_first)
        b.fc("logits", 10)
        b.softmax("predictions")
        return b.build()

    a, b = variant(True), variant(False)
    assert a.structural_fingerprint() != b.structural_fingerprint()
    backends.clear_schedule_memo()
    plat = get_platform("envG")
    spec = CollectiveSpec(n_workers=2)
    sched_a = backends.prepare_comm_schedule(a, spec, "tic", plat)
    sched_b = backends.prepare_comm_schedule(b, spec, "tic", plat)
    assert backends.schedule_memo_size() == 2
    assert set(sched_a.priorities) != set(sched_b.priorities)
    backends.clear_schedule_memo()


def test_backend_dispatch_rejects_unknown_spec_types():
    with pytest.raises(TypeError, match="no communication backend"):
        backends.backend_for_spec(object())


def test_third_party_registration_does_not_suppress_builtins():
    """register_backend as the first registry touch must still load the
    built-in ps/allreduce backends."""

    class FakeSpec:
        pass

    fake = backends.CommBackend(
        name="fake",
        spec_type=FakeSpec,
        build_graph=lambda ir, spec: None,
        prepare_schedule=lambda *a, **k: None,
        schedule_key=lambda spec: ("fake",),
    )
    backends.register_backend(fake)
    try:
        registry = backends.backends()
        assert {"ps", "allreduce", "fake"} <= set(registry)
        assert backends.backend_for_spec(FakeSpec()).name == "fake"
    finally:
        backends._BACKENDS.pop("fake", None)
        backends._BY_SPEC_TYPE.pop(FakeSpec, None)
