"""Fig. 8 — loss trajectories with and without enforced ordering."""



def test_fig8_regeneration(benchmark, run_scenario):
    out = benchmark.pedantic(run_scenario, args=("fig8",), rounds=1, iterations=1)
    assert out.extras["identical"] is True, (
        "enforced ordering must not change the training trajectory"
    )
    losses = [r["loss_tic"] for r in out.rows]
    assert losses[-1] < losses[0], "loss must decrease over training"
    print()
    print(out.text)
