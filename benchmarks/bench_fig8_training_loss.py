"""Fig. 8 — loss trajectories with and without enforced ordering."""

from repro.experiments import fig8


def test_fig8_regeneration(benchmark, ctx):
    out = benchmark.pedantic(fig8.run, args=(ctx,), rounds=1, iterations=1)
    assert out.extras["identical"] is True, (
        "enforced ordering must not change the training trajectory"
    )
    losses = [r["loss_tic"] for r in out.rows]
    assert losses[-1] < losses[0], "loss must decrease over training"
    print()
    print(out.text)
