"""Fig. 13 — TIC vs. TAC on the commodity CPU cluster (envC)."""

import numpy as np



def test_fig13_regeneration(benchmark, run_scenario):
    out = benchmark.pedantic(run_scenario, args=("fig13",), rounds=1, iterations=1)
    tic = np.array([r["tic_speedup_pct"] for r in out.rows])
    tac = np.array([r["tac_speedup_pct"] for r in out.rows])
    # both heuristics beat the baseline on the envC models
    assert tic.min() > 0 and tac.min() > 0
    # and they are comparable (the paper's Appendix-B conclusion)
    assert np.abs(tic - tac).max() <= 10.0
    # envC gains are substantial (the paper shows up to ~75%)
    assert max(tic.max(), tac.max()) > 15.0
    print()
    print(out.text)
