"""Regenerate the fault-injection golden records.

Writes ``tests/sim/golden_faults.json``: per-iteration makespans,
out-of-order counts and array digests of faulted engine runs (the
matrix is defined once, in ``tests/sim/test_faults_golden.py``, and
replayed by that test under BOTH event-loop kernels).

Regenerate ONLY when intentionally changing fault semantics::

    PYTHONPATH=src python benchmarks/make_faults_golden.py

and say so in the commit message (fault results feed committed
``results/fault_resilience*.csv`` artifacts and the sweep cache via the
plan's presence in cell keys).
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from tests.sim.test_faults_golden import (  # noqa: E402
    GOLDEN_PATH,
    ITERATIONS,
    case_matrix,
    run_case,
)


def main() -> None:
    golden = [run_case(case) for case in case_matrix()]
    with open(GOLDEN_PATH, "w") as fh:
        json.dump({"iterations_per_case": ITERATIONS, "cases": golden}, fh, indent=1)
    print(f"wrote {len(golden)} cases to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
