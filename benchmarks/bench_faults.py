"""Fault-resilience bench: scheduling algorithms under injected faults.

Regenerates ``results/fault_resilience*.csv`` (ISSUE 9): the
``fault_resilience`` scenario sweeps {baseline, tic, tac} across fault
intensities (a link degradation on the PS ingress plus a straggler
burst on one worker, both scaled by the intensity knob) and attributes
the lost service time per fault window via ``Trace.fault_impact``.
"""


def test_fault_resilience(benchmark, run_scenario):
    out = benchmark.pedantic(
        run_scenario, args=("fault_resilience",), rounds=1, iterations=1
    )
    rows = {(r["algorithm"], r["intensity"]): r for r in out.rows}
    intensities = sorted({q for _a, q in rows})
    assert intensities[0] == 0.0 and len(intensities) >= 3
    for algo in ("baseline", "tic", "tac"):
        # harder faults never make an iteration faster
        times = [rows[(algo, q)]["iteration_ms"] for q in intensities]
        assert times == sorted(times)
        # intensity 0 compiles to an empty plan: nothing to attribute
        clean = rows[(algo, 0.0)]
        assert clean["n_fault_windows"] == 0
        assert clean["fault_compute_lost_ms"] == 0.0
        assert clean["fault_wire_lost_ms"] == 0.0
    for q in intensities:
        # communication scheduling keeps paying off under degradation
        assert rows[("tic", q)]["vs_baseline_pct"] >= 0.0
    worst = rows[("baseline", intensities[-1])]
    assert worst["n_fault_windows"] > 0
    assert worst["fault_compute_lost_ms"] + worst["fault_wire_lost_ms"] > 0.0
    print()
    print(out.text)
