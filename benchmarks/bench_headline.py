"""Abstract headline claims: max speedups, worst slowdown, straggler cut."""



def test_headline_regeneration(benchmark, run_scenario):
    out = benchmark.pedantic(run_scenario, args=("headline",), rounds=1, iterations=1)
    rows = {r["claim"]: r for r in out.rows}
    assert rows["max inference speedup"]["ours_pct"] > 15.0
    assert rows["max training speedup"]["ours_pct"] > 8.0
    # the paper tolerates up to -4.2% at small scale; allow the same decade
    assert rows["worst slowdown"]["ours_pct"] > -8.0
    assert rows["max straggler reduction (x)"]["ours_pct"] > 1.5
    print()
    print(out.text)
