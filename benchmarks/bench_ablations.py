"""Design-choice ablations (§5.1 enforcement point, comparator erratum,
TIC variants, oracle quality, gRPC noise, sharding strategy)."""



def test_ablations_regeneration(benchmark, run_scenario):
    out = benchmark.pedantic(run_scenario, args=("ablations",), rounds=1, iterations=1)
    by = {(r["group"], r["variant"]): r for r in out.rows}

    baseline = by[("enforcement", "none (baseline)")]["throughput_sps"]
    sender = by[("enforcement", "sender")]["throughput_sps"]
    assert sender > baseline, "deployed enforcement must beat no scheduling"

    eq6 = by[("comparator", "tac (Eq. 6)")]["vs_baseline_pct"]
    printed = by[("comparator", "tac (as printed)")]["vs_baseline_pct"]
    assert eq6 > printed + 5.0, (
        "the printed comparator is inverted; Eq. 6 must win clearly"
    )

    tic = by[("tic_variant", "tic")]["vs_baseline_pct"]
    tic_plus = by[("tic_variant", "tic_plus")]["vs_baseline_pct"]
    assert abs(tic - tic_plus) < 8.0

    est = by[("oracle", "estimated (min of 5)")]["vs_baseline_pct"]
    exact = by[("oracle", "exact")]["vs_baseline_pct"]
    assert abs(est - exact) < 5.0, "min-of-5 estimation suffices (§5)"
    print()
    print(out.text)
