"""Extension benches: straggler decomposition and pipelining ablation.

These regenerate the two extension experiments DESIGN.md calls out beyond
the paper's figures (grounded in §6.3's straggler-source framing and §7's
future-work directions).
"""



def test_straggler_decomposition(benchmark, run_scenario):
    out = benchmark.pedantic(run_scenario, args=("stragglers",), rounds=1, iterations=1)
    rows = {(r["slow_worker_factor"], r["algorithm"]): r for r in out.rows}
    # homogeneous cluster: scheduling removes most straggling
    assert rows[(1.0, "tic")]["straggler_pct_max"] < rows[(1.0, "baseline")]["straggler_pct_max"]
    # hardware-slow worker: system-induced component dominates and
    # scheduling cannot remove it
    slow_tic = rows[(1.5, "tic")]["straggler_pct_max"]
    assert slow_tic > 3 * rows[(1.0, "tic")]["straggler_pct_max"]
    # ...but TicTac still removes the scheduling component of the time
    assert rows[(1.5, "tic")]["iteration_ms"] <= rows[(1.5, "baseline")]["iteration_ms"]
    print()
    print(out.text)


def test_pipelining_ablation(benchmark, run_scenario):
    out = benchmark.pedantic(run_scenario, args=("pipelining",), rounds=1, iterations=1)
    rows = {r["algorithm"]: r for r in out.rows}
    for r in rows.values():
        # steady-state spacing stays in the barrier model's neighbourhood
        assert 0.3 * r["barrier_ms"] <= r["pipelined_steady_ms"] <= 1.25 * r["barrier_ms"]
        # the fill latency is about one barrier iteration
        assert r["fill_latency_ms"] >= 0.5 * r["barrier_ms"]
    # under pipelining the two configurations converge or TIC stays ahead
    assert rows["tic"]["pipelined_steady_ms"] <= rows["baseline"]["pipelined_steady_ms"] * 1.05
    print()
    print(out.text)
