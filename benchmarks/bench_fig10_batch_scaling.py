"""Fig. 10 — speedup under computational-load (batch-size) scaling."""



def test_fig10_regeneration(benchmark, run_scenario):
    out = benchmark.pedantic(run_scenario, args=("fig10",), rounds=1, iterations=1)
    factors = {r["batch_factor"] for r in out.rows}
    assert factors == {0.5, 1.0, 2.0}
    # batch scales linearly with the factor
    by_model = {}
    for r in out.rows:
        by_model.setdefault(r["model"], {})[r["batch_factor"]] = r
    for model, rows in by_model.items():
        assert rows[2.0]["batch"] == 4 * rows[0.5]["batch"]
        # absolute throughput grows with batch (more work per pull)
        assert rows[2.0]["baseline_sps"] > rows[0.5]["baseline_sps"]
    print()
    print(out.text)
