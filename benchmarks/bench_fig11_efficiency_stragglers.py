"""Fig. 11 — scheduling efficiency and straggler effect vs. model size."""

import numpy as np



def test_fig11_regeneration(benchmark, run_scenario):
    out = benchmark.pedantic(run_scenario, args=("fig11",), rounds=1, iterations=1)
    tic = [r for r in out.rows if r["algorithm"] == "tic"]
    base = [r for r in out.rows if r["algorithm"] == "baseline"]
    # (a) E -> 1 under TIC, above the baseline scatter
    assert min(r["efficiency_mean"] for r in tic) > 0.95
    assert np.mean([r["efficiency_mean"] for r in tic]) > np.mean(
        [r["efficiency_mean"] for r in base]
    )
    # (b) stragglers compressed on aggregate (paper: up to 2.3x)
    assert np.mean([r["straggler_pct_max"] for r in tic]) < np.mean(
        [r["straggler_pct_max"] for r in base]
    )
    print()
    print(out.text)
