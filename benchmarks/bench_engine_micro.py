"""Micro-benchmarks of the library itself (not a paper figure): the
offline wizard cost the paper quotes (~10 s per model) and the simulator's
event throughput. These guard against performance regressions that would
make the paper-scale protocol impractical."""

import numpy as np
import pytest

from repro.core import PropertyEngine, Schedule, tac, tic
from repro.models import build_model
from repro.ps import ClusterSpec, build_cluster_graph, build_reference_partition
from repro.sim import CompiledCore, SimConfig, SimVariant
from repro.timing import ENV_G, estimate_time_oracle


def test_bench_tic_wizard_largest_model(benchmark):
    ref = build_reference_partition(build_model("ResNet-101 v2"),
                                    workload="training", n_ps=1)
    schedule = benchmark(tic, ref.graph)
    assert len(schedule.priorities) == 244


def test_bench_tac_wizard_largest_model(benchmark):
    ref = build_reference_partition(build_model("ResNet-101 v2"),
                                    workload="training", n_ps=1)
    oracle = estimate_time_oracle(ref.graph, ENV_G, seed=0)
    schedule = benchmark.pedantic(tac, args=(ref.graph, oracle),
                                  rounds=3, iterations=1)
    assert len(schedule.priorities) == 244
    # the paper quotes ~10 s offline; stay well under
    assert schedule.meta["wizard_seconds"] < 10.0


def test_bench_property_engine_update(benchmark):
    ref = build_reference_partition(build_model("ResNet-101 v1"),
                                    workload="training", n_ps=1)
    engine = PropertyEngine(ref.graph, estimate_time_oracle(ref.graph, ENV_G))
    mask = np.ones(engine.n_recv, dtype=bool)
    mask[::3] = False
    snap = benchmark(engine.update, mask)
    assert snap.P.shape == (engine.n_recv,)


def test_bench_simulated_iteration(benchmark):
    cluster = build_cluster_graph(
        build_model("Inception v3"), ClusterSpec(4, 1, "training")
    )
    sim = SimVariant(CompiledCore(cluster, ENV_G), None, SimConfig())
    record = benchmark(sim.run_iteration, 0)
    assert record.makespan > 0


def test_bench_scheduled_iteration(benchmark):
    """The sender-enforcement path: §5.1 counters + eligible-set upkeep."""
    ir = build_model("Inception v3")
    cluster = build_cluster_graph(ir, ClusterSpec(4, 1, "training"))
    schedule = Schedule("layerwise", {p.name: i for i, p in enumerate(ir.params)})
    sim = SimVariant(CompiledCore(cluster, ENV_G), schedule, SimConfig(enforcement="sender"))
    record = benchmark(sim.run_iteration, 0)
    assert record.makespan > 0


def test_bench_run_iterations_batch(benchmark):
    """The batch API end to end (10 iterations per round)."""
    cluster = build_cluster_graph(
        build_model("Inception v3"), ClusterSpec(4, 1, "training")
    )
    sim = SimVariant(CompiledCore(cluster, ENV_G), None, SimConfig())
    records = benchmark(sim.run_iterations, 0, 10)
    assert len(records) == 10


def test_bench_core_compilation(benchmark):
    """CompiledCore lowering — paid once per (cluster, platform) group."""
    cluster = build_cluster_graph(
        build_model("Inception v3"), ClusterSpec(4, 1, "training")
    )
    core = benchmark(CompiledCore, cluster, ENV_G)
    assert core.n == len(cluster.graph)


def test_bench_variant_binding(benchmark):
    """SimVariant binding — paid per (schedule, config) cell; must be far
    cheaper than core compilation for compile-once sharing to pay off."""
    ir = build_model("Inception v3")
    cluster = build_cluster_graph(ir, ClusterSpec(4, 1, "training"))
    core = CompiledCore(cluster, ENV_G)
    schedule = Schedule("layerwise", {p.name: i for i, p in enumerate(ir.params)})
    variant = benchmark(SimVariant, core, schedule, SimConfig())
    assert variant.n_channels > 0


def test_bench_cluster_graph_assembly(benchmark):
    ir = build_model("ResNet-50 v1")
    cluster = benchmark(build_cluster_graph, ir, ClusterSpec(8, 2, "training"))
    assert len(cluster.graph) > 10_000


def _available_kernels() -> list[str]:
    from repro.sim import kernel

    return ["python"] + (["numba"] if kernel.HAVE_NUMBA else [])



@pytest.mark.parametrize("kern", _available_kernels())
def test_bench_kernel_scheduled_iteration(benchmark, kern):
    """ISSUE 4 seam: the scheduled hot path per event-loop kernel (the
    workload where the numba kernel's >=2x target is measured)."""
    ir = build_model("Inception v3")
    cluster = build_cluster_graph(ir, ClusterSpec(4, 1, "training"))
    schedule = Schedule("layerwise", {p.name: i for i, p in enumerate(ir.params)})
    sim = SimVariant(CompiledCore(cluster, ENV_G), schedule,
                     SimConfig(enforcement="sender", kernel=kern))
    sim.run_iteration(0)  # warm the JIT outside the timed region
    record = benchmark(sim.run_iteration, 0)
    assert record.makespan > 0


def test_bench_shared_core_attach(benchmark):
    """Worker-side cost of attaching a published core (vs recompiling:
    see test_bench_core_compilation + test_bench_cluster_graph_assembly)."""
    from repro.sweep import sharedcore

    cluster = build_cluster_graph(
        build_model("Inception v3"), ClusterSpec(4, 1, "training")
    )
    core = CompiledCore(cluster, ENV_G)
    handle = sharedcore.publish(core, meta={})
    try:
        def attach_fresh():
            sharedcore.detach_all()
            return sharedcore.attach(handle)[0]

        attached = benchmark(attach_fresh)
        assert attached.n == core.n
    finally:
        sharedcore.detach_all()
        handle.unlink()
