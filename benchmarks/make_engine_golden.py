"""Regenerate the engine-equivalence golden records.

Writes ``tests/sim/golden_engine.json``: the exact per-iteration makespans,
out-of-order counts and array digests of the engine across every backend x
enforcement mode x jitter combination (the matrix is defined once, in
``tests/sim/test_engine_golden.py``, and replayed by that test).

Regenerate ONLY when intentionally changing engine semantics::

    PYTHONPATH=src python benchmarks/make_engine_golden.py

and say so in the commit message: every cached sweep result and committed
results/*.csv implicitly depends on these numbers (bump
``repro.sim.engine.ENGINE_REV`` in the same change so stale cache entries
are never served).
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from tests.sim.test_engine_golden import (  # noqa: E402
    GOLDEN_PATH,
    ITERATIONS,
    case_matrix,
    run_case,
)


def main() -> None:
    golden = [run_case(case) for case in case_matrix()]
    with open(GOLDEN_PATH, "w") as fh:
        json.dump({"iterations_per_case": ITERATIONS, "cases": golden}, fh, indent=1)
    print(f"wrote {len(golden)} cases to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
