"""Fig. 12 — efficiency/step-time regression and step-time CDF (envC).

Paper targets: R² = 0.98 for the linear fit of normalized step time on
scheduling efficiency; 95th-percentile normalized step time 0.634
(baseline) vs 0.998 (TAC).
"""



def test_fig12_regeneration(benchmark, run_scenario):
    out = benchmark.pedantic(run_scenario, args=("fig12",), rounds=1, iterations=1)
    # (a) the metric explains most step-time variance
    assert out.extras["r2"] > 0.85, (
        f"R2 {out.extras['r2']:.3f} too low vs paper's 0.98"
    )
    # (b) TAC's step-time distribution is much tighter than baseline's
    assert out.extras["p95_tac"] > out.extras["p95_baseline"] + 0.05
    assert out.extras["p95_tac"] > 0.9
    print()
    print(out.text)
