"""Table 1 — model characteristics (regeneration + build cost)."""

from repro.models import build_model, op_counts


def test_table1_regeneration(benchmark, run_scenario):
    out = benchmark.pedantic(run_scenario, args=("table1",), rounds=1, iterations=1)
    assert len(out.rows) == 10
    # parity re-asserted on the bench artifact itself
    for row in out.rows:
        assert row["params"] == row["params_paper"]
        assert abs(row["size_mib"] - row["size_mib_paper"]) <= 0.01
    print()
    print(out.text)


def test_bench_largest_model_build(benchmark):
    """Zoo cost: building + lowering the largest graph (ResNet-101 v2)."""
    def build_and_count():
        return op_counts(build_model("ResNet-101 v2"))

    inf, tr = benchmark(build_and_count)
    assert inf > 2000 and tr > 3500
