"""Sweep-runner micro-benchmarks (not a paper figure): the cache-hit fast
path that makes repeated ``--full`` runs cheap, and the dedupe that lets
overlapping figure drivers share cells. These guard the subsystem that
every other bench now runs through."""

import pytest

from repro.ps import ClusterSpec
from repro.sim import SimConfig
from repro.sweep import GridSpec, SweepRunner


def _grid_cells():
    return GridSpec(
        models=("AlexNet v2",),
        workloads=("training",),
        worker_counts=(2, 4),
        ps_counts=(1,),
        algorithms=("tic",),
    ).cells(SimConfig(iterations=2, warmup=0))


def test_bench_sweep_cache_hit_path(benchmark, tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("sweep-cache"))
    runner = SweepRunner(jobs=1, cache_dir=cache_dir)
    cells = _grid_cells()
    cold = runner.run_cells(cells)

    warm = benchmark(runner.run_cells, cells)

    assert [r.summary() for r in warm] == [r.summary() for r in cold]
    assert runner.stats.hits >= len(cells)


def test_bench_sweep_dedupe(benchmark):
    runner = SweepRunner(jobs=1, cache_dir=None)
    cells = _grid_cells() * 5  # five drivers asking for the same slice

    results = benchmark.pedantic(runner.run_cells, args=(cells,),
                                 rounds=1, iterations=1)

    assert len(results) == len(cells)
    assert results[0].summary() == results[2].summary()
