"""§2.2 motivation — randomness of baseline transfer orders.

Paper: over 1000 iterations, large models never repeat a parameter-arrival
order (VGG-16: 493 unique of 1000); ResNet-v2-152 sizes the search space at
363 tensors / 229.5 MB.
"""



def test_motivation_regeneration(benchmark, run_scenario):
    out = benchmark.pedantic(run_scenario, args=("motivation",), rounds=1, iterations=1)
    by_model = {r["model"]: r for r in out.rows}
    for model in ("ResNet-50 v2", "Inception v3"):
        row = by_model[model]
        # the unscheduled executor should essentially never repeat an order
        assert row["unique_orders"] >= 0.9 * row["iterations"]
    sizing = by_model["ResNet-152 v2 (sizing)"]
    assert sizing["unique_orders"] == 363  # parameter-tensor count
    print()
    print(out.text)
