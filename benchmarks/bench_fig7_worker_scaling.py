"""Fig. 7 — throughput speedup vs. worker count (envG, PS:W = 1:4).

Regenerates the figure's rows (speedup of TIC over the no-scheduling
baseline per model x worker-count x workload) and asserts its shape:
positive gains for communication-bound models, inference >= training on
aggregate, and the documented small-scale overhead tolerance.
"""

import numpy as np



def test_fig7_regeneration(benchmark, run_scenario, results):
    out = benchmark.pedantic(run_scenario, args=("fig7",), rounds=1, iterations=1)
    results["fig7"] = out
    gains = np.array([r["speedup_pct"] for r in out.rows])
    # the sweep must show real wins somewhere and only bounded losses
    assert gains.max() > 10.0
    assert gains.min() > -8.0
    by_workload = {}
    for row in out.rows:
        by_workload.setdefault(row["workload"], []).append(row["speedup_pct"])
    assert np.mean(by_workload["inference"]) >= np.mean(by_workload["training"])
    print()
    print(out.text)
