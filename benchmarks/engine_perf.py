"""Engine micro-benchmark + CI regression gate.

Times the simulator's hot paths on fixed workloads and compares against the
committed baseline in ``BENCH_engine.json``. Two entry points::

    PYTHONPATH=src python benchmarks/engine_perf.py measure        # print JSON
    PYTHONPATH=src python benchmarks/engine_perf.py check          # CI gate

``check`` exits non-zero when any benchmarked workload runs more than
``--tolerance`` (default 25%) slower than the committed ``after`` numbers —
the perf-trajectory guard ISSUE 3 wires into CI. Because CI runners are
heterogeneous, the comparison is normalized by a **calibration kernel**:
an engine-independent mix of heap/list/RNG work timed in the same run,
whose baseline cost is committed alongside the workload numbers. A host
that is uniformly 1.8x slower scales every expectation by 1.8x, so only a
*relative* engine regression trips the gate. ``measure --update after``
rewrites the ``after`` block (and its calibration) in place.

Workloads (chosen to cover both engine regimes):

* ``iteration_unscheduled`` — one baseline iteration of Inception v3 on a
  4-worker/1-PS training cluster (the historic ``bench_engine_micro``
  workload): compute-queue and NIC round-robin dominated.
* ``iteration_scheduled`` — the same cluster under a layerwise schedule
  with sender enforcement: gate bookkeeping + priority paths.
* ``batch_10`` — ``run_iterations(0, 10)`` of the unscheduled sim: the
  amortized batch API end to end (per-second number is per iteration).
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import sys
import time

import numpy as np

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_engine.json")


def build_workloads():
    from repro.core import Schedule
    from repro.models import build_model
    from repro.ps import ClusterSpec, build_cluster_graph
    from repro.sim import CompiledSimulation, SimConfig
    from repro.timing import ENV_G

    ir = build_model("Inception v3")
    cluster = build_cluster_graph(ir, ClusterSpec(4, 1, "training"))
    layerwise = Schedule("layerwise", {p.name: i for i, p in enumerate(ir.params)})
    plain = CompiledSimulation(cluster, ENV_G, None, SimConfig())
    sched = CompiledSimulation(cluster, ENV_G, layerwise,
                               SimConfig(enforcement="sender"))

    def run_batch():
        if hasattr(plain, "run_iterations"):
            return plain.run_iterations(0, 10)
        return [plain.run_iteration(i) for i in range(10)]

    return {
        "iteration_unscheduled": (lambda: plain.run_iteration(0), 1),
        "iteration_scheduled": (lambda: sched.run_iteration(0), 1),
        "batch_10": (run_batch, 10),
    }


def _calibration_kernel() -> float:
    """Engine-independent host-speed probe: the same interpreter/numpy
    operation mix the event loop leans on (heap tuples, list queues,
    scalar Generator draws). Returns a checksum so the work is not
    optimized away."""
    rng = np.random.default_rng(12345)
    rng_integers = rng.integers
    heap: list = []
    seq = 0
    acc = 0.0
    queue: list[int] = []
    for i in range(150_000):
        heapq.heappush(heap, (float(i % 997) * 1e-3, seq, i & 3, i))
        seq += 1
        if i & 1:
            t, _s, _c, _op = heapq.heappop(heap)
            acc += t
        queue.append(i)
        if len(queue) > 64:
            queue.pop(0)
    for _ in range(15_000):
        acc += float(rng_integers(7))
    return acc


def measure(repeats: int = 5) -> tuple[dict, float]:
    """(seconds-per-iteration per workload, calibration-kernel seconds)."""
    results = {}
    for name, (fn, per_call) in build_workloads().items():
        fn()  # warm caches (allocator, first-touch numpy paths)
        best = min(_time_once(fn) for _ in range(repeats))
        results[name] = best / per_call
    _calibration_kernel()
    calibration = min(_time_once(_calibration_kernel) for _ in range(repeats))
    return results, calibration


def _time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def load_baseline() -> dict:
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=["measure", "check"])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown vs baseline (check)")
    parser.add_argument("--update", choices=["before", "after"],
                        help="write measurements into BENCH_engine.json")
    args = parser.parse_args(argv)

    results, calibration = measure(args.repeats)
    print(json.dumps(
        {**{k: round(v, 6) for k, v in results.items()},
         "calibration": round(calibration, 6)},
        indent=1,
    ))

    if args.update:
        bench = load_baseline()
        bench[args.update] = {k: round(v, 6) for k, v in results.items()}
        bench[f"{args.update}_calibration"] = round(calibration, 6)
        _rederive(bench)
        with open(BASELINE_PATH, "w") as fh:
            json.dump(bench, fh, indent=1)
            fh.write("\n")
        print(f"updated {args.update!r} in {BASELINE_PATH}")

    if args.command == "check":
        bench = load_baseline()
        baseline = bench["after"]
        base_cal = bench.get("after_calibration")
        scale = calibration / base_cal if base_cal else 1.0
        print(f"host speed vs baseline host: {scale:.2f}x "
              f"(calibration {calibration*1e3:.0f} ms vs {base_cal*1e3:.0f} ms)"
              if base_cal else "no calibration baseline; absolute comparison")
        failures = []
        for name, sec in results.items():
            ref = baseline.get(name)
            if ref is None:
                continue
            slowdown = sec / (ref * scale) - 1.0
            status = "FAIL" if slowdown > args.tolerance else "ok"
            print(f"  {name}: {sec*1e3:.1f} ms vs scaled baseline "
                  f"{ref*scale*1e3:.1f} ms ({slowdown:+.0%}) {status}")
            if slowdown > args.tolerance:
                failures.append(name)
        if failures:
            print(f"REGRESSION: {', '.join(failures)} exceeded "
                  f"{args.tolerance:.0%} over the committed baseline",
                  file=sys.stderr)
            return 1
        print("engine perf within tolerance")
    return 0


def _rederive(bench: dict) -> None:
    """Recompute the before/after speedup block when both sides exist."""
    before, after = bench.get("before"), bench.get("after")
    if before and after:
        bench["speedup"] = {
            k: round(before[k] / after[k], 2)
            for k in after
            if k in before and after[k]
        }


if __name__ == "__main__":
    sys.exit(main())
