"""Engine micro-benchmark + CI regression gate.

Times the simulator's hot paths on fixed workloads and compares against the
committed baseline in ``BENCH_engine.json``. Two entry points::

    PYTHONPATH=src python benchmarks/engine_perf.py measure        # print JSON
    PYTHONPATH=src python benchmarks/engine_perf.py check          # CI gate

``check`` exits non-zero when any benchmarked workload runs more than
``--tolerance`` (default 25%) slower than the committed baseline — the
perf-trajectory guard ISSUE 3 wired into CI. Because CI runners are
heterogeneous, the comparison is normalized by a **calibration kernel**:
an engine-independent mix of heap/list/RNG work timed in the same run,
whose baseline cost is committed alongside the workload numbers. A host
that is uniformly 1.8x slower scales every expectation by 1.8x, so only a
*relative* engine regression trips the gate.

``--kernel {auto,python,numba,portable}`` selects the event-loop kernel
(ISSUE 4's seam) so both maintained paths stay measured. ``check`` gates
against the committed ``pr4`` stage entry for the *resolved* kernel
(falling back to the pr3 ``after`` block when a stage entry is absent);
requesting ``--kernel numba`` on a host without numba fails loudly
instead of silently timing the python fallback, and a numba build whose
JIT quietly broke shows up as a >25% regression against its own
committed numbers. ``measure --update pr4`` rewrites the resolved
kernel's ``pr4`` entry (plus calibration) in place; ``--update
before|after`` keep maintaining the historic pr2/pr3 blocks.

Workloads (chosen to cover both engine regimes):

* ``iteration_unscheduled`` — one baseline iteration of Inception v3 on a
  4-worker/1-PS training cluster (the historic ``bench_engine_micro``
  workload): compute-queue and NIC round-robin dominated.
* ``iteration_scheduled`` — the same cluster under a layerwise schedule
  with sender enforcement: gate bookkeeping + priority paths.
* ``batch_10`` — ``run_iterations(0, 10)`` of the unscheduled sim: the
  amortized batch API end to end (per-second number is per iteration).
* ``jobmix_packed`` — one iteration of a two-job AlexNet mix (the second
  job arriving mid-flight) packed onto shared hosts on envC: the
  multi-job union path — deferred root releases, shared-NIC channel
  contention, per-job completion accounting.

``trace-overhead`` times every workload twice — ``SimConfig(trace=False)``
vs ``trace=True`` — and prints the per-workload overhead of turning event
recording on. Tracing *off* is free by construction (the flag only adds
side-array writes behind a branch, and the untraced workloads above are
what ``check`` gates), so this stage documents the opt-in cost instead of
gating it; ``--update pr7`` records it in ``BENCH_engine.json``.

``pr8`` measures the variant-batched dispatch stages (ISSUE 8) and
``--update pr8`` records them under a ``pr8`` block keyed by resolved
kernel (suffixed ``_parallel`` when ``REPRO_ENGINE_PARALLEL`` is on):

* ``batch_variants_8`` vs ``variant_dispatch_8`` — 8 seed-variants of an
  AlexNet v2 2-worker cluster on ONE shared core, 2 iterations each:
  one ``run_variants`` sweep against 8 ``run_iterations`` calls (the
  engine-layer batch entry; per-second numbers are per iteration).
* ``sweep_group_batched`` vs ``sweep_group_dispatch`` — a 32-cell
  shared-core group (single-worker AlexNet v2 inference, one measured
  iteration per cell: the fine-grained autotuning regime) through
  ``SweepRunner(jobs=2)``: the batched phase-B lane (chunks of cells
  per worker task) against one task per cell (per-second numbers are
  per cell-iteration).

``check`` gates the committed pr8 stage entry for the resolved kernel
alongside pr4; the sweep stages gate at a widened tolerance (pool
scheduling noise) while the engine stages use the standard one.
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import sys
import time

import numpy as np

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_engine.json")


def build_workloads(kernel: str = "auto", trace: bool = False):
    from repro.core import Schedule
    from repro.models import build_model
    from repro.ps import ClusterSpec, build_cluster_graph
    from repro.sim import (
        CompiledCore,
        JobMixSpec,
        JobSpec,
        SimConfig,
        SimVariant,
        build_jobmix_graph,
    )
    from repro.timing import ENV_G, get_platform

    ir = build_model("Inception v3")
    cluster = build_cluster_graph(ir, ClusterSpec(4, 1, "training"))
    core = CompiledCore(cluster, ENV_G)
    layerwise = Schedule("layerwise", {p.name: i for i, p in enumerate(ir.params)})
    plain = SimVariant(core, None, SimConfig(kernel=kernel, trace=trace))
    sched = SimVariant(core, layerwise,
                       SimConfig(enforcement="sender", kernel=kernel,
                                 trace=trace))

    mix_spec = JobMixSpec(
        jobs=(
            JobSpec("AlexNet v2", n_workers=2, n_ps=1),
            JobSpec("AlexNet v2", n_workers=2, n_ps=1, arrival=6.0),
        ),
        placement="packed",
        n_hosts=6,
    )
    mix_core = CompiledCore(build_jobmix_graph(None, mix_spec),
                            get_platform("envC"))
    mix = SimVariant(mix_core, None, SimConfig(kernel=kernel, trace=trace))

    return {
        "iteration_unscheduled": (lambda: plain.run_iteration(0), 1),
        "iteration_scheduled": (lambda: sched.run_iteration(0), 1),
        "batch_10": (lambda: plain.run_iterations(0, 10), 10),
        "jobmix_packed": (lambda: mix.run_iteration(0), 1),
    }, plain.kernel


def build_pr8_workloads(kernel: str = "auto"):
    """ISSUE 8 stages (see module docstring). Returns ``(workloads,
    resolved_kernel, runner)`` — the caller must ``runner.close()``."""
    from repro.models import build_model
    from repro.ps import ClusterSpec, build_cluster_graph
    from repro.sim import CompiledCore, SimConfig, SimVariant, run_variants
    from repro.sweep import SimCell, SweepRunner
    from repro.timing import ENV_G

    ir = build_model("AlexNet v2")
    spec = ClusterSpec(2, 1, "training")
    core = CompiledCore(build_cluster_graph(ir, spec), ENV_G)
    iters = 2
    variants = [
        SimVariant(core, None, SimConfig(kernel=kernel, seed=s))
        for s in range(8)
    ]

    def batched():
        return run_variants(core, variants, iters)

    def dispatch():
        return [v.run_iterations(0, iters) for v in variants]

    # The sweep stage models the fine-grained autotuning regime batching
    # exists for: MANY cheap variants of one shared core, one measured
    # iteration each — per-cell dispatch overhead rivals the simulation.
    cfg = SimConfig(iterations=1, warmup=0, kernel=kernel)
    sweep_spec = ClusterSpec(1, 1, "inference")
    cells = [
        SimCell(model="AlexNet v2", spec=sweep_spec, algorithm="baseline",
                config=cfg.with_(seed=s))
        for s in range(32)
    ]
    runner = SweepRunner(jobs=2)
    # warm outside timing: spawn the pool, import-warm the workers,
    # publish the group core once (reused by every timed run).
    runner.run_cells(cells)

    def sweep_batched():
        runner.batch_cells = True
        return runner.run_cells(cells)

    def sweep_dispatch():
        runner.batch_cells = False
        return runner.run_cells(cells)

    workloads = {
        "batch_variants_8": (batched, 8 * iters),
        "variant_dispatch_8": (dispatch, 8 * iters),
        "sweep_group_batched": (sweep_batched, len(cells)),
        "sweep_group_dispatch": (sweep_dispatch, len(cells)),
    }
    return workloads, variants[0].kernel, runner


def measure_pr8(repeats: int = 5,
                kernel: str = "auto") -> tuple[dict, dict, str]:
    """(seconds-per-iteration per pr8 stage, dispatch/batched speedup
    ratios, resolved kernel name)."""
    workloads, resolved, runner = build_pr8_workloads(kernel)
    try:
        results = {}
        for name, (fn, per_call) in workloads.items():
            fn()  # warm
            best = min(_time_once(fn) for _ in range(repeats))
            results[name] = best / per_call
    finally:
        runner.close()
    ratios = {
        "variants": round(
            results["variant_dispatch_8"] / results["batch_variants_8"], 2
        ),
        "sweep_group": round(
            results["sweep_group_dispatch"] / results["sweep_group_batched"], 2
        ),
    }
    return results, ratios, resolved


def _calibration_kernel() -> float:
    """Engine-independent host-speed probe: the same interpreter/numpy
    operation mix the event loop leans on (heap tuples, list queues,
    scalar Generator draws). Returns a checksum so the work is not
    optimized away."""
    rng = np.random.default_rng(12345)
    rng_integers = rng.integers
    heap: list = []
    seq = 0
    acc = 0.0
    queue: list[int] = []
    for i in range(150_000):
        heapq.heappush(heap, (float(i % 997) * 1e-3, seq, i & 3, i))
        seq += 1
        if i & 1:
            t, _s, _c, _op = heapq.heappop(heap)
            acc += t
        queue.append(i)
        if len(queue) > 64:
            queue.pop(0)
    for _ in range(15_000):
        acc += float(rng_integers(7))
    return acc


def measure(repeats: int = 5, kernel: str = "auto",
            trace: bool = False) -> tuple[dict, float, str]:
    """(seconds-per-iteration per workload, calibration seconds, resolved
    kernel name)."""
    workloads, resolved = build_workloads(kernel, trace)
    results = {}
    for name, (fn, per_call) in workloads.items():
        fn()  # warm caches (allocator, first-touch numpy paths, JIT)
        best = min(_time_once(fn) for _ in range(repeats))
        results[name] = best / per_call
    _calibration_kernel()
    calibration = min(_time_once(_calibration_kernel) for _ in range(repeats))
    return results, calibration, resolved


def _time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def load_baseline() -> dict:
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


def _stage_key(resolved: str) -> str:
    """pr4 stage entries are keyed python/numba; 'portable' measures the
    numba algorithm uncompiled and is never a gate baseline."""
    return "numba" if resolved == "numba" else "python"


def _gate_baseline(bench: dict, resolved: str) -> tuple[dict, float, str]:
    """(workload baseline, its calibration, label) for the resolved
    kernel: the pr4 stage entry when committed, else the pr3 'after'."""
    entry = (bench.get("pr4") or {}).get(_stage_key(resolved))
    if entry and entry.get("workloads"):
        return (entry["workloads"], entry.get("calibration"),
                f"pr4[{_stage_key(resolved)}]")
    return bench["after"], bench.get("after_calibration"), "after (pr3)"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command",
                        choices=["measure", "check", "trace-overhead", "pr8"])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown vs baseline (check)")
    parser.add_argument("--kernel", default="auto",
                        choices=["auto", "python", "numba", "portable"],
                        help="event-loop kernel to measure (ISSUE 4 seam); "
                        "explicit 'numba' fails loudly when numba is missing")
    parser.add_argument("--update",
                        choices=["before", "after", "pr4", "pr7", "pr8"],
                        help="write measurements into BENCH_engine.json "
                        "(pr7 records the trace-overhead stage, pr8 the "
                        "variant-batched stages)")
    parser.add_argument("--min-numba-speedup", type=float, default=1.5,
                        help="when checking --kernel numba WITHOUT a committed "
                        "pr4[numba] stage entry, require at least this "
                        "speedup over the python baseline — a JIT that "
                        "compiles-but-interprets runs at python speed and "
                        "must fail, not slip through the fallback gate")
    args = parser.parse_args(argv)
    if args.update == "pr8" and args.command != "pr8":
        parser.error("--update pr8 belongs to the 'pr8' command")
    if args.command == "pr8":
        if args.update not in (None, "pr8"):
            parser.error("the 'pr8' command only accepts --update pr8")
        return pr8_stage(args)
    if args.command == "trace-overhead":
        return trace_overhead(args)
    if args.command == "check" and args.kernel == "portable":
        parser.error(
            "--kernel portable is a debug path (the array kernel, "
            "uncompiled on numba-less hosts) and has no gate baseline; "
            "check with --kernel auto|python|numba"
        )

    results, calibration, resolved = measure(args.repeats, args.kernel)
    print(json.dumps(
        {**{k: round(v, 6) for k, v in results.items()},
         "calibration": round(calibration, 6),
         "kernel": resolved},
        indent=1,
    ))

    if args.update:
        bench = load_baseline()
        if args.update == "pr4":
            stage = bench.setdefault("pr4", {})
            stage[_stage_key(resolved)] = {
                "kernel": resolved,
                "workloads": {k: round(v, 6) for k, v in results.items()},
                "calibration": round(calibration, 6),
            }
        else:
            bench[args.update] = {k: round(v, 6) for k, v in results.items()}
            bench[f"{args.update}_calibration"] = round(calibration, 6)
        _rederive(bench)
        with open(BASELINE_PATH, "w") as fh:
            json.dump(bench, fh, indent=1)
            fh.write("\n")
        print(f"updated {args.update!r} in {BASELINE_PATH}")

    if args.command == "check":
        bench = load_baseline()
        baseline, base_cal, label = _gate_baseline(bench, resolved)
        scale = calibration / base_cal if base_cal else 1.0
        print(f"kernel: {resolved}; baseline: {label}")
        print(f"host speed vs baseline host: {scale:.2f}x "
              f"(calibration {calibration*1e3:.0f} ms vs {base_cal*1e3:.0f} ms)"
              if base_cal else "no calibration baseline; absolute comparison")
        # With no committed numba stage entry the fallback baseline is the
        # python loop, which a silently-interpreted JIT matches instead of
        # beating — so in that configuration the gate flips to a minimum-
        # speedup requirement rather than a maximum-slowdown one.
        min_speedup = (
            args.min_numba_speedup
            if resolved == "numba" and label.endswith("(pr3)")
            else None
        )
        if min_speedup:
            print(f"no committed pr4[numba] stage: requiring >={min_speedup}x "
                  "over the python baseline (record one with "
                  "'measure --update pr4 --kernel numba')")
        failures = []
        for name, sec in results.items():
            ref = baseline.get(name)
            if ref is None:
                continue
            if min_speedup:
                speedup = (ref * scale) / sec
                bad = speedup < min_speedup
                status = "FAIL" if bad else "ok"
                print(f"  {name}: {sec*1e3:.1f} ms vs scaled python baseline "
                      f"{ref*scale*1e3:.1f} ms ({speedup:.2f}x) {status}")
            else:
                slowdown = sec / (ref * scale) - 1.0
                bad = slowdown > args.tolerance
                status = "FAIL" if bad else "ok"
                print(f"  {name}: {sec*1e3:.1f} ms vs scaled baseline "
                      f"{ref*scale*1e3:.1f} ms ({slowdown:+.0%}) {status}")
            if bad:
                failures.append(name)
        pr8_entry = (bench.get("pr8") or {}).get(_stage_key(resolved))
        if pr8_entry and pr8_entry.get("workloads"):
            p8_results, p8_ratios, _ = measure_pr8(args.repeats, args.kernel)
            cal8 = pr8_entry.get("calibration")
            scale8 = calibration / cal8 if cal8 else 1.0
            print(f"pr8 stages (batched dispatch, {p8_ratios} speedups):")
            for name, sec in p8_results.items():
                ref = pr8_entry["workloads"].get(name)
                if ref is None:
                    continue
                # sweep stages ride a live process pool: scheduling noise
                # earns them a wider gate than the in-process ones.
                tol = (args.tolerance if name.startswith(("batch_", "variant_"))
                       else max(args.tolerance, 0.5))
                slowdown = sec / (ref * scale8) - 1.0
                bad = slowdown > tol
                status = "FAIL" if bad else "ok"
                print(f"  {name}: {sec*1e3:.1f} ms vs scaled baseline "
                      f"{ref*scale8*1e3:.1f} ms ({slowdown:+.0%}, "
                      f"tol {tol:.0%}) {status}")
                if bad:
                    failures.append(name)
        if failures:
            if min_speedup:
                print(f"REGRESSION: {', '.join(failures)} below the "
                      f"{min_speedup}x numba-vs-python floor (broken or "
                      "non-compiling JIT?)", file=sys.stderr)
            else:
                print(f"REGRESSION: {', '.join(failures)} exceeded "
                      f"{args.tolerance:.0%} over the committed baseline",
                      file=sys.stderr)
            return 1
        print("engine perf within tolerance")
    return 0


def pr8_stage(args) -> int:
    """Measure the variant-batched dispatch stages and optionally record
    them (``--update pr8``) under a kernel-keyed ``pr8`` block. The key
    gains a ``_parallel`` suffix when ``REPRO_ENGINE_PARALLEL`` is on so
    prange numbers never overwrite (or gate against) serial ones."""
    from repro.sim.kernel import resolve_parallel

    results, ratios, resolved = measure_pr8(args.repeats, args.kernel)
    _calibration_kernel()
    calibration = min(_time_once(_calibration_kernel)
                      for _ in range(args.repeats))
    key = _stage_key(resolved) + ("_parallel" if resolve_parallel() else "")
    print(json.dumps(
        {**{k: round(v, 6) for k, v in results.items()},
         "speedup": ratios,
         "calibration": round(calibration, 6),
         "kernel": resolved, "stage_key": key},
        indent=1,
    ))
    if args.update == "pr8":
        bench = load_baseline()
        bench.setdefault("pr8", {})[key] = {
            "kernel": resolved,
            "workloads": {k: round(v, 6) for k, v in results.items()},
            "speedup": ratios,
            "calibration": round(calibration, 6),
        }
        with open(BASELINE_PATH, "w") as fh:
            json.dump(bench, fh, indent=1)
            fh.write("\n")
        print(f"updated 'pr8' [{key}] in {BASELINE_PATH}")
    return 0


def trace_overhead(args) -> int:
    """Time each workload untraced then traced and report the opt-in
    cost of event recording. Informational (the ``check`` gate times the
    untraced path, which the trace flag leaves untouched); ``--update
    pr7`` records the stage in ``BENCH_engine.json``.

    Samples are PAIRED: each repeat times the untraced and traced
    variant back to back, so slow host-frequency drift hits both sides
    of the ratio equally instead of skewing whichever loop ran last."""
    untraced_w, resolved = build_workloads(args.kernel, trace=False)
    traced_w, _ = build_workloads(args.kernel, trace=True)
    untraced, traced = {}, {}
    for name, (fn_u, per_call) in untraced_w.items():
        fn_t, _ = traced_w[name]
        fn_u()  # warm both variants before the paired repeats
        fn_t()
        best_u = best_t = float("inf")
        for _ in range(args.repeats):
            best_u = min(best_u, _time_once(fn_u))
            best_t = min(best_t, _time_once(fn_t))
        untraced[name] = best_u / per_call
        traced[name] = best_t / per_call
    _calibration_kernel()
    calibration = min(
        _time_once(_calibration_kernel) for _ in range(args.repeats)
    )
    overhead = {
        name: round(traced[name] / untraced[name] - 1.0, 4)
        for name in untraced
    }
    print(f"kernel: {resolved}")
    for name in untraced:
        print(f"  {name}: {untraced[name]*1e3:.1f} ms untraced, "
              f"{traced[name]*1e3:.1f} ms traced ({overhead[name]:+.1%})")
    if args.update == "pr7":
        bench = load_baseline()
        bench.setdefault("pr7_trace", {})[_stage_key(resolved)] = {
            "kernel": resolved,
            "untraced": {k: round(v, 6) for k, v in untraced.items()},
            "traced": {k: round(v, 6) for k, v in traced.items()},
            "overhead_frac": overhead,
            "calibration": round(calibration, 6),
        }
        with open(BASELINE_PATH, "w") as fh:
            json.dump(bench, fh, indent=1)
            fh.write("\n")
        print(f"updated 'pr7_trace' in {BASELINE_PATH}")
    return 0


def _rederive(bench: dict) -> None:
    """Recompute the derived speedup blocks from whichever stages exist."""
    before, after = bench.get("before"), bench.get("after")
    if before and after:
        bench["speedup"] = {
            k: round(before[k] / after[k], 2)
            for k in after
            if k in before and after[k]
        }
    entry = (bench.get("pr4") or {}).get("numba") or {}
    pr4 = entry.get("workloads")
    # The two stages may be recorded on different hosts; normalize each
    # side by its own calibration-kernel time before forming the ratio
    # (the same host-speed scaling the check gate applies).
    after_cal = bench.get("after_calibration")
    pr4_cal = entry.get("calibration")
    if after and pr4 and after_cal and pr4_cal:
        bench["speedup_pr3_to_pr4_numba"] = {
            k: round((after[k] / after_cal) / (pr4[k] / pr4_cal), 2)
            for k in pr4
            if k in after and pr4[k]
        }


if __name__ == "__main__":
    sys.exit(main())
