"""Fig. 9 — speedup vs. number of parameter servers (envG, 8 workers)."""

import numpy as np



def test_fig9_regeneration(benchmark, run_scenario):
    out = benchmark.pedantic(run_scenario, args=("fig9",), rounds=1, iterations=1)
    gains = np.array([r["speedup_pct"] for r in out.rows])
    # ordering keeps paying under multiple PS shards
    assert gains.max() > 5.0
    by_ps = {}
    for row in out.rows:
        by_ps.setdefault(row["ps"], []).append(row["speedup_pct"])
    for ps, vals in by_ps.items():
        assert np.mean(vals) > -5.0, f"ps={ps} should not collapse"
    print()
    print(out.text)
