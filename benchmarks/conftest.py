"""Benchmark-suite configuration.

Every paper table/figure has one bench module. Each bench (a) times the
experiment driver (or a representative slice of it) with pytest-benchmark
and (b) prints/persists the regenerated rows so the run doubles as a
results artifact. Set ``REPRO_SCALE=full`` for the paper-scale protocol;
the default quick scale keeps the whole suite in minutes.

Drivers submit their grids to the sweep runner, so ``REPRO_JOBS=N`` fans
simulations out across N processes and a warm ``results/.sweep-cache``
turns re-runs into cache reads (delete it or set ``REPRO_NO_CACHE=1``
to time cold simulations).

Artifacts land in ``results/`` (CSV) — see EXPERIMENTS.md for the
paper-vs-measured read-out of a full run.
"""

from __future__ import annotations

import pytest

from repro.experiments import make_context


@pytest.fixture(scope="session")
def ctx():
    """Shared experiment context for the whole benchmark session."""
    return make_context(verbose=False)


@pytest.fixture(scope="session")
def results():
    """Mutable session store so benches can cross-check one another."""
    return {}
