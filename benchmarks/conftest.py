"""Benchmark-suite configuration.

Every paper table/figure has one bench module. Each bench (a) times the
experiment driver (or a representative slice of it) with pytest-benchmark
and (b) prints/persists the regenerated rows so the run doubles as a
results artifact. Set ``REPRO_SCALE=full`` for the paper-scale protocol;
the default quick scale keeps the whole suite in minutes.

Drivers submit their grids to the sweep runner, so ``REPRO_JOBS=N`` fans
simulations out across N processes and a warm ``results/.sweep-cache``
turns re-runs into cache reads (delete it or set ``REPRO_NO_CACHE=1``
to time cold simulations).

Artifacts land in ``results/`` (CSV) — see EXPERIMENTS.md for the
paper-vs-measured read-out of a full run.
"""

from __future__ import annotations

import pytest

from repro.api import execute_scenario, make_context


@pytest.fixture(scope="session")
def ctx():
    """Shared experiment context for the whole benchmark session."""
    return make_context(verbose=False)


@pytest.fixture(scope="session")
def run_scenario(ctx):
    """Execute a registry scenario through the repro.api engine and
    persist its CSVs under ``results/`` — what the deprecated
    ``experiments.<driver>.run(ctx)`` entries used to do."""

    def run(name: str, **overrides):
        out = execute_scenario(ctx, name, **overrides)
        out.save(ctx.results_dir)
        return out

    return run


@pytest.fixture(scope="session")
def results():
    """Mutable session store so benches can cross-check one another."""
    return {}
