#!/usr/bin/env python
"""Plan a cloud training campaign with the full TicTac pipeline.

Walks the paper's §5 system end to end for one model on the cloud-GPU
platform:

1. build the model and its reference worker partition;
2. trace 5 instrumented executions and estimate the time oracle
   (min-of-5, §5);
3. run the ordering wizard (TIC and TAC) and inspect the schedules;
4. simulate the candidate cluster shapes a practitioner would price out
   (scaling workers with PS:W = 1:4) and report throughput, straggler
   effect and the Eq. 4 headroom metric.

Run:  python examples/cloud_training_campaign.py [model]
"""

import sys

from repro.core import compute_schedule, theoretical_speedup
from repro.models import build_model
from repro.ps import ClusterSpec, build_reference_partition
from repro.sim import SimConfig, simulate_cluster
from repro.timing import ENV_G, estimate_time_oracle

MODEL = sys.argv[1] if len(sys.argv) > 1 else "Inception v3"


def main() -> None:
    ir = build_model(MODEL)
    print(f"Campaign model: {MODEL} ({ir.n_param_tensors} parameter tensors, "
          f"{ir.total_param_mib:.1f} MiB, batch {ir.batch_size})")

    # --- offline wizard pass (§5) -------------------------------------
    reference = build_reference_partition(ir, workload="training", n_ps=1)
    oracle = estimate_time_oracle(reference.graph, ENV_G, runs=5, seed=0)
    tic = compute_schedule(reference, "tic")
    tac = compute_schedule(reference, "tac", oracle=oracle)
    print(f"wizard: TIC {tic.meta['wizard_seconds']*1e3:.0f} ms, "
          f"TAC {tac.meta['wizard_seconds']*1e3:.0f} ms "
          f"(offline, once per model — §6 quotes ~10 s)")
    agree = sum(
        1 for a, b in zip(tic.order(), tac.order()) if a == b
    ) / max(len(tac.order()), 1)
    print(f"TIC/TAC agreement on transfer order: {agree:.0%}")
    headroom = theoretical_speedup(reference.partition, ENV_G.time_vector(reference.graph))
    print(f"Eq. 4 scheduling headroom S = {headroom:.2f} "
          "(max theoretical best-vs-worst gain on one worker)\n")

    # --- price out cluster shapes ---------------------------------------
    config = SimConfig(iterations=5, warmup=1, seed=1)
    print(f"{'shape':>10} {'policy':>9} {'ms/iter':>9} {'samples/s':>10} "
          f"{'straggler %':>11} {'gain':>7}")
    for workers in (4, 8, 16):
        spec = ClusterSpec(n_workers=workers, n_ps=max(1, workers // 4),
                           workload="training")
        base = simulate_cluster(ir, spec, algorithm="baseline", config=config)
        sched = simulate_cluster(ir, spec, schedule=tac, config=config)
        gain = (sched.throughput - base.throughput) / base.throughput * 100
        for label, r in (("baseline", base), ("tac", sched)):
            print(f"w{workers:>3}xps{spec.n_ps:<2} {label:>9} "
                  f"{r.mean_iteration_time*1e3:>9.1f} {r.throughput:>10.1f} "
                  f"{r.max_straggler_pct:>11.1f} "
                  f"{'' if label == 'baseline' else f'{gain:+.1f}%':>7}")
    print("\nFor a job that runs for days, the scheduled configuration buys "
          "the same epochs on fewer GPU-hours (§7).")


if __name__ == "__main__":
    main()
