#!/usr/bin/env python
"""Reinforcement-learning serving (the paper's Fig. 3 scenario).

In online RL, training workers update parameters on the PS while a fleet
of *inference agents* repeatedly pulls fresh parameters and runs forward
passes. Every pull moves the full model through the agent's channel, so
transfer ordering dominates agent reaction latency.

This example sweeps the agent-fleet size for a policy network (ResNet-50),
comparing reaction latency (time to finish one pull + forward pass) and
its tail under no ordering vs TIC, plus the straggler picture when agents
act in lock-step.

Run:  python examples/rl_inference_agents.py
"""

import numpy as np

from repro.ps import ClusterSpec
from repro.sim import SimConfig, simulate_cluster

MODEL = "ResNet-50 v1"
FLEET_SIZES = (2, 4, 8)


def main() -> None:
    print(f"RL inference agents pulling {MODEL} from 1 PS (envG)\n")
    config = SimConfig(iterations=8, warmup=2, seed=3)
    header = (
        f"{'agents':>6} {'policy':>9} {'latency ms':>11} {'p95 ms':>8} "
        f"{'agents/s':>9} {'straggler %':>11}"
    )
    print(header)
    print("-" * len(header))
    for fleet in FLEET_SIZES:
        # batch_factor 0.25: agents score small observation batches, not
        # training-size batches.
        spec = ClusterSpec(n_workers=fleet, n_ps=1, workload="inference")
        for algorithm in ("baseline", "tic"):
            result = simulate_cluster(
                MODEL, spec, algorithm=algorithm, platform="envG",
                config=config, batch_factor=0.25,
            )
            times_ms = result.iteration_times * 1e3
            print(
                f"{fleet:>6} {algorithm:>9} {times_ms.mean():>11.1f} "
                f"{np.percentile(times_ms, 95):>8.1f} "
                f"{fleet / result.mean_iteration_time:>9.1f} "
                f"{result.max_straggler_pct:>11.1f}"
            )
        print()
    print(
        "Enforced ordering cuts the mean pull-to-decision latency, sharpens\n"
        "its tail, and keeps lock-step agents aligned — the paper's argument\n"
        "for scheduling in the PS-serving RL topology (§2, Fig. 3)."
    )


if __name__ == "__main__":
    main()
