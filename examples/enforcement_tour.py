#!/usr/bin/env python
"""Tour of the §5.1 enforcement design space.

The paper weighs several places to impose a transfer order and deploys
sender-side counters in front of gRPC. This example measures the
candidates on a communication-bound configuration (Inception v2 serving
on the 1 GbE envC cluster) so the §5.1 prose becomes numbers:

* ``none``        — priorities ignored (vanilla TF baseline);
* ``sender``      — counters gate each hand-off to gRPC (deployed choice);
* ``ready_queue`` — greedy priority pick at the channel queue (the
  "order the activation" strawman: a transfer that is ready early can
  still overtake — §5.1 notes exactly this);
* ``dag``         — chain transfers by completion (order is exact but
  each transfer waits a full RPC before the next may start).

The *order fidelity* column is the fraction of parameter transfers that
hit the wire out of priority order — compare the paper's measured ~0.5%
residual reordering under sender-side enforcement.

Run:  python examples/enforcement_tour.py
"""

from repro.ps import ClusterSpec
from repro.sim import SimConfig, simulate_cluster

MODEL = "Inception v2"


def main() -> None:
    spec = ClusterSpec(n_workers=4, n_ps=1, workload="inference")
    base_cfg = dict(iterations=6, warmup=1, seed=11)

    print(f"{MODEL}, {spec.n_workers} inference agents / {spec.n_ps} PS, envC\n")
    print(f"{'enforcement':>12} {'ms/iter':>9} {'vs none':>8} {'straggler %':>11} "
          f"{'out-of-order %':>14}")
    baseline_time = None
    for mode in ("none", "sender", "ready_queue", "dag"):
        config = SimConfig(enforcement=mode, **base_cfg)
        result = simulate_cluster(
            MODEL, spec, algorithm="tic" if mode != "none" else "baseline",
            platform="envC", config=config,
        )
        ms = result.mean_iteration_time * 1e3
        if baseline_time is None:
            baseline_time = ms
        delta = (baseline_time - ms) / baseline_time * 100
        print(f"{mode:>12} {ms:>9.1f} {delta:>+7.1f}% "
              f"{result.max_straggler_pct:>11.1f} "
              f"{result.out_of_order_rate*100:>14.2f}")

    print(
        "\nAll enforcement points recover the throughput, but they differ in\n"
        "order fidelity: the greedy ready-queue lets early-arriving transfers\n"
        "overtake (double-digit out-of-order rates — §5.1's objection), while\n"
        "sender-side counters keep it near the paper's measured ~0.5%. The\n"
        "dag mode is exact but forfeits hand-off pipelining; here cross-\n"
        "channel multiplexing masks that cost, which the paper's coarser\n"
        "single-channel serialization could not."
    )


if __name__ == "__main__":
    main()
