#!/usr/bin/env python
"""Visualize *why* scheduling wins: per-resource execution timelines.

Renders ASCII Gantt charts of one simulated iteration of Inception v3
serving under the random baseline and under TIC — the real-model version
of the paper's Figure 1b/1c — and exports Chrome-trace JSON files
(open in chrome://tracing or https://ui.perfetto.dev) for interactive
inspection.

Run:  python examples/timeline_visualization.py
"""

import os

from repro.analysis import ascii_gantt, write_chrome_trace
from repro.core import Schedule
from repro.core.wizard import compute_schedule
from repro.models import build_model
from repro.ps import ClusterSpec, build_cluster_graph, build_reference_partition
from repro.sim import CompiledCore, SimConfig, SimVariant
from repro.timing import ENV_G

MODEL = "Inception v3"
OUT_DIR = "results"


def main() -> None:
    ir = build_model(MODEL)
    spec = ClusterSpec(n_workers=2, n_ps=1, workload="inference")
    cluster = build_cluster_graph(ir, spec)
    reference = build_reference_partition(ir, workload="inference", n_ps=1)
    tic = compute_schedule(reference, "tic")

    # deterministic timings so the two charts differ only by ordering
    config = SimConfig(iterations=1, jitter_sigma=0.0, seed=2)
    focus = ["nic_out:ps:0", "compute:worker:0", "compute:worker:1"]

    for label, schedule in (("baseline", Schedule("baseline")), ("tic", tic)):
        sim = SimVariant(CompiledCore(cluster, ENV_G), schedule, config)
        record = sim.run_iteration(0)
        print(f"\n=== {MODEL}, {label}: one inference iteration "
              f"({record.makespan*1e3:.1f} ms) ===")
        print(ascii_gantt(sim, record, width=78, resources=focus))
        path = write_chrome_trace(
            os.path.join(OUT_DIR, f"trace_{label.replace(' ', '_')}.json"),
            sim, record,
        )
        print(f"chrome trace -> {path}")

    print(
        "\nReading the charts: under the baseline the workers' compute rows\n"
        "show gaps — branches blocked on late parameters — while the PS\n"
        "egress NIC idles in between. Under TIC the first-needed tensors\n"
        "arrive first, the compute rows close up, and the iteration ends\n"
        "roughly when the busier of the two resources does (E -> 1)."
    )


if __name__ == "__main__":
    main()
