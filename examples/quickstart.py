#!/usr/bin/env python
"""Quickstart: from the paper's toy example to the public API.

Part 1 rebuilds Figure 1a — a two-transfer DAG where one transfer order
overlaps communication with computation and the other blocks — and shows
TIC/TAC picking the good order.

Part 2 uses the stable :mod:`repro.api` facade: a ``Session`` owning the
runner/cache lifecycle runs a registered scenario at a custom scale and
returns a typed ``ResultSet`` (rows + schema + provenance) — values, not
side effects. (The old per-driver pattern,
``repro.experiments.fig7.run(ctx)``, has been removed.)

Part 3 shows parameter overrides and the scenario registry.

Run:  python examples/quickstart.py
"""

from repro.api import Scale, Session, scenario_names
from repro.core import scheduling_efficiency, tac, tic
from repro.graph import Graph, OpKind, PartitionedGraph, Resource
from repro.timing import MappingTimeOracle


def figure_1a() -> None:
    """The paper's Figure 1a: recv1 feeds op1; op2 needs recv1 AND recv2."""
    g = Graph("figure-1a")
    worker, ps = "worker:0", "ps:0"
    link = Resource.link(ps, worker)
    compute = Resource.compute(worker)
    g.add_op("recv1", OpKind.RECV, (), cost=1.0, param="p1",
             resource=link, device=worker)
    g.add_op("recv2", OpKind.RECV, (), cost=1.0, param="p2",
             resource=link, device=worker)
    g.add_op("op1", OpKind.COMPUTE, ["recv1"], cost=1.0,
             resource=compute, device=worker)
    g.add_op("op2", OpKind.COMPUTE, ["op1", "recv2"], cost=1.0,
             resource=compute, device=worker)

    # A time oracle that says every op takes 1 second.
    oracle = MappingTimeOracle({op.name: 1.0 for op in g})

    schedule = tac(g, oracle)
    print("Figure 1a: TAC transfer order:", schedule.order())
    assert schedule.order() == ["p1", "p2"], "recv1 must precede recv2"

    schedule = tic(g)
    print("Figure 1a: TIC priorities:   ", dict(schedule.priorities))

    # Good order: recv1 first -> op1 overlaps recv2 -> makespan 3.
    # Bad order: recv2 first -> everything serializes  -> makespan 4.
    partition = PartitionedGraph(g)
    times = [1.0, 1.0, 1.0, 1.0]
    for label, makespan in (("good (recv1 first)", 3.0), ("bad (recv2 first)", 4.0)):
        report = scheduling_efficiency(partition, times, makespan)
        print(f"  {label}: makespan {makespan:.0f}s -> efficiency E = "
              f"{report.efficiency:.2f} (band U={report.upper:.0f}, L={report.lower:.0f})")


#: A tiny scale so the demo finishes in seconds (the built-in "quick"
#: and "full" scales cover CI and the paper protocol).
DEMO_SCALE = Scale(
    name="demo",
    models=("ResNet-50 v1",),
    worker_counts=(4,),
    ps_counts=(1,),
    iterations=5,
    warmup=1,
    consistency_runs=8,
    loss_iterations=20,
)


def run_a_scenario() -> None:
    """The public API: Session -> Scenario -> ResultSet."""
    with Session(scale=DEMO_SCALE, cache=False) as session:
        rs = session.run("fig7")  # Fig. 7's grid at our demo scale
        print(f"\nfig7 at scale 'demo': {len(rs)} rows, schema {rs.schema}")
        print(rs.to_table())
        prov = rs.provenance
        print(f"provenance: engine rev {prov.engine_rev}, kernel "
              f"{prov.kernel!r}, cache {dict(prov.cache)}, "
              f"{prov.elapsed_s:.1f}s")
        # Results are values; persisting them is an explicit step:
        #   rs.to_csv("results")
        row = rs.rows[0]
        assert row["model"] == "ResNet-50 v1" and row["workers"] == 4


def override_parameters() -> None:
    """Scenarios declare parameters callers may rebind per run."""
    with Session(scale=DEMO_SCALE, cache=False) as session:
        rs = session.run("stragglers", model="ResNet-50 v1", n_workers=2)
        tic_rows = [r for r in rs.rows if r["algorithm"] == "tic"]
        print(f"\nstragglers with n_workers=2: {len(rs)} rows "
              f"({len(tic_rows)} under TIC)")
    print(f"registered scenarios: {', '.join(scenario_names())}")


if __name__ == "__main__":
    figure_1a()
    run_a_scenario()
    override_parameters()
