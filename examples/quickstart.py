#!/usr/bin/env python
"""Quickstart: from the paper's toy example to a scheduled cluster.

Part 1 rebuilds Figure 1a — a two-transfer DAG where one transfer order
overlaps communication with computation and the other blocks — and shows
TIC/TAC picking the good order.

Part 2 runs the full pipeline on a real model: build Inception v1, compute
a TIC schedule, and simulate a 4-worker/1-PS cloud-GPU cluster with and
without enforcement.

Run:  python examples/quickstart.py
"""

from repro.core import compute_schedule, scheduling_efficiency, tac, tic
from repro.graph import Graph, OpKind, PartitionedGraph, Resource
from repro.models import build_model
from repro.ps import ClusterSpec, build_reference_partition
from repro.sim import SimConfig, simulate_cluster
from repro.timing import MappingTimeOracle


def figure_1a() -> None:
    """The paper's Figure 1a: recv1 feeds op1; op2 needs recv1 AND recv2."""
    g = Graph("figure-1a")
    worker, ps = "worker:0", "ps:0"
    link = Resource.link(ps, worker)
    compute = Resource.compute(worker)
    g.add_op("recv1", OpKind.RECV, (), cost=1.0, param="p1",
             resource=link, device=worker)
    g.add_op("recv2", OpKind.RECV, (), cost=1.0, param="p2",
             resource=link, device=worker)
    g.add_op("op1", OpKind.COMPUTE, ["recv1"], cost=1.0,
             resource=compute, device=worker)
    g.add_op("op2", OpKind.COMPUTE, ["op1", "recv2"], cost=1.0,
             resource=compute, device=worker)

    # A time oracle that says every op takes 1 second.
    oracle = MappingTimeOracle({op.name: 1.0 for op in g})

    schedule = tac(g, oracle)
    print("Figure 1a: TAC transfer order:", schedule.order())
    assert schedule.order() == ["p1", "p2"], "recv1 must precede recv2"

    schedule = tic(g)
    print("Figure 1a: TIC priorities:   ", dict(schedule.priorities))

    # Good order: recv1 first -> op1 overlaps recv2 -> makespan 3.
    # Bad order: recv2 first -> everything serializes  -> makespan 4.
    partition = PartitionedGraph(g)
    times = [1.0, 1.0, 1.0, 1.0]
    for label, makespan in (("good (recv1 first)", 3.0), ("bad (recv2 first)", 4.0)):
        report = scheduling_efficiency(partition, times, makespan)
        print(f"  {label}: makespan {makespan:.0f}s -> efficiency E = "
              f"{report.efficiency:.2f} (band U={report.upper:.0f}, L={report.lower:.0f})")


def schedule_and_simulate() -> None:
    """Schedule ResNet-50 serving and simulate a small cloud cluster."""
    model = "ResNet-50 v1"
    spec = ClusterSpec(n_workers=4, n_ps=1, workload="inference")
    config = SimConfig(iterations=5, warmup=1, seed=7)

    # The ordering wizard runs offline, on one worker's partition (§5).
    reference = build_reference_partition(build_model(model), workload="inference", n_ps=1)
    schedule = compute_schedule(reference, "tic")
    first = schedule.order()[:3]
    print(f"\n{model}: TIC computed in {schedule.meta['wizard_seconds']*1e3:.0f} ms; "
          f"first transfers: {first}")

    base = simulate_cluster(model, spec, algorithm="baseline", config=config)
    sched = simulate_cluster(model, spec, schedule=schedule, config=config)
    gain = (sched.throughput - base.throughput) / base.throughput * 100
    print(f"  baseline : {base.mean_iteration_time*1e3:7.1f} ms/iter, "
          f"{base.throughput:7.1f} samples/s, straggler {base.max_straggler_pct:4.1f}%")
    print(f"  TIC      : {sched.mean_iteration_time*1e3:7.1f} ms/iter, "
          f"{sched.throughput:7.1f} samples/s, straggler {sched.max_straggler_pct:4.1f}%")
    print(f"  speedup  : {gain:+.1f}% (scheduling efficiency "
          f"{base.mean_efficiency:.2f} -> {sched.mean_efficiency:.2f})")


if __name__ == "__main__":
    figure_1a()
    schedule_and_simulate()
