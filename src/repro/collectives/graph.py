"""Collective cluster-graph assembly (the all-reduce twin of
:mod:`repro.ps.cluster`).

One :class:`CollectiveGraph` holds a single barrier-to-barrier iteration of
synchronous data-parallel training over W workers with no parameter
server: gradients are synchronized by a ring or hierarchical all-reduce
over chunk units (:mod:`repro.collectives.partition`), and every worker
applies the update locally.

**Window framing.** The iteration boundary sits at "backward pass
complete", mirroring the PS builder's convention that ``read`` ops serve
the *previous* iteration's value: each chunk's ``grad_ready`` root
represents the gradients produced by the previous window, available at the
barrier with no dependency inside this window. The window then contains

    grad_ready (roots) -> all-reduce chunk chains -> per-worker update
    -> parameter entry -> forward -> backward -> grad markers (leaves)

so the all-reduce of chunk c overlaps the forward/backward compute of
every layer *not* gated by c — exactly the overlap DeAR's decoupled
all-reduce exploits, and the reason chunk transfer order matters: chunks
feeding early forward layers must win the wire first. That makes the DAG
the same scheduling problem TicTac solves for PS recvs, with chunks in
place of parameter pulls (see :mod:`repro.collectives.schedule`).

Resource model: transfers occupy the existing directional
``link:src->dst`` channels and per-device NIC resources of
:mod:`repro.sim.engine`; every chunk-chain step is one transfer op, so the
engine's chunked round-robin NIC sharing, per-transfer RPC latency and
priority gating apply unchanged. Per-step ring reduction FLOPs are folded
into each worker's chunk ``update`` op (cost ``(R-1)/R * E`` for a ring of
R participants, plus the SGD apply's ``2E``) to avoid doubling the op
count with micro reduce ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph import Graph, OpKind, Resource
from ..models.emit import WORKER_TRAINING, emit_graph
from ..models.ir import ModelIR
from ..ps.cluster import Transfer
from .hierarchical import emit_hierarchical_allreduce
from .partition import Chunk, partition_tensors
from .ring import emit_ring_allreduce
from .spec import CollectiveSpec

#: pseudo PS device name satisfying worker emission's placement contract
#: (parameters are locally resident in the collective backend).
LOCAL = "local"


@dataclass
class CollectiveGraph:
    """A fully assembled, resource-tagged collective DAG (one iteration).

    Field names mirror :class:`~repro.ps.cluster.ClusterGraph` so the
    simulator, metrics and analysis layers consume either interchangeably.
    """

    spec: CollectiveSpec
    model: ModelIR
    graph: Graph
    chunks: list[Chunk]
    #: every transfer, grouped by the link resource it occupies.
    transfers_by_link: dict[Resource, list[Transfer]] = field(default_factory=dict)
    #: op ids per worker device (for straggler accounting).
    worker_ops: dict[str, list[int]] = field(default_factory=dict)
    #: per-worker map param name -> op id delivering its reduced value
    #: (the chunk update op; the ClusterGraph analogue maps to recvs).
    param_recvs: dict[str, dict[str, int]] = field(default_factory=dict)
    #: op ids per iteration (single window for now).
    iteration_ops: dict[int, list[int]] = field(default_factory=dict)
    #: chunk name -> member parameter names (the scheduling seam).
    chunk_params: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: chunk name -> layerwise chunk index (priority tie-break).
    chunk_order: dict[str, int] = field(default_factory=dict)
    n_iterations: int = 1

    @property
    def param_transfers(self) -> list[Transfer]:
        """No PS-style parameter pulls exist in this backend."""
        return []

    def _register_transfer(self, link: Resource, transfer: Transfer) -> None:
        self.transfers_by_link.setdefault(link, []).append(transfer)


def build_collective_graph(ir: ModelIR, spec: CollectiveSpec) -> CollectiveGraph:
    """Assemble the one-iteration collective DAG for ``ir`` under ``spec``."""
    chunks = partition_tensors(
        ir.params, spec.partition_bytes, fuse=spec.fuse
    )
    g = Graph(
        f"{ir.name}/allreduce-{spec.topology}/w{spec.n_workers}"
        f"/p{spec.partition_bytes}"
    )
    cluster = CollectiveGraph(
        spec=spec,
        model=ir,
        graph=g,
        chunks=chunks,
        chunk_params={c.name: c.params for c in chunks},
        chunk_order={c.name: c.index for c in chunks},
    )
    workers = spec.workers
    chunk_of_param = {p: c for c in chunks for p in c.params}
    worker_ops = {w: [] for w in workers}

    # --- gradient-ready roots (previous window's gradients, at barrier) --
    roots: dict[tuple[str, str], int] = {}
    for w in workers:
        compute = Resource.compute(w)
        for c in chunks:
            op = g.add_op(
                f"{w}/{c.name}/grad_ready",
                OpKind.READ,
                (),
                cost=0.0,
                device=w,
                resource=compute,
                timing_key=f"{c.name}/grad_ready",
                chunk_root=c.name,
            )
            roots[(w, c.name)] = op.op_id
            worker_ops[w].append(op.op_id)

    # --- all-reduce chain per chunk --------------------------------------
    def make_add_transfer(chunk: Chunk):
        def add_transfer(name, src, dst, nbytes, deps) -> int:
            link = Resource.link(src, dst)
            op = g.add_op(
                name,
                OpKind.SEND,
                deps,
                cost=float(nbytes),
                param=chunk.name,
                device=src,
                resource=link,
                timing_key=name.split("/", 1)[1],
                chunk=chunk.name,
            )
            cluster._register_transfer(
                link, Transfer(op.op_id, chunk.name, src, dst, "chunk", 0)
            )
            worker_ops[src].append(op.op_id)
            return op.op_id

        return add_transfer

    def add_compute(name, device, flops, deps) -> int:
        op = g.add_op(
            name,
            OpKind.AGGREGATE,
            deps,
            cost=float(flops),
            device=device,
            resource=Resource.compute(device),
            timing_key=name.split("/", 1)[1],
        )
        worker_ops[device].append(op.op_id)
        return op.op_id

    update_ids: dict[tuple[str, str], int] = {}
    for c in chunks:
        chunk_roots = {w: roots[(w, c.name)] for w in workers}
        if spec.topology == "ring":
            finish = emit_ring_allreduce(
                workers, c.name, float(c.nbytes), chunk_roots,
                make_add_transfer(c),
            )
            # every worker reduced W-1 incoming segments of E/W elements
            reduce_share = {
                w: (spec.n_workers - 1) / spec.n_workers * c.n_elements
                for w in workers
            }
        else:
            groups = spec.groups()
            finish = emit_hierarchical_allreduce(
                groups, c.name, float(c.nbytes), c.n_elements, chunk_roots,
                make_add_transfer(c), add_compute,
            )
            # leaders reduced around the inter-group ring; members only
            # apply (group sums are costed by the group_reduce ops).
            L = len(groups)
            reduce_share = {w: 0.0 for w in workers}
            for group in groups:
                reduce_share[group[0]] = (L - 1) / L * c.n_elements
        for w in workers:
            op = g.add_op(
                f"{w}/{c.name}/update",
                OpKind.UPDATE,
                [finish[w]],
                cost=2.0 * c.n_elements + reduce_share[w],
                device=w,
                resource=Resource.compute(w),
                timing_key=f"{c.name}/update",
            )
            update_ids[(w, c.name)] = op.op_id
            worker_ops[w].append(op.op_id)

    # --- worker replicas, gated by the chunk updates ---------------------
    placement = {p.name: LOCAL for p in ir.params}
    replica = emit_graph(ir, WORKER_TRAINING, placement=placement)
    for w in workers:
        compute = Resource.compute(w)
        mapping = g.merge(replica.graph, rename=lambda n: f"{w}/{n}")
        recvs: dict[str, int] = {}
        for src_op in replica.graph:
            op = g.op(mapping[src_op.op_id])
            op.device = w
            op.resource = compute
            worker_ops[w].append(op.op_id)
            if op.kind is OpKind.RECV:
                # Parameter entry: locally resident, served once this
                # window's all-reduce has updated it.
                op.kind = OpKind.READ
                op.cost = 0.0
                op.attrs["local_param"] = True
                chunk = chunk_of_param[op.param]
                g.add_edge(update_ids[(w, chunk.name)], op.op_id)
                recvs[op.param] = update_ids[(w, chunk.name)]
            elif op.kind is OpKind.SEND:
                # Gradient exit: zero-cost marker; the produced gradient
                # is consumed by the *next* window's all-reduce.
                op.kind = OpKind.COMPUTE
                op.cost = 0.0
                op.attrs["grad_marker"] = True
        cluster.param_recvs[w] = recvs

    cluster.worker_ops = worker_ops
    cluster.iteration_ops[0] = list(range(len(g)))
    return cluster
