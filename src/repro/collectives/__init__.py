"""Collective-communication backend: ring/hierarchical all-reduce cluster
graphs with TIC/TAC chunk scheduling.

The second communication backend alongside :mod:`repro.ps`: instead of
parameter-server pulls and pushes, gradients synchronize through chunked
all-reduce collectives whose transfer ops live on the same directional
link/NIC resources the simulator already models. See
:mod:`repro.collectives.graph` for the window framing and
:mod:`repro.backends` for how specs dispatch between backends.
"""

from .graph import CollectiveGraph, build_collective_graph
from .hierarchical import emit_hierarchical_allreduce
from .partition import Chunk, partition_tensors
from .ring import emit_ring_allreduce
from .schedule import prepare_collective_schedule, reference_schedule_key
from .spec import TOPOLOGIES, CollectiveSpec

__all__ = [
    "Chunk",
    "CollectiveGraph",
    "CollectiveSpec",
    "TOPOLOGIES",
    "build_collective_graph",
    "emit_hierarchical_allreduce",
    "emit_ring_allreduce",
    "partition_tensors",
    "prepare_collective_schedule",
    "reference_schedule_key",
]
