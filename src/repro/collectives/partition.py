"""Tensor partitioning and fusion: gradients -> wire chunks.

ByteScheduler's central observation ("Automatic Configuration for Optimal
Communication Scheduling in DNN Training", PAPERS.md) is that the unit of
scheduling should be neither the raw tensor (too coarse: one huge FC layer
monopolizes the wire) nor the packet (too fine: per-transfer overhead
dominates), but a configurable *chunk*:

* tensors larger than ``partition_bytes`` split into near-equal pieces;
* adjacent smaller tensors fuse into one chunk until the threshold is
  reached (horovod-style bucketing; ``fuse=False`` keeps one chunk per
  tensor).

Chunks preserve the model's forward parameter order, so chunk index order
is layerwise order and the TIC/TAC priority of a chunk (the minimum of its
members' priorities, :func:`repro.core.schedules.chunk_ranks`) is
well-defined. Splitting conserves bytes exactly: element counts are split
integrally, with the remainder spread over the leading pieces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..models.ir import FLOAT_BYTES, ParamTensor


@dataclass(frozen=True)
class Chunk:
    """One all-reduce unit: a slice of one tensor or a fusion of several."""

    name: str
    index: int
    params: tuple[str, ...]
    n_elements: int

    @property
    def nbytes(self) -> int:
        return self.n_elements * FLOAT_BYTES


def partition_tensors(
    params: Sequence[ParamTensor],
    partition_bytes: int,
    *,
    fuse: bool = True,
) -> list[Chunk]:
    """Slice/fuse ``params`` (in order) into chunks of ~``partition_bytes``."""
    if partition_bytes <= 0:
        raise ValueError("partition_bytes must be positive")
    chunks: list[Chunk] = []
    bucket: list[str] = []
    bucket_elements = 0

    def flush() -> None:
        nonlocal bucket, bucket_elements
        if bucket:
            chunks.append(
                Chunk(
                    name=f"chunk:{len(chunks):04d}",
                    index=len(chunks),
                    params=tuple(bucket),
                    n_elements=bucket_elements,
                )
            )
            bucket, bucket_elements = [], 0

    max_elements = max(partition_bytes // FLOAT_BYTES, 1)
    for p in params:
        if p.nbytes > partition_bytes:
            flush()
            pieces = -(-p.n_elements // max_elements)  # ceil division
            base, rem = divmod(p.n_elements, pieces)
            for i in range(pieces):
                chunks.append(
                    Chunk(
                        name=f"chunk:{len(chunks):04d}",
                        index=len(chunks),
                        params=(p.name,),
                        n_elements=base + (1 if i < rem else 0),
                    )
                )
            continue
        if not fuse:
            bucket, bucket_elements = [p.name], p.n_elements
            flush()
            continue
        if bucket and (bucket_elements + p.n_elements) > max_elements:
            flush()
        bucket.append(p.name)
        bucket_elements += p.n_elements
    flush()
    return chunks
