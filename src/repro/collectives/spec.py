"""Collective-communication cluster shapes.

:class:`CollectiveSpec` is the collective twin of
:class:`~repro.ps.cluster.ClusterSpec`: it names a data-parallel cluster of
W workers that synchronizes gradients with an all-reduce instead of a
parameter server. The two spec types are interchangeable everywhere a
cluster shape is consumed — :class:`~repro.sweep.spec.SimCell` grids,
:func:`~repro.sim.runner.simulate_cluster`, the sweep cache — with the
backend registry (:mod:`repro.backends`) dispatching graph assembly and
schedule preparation on the spec's type.

Two topologies are modeled (see :mod:`repro.collectives.ring` and
:mod:`repro.collectives.hierarchical`):

* ``ring`` — bandwidth-optimal ring all-reduce: reduce-scatter then
  all-gather, moving ``2(W-1)/W`` of each gradient byte per worker NIC;
* ``hierarchical`` — two-level all-reduce: intra-group reduce to a group
  leader, ring all-reduce among the leaders, intra-group broadcast (the
  node-local/inter-node split of NCCL-style hierarchies).

``partition_bytes`` is the ByteScheduler-style tensor partition/fusion
knob: gradients larger than the threshold split into multiple chunks,
smaller adjacent gradients fuse into one chunk (``fuse=False`` disables
fusion, keeping one chunk per tensor). Chunks — not raw tensors — are the
unit the TIC/TAC priorities order on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ps.sharding import worker_device_names

TOPOLOGIES = ("ring", "hierarchical")


@dataclass(frozen=True)
class CollectiveSpec:
    """Cluster shape for the collective (all-reduce) backend.

    ``group_size=0`` picks a group size automatically for hierarchical
    topologies: the largest divisor of ``n_workers`` that is at most 4 and
    leaves at least two groups (falling back to groups of one — a plain
    ring among all workers — when no such divisor exists).
    """

    n_workers: int
    topology: str = "ring"
    partition_bytes: int = 4 * 2**20
    fuse: bool = True
    group_size: int = 0

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"topology must be one of {TOPOLOGIES}")
        if self.partition_bytes <= 0:
            raise ValueError("partition_bytes must be positive")
        if self.group_size < 0:
            raise ValueError("group_size must be >= 0 (0 = auto)")
        if self.group_size:
            if self.n_workers % self.group_size:
                raise ValueError(
                    f"group_size {self.group_size} must divide "
                    f"n_workers {self.n_workers}"
                )

    # -- ClusterSpec-compatible surface ---------------------------------
    @property
    def workload(self) -> str:
        """Collectives synchronize gradients: always a training workload."""
        return "training"

    @property
    def n_ps(self) -> int:
        """No parameter servers in this backend (reporting compatibility)."""
        return 0

    @property
    def workers(self) -> list[str]:
        return worker_device_names(self.n_workers)

    # -- hierarchical grouping ------------------------------------------
    @property
    def effective_group_size(self) -> int:
        """The resolved group size (``group_size`` or the auto rule)."""
        if self.group_size:
            return self.group_size
        best = 1
        for g in range(2, min(4, self.n_workers) + 1):
            if self.n_workers % g == 0 and self.n_workers // g >= 2:
                best = g
        return best

    @property
    def n_groups(self) -> int:
        return self.n_workers // self.effective_group_size

    def groups(self) -> list[list[str]]:
        """Worker names grouped for the hierarchical topology; each
        group's first member is its leader."""
        g = self.effective_group_size
        workers = self.workers
        return [workers[i : i + g] for i in range(0, len(workers), g)]
