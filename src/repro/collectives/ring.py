"""Ring all-reduce DAG emission for one chunk.

The classic bandwidth-optimal schedule (Baidu/NCCL ring): W workers hold a
chunk of E elements, logically cut into W segments. For ``2(W-1)`` steps
every worker simultaneously sends one segment of ``E/W`` elements to its
ring successor — the first ``W-1`` steps reduce-scatter (each received
segment is summed into the local copy before being forwarded), the last
``W-1`` steps all-gather the reduced segments. Each worker therefore puts
``2(W-1)/W`` of the chunk's bytes on its egress NIC, which yields the
analytic wire time ``2(W-1)/W * M/B`` the tests validate against.

The emitted DAG models each (worker, step) send as one transfer op on the
directional ``link:worker:i->worker:i+1`` channel. Step ``t`` of worker
``i`` forwards the segment received at step ``t-1`` from its predecessor,
so each transfer depends on the predecessor's previous-step transfer (the
wavefront) and on the worker's own gradient-ready root (the segment must
be summed with the local gradient during reduce-scatter). Per-step
reduction FLOPs are folded into the chunk's update op
(:mod:`repro.collectives.graph`) to keep the op count at ``2W(W-1)``
transfers per chunk rather than doubling it with micro reduce ops.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

AddTransfer = Callable[..., int]  # (name, src, dst, nbytes, deps) -> op id


def emit_ring_allreduce(
    workers: Sequence[str],
    chunk_name: str,
    chunk_nbytes: float,
    roots: Mapping[str, int],
    add_transfer: AddTransfer,
    *,
    phase_prefix: str = "ring",
) -> dict[str, int]:
    """Emit one chunk's ring all-reduce over ``workers``.

    ``roots`` maps worker name -> op id of its gradient-ready op.
    ``add_transfer(name, src, dst, nbytes, deps)`` appends one transfer op
    and returns its op id. Returns worker name -> op id of the op whose
    completion delivers the fully-reduced chunk on that worker (the final
    incoming transfer; the root itself when W == 1).
    """
    W = len(workers)
    if W == 1:
        return {workers[0]: roots[workers[0]]}
    seg_bytes = chunk_nbytes / W
    prev_step: list[int] = []
    for t in range(2 * (W - 1)):
        phase = "rs" if t < W - 1 else "ag"
        cur: list[int] = []
        for i, src in enumerate(workers):
            dst = workers[(i + 1) % W]
            deps = [roots[src]]
            if t > 0:
                deps.append(prev_step[(i - 1) % W])
            cur.append(
                add_transfer(
                    f"{src}/{chunk_name}/{phase_prefix}{t}.{phase}->{dst}",
                    src,
                    dst,
                    seg_bytes,
                    deps,
                )
            )
        prev_step = cur
    # After the last step, worker i's final segment arrived from its
    # predecessor's last send.
    return {w: prev_step[(i - 1) % W] for i, w in enumerate(workers)}
