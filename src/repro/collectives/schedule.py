"""Ordering-wizard pass for the collective backend.

The DAG abstraction is the seam that lets TIC/TAC transfer unchanged from
the PS architecture to collectives: both backends present the scheduler
with the same question — *which outstanding parameter arrival unblocks
computation soonest?* — because the collective window
(:mod:`repro.collectives.graph`) gates each forward layer on its chunk's
all-reduce exactly as the PS window gates it on the parameter pull.

So the wizard here is literally the PS wizard on a single-worker reference
partition with one pseudo shard (every parameter behind one link — the
collective wire): Algorithm 1's comm/computation-dependency time ratios
(``M``, ``P``, ``M+``) and the Eq. 6 comparator carry over with no change.
The resulting per-parameter priorities are lowered onto chunk transfer ops
by :func:`repro.core.schedules.chunk_ranks` (a chunk inherits the best
priority among its member tensors) inside the simulation engine.

Because the reference partition depends only on the model — not on worker
count, topology or partition size — one wizard pass serves every cell of
an all-reduce sweep; :func:`repro.backends.prepare_comm_schedule` memoizes
on exactly that projection.
"""

from __future__ import annotations

from ..core.schedules import Schedule
from ..core.wizard import compute_schedule
from ..models.ir import ModelIR
from ..ps.reference import build_reference_partition
from ..timing import Platform, estimate_time_oracle
from .spec import CollectiveSpec


def prepare_collective_schedule(
    ir: ModelIR,
    spec: CollectiveSpec,
    algorithm: str,
    platform: Platform,
    *,
    trace_runs: int = 5,
    seed: int = 0,
) -> Schedule:
    """Offline wizard pass for a collective configuration (see module doc)."""
    reference = build_reference_partition(ir, workload="training", n_ps=1)
    oracle = None
    if algorithm == "tac":
        oracle = estimate_time_oracle(
            reference.graph, platform, runs=trace_runs, seed=seed
        )
    return compute_schedule(reference, algorithm, oracle=oracle, seed=seed)


def reference_schedule_key(spec: CollectiveSpec) -> tuple:
    """Projection of ``spec`` onto what the wizard pass actually depends
    on: nothing — every collective spec shares one reference partition."""
    return ("allreduce",)
