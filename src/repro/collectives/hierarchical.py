"""Two-level (hierarchical) all-reduce DAG emission for one chunk.

The NCCL/horovod-style hierarchy for W workers in L groups of G:

1. **intra-group reduce** — every non-leader member sends its full chunk
   to the group leader (one transfer per member on the ``member->leader``
   link); the leader sums the G contributions (a compute op on the
   leader, ``(G-1) * E`` FLOPs);
2. **inter-group ring** — the L leaders ring-all-reduce the group sums
   (re-using :func:`~repro.collectives.ring.emit_ring_allreduce` with the
   leaders as the ring and the local reduce ops as the roots); skipped
   when L == 1;
3. **intra-group broadcast** — each leader sends the fully-reduced chunk
   back to its members (one transfer per member on ``leader->member``).

Per chunk a leader's NIC carries ``(G-1)`` chunk-sizes in, ``2(L-1)/L``
around the ring and ``(G-1)`` out — the leader links are the bottleneck,
exactly the trade hierarchical all-reduce makes to keep the ring short.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from .ring import AddTransfer, emit_ring_allreduce

AddCompute = Callable[..., int]  # (name, device, flops, deps) -> op id


def emit_hierarchical_allreduce(
    groups: Sequence[Sequence[str]],
    chunk_name: str,
    chunk_nbytes: float,
    chunk_elements: int,
    roots: Mapping[str, int],
    add_transfer: AddTransfer,
    add_compute: AddCompute,
) -> dict[str, int]:
    """Emit one chunk's two-level all-reduce; ``groups[k][0]`` leads group
    ``k``. Returns worker -> op id delivering the reduced chunk there."""
    leaders = [group[0] for group in groups]

    # Phase 1: intra-group reduce into each leader.
    reduce_roots: dict[str, int] = {}
    for group in groups:
        leader = group[0]
        deps = [roots[leader]]
        for member in group[1:]:
            deps.append(
                add_transfer(
                    f"{member}/{chunk_name}/reduce->{leader}",
                    member,
                    leader,
                    float(chunk_nbytes),
                    [roots[member]],
                )
            )
        reduce_roots[leader] = add_compute(
            f"{leader}/{chunk_name}/group_reduce",
            leader,
            float((len(group) - 1) * chunk_elements),
            deps,
        )

    # Phase 2: ring all-reduce among the leaders (L == 1 degenerates to
    # the single group sum already held by the lone leader).
    finish = emit_ring_allreduce(
        leaders,
        chunk_name,
        chunk_nbytes,
        reduce_roots,
        add_transfer,
        phase_prefix="xring",
    )

    # Phase 3: broadcast from each leader back into its group.
    out: dict[str, int] = {}
    for group in groups:
        leader = group[0]
        out[leader] = finish[leader]
        for member in group[1:]:
            out[member] = add_transfer(
                f"{leader}/{chunk_name}/bcast->{member}",
                leader,
                member,
                float(chunk_nbytes),
                [finish[leader]],
            )
    return out
