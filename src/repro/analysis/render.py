"""Plain-text rendering: aligned tables, ASCII bar charts, CSV output.

The benchmark harness regenerates each paper table/figure as text — a
table of the same rows, or a bar/scatter sketch of the same series — plus
a CSV under ``results/`` for anyone who wants to re-plot properly.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    floatfmt: str = ".2f",
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned monospace table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())

    def fmt(v: object) -> str:
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    table = [[fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: Optional[str] = None,
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart (non-negative and negative values ok)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return title or ""
    span = max(abs(v) for v in values) or 1.0
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, v in zip(labels, values):
        n = int(round(abs(v) / span * width))
        bar = ("#" if v >= 0 else "-") * n
        lines.append(f"{label.ljust(label_w)} |{bar} {v:.2f}{unit}")
    return "\n".join(lines)


def scatter_sketch(
    x: Sequence[float],
    y: Sequence[float],
    *,
    rows: int = 14,
    cols: int = 60,
    title: Optional[str] = None,
    marker: str = "*",
) -> str:
    """A coarse ASCII scatter plot (for eyeballing Fig. 11/12 shapes)."""
    if len(x) != len(y) or not x:
        raise ValueError("x and y must be equal-length, non-empty")
    xmin, xmax = min(x), max(x)
    ymin, ymax = min(y), max(y)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * cols for _ in range(rows)]
    for xi, yi in zip(x, y):
        c = min(cols - 1, int((xi - xmin) / xspan * (cols - 1)))
        r = min(rows - 1, int((yi - ymin) / yspan * (rows - 1)))
        grid[rows - 1 - r][c] = marker
    lines = [title] if title else []
    lines.append(f"y: [{ymin:.3g}, {ymax:.3g}]  x: [{xmin:.3g}, {xmax:.3g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * cols)
    return "\n".join(lines)


def write_csv(path: str, rows: Iterable[Mapping[str, object]]) -> str:
    """Write dict rows to CSV, creating parent directories. Returns path."""
    rows = list(rows)
    if not rows:
        raise ValueError(f"refusing to write empty CSV to {path}")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    cols: list[str] = []
    for r in rows:
        for k in r:
            if k not in cols:
                cols.append(k)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=cols)
        writer.writeheader()
        writer.writerows(rows)
    return path
