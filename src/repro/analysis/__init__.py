"""Statistics and plain-text reporting for the experiment drivers."""

from .render import bar_chart, format_table, scatter_sketch, write_csv
from .timeline import ascii_gantt, chrome_trace, write_chrome_trace
from .stats import (
    Regression,
    coefficient_of_variation,
    empirical_cdf,
    linear_regression,
    normalized_step_time,
    percentile,
)

__all__ = [
    "bar_chart",
    "format_table",
    "scatter_sketch",
    "write_csv",
    "ascii_gantt",
    "chrome_trace",
    "write_chrome_trace",
    "Regression",
    "coefficient_of_variation",
    "empirical_cdf",
    "linear_regression",
    "normalized_step_time",
    "percentile",
]
