"""Statistics helpers for the evaluation figures.

Fig. 12a fits a linear regression of scheduling efficiency against
normalized step time (the paper reports R² = 0.98); Fig. 12b compares step
time CDFs and 95th percentiles. These helpers wrap scipy so experiments
and tests share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class Regression:
    """Ordinary least squares fit of y on x."""

    slope: float
    intercept: float
    r2: float
    n: int

    def predict(self, x):
        return self.slope * np.asarray(x) + self.intercept


def linear_regression(x: Sequence[float], y: Sequence[float]) -> Regression:
    """OLS fit with R² (squared Pearson correlation), as Fig. 12a reports."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if len(x) < 3:
        raise ValueError("regression needs at least 3 points")
    fit = _scipy_stats.linregress(x, y)
    return Regression(
        slope=float(fit.slope),
        intercept=float(fit.intercept),
        r2=float(fit.rvalue) ** 2,
        n=len(x),
    )


def empirical_cdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative probabilities) — Fig. 12b's curves."""
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0:
        raise ValueError("empty sample")
    p = np.arange(1, v.size + 1) / v.size
    return v, p


def normalized_step_time(step_times: Sequence[float]) -> np.ndarray:
    """Normalize step times so the best (fastest) run scores 1.0.

    The paper's Fig. 12 plots ``min(step time) / step time``: a run at the
    distribution's fast edge scores ~1, slower runs score lower. Under this
    normalization the paper reports 95th-percentile 0.63 (baseline) vs
    0.998 (TAC) — i.e. nearly every TAC run is as fast as the fastest.
    """
    t = np.asarray(step_times, dtype=float)
    if np.any(t <= 0):
        raise ValueError("step times must be positive")
    return t.min() / t


def percentile(values: Sequence[float], q: float) -> float:
    return float(np.percentile(np.asarray(values, dtype=float), q))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """std/mean — the run-to-run consistency number behind Fig. 12b."""
    v = np.asarray(values, dtype=float)
    mean = v.mean()
    return float(v.std() / mean) if mean else float("nan")
