"""Execution-timeline tooling: ASCII Gantt charts and Chrome-trace export.

Both consume an :class:`~repro.sim.engine.IterationRecord` together with
the :class:`~repro.sim.engine.SimVariant` that produced it:

* :func:`ascii_gantt` renders per-resource occupancy as text — handy to
  eyeball why a schedule wins (the paper's Fig. 1b/1c, for real models);
* :func:`chrome_trace` emits the Chrome/Perfetto ``trace_event`` JSON
  format (load via chrome://tracing or ui.perfetto.dev), one row per
  resource, one slice per op.
"""

from __future__ import annotations

import json
from typing import Optional

import numpy as np

from ..sim.engine import IterationRecord, SimVariant


def _op_rows(sim: SimVariant, record: IterationRecord, min_duration: float):
    """Yield (resource_name, op_name, start, end) for drawable ops."""
    names = sim.resource_names()
    g = sim.cluster.graph
    for op in g:
        start = float(record.start[op.op_id])
        end = float(record.end[op.op_id])
        if not np.isfinite(start) or end - start < min_duration:
            continue
        if sim.is_transfer[op.op_id]:
            resource = names[sim.t_egress[op.op_id]]
        else:
            resource = names[sim.op_res[op.op_id]]
        yield resource, op.name, start, end


def ascii_gantt(
    sim: SimVariant,
    record: IterationRecord,
    *,
    width: int = 80,
    min_duration_frac: float = 0.002,
    resources: Optional[list[str]] = None,
) -> str:
    """Per-resource occupancy bars over the iteration's time span.

    Ops shorter than ``min_duration_frac`` of the makespan are dropped
    (thousands of microsecond-scale AUX ops would render as noise).
    """
    span = record.makespan or 1.0
    rows: dict[str, list[str]] = {}
    for resource, _, start, end in _op_rows(
        sim, record, min_duration=span * min_duration_frac
    ):
        if resources is not None and resource not in resources:
            continue
        line = rows.setdefault(resource, [" "] * width)
        a = min(width - 1, int(start / span * width))
        b = min(width, max(a + 1, int(end / span * width)))
        for i in range(a, b):
            line[i] = "#" if line[i] == " " else "="  # '=' marks overlap
    label_w = max((len(r) for r in rows), default=0)
    lines = [f"iteration makespan: {span*1e3:.1f} ms"]
    for resource in sorted(rows):
        lines.append(f"{resource.rjust(label_w)} |{''.join(rows[resource])}|")
    return "\n".join(lines)


def chrome_trace(
    sim: SimVariant,
    record: IterationRecord,
    *,
    min_duration_frac: float = 0.0,
) -> list[dict]:
    """Chrome ``trace_event`` objects (phase ``X``, microsecond units).

    Resources map to pids/tids so each gets its own track.
    """
    span = record.makespan or 1.0
    track = {name: i for i, name in enumerate(sorted(sim.resource_names()))}
    events: list[dict] = []
    for resource, op_name, start, end in _op_rows(
        sim, record, min_duration=span * min_duration_frac
    ):
        events.append(
            {
                "name": op_name,
                "cat": "transfer" if "->" in op_name or resource.startswith("nic") else "compute",
                "ph": "X",
                "ts": start * 1e6,
                "dur": (end - start) * 1e6,
                "pid": 0,
                "tid": track[resource],
                "args": {"resource": resource},
            }
        )
    # thread-name metadata so the viewer labels tracks by resource
    for name, tid in track.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return events


def write_chrome_trace(
    path: str, sim: SimVariant, record: IterationRecord, **kw
) -> str:
    """Serialize :func:`chrome_trace` to ``path`` (JSON array format)."""
    import os

    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(chrome_trace(sim, record, **kw), fh)
    return path
