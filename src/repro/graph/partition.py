"""Partitioned-graph views: ops grouped by resource (§3.1).

The scheduling problem's input is "the partitioned graph — the
computational graph with resource tags associated to each op". This module
provides the bookkeeping layer between raw :class:`~repro.graph.dag.Graph`
objects (whose ops carry a ``resource`` tag) and the consumers that need
per-resource aggregates:

* the makespan bounds of §3.2 sum op times per resource
  (``LMakespan = max_d Σ_{op∈G_d} Time(op)``);
* the simulator owns one ready queue per resource;
* tests assert partition invariants (every op tagged, channels only carry
  communication ops, ...).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping, Optional

from .dag import Graph, GraphError
from .op import Op, OpKind, Resource, ResourceKind


class PartitionedGraph:
    """A :class:`Graph` in which every op has been assigned a resource.

    The object does not copy the graph; it indexes it. Mutating the
    underlying graph after construction invalidates the view.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        by_resource: dict[Resource, list[Op]] = defaultdict(list)
        for op in graph:
            if op.resource is None:
                raise GraphError(
                    f"op {op.name!r} has no resource tag; partition the graph "
                    "before wrapping it in PartitionedGraph"
                )
            activation = bool(op.attrs.get("activation_only"))
            if (
                op.is_communication
                and not activation
                and op.resource.kind is not ResourceKind.LINK
            ):
                raise GraphError(
                    f"communication op {op.name!r} tagged with non-link "
                    f"resource {op.resource.name!r}"
                )
            if not op.is_communication and op.resource.kind is ResourceKind.LINK:
                raise GraphError(
                    f"computation op {op.name!r} tagged with link resource "
                    f"{op.resource.name!r}"
                )
            by_resource[op.resource].append(op)
        self._by_resource: dict[Resource, list[Op]] = dict(by_resource)

    @property
    def resources(self) -> list[Resource]:
        """All resources referenced by at least one op, stable order."""
        return sorted(self._by_resource, key=lambda r: r.name)

    def ops_on(self, resource: Resource) -> list[Op]:
        """Ops assigned to ``resource`` (id order, i.e. topological)."""
        return list(self._by_resource.get(resource, ()))

    def load(self, time: Optional[Mapping[int, float]] = None) -> dict[Resource, float]:
        """Total work per resource.

        ``time`` maps op id -> duration; defaults to each op's ``cost``
        (work units). This is the quantity maximized over resources by the
        lower makespan bound (Eq. 2).
        """
        out: dict[Resource, float] = {}
        for res, ops in self._by_resource.items():
            if time is None:
                out[res] = sum(op.cost for op in ops)
            else:
                out[res] = sum(time[op.op_id] for op in ops)
        return out

    def bottleneck(self, time: Optional[Mapping[int, float]] = None) -> Resource:
        """The most-loaded resource — the denominator of Eq. 4's intuition:
        'if one resource has significantly higher load, scheduling has less
        effect on the makespan'."""
        loads = self.load(time)
        return max(loads, key=lambda r: (loads[r], r.name))

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"PartitionedGraph({self.graph.name!r}, {len(self.graph)} ops, "
            f"{len(self._by_resource)} resources)"
        )


def assign_worker_resources(
    graph: Graph,
    worker: str,
    ps_devices: Iterable[str],
) -> Graph:
    """Tag a single-worker model graph with resources (in place).

    Compute/AUX ops go to the worker's compute resource. Recv ops go on the
    ``ps -> worker`` link of the PS shard that owns their parameter (from
    ``op.attrs['ps']``); send ops go on ``worker -> ps``. Used to produce
    the *reference worker partition* consumed by TIC/TAC (§4) without
    building a whole cluster.

    Returns the same graph object for chaining.
    """
    ps_devices = list(ps_devices)
    compute = Resource.compute(worker)
    for op in graph:
        if op.kind is OpKind.RECV:
            ps = op.attrs.get("ps")
            if ps is None:
                raise GraphError(f"recv op {op.name!r} missing 'ps' attribute")
            op.resource = Resource.link(ps, worker)
        elif op.kind is OpKind.SEND:
            ps = op.attrs.get("ps")
            if ps is None:
                raise GraphError(f"send op {op.name!r} missing 'ps' attribute")
            op.resource = Resource.link(worker, ps)
        else:
            op.resource = compute
        if op.device is None:
            op.device = worker
    return graph
