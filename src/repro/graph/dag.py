"""Directed acyclic computational graphs.

A :class:`Graph` is the substrate everything else is built on: the model zoo
emits one per model replica, the cluster builder merges replicas with PS
subgraphs, the scheduling algorithms consume the single-worker reference
partition, and the simulator executes the merged cluster graph.

The structure is append-only (ops are never removed) which keeps op ids
dense and stable — a property the vectorized property computation in
:mod:`repro.core.properties` relies on.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from .op import Op, OpKind, Resource

OpRef = Union[int, str, Op]


class GraphError(ValueError):
    """Raised on structural violations (cycles, duplicate names, bad refs)."""


class Graph:
    """An append-only DAG of :class:`~repro.graph.op.Op` vertices.

    Edges point from producer to consumer: ``u -> v`` means ``v`` consumes
    the output of ``u`` and cannot start before ``u`` finishes.

    Cycle safety is enforced structurally: an op may only declare inputs
    that already exist in the graph, so no cycle can ever be constructed.
    ``validate()`` re-checks global invariants for graphs assembled by
    multiple builders.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._ops: list[Op] = []
        self._by_name: dict[str, int] = {}
        self._preds: list[list[int]] = []
        self._succs: list[list[int]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_op(
        self,
        name: str,
        kind: OpKind = OpKind.COMPUTE,
        inputs: Sequence[OpRef] = (),
        *,
        cost: float = 0.0,
        param: Optional[str] = None,
        device: Optional[str] = None,
        resource: Optional[Resource] = None,
        **attrs,
    ) -> Op:
        """Append an op. ``inputs`` must already be present in the graph.

        Returns the new :class:`Op`. Raises :class:`GraphError` on duplicate
        names or dangling input references.
        """
        if name in self._by_name:
            raise GraphError(f"duplicate op name: {name!r}")
        if cost < 0:
            raise GraphError(f"op {name!r} has negative cost {cost}")
        op_id = len(self._ops)
        pred_ids = sorted({self._resolve(ref) for ref in inputs})
        op = Op(
            op_id=op_id,
            name=name,
            kind=kind,
            resource=resource,
            cost=float(cost),
            param=param,
            device=device,
            attrs=dict(attrs),
        )
        self._ops.append(op)
        self._by_name[name] = op_id
        self._preds.append(pred_ids)
        self._succs.append([])
        for p in pred_ids:
            self._succs[p].append(op_id)
        return op

    def merge(self, other: "Graph", rename: Callable[[str], str] = lambda n: n) -> dict[int, int]:
        """Copy all ops of ``other`` into this graph.

        ``rename`` maps each foreign op name to its name here (used to
        namespace per-worker replicas). Returns a mapping from ``other``'s
        op ids to the new ids in this graph.
        """
        mapping: dict[int, int] = {}
        for op in other._ops:
            new = self.add_op(
                rename(op.name),
                op.kind,
                [mapping[p] for p in other._preds[op.op_id]],
                cost=op.cost,
                param=op.param,
                device=op.device,
                resource=op.resource,
                **op.attrs,
            )
            mapping[op.op_id] = new.op_id
        return mapping

    def splice(
        self,
        other: "Graph",
        rebuild: Callable[[Op, int], Op],
    ) -> dict[int, int]:
        """Graft a fully assembled graph into this one, verbatim.

        Unlike :meth:`merge` — which re-adds ops through :meth:`add_op`
        and therefore cannot carry edges created by :meth:`add_edge` that
        point from a later op to an earlier one — ``splice`` copies the
        complete pred/succ structure with ids offset, preserving relative
        op-id order exactly. This is the job-mix union primitive: each
        job's cluster DAG (including its PS send-activation back-edges)
        is spliced in under a namespace prefix.

        ``rebuild(op, new_id)`` returns the :class:`~repro.graph.op.Op`
        to insert for ``other``'s ``op`` — it must carry ``op_id ==
        new_id`` and a name unique in this graph (typically the original
        fields with names/devices/resources rewritten). Acyclicity is
        preserved structurally: ``other`` is a DAG and no cross-graph
        edges are introduced. Returns the old-id -> new-id mapping.
        """
        offset = len(self._ops)
        mapping: dict[int, int] = {}
        for op in other._ops:
            new_id = offset + op.op_id
            new_op = rebuild(op, new_id)
            if new_op.op_id != new_id:
                raise GraphError(
                    f"splice rebuild returned op_id {new_op.op_id}, "
                    f"expected {new_id}"
                )
            if new_op.name in self._by_name:
                raise GraphError(f"duplicate op name: {new_op.name!r}")
            self._ops.append(new_op)
            self._by_name[new_op.name] = new_id
            self._preds.append([p + offset for p in other._preds[op.op_id]])
            self._succs.append([s + offset for s in other._succs[op.op_id]])
            mapping[op.op_id] = new_id
        return mapping

    def add_edge(self, src: OpRef, dst: OpRef) -> None:
        """Add a dependency edge between two existing ops.

        Used by the cluster builder to stitch cross-device dependencies
        (e.g. a PS ``send`` consuming the ``update`` of the same parameter).
        Raises :class:`GraphError` if the edge would create a cycle.
        """
        s, d = self._resolve(src), self._resolve(dst)
        if s == d:
            raise GraphError(f"self-loop on op {self._ops[s].name!r}")
        if d in self._preds[s] or self._reaches(d, s):
            raise GraphError(
                f"edge {self._ops[s].name!r} -> {self._ops[d].name!r} would create a cycle"
            )
        if s in self._preds[d]:
            return  # already present
        self._preds[d].append(s)
        self._succs[s].append(d)

    def _reaches(self, src: int, dst: int) -> bool:
        """DFS reachability check used by :meth:`add_edge` cycle detection."""
        if src == dst:
            return True
        seen = {src}
        stack = [src]
        while stack:
            for nxt in self._succs[stack.pop()]:
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _resolve(self, ref: OpRef) -> int:
        if isinstance(ref, Op):
            ref = ref.op_id
        if isinstance(ref, str):
            try:
                return self._by_name[ref]
            except KeyError:
                raise GraphError(f"unknown op name: {ref!r}") from None
        if not isinstance(ref, int) or not (0 <= ref < len(self._ops)):
            raise GraphError(f"unknown op reference: {ref!r}")
        return ref

    def op(self, ref: OpRef) -> Op:
        """Fetch an op by id, name or identity."""
        return self._ops[self._resolve(ref)]

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self._ops)

    def __contains__(self, ref: OpRef) -> bool:
        try:
            self._resolve(ref)
            return True
        except GraphError:
            return False

    @property
    def ops(self) -> Sequence[Op]:
        return tuple(self._ops)

    def predecessors(self, ref: OpRef) -> list[Op]:
        return [self._ops[i] for i in self._preds[self._resolve(ref)]]

    def successors(self, ref: OpRef) -> list[Op]:
        return [self._ops[i] for i in self._succs[self._resolve(ref)]]

    def pred_ids(self, op_id: int) -> Sequence[int]:
        return self._preds[op_id]

    def succ_ids(self, op_id: int) -> Sequence[int]:
        return self._succs[op_id]

    def in_degree(self, ref: OpRef) -> int:
        return len(self._preds[self._resolve(ref)])

    def out_degree(self, ref: OpRef) -> int:
        return len(self._succs[self._resolve(ref)])

    # ------------------------------------------------------------------
    # Queries used by the paper's algorithms
    # ------------------------------------------------------------------
    def roots(self) -> list[Op]:
        """Ops with no predecessors. In a worker partition these are the
        recv ops plus any constant/input ops (§2.2)."""
        return [op for op in self._ops if not self._preds[op.op_id]]

    def leaves(self) -> list[Op]:
        """Ops with no successors (send ops in a training worker partition)."""
        return [op for op in self._ops if not self._succs[op.op_id]]

    def ops_of_kind(self, kind: OpKind) -> list[Op]:
        return [op for op in self._ops if op.kind is kind]

    def recv_ops(self) -> list[Op]:
        """The ops TicTac schedules (§3.1): network receives."""
        return self.ops_of_kind(OpKind.RECV)

    def topological_order(self, key: Optional[Callable[[Op], object]] = None) -> list[Op]:
        """One topological order (Kahn). ``key`` breaks ties (stable by id
        when omitted); because ops can only reference earlier ops, id order
        itself is already topological — the method exists for explicit
        orders and for validation of externally stitched edges."""
        import heapq

        if key is None:
            order = list(self._ops)
            return order
        indeg = [len(p) for p in self._preds]
        heap = [(key(op), op.op_id) for op in self._ops if indeg[op.op_id] == 0]
        heapq.heapify(heap)
        out: list[Op] = []
        while heap:
            _, oid = heapq.heappop(heap)
            out.append(self._ops[oid])
            for s in self._succs[oid]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(heap, (key(self._ops[s]), s))
        if len(out) != len(self._ops):  # pragma: no cover - structurally impossible
            raise GraphError("graph contains a cycle")
        return out

    def validate(self) -> None:
        """Re-check global invariants; raises :class:`GraphError` on failure.

        Checked: edge symmetry of pred/succ tables, recv ops are roots
        within their device partition, non-negative costs, unique names.
        """
        if len(self._by_name) != len(self._ops):  # pragma: no cover
            raise GraphError("name table out of sync")
        for op in self._ops:
            for p in self._preds[op.op_id]:
                if op.op_id not in self._succs[p]:  # pragma: no cover
                    raise GraphError(f"asymmetric edge {p}->{op.op_id}")
            if op.cost < 0:
                raise GraphError(f"op {op.name!r} has negative cost")
            if op.kind is OpKind.RECV:
                same_device_preds = [
                    p for p in self.predecessors(op) if p.device == op.device
                ]
                if same_device_preds:
                    raise GraphError(
                        f"recv op {op.name!r} has same-device predecessors "
                        f"{[p.name for p in same_device_preds]}; recv ops must be "
                        "roots of their worker partition (§2.2)"
                    )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def total_cost(self, kinds: Optional[Iterable[OpKind]] = None) -> float:
        """Sum of op costs, optionally restricted to some kinds."""
        wanted = set(kinds) if kinds is not None else None
        return sum(op.cost for op in self._ops if wanted is None or op.kind in wanted)

    def subgraph_ids(self, predicate: Callable[[Op], bool]) -> list[int]:
        return [op.op_id for op in self._ops if predicate(op)]

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        kinds = {}
        for op in self._ops:
            kinds[op.kind.value] = kinds.get(op.kind.value, 0) + 1
        return f"Graph({self.name!r}, {len(self)} ops, {kinds})"
