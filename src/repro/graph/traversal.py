"""Communication-dependency extraction (§4.1 of the paper).

The *communication dependency* of an op is the set of recv ops it directly
or transitively depends on (``op.dep``). The paper extracts these "using a
depth-first post-fix graph traversal on the DAG"; we compute the identical
fixpoint by a single topological sweep, accumulating each op's dependency
set as the union of its predecessors' sets.

Two representations are produced:

* **bitmasks** — one Python ``int`` per op, bit *k* set iff the op depends
  on the *k*-th recv op. Arbitrary-precision ints make the union a single
  ``|`` regardless of recv count, and are what the reference property
  implementation consumes.
* **dense matrix** — ``(n_ops, n_recv)`` boolean ndarray for the vectorized
  property computation in :mod:`repro.core.properties`.

By the paper's convention a recv op's own dependency set includes itself,
which unifies the definition of communication time ``M`` (§4.1): for an
outstanding recv, ``M = Time(recv)``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .dag import Graph
from .op import Op


def recv_index(graph: Graph, recv_ops: Optional[Sequence[Op]] = None) -> dict[int, int]:
    """Map recv op-id -> dense recv index (bit position / matrix column)."""
    if recv_ops is None:
        recv_ops = graph.recv_ops()
    return {op.op_id: k for k, op in enumerate(recv_ops)}


def communication_dependency_masks(
    graph: Graph, recv_ops: Optional[Sequence[Op]] = None
) -> list[int]:
    """Per-op dependency bitmask over the graph's recv ops.

    ``masks[i]`` has bit ``k`` set iff op ``i`` transitively depends on the
    ``k``-th recv op (recv ops depend on themselves). Ops are visited in id
    order, which is topological by construction of :class:`Graph`.
    """
    index = recv_index(graph, recv_ops)
    masks = [0] * len(graph)
    for op in graph:
        m = 0
        for p in graph.pred_ids(op.op_id):
            m |= masks[p]
        k = index.get(op.op_id)
        if k is not None:
            m |= 1 << k
        masks[op.op_id] = m
    return masks


def dependency_matrix(
    graph: Graph, recv_ops: Optional[Sequence[Op]] = None
) -> np.ndarray:
    """Dense ``(n_ops, n_recv)`` bool matrix of communication dependencies.

    Row *i*, column *k* is ``True`` iff op *i* depends (transitively) on the
    *k*-th recv op. Column order follows ``recv_ops`` (graph recv order by
    default).
    """
    if recv_ops is None:
        recv_ops = graph.recv_ops()
    n_recv = len(recv_ops)
    masks = communication_dependency_masks(graph, recv_ops)
    out = np.zeros((len(graph), n_recv), dtype=bool)
    if n_recv == 0:
        return out
    for i, mask in enumerate(masks):
        while mask:
            low = mask & -mask
            out[i, low.bit_length() - 1] = True
            mask ^= low
    return out


def dependency_sets(
    graph: Graph, recv_ops: Optional[Sequence[Op]] = None
) -> list[frozenset[int]]:
    """Per-op dependency sets of recv *op ids* (the paper's ``op.dep``).

    This is the representation used by the literal reference implementation
    of Algorithm 1 and by tests; production code uses the matrix form.
    """
    if recv_ops is None:
        recv_ops = graph.recv_ops()
    ids = [op.op_id for op in recv_ops]
    masks = communication_dependency_masks(graph, recv_ops)
    out: list[frozenset[int]] = []
    for mask in masks:
        members = []
        while mask:
            low = mask & -mask
            members.append(ids[low.bit_length() - 1])
            mask ^= low
        out.append(frozenset(members))
    return out


def critical_path_cost(graph: Graph) -> float:
    """Length (sum of op costs) of the longest cost-weighted path.

    Not used by TIC/TAC themselves but a useful diagnostic: with infinite
    resources the makespan can never drop below the critical path, so the
    reachable band for any schedule is
    ``[max(critical_path, LMakespan), UMakespan]``.
    """
    finish = [0.0] * len(graph)
    best = 0.0
    for op in graph:
        start = 0.0
        for p in graph.pred_ids(op.op_id):
            if finish[p] > start:
                start = finish[p]
        finish[op.op_id] = start + op.cost
        if finish[op.op_id] > best:
            best = finish[op.op_id]
    return best
