"""Operation and resource primitives for partitioned computational graphs.

The paper (§2.2, §3.1) works with *partitioned graphs*: computational DAGs
whose vertices ("ops") carry a resource tag — computation ops are assigned
to a computation resource, communication ops to a communication channel.
This module defines the op vocabulary shared by the model zoo
(:mod:`repro.models`), the cluster-graph builder (:mod:`repro.ps`), the
scheduling algorithms (:mod:`repro.core`) and the discrete-event simulator
(:mod:`repro.sim`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class OpKind(enum.Enum):
    """Categories of ops appearing in worker and PS partitions.

    The scheduling problem only distinguishes communication ops (``RECV``,
    ``SEND``) from everything else; the finer compute categories exist so
    the model zoo and the PS builder can emit self-describing graphs and so
    tests can assert structural invariants (e.g. every parameter has exactly
    one ``UPDATE`` op on its PS shard).
    """

    #: Generic computation (conv, matmul, activation, gradient, ...).
    COMPUTE = "compute"
    #: Network receive; roots of the worker partition (§2.2).
    RECV = "recv"
    #: Network send; leaves of the worker partition (§2.2).
    SEND = "send"
    #: PS-side gradient aggregation across workers (§2.2).
    AGGREGATE = "aggregate"
    #: PS-side parameter update (optimizer apply).
    UPDATE = "update"
    #: PS-side parameter read (snapshot served to workers).
    READ = "read"
    #: Zero-ish cost framework ops (const/identity/shape); used by the model
    #: zoo to mirror TensorFlow's op-count accounting (Table 1).
    AUX = "aux"

    @property
    def is_communication(self) -> bool:
        """``True`` for ops that occupy a network channel resource."""
        return self in (OpKind.RECV, OpKind.SEND)


class ResourceKind(enum.Enum):
    """The two resource classes of the paper's makespan model (§3.2)."""

    COMPUTE = "compute"
    LINK = "link"


@dataclass(frozen=True)
class Resource:
    """A schedulable resource: a device's compute engine or a channel
    direction.

    Channels follow gRPC semantics (§5.1): one channel per worker↔PS pair,
    one active transfer at a time per direction. A directional channel
    resource is named ``link:{src}->{dst}``; compute resources are named
    ``compute:{device}``.
    """

    name: str
    kind: ResourceKind

    @staticmethod
    def compute(device: str) -> "Resource":
        """Compute resource of ``device`` (e.g. ``worker:0`` or ``ps:1``)."""
        return Resource(f"compute:{device}", ResourceKind.COMPUTE)

    @staticmethod
    def link(src: str, dst: str) -> "Resource":
        """Directional channel resource from ``src`` device to ``dst``."""
        return Resource(f"link:{src}->{dst}", ResourceKind.LINK)

    def __str__(self) -> str:  # pragma: no cover - debugging nicety
        return self.name


@dataclass
class Op:
    """A vertex of a partitioned computational graph.

    Attributes
    ----------
    op_id:
        Dense integer id, assigned by the owning :class:`~repro.graph.dag.Graph`
        in insertion order. Used as the index into every vectorized
        per-op array in :mod:`repro.core.properties`.
    name:
        Globally unique, human-readable (TensorFlow-style) name, e.g.
        ``"worker:0/conv2/Conv2D"`` or ``"ps:1/resnet_v1_50/block3/unit_2/
        bottleneck_v1/conv1/weights/send->worker:3"``.
    kind:
        The :class:`OpKind` category.
    resource:
        Resource tag of the partitioned graph; ``None`` until partitioning.
    cost:
        Ground-truth duration hint in abstract *work units*: FLOPs for
        compute ops, bytes for communication ops. The platform model
        (:mod:`repro.timing.platform`) converts work units to seconds.
    param:
        For ``RECV``/``SEND``/``AGGREGATE``/``UPDATE``/``READ`` ops, the
        name of the parameter tensor they move or touch.
    device:
        Logical device this op runs on (``worker:i`` / ``ps:j``); set during
        cluster assembly.
    """

    op_id: int
    name: str
    kind: OpKind
    resource: Optional[Resource] = None
    cost: float = 0.0
    param: Optional[str] = None
    device: Optional[str] = None
    #: Free-form annotations (layer name, tensor shape, ...). Not consulted
    #: by any algorithm; carried for debugging and reporting.
    attrs: dict = field(default_factory=dict)

    @property
    def is_recv(self) -> bool:
        """``True`` iff this op is a network receive (the ops TicTac orders)."""
        return self.kind is OpKind.RECV

    @property
    def is_communication(self) -> bool:
        return self.kind.is_communication

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        res = f", resource={self.resource.name}" if self.resource else ""
        return f"Op({self.op_id}, {self.name!r}, {self.kind.value}{res})"
