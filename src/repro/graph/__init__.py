"""Computational-graph substrate (the DAG layer TensorFlow provides in the
paper's system).

Public surface:

* :class:`~repro.graph.op.Op`, :class:`~repro.graph.op.OpKind`,
  :class:`~repro.graph.op.Resource`, :class:`~repro.graph.op.ResourceKind`
* :class:`~repro.graph.dag.Graph` — append-only DAG builder/queries
* :class:`~repro.graph.partition.PartitionedGraph` and
  :func:`~repro.graph.partition.assign_worker_resources`
* :func:`~repro.graph.traversal.dependency_matrix` /
  :func:`~repro.graph.traversal.dependency_sets` — the paper's ``op.dep``
"""

from .dag import Graph, GraphError
from .op import Op, OpKind, Resource, ResourceKind
from .partition import PartitionedGraph, assign_worker_resources
from .traversal import (
    communication_dependency_masks,
    critical_path_cost,
    dependency_matrix,
    dependency_sets,
    recv_index,
)

__all__ = [
    "Graph",
    "GraphError",
    "Op",
    "OpKind",
    "Resource",
    "ResourceKind",
    "PartitionedGraph",
    "assign_worker_resources",
    "communication_dependency_masks",
    "critical_path_cost",
    "dependency_matrix",
    "dependency_sets",
    "recv_index",
]
