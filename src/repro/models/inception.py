"""Inception v1 (GoogLeNet), v2 (BN-Inception) and v3, TF-slim variants.

Parameter-tensor accounting matches Table 1:

* **v1**: 57 batch-normalized convs (slim implements the "5x5" branch as
  3x3, which is what lands the 25.24 MiB total) + logits fc => 116.
* **v2**: separable stem (depthwise + pointwise + one BN) + 10 mixed
  blocks => 70 weights + 69 betas + fc pair = 141.
* **v3**: 299x299 input, factorized 1x7/7x1 and 1x3/3x1 kernels, auxiliary
  head included (that is what brings the total to 103.5 MiB) => 196.
"""

from __future__ import annotations

from .builder import NetBuilder
from .ir import ModelIR


# ----------------------------------------------------------------------
# Inception v1 — GoogLeNet
# ----------------------------------------------------------------------

#: (b0_1x1, b1_reduce, b1_3x3, b2_reduce, b2_3x3, pool_proj) per module.
_V1_MODULES = {
    "Mixed_3b": (64, 96, 128, 16, 32, 32),
    "Mixed_3c": (128, 128, 192, 32, 96, 64),
    "Mixed_4b": (192, 96, 208, 16, 48, 64),
    "Mixed_4c": (160, 112, 224, 24, 64, 64),
    "Mixed_4d": (128, 128, 256, 24, 64, 64),
    "Mixed_4e": (112, 144, 288, 32, 64, 64),
    "Mixed_4f": (256, 160, 320, 32, 128, 128),
    "Mixed_5b": (256, 160, 320, 32, 128, 128),
    "Mixed_5c": (384, 192, 384, 48, 128, 128),
}


def _v1_module(b: NetBuilder, scope: str, x: str, cfg: tuple[int, ...]) -> str:
    c0, c1r, c1, c2r, c2, cp = cfg
    b0 = b.conv(f"{scope}/Branch_0/Conv2d_0a_1x1", 1, c0, input=x)
    b1 = b.conv(f"{scope}/Branch_1/Conv2d_0a_1x1", 1, c1r, input=x)
    b1 = b.conv(f"{scope}/Branch_1/Conv2d_0b_3x3", 3, c1, input=b1)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0a_1x1", 1, c2r, input=x)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0b_3x3", 3, c2, input=b2)
    b3 = b.max_pool(f"{scope}/Branch_3/MaxPool_0a_3x3", 3, 1, padding="SAME", input=x)
    b3 = b.conv(f"{scope}/Branch_3/Conv2d_0b_1x1", 1, cp, input=b3)
    return b.concat(f"{scope}/concat", [b0, b1, b2, b3])


def inception_v1(batch_size: int = 128) -> ModelIR:
    b = NetBuilder("inception_v1", batch_size, input_hw=(224, 224))
    x = b.conv("Conv2d_1a_7x7", 7, 64, stride=2)
    x = b.max_pool("MaxPool_2a_3x3", 3, 2, padding="SAME", input=x)
    x = b.conv("Conv2d_2b_1x1", 1, 64, input=x)
    x = b.conv("Conv2d_2c_3x3", 3, 192, input=x)
    x = b.max_pool("MaxPool_3a_3x3", 3, 2, padding="SAME", input=x)
    for scope in ("Mixed_3b", "Mixed_3c"):
        x = _v1_module(b, scope, x, _V1_MODULES[scope])
    x = b.max_pool("MaxPool_4a_3x3", 3, 2, padding="SAME", input=x)
    for scope in ("Mixed_4b", "Mixed_4c", "Mixed_4d", "Mixed_4e", "Mixed_4f"):
        x = _v1_module(b, scope, x, _V1_MODULES[scope])
    x = b.max_pool("MaxPool_5a_2x2", 2, 2, padding="SAME", input=x)
    for scope in ("Mixed_5b", "Mixed_5c"):
        x = _v1_module(b, scope, x, _V1_MODULES[scope])
    x = b.global_avg_pool("AvgPool_0a", input=x)
    b.dropout("Dropout_0b")
    b.fc("Logits/Conv2d_0c_1x1", 1000)
    b.softmax("predictions")
    return b.build()


# ----------------------------------------------------------------------
# Inception v2 — BN-Inception with separable stem
# ----------------------------------------------------------------------

#: Regular block: (b0, b1r, b1, b2r, b2a, b2b, pool_proj, pool_type).
_V2_BLOCKS = {
    "Mixed_3b": (64, 64, 64, 64, 96, 96, 32, "avg"),
    "Mixed_3c": (64, 64, 96, 64, 96, 96, 64, "avg"),
    "Mixed_4b": (224, 64, 96, 96, 128, 128, 128, "avg"),
    "Mixed_4c": (192, 96, 128, 96, 128, 128, 128, "avg"),
    "Mixed_4d": (160, 128, 160, 128, 160, 160, 96, "avg"),
    "Mixed_4e": (96, 128, 192, 160, 192, 192, 96, "avg"),
    "Mixed_5b": (352, 192, 320, 160, 224, 224, 128, "avg"),
    "Mixed_5c": (352, 192, 320, 192, 224, 224, 128, "max"),
}

#: Stride-2 reduction block: (b0r, b0, b1r, b1a, b1b).
_V2_REDUCTIONS = {
    "Mixed_4a": (128, 160, 64, 96, 96),
    "Mixed_5a": (128, 192, 192, 256, 256),
}


def _v2_block(b: NetBuilder, scope: str, x: str, cfg) -> str:
    c0, c1r, c1, c2r, c2a, c2b, cp, pool = cfg
    b0 = b.conv(f"{scope}/Branch_0/Conv2d_0a_1x1", 1, c0, input=x)
    b1 = b.conv(f"{scope}/Branch_1/Conv2d_0a_1x1", 1, c1r, input=x)
    b1 = b.conv(f"{scope}/Branch_1/Conv2d_0b_3x3", 3, c1, input=b1)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0a_1x1", 1, c2r, input=x)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0b_3x3", 3, c2a, input=b2)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0c_3x3", 3, c2b, input=b2)
    pool_fn = b.avg_pool if pool == "avg" else b.max_pool
    b3 = pool_fn(f"{scope}/Branch_3/Pool_0a_3x3", 3, 1, padding="SAME", input=x)
    b3 = b.conv(f"{scope}/Branch_3/Conv2d_0b_1x1", 1, cp, input=b3)
    return b.concat(f"{scope}/concat", [b0, b1, b2, b3])


def _v2_reduction(b: NetBuilder, scope: str, x: str, cfg) -> str:
    c0r, c0, c1r, c1a, c1b = cfg
    b0 = b.conv(f"{scope}/Branch_0/Conv2d_0a_1x1", 1, c0r, input=x)
    b0 = b.conv(f"{scope}/Branch_0/Conv2d_1a_3x3", 3, c0, stride=2, input=b0)
    b1 = b.conv(f"{scope}/Branch_1/Conv2d_0a_1x1", 1, c1r, input=x)
    b1 = b.conv(f"{scope}/Branch_1/Conv2d_0b_3x3", 3, c1a, input=b1)
    b1 = b.conv(f"{scope}/Branch_1/Conv2d_1a_3x3", 3, c1b, stride=2, input=b1)
    b2 = b.max_pool(f"{scope}/Branch_2/MaxPool_1a_3x3", 3, 2, padding="SAME", input=x)
    return b.concat(f"{scope}/concat", [b0, b1, b2])


def inception_v2(batch_size: int = 128) -> ModelIR:
    b = NetBuilder("inception_v2", batch_size, input_hw=(224, 224))
    # Separable 7x7 stem: depthwise (multiplier 8) + pointwise to 64, one BN.
    x = b.depthwise_conv("Conv2d_1a_7x7/depthwise", 7, depth_multiplier=8,
                         stride=2, bn=False, relu=False)
    x = b.conv("Conv2d_1a_7x7/pointwise", 1, 64, input=x)
    x = b.max_pool("MaxPool_2a_3x3", 3, 2, padding="SAME", input=x)
    x = b.conv("Conv2d_2b_1x1", 1, 64, input=x)
    x = b.conv("Conv2d_2c_3x3", 3, 192, input=x)
    x = b.max_pool("MaxPool_3a_3x3", 3, 2, padding="SAME", input=x)
    x = _v2_block(b, "Mixed_3b", x, _V2_BLOCKS["Mixed_3b"])
    x = _v2_block(b, "Mixed_3c", x, _V2_BLOCKS["Mixed_3c"])
    x = _v2_reduction(b, "Mixed_4a", x, _V2_REDUCTIONS["Mixed_4a"])
    for scope in ("Mixed_4b", "Mixed_4c", "Mixed_4d", "Mixed_4e"):
        x = _v2_block(b, scope, x, _V2_BLOCKS[scope])
    x = _v2_reduction(b, "Mixed_5a", x, _V2_REDUCTIONS["Mixed_5a"])
    x = _v2_block(b, "Mixed_5b", x, _V2_BLOCKS["Mixed_5b"])
    x = _v2_block(b, "Mixed_5c", x, _V2_BLOCKS["Mixed_5c"])
    x = b.global_avg_pool("AvgPool_1a", input=x)
    b.dropout("Dropout_1b")
    b.fc("Logits/Conv2d_1c_1x1", 1000)
    b.softmax("predictions")
    return b.build()


# ----------------------------------------------------------------------
# Inception v3
# ----------------------------------------------------------------------


def _v3_module_a(b: NetBuilder, scope: str, x: str, pool_proj: int) -> str:
    """35x35 module: 1x1 / 5x5 / double-3x3 / pool branches."""
    b0 = b.conv(f"{scope}/Branch_0/Conv2d_0a_1x1", 1, 64, input=x)
    b1 = b.conv(f"{scope}/Branch_1/Conv2d_0a_1x1", 1, 48, input=x)
    b1 = b.conv(f"{scope}/Branch_1/Conv2d_0b_5x5", 5, 64, input=b1)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0a_1x1", 1, 64, input=x)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0b_3x3", 3, 96, input=b2)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0c_3x3", 3, 96, input=b2)
    b3 = b.avg_pool(f"{scope}/Branch_3/AvgPool_0a_3x3", 3, 1, padding="SAME", input=x)
    b3 = b.conv(f"{scope}/Branch_3/Conv2d_0b_1x1", 1, pool_proj, input=b3)
    return b.concat(f"{scope}/concat", [b0, b1, b2, b3])


def _v3_module_b(b: NetBuilder, scope: str, x: str, c7: int) -> str:
    """17x17 module with factorized 7x7 (1x7 / 7x1) branches."""
    b0 = b.conv(f"{scope}/Branch_0/Conv2d_0a_1x1", 1, 192, input=x)
    b1 = b.conv(f"{scope}/Branch_1/Conv2d_0a_1x1", 1, c7, input=x)
    b1 = b.conv(f"{scope}/Branch_1/Conv2d_0b_1x7", (1, 7), c7, input=b1)
    b1 = b.conv(f"{scope}/Branch_1/Conv2d_0c_7x1", (7, 1), 192, input=b1)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0a_1x1", 1, c7, input=x)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0b_7x1", (7, 1), c7, input=b2)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0c_1x7", (1, 7), c7, input=b2)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0d_7x1", (7, 1), c7, input=b2)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0e_1x7", (1, 7), 192, input=b2)
    b3 = b.avg_pool(f"{scope}/Branch_3/AvgPool_0a_3x3", 3, 1, padding="SAME", input=x)
    b3 = b.conv(f"{scope}/Branch_3/Conv2d_0b_1x1", 1, 192, input=b3)
    return b.concat(f"{scope}/concat", [b0, b1, b2, b3])


def _v3_module_c(b: NetBuilder, scope: str, x: str) -> str:
    """8x8 module with split 1x3/3x1 branch tips."""
    b0 = b.conv(f"{scope}/Branch_0/Conv2d_0a_1x1", 1, 320, input=x)
    b1 = b.conv(f"{scope}/Branch_1/Conv2d_0a_1x1", 1, 384, input=x)
    b1a = b.conv(f"{scope}/Branch_1/Conv2d_0b_1x3", (1, 3), 384, input=b1)
    b1b = b.conv(f"{scope}/Branch_1/Conv2d_0c_3x1", (3, 1), 384, input=b1)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0a_1x1", 1, 448, input=x)
    b2 = b.conv(f"{scope}/Branch_2/Conv2d_0b_3x3", 3, 384, input=b2)
    b2a = b.conv(f"{scope}/Branch_2/Conv2d_0c_1x3", (1, 3), 384, input=b2)
    b2b = b.conv(f"{scope}/Branch_2/Conv2d_0d_3x1", (3, 1), 384, input=b2)
    b3 = b.avg_pool(f"{scope}/Branch_3/AvgPool_0a_3x3", 3, 1, padding="SAME", input=x)
    b3 = b.conv(f"{scope}/Branch_3/Conv2d_0b_1x1", 1, 192, input=b3)
    return b.concat(f"{scope}/concat", [b0, b1a, b1b, b2a, b2b, b3])


def inception_v3(batch_size: int = 32) -> ModelIR:
    b = NetBuilder("inception_v3", batch_size, input_hw=(299, 299))
    x = b.conv("Conv2d_1a_3x3", 3, 32, stride=2, padding="VALID")
    x = b.conv("Conv2d_2a_3x3", 3, 32, padding="VALID", input=x)
    x = b.conv("Conv2d_2b_3x3", 3, 64, input=x)
    x = b.max_pool("MaxPool_3a_3x3", 3, 2, input=x)
    x = b.conv("Conv2d_3b_1x1", 1, 80, padding="VALID", input=x)
    x = b.conv("Conv2d_4a_3x3", 3, 192, padding="VALID", input=x)
    x = b.max_pool("MaxPool_5a_3x3", 3, 2, input=x)
    x = _v3_module_a(b, "Mixed_5b", x, 32)
    x = _v3_module_a(b, "Mixed_5c", x, 64)
    x = _v3_module_a(b, "Mixed_5d", x, 64)
    # Mixed_6a: stride-2 reduction to 17x17.
    b0 = b.conv("Mixed_6a/Branch_0/Conv2d_1a_1x1", 3, 384, stride=2,
                padding="VALID", input=x)
    b1 = b.conv("Mixed_6a/Branch_1/Conv2d_0a_1x1", 1, 64, input=x)
    b1 = b.conv("Mixed_6a/Branch_1/Conv2d_0b_3x3", 3, 96, input=b1)
    b1 = b.conv("Mixed_6a/Branch_1/Conv2d_1a_1x1", 3, 96, stride=2,
                padding="VALID", input=b1)
    b2 = b.max_pool("Mixed_6a/Branch_2/MaxPool_1a_3x3", 3, 2, input=x)
    x = b.concat("Mixed_6a/concat", [b0, b1, b2])
    x = _v3_module_b(b, "Mixed_6b", x, 128)
    x = _v3_module_b(b, "Mixed_6c", x, 160)
    x = _v3_module_b(b, "Mixed_6d", x, 160)
    x = _v3_module_b(b, "Mixed_6e", x, 192)
    # Auxiliary head (kept: it contributes to Table 1's 196/103.5 MiB).
    a = b.avg_pool("AuxLogits/AvgPool_1a_5x5", 5, 3, padding="VALID", input=x)
    a = b.conv("AuxLogits/Conv2d_1b_1x1", 1, 128, input=a)
    a = b.conv("AuxLogits/Conv2d_2a_5x5", 5, 768, padding="VALID", input=a)
    a = b.conv("AuxLogits/Conv2d_2b_1x1", 1, 1000, bias=True, bn=False,
               relu=False, input=a)
    aux = b.flatten("AuxLogits/flatten", input=a)
    # Mixed_7a: stride-2 reduction to 8x8.
    b0 = b.conv("Mixed_7a/Branch_0/Conv2d_0a_1x1", 1, 192, input=x)
    b0 = b.conv("Mixed_7a/Branch_0/Conv2d_1a_3x3", 3, 320, stride=2,
                padding="VALID", input=b0)
    b1 = b.conv("Mixed_7a/Branch_1/Conv2d_0a_1x1", 1, 192, input=x)
    b1 = b.conv("Mixed_7a/Branch_1/Conv2d_0b_1x7", (1, 7), 192, input=b1)
    b1 = b.conv("Mixed_7a/Branch_1/Conv2d_0c_7x1", (7, 1), 192, input=b1)
    b1 = b.conv("Mixed_7a/Branch_1/Conv2d_1a_3x3", 3, 192, stride=2,
                padding="VALID", input=b1)
    b2 = b.max_pool("Mixed_7a/Branch_2/MaxPool_1a_3x3", 3, 2, input=x)
    x = b.concat("Mixed_7a/concat", [b0, b1, b2])
    x = _v3_module_c(b, "Mixed_7b", x)
    x = _v3_module_c(b, "Mixed_7c", x)
    x = b.global_avg_pool("AvgPool_1a", input=x)
    b.dropout("Dropout_1b")
    b.fc("Logits/Conv2d_1c_1x1", 1000)
    b.softmax("predictions")
    ir = b.build()
    ir.nodes["predictions"].attrs["aux_head"] = aux
    return ir
