"""VGG-16 and VGG-19 (Simonyan & Zisserman 2014), TF-slim variant.

VGG-16: 32 parameter tensors, 527.8 MiB; VGG-19: 38 tensors, 548.1 MiB
(Table 1). Slim implements the fc head as convolutions (fc6 is a 7x7
VALID conv); parameters are weight/bias pairs with no batch norm.
"""

from __future__ import annotations

from .builder import NetBuilder
from .ir import ModelIR

#: Convs per stage: VGG-16 has (2, 2, 3, 3, 3), VGG-19 has (2, 2, 4, 4, 4).
_STAGE_CHANNELS = (64, 128, 256, 512, 512)


def _vgg(name: str, convs_per_stage: tuple[int, ...], batch_size: int) -> ModelIR:
    b = NetBuilder(name, batch_size, input_hw=(224, 224))
    for stage, (n_convs, ch) in enumerate(zip(convs_per_stage, _STAGE_CHANNELS), start=1):
        for i in range(1, n_convs + 1):
            b.conv(f"conv{stage}/conv{stage}_{i}", 3, ch, bias=True, bn=False)
        b.max_pool(f"pool{stage}", 2, 2)
    b.conv("fc6", 7, 4096, padding="VALID", bias=True, bn=False)
    b.dropout("dropout6")
    b.conv("fc7", 1, 4096, bias=True, bn=False)
    b.dropout("dropout7")
    b.conv("fc8", 1, 1000, bias=True, bn=False, relu=False)
    b.flatten("logits")
    b.softmax("predictions")
    return b.build()


def vgg_16(batch_size: int = 32) -> ModelIR:
    return _vgg("vgg_16", (2, 2, 3, 3, 3), batch_size)


def vgg_19(batch_size: int = 32) -> ModelIR:
    return _vgg("vgg_19", (2, 2, 4, 4, 4), batch_size)
