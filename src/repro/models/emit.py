"""Lower layer-level :class:`~repro.models.ir.ModelIR` to op-level graphs.

Four emission modes:

* ``canonical_inference`` / ``canonical_training`` — the single-device
  graph TensorFlow would hold before distribution, including per-variable
  subgraphs (variable, initializer chain, assign, read) and, for training,
  the loss and SGD-apply ops. Used for Table 1 op accounting.
* ``worker_inference`` / ``worker_training`` — one Model-Replica worker
  partition (§2.2): every parameter arrives through a ``recv`` root; in
  training every parameter gradient leaves through a ``send`` leaf. Used
  by the scheduler and the cluster simulator.

Emission is deliberately structural: each micro-layer lowers to one kernel
op plus the small constellation of constant/shape/bookkeeping ops a real
TensorFlow graph carries, and the backward pass mirrors the forward pass
the way ``tf.gradients`` does (Backprop ops consuming both the incoming
gradient and forward activations, ``AddN`` at fan-in points). Op *counts*
therefore land near Table 1 without being padded to it; EXPERIMENTS.md
reports the per-model deviation.

Every op carries ``attrs['timing_key']`` — its model-local name — so
per-op timing oracles and priorities fitted on a reference worker transfer
unchanged to renamed replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..graph import Graph, GraphError, OpKind
from .ir import ModelIR, Node, ParamTensor

CANONICAL_INFERENCE = "canonical_inference"
CANONICAL_TRAINING = "canonical_training"
WORKER_INFERENCE = "worker_inference"
WORKER_TRAINING = "worker_training"
EMIT_MODES = (
    CANONICAL_INFERENCE,
    CANONICAL_TRAINING,
    WORKER_INFERENCE,
    WORKER_TRAINING,
)


@dataclass
class EmitResult:
    """An emitted graph plus the index structures downstream stages need."""

    graph: Graph
    #: forward IR node name -> op name carrying that node's output.
    output_ops: dict[str, str]
    #: parameter name -> recv op name (worker modes only).
    recv_ops: dict[str, str] = field(default_factory=dict)
    #: parameter name -> send op name (worker training only).
    send_ops: dict[str, str] = field(default_factory=dict)
    #: parameter name -> op producing its gradient (training modes).
    grad_ops: dict[str, str] = field(default_factory=dict)


class _Emitter:
    def __init__(self, ir: ModelIR, mode: str,
                 placement: Optional[Mapping[str, str]]) -> None:
        if mode not in EMIT_MODES:
            raise ValueError(f"unknown emit mode {mode!r}; one of {EMIT_MODES}")
        self.ir = ir
        self.mode = mode
        self.worker_mode = mode.startswith("worker")
        self.training = mode.endswith("training")
        self.placement = placement or {}
        self.g = Graph(f"{ir.name}/{mode}")
        self.result = EmitResult(graph=self.g, output_ops={})
        #: parameter name -> read-op name consumed by kernels.
        self.param_read: dict[str, str] = {}
        #: parameter name -> variable op name (canonical only).
        self.param_var: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _aux(self, name: str, inputs=()) -> str:
        return self.g.add_op(name, OpKind.AUX, inputs, timing_key=name).name

    def _compute(self, name: str, flops: float, inputs=(), **attrs) -> str:
        return self.g.add_op(name, OpKind.COMPUTE, inputs, cost=flops,
                             timing_key=name, **attrs).name

    def _gcompute(self, name: str, flops: float, inputs=()) -> str:
        """Gradient compute op plus the two shape/BroadcastGradientArgs-style
        constants ``tf.gradients`` attaches to nearly every grad op."""
        c1 = self._aux(f"{name}/shape")
        c2 = self._aux(f"{name}/grad_args")
        return self._compute(name, flops, list(inputs) + [c1, c2])

    def _ps_of(self, param: ParamTensor) -> str:
        ps = self.placement.get(param.name)
        if ps is None:
            raise GraphError(
                f"worker emission requires a PS placement for every parameter; "
                f"missing {param.name!r}"
            )
        return ps

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def emit_param(self, param: ParamTensor) -> str:
        """Emit the access path of one parameter; returns the read op name."""
        p = param.name
        if self.worker_mode:
            recv = self.g.add_op(
                f"{p}/recv", OpKind.RECV, (), cost=param.nbytes, param=p,
                ps=self._ps_of(param), timing_key=f"{p}/recv",
                shape=param.shape,
            ).name
            read = self._aux(f"{p}/read", [recv])
            self.result.recv_ops[p] = recv
        else:
            # Canonical variable subgraph: initializer chain + variable +
            # assign + read, as tf.Variable construction produces.
            shape = self._aux(f"{p}/Initializer/shape")
            rand = self._aux(f"{p}/Initializer/random_uniform", [shape])
            scale = self._aux(f"{p}/Initializer/scale")
            init = self._aux(f"{p}/Initializer/mul", [rand, scale])
            var = self._aux(p)
            self._aux(f"{p}/Assign", [var, init])
            read = self._aux(f"{p}/read", [var])
            self.param_var[p] = var
        self.param_read[p] = read
        return read

    # ------------------------------------------------------------------
    # Forward kernels
    # ------------------------------------------------------------------
    def emit_forward(self, node: Node) -> None:
        """Emit the kernel (+aux) ops for one IR node; record its output op."""
        n = node.name
        ins = [self.result.output_ops[i] for i in node.inputs]
        reads = [self.param_read[p.name] for p in node.params]
        op = node.op
        if op == "input":
            out = self._aux(n)
        elif op in ("conv", "depthwise_conv"):
            kernel = "Conv2D" if op == "conv" else "DepthwiseConv2dNative"
            c1 = self._aux(f"{n}/{kernel}/dims")
            c2 = self._aux(f"{n}/{kernel}/paddings")
            out = self._compute(f"{n}/{kernel}", node.flops, ins + reads + [c1, c2])
        elif op == "biasadd":
            out = self._compute(f"{n}", node.flops, ins + reads)
        elif op == "bn":
            c = self._aux(f"{n}/Const")
            out = self._compute(f"{n}/FusedBatchNorm", node.flops, ins + reads + [c])
        elif op == "relu":
            out = self._compute(n, node.flops, ins)
        elif op in ("maxpool", "avgpool"):
            kernel = "MaxPool" if op == "maxpool" else "AvgPool"
            c = self._aux(f"{n}/{kernel}/ksize")
            out = self._compute(f"{n}/{kernel}", node.flops, ins + [c])
        elif op == "flatten":
            c = self._aux(f"{n}/shape")
            out = self._aux(f"{n}/Reshape")
            self.g.add_edge(ins[0], out)
            self.g.add_edge(c, out)
        elif op == "fc":
            out = self._compute(f"{n}/MatMul", node.flops, ins + reads)
        elif op == "concat":
            c = self._aux(f"{n}/axis")
            out = self._compute(n, node.flops, ins + [c])
        elif op == "add":
            out = self._compute(n, node.flops, ins)
        elif op == "softmax":
            out = self._compute(n, node.flops, ins)
        elif op == "dropout":
            keep = self._aux(f"{n}/keep_prob")
            rand = self._aux(f"{n}/random_uniform")
            out = self._compute(f"{n}/mul", node.flops, ins + [keep, rand])
        elif op == "lrn":
            out = self._compute(f"{n}/LRN", node.flops, ins)
        else:  # pragma: no cover - IR validates op names upstream
            raise GraphError(f"cannot lower IR op {op!r}")
        self.result.output_ops[n] = out

    # ------------------------------------------------------------------
    # Loss and backward pass
    # ------------------------------------------------------------------
    def _loss_heads(self) -> list[str]:
        """IR nodes to attach losses to: final softmax plus any aux head."""
        nodes = list(self.ir)
        heads = [nodes[-1].name]
        aux = nodes[-1].attrs.get("aux_head")
        if aux:
            heads.append(aux)
        return heads

    def emit_training_tail(self) -> None:
        """Loss subgraph, backward mirror, and per-parameter grad exits."""
        batch = self.ir.batch_size
        heads = self._loss_heads()
        labels = self._aux("labels")
        loss_terms: list[str] = []
        head_grads: dict[str, str] = {}
        for head in heads:
            classes = self.ir.node(head).out_elements
            xent = self._gcompute(
                f"losses/{head}/xent", 8.0 * classes * batch,
                [self.result.output_ops[head], labels],
            )
            mean = self._compute(f"losses/{head}/mean", float(classes * batch), [xent])
            loss_terms.append(mean)
        if len(loss_terms) > 1:
            loss = self._compute("losses/total", float(len(loss_terms)), loss_terms)
        else:
            loss = loss_terms[0]
        seed = self._aux("gradients/grad_ys", [loss])
        for head in heads:
            classes = self.ir.node(head).out_elements
            head_grads[head] = self._gcompute(
                f"gradients/losses/{head}/xent_grad", 5.0 * classes * batch,
                [seed, self.result.output_ops[head]],
            )

        consumers = self.ir.consumers()
        #: forward node -> list of grad op names flowing into its output.
        incoming: dict[str, list[str]] = {name: [] for name in self.ir.nodes}
        for head, gop in head_grads.items():
            incoming[head].append(gop)

        for node in reversed(list(self.ir)):
            grads = incoming[node.name]
            if not grads:
                continue  # dead branch (no path to the loss)
            if len(grads) == 1:
                gin = grads[0]
            else:
                gin = self._gcompute(
                    f"gradients/{node.name}/AddN",
                    float(node.out_elements * self.ir.batch_size * (len(grads) - 1)),
                    grads,
                )
            for inp, gout in self._emit_node_backward(node, gin).items():
                incoming[inp].append(gout)

        self._emit_param_exits()

    def _emit_node_backward(self, node: Node, gin: str) -> dict[str, str]:
        """Emit grad ops for one node; returns input name -> grad op.

        Also records parameter-gradient producers in ``result.grad_ops``.
        """
        n, op = node.name, node.op
        outs: dict[str, str] = {}
        ins = [self.result.output_ops[i] for i in node.inputs]
        B = self.ir.batch_size
        elems = float(node.out_elements * B)
        if op == "input":
            return outs
        if op in ("conv", "depthwise_conv"):
            weights = node.params[0]
            gi = self._gcompute(f"gradients/{n}/BackpropInput", node.flops,
                                [gin, self.param_read[weights.name]])
            gw = self._gcompute(f"gradients/{n}/BackpropFilter", node.flops,
                                [gin, ins[0]])
            outs[node.inputs[0]] = gi
            self.result.grad_ops[weights.name] = gw
        elif op == "biasadd":
            bias = node.params[0]
            gb = self._gcompute(f"gradients/{n}/BiasAddGrad", elems, [gin])
            outs[node.inputs[0]] = gin  # additive pass-through
            self.result.grad_ops[bias.name] = gb
        elif op == "bn":
            beta = node.params[0]
            gbn = self._gcompute(f"gradients/{n}/FusedBatchNormGrad", 2.0 * elems,
                                 [gin, ins[0]])
            outs[node.inputs[0]] = gbn
            self.result.grad_ops[beta.name] = gbn
        elif op == "relu":
            outs[node.inputs[0]] = self._gcompute(
                f"gradients/{n}/ReluGrad", elems,
                [gin, self.result.output_ops[n]])
        elif op in ("maxpool", "avgpool"):
            kernel = "MaxPool" if op == "maxpool" else "AvgPool"
            outs[node.inputs[0]] = self._gcompute(
                f"gradients/{n}/{kernel}Grad", node.flops,
                [gin, self.result.output_ops[n], ins[0]])
        elif op == "flatten":
            c = self._aux(f"gradients/{n}/orig_shape")
            g = self._aux(f"gradients/{n}/Reshape")
            self.g.add_edge(gin, g)
            self.g.add_edge(c, g)
            outs[node.inputs[0]] = g
        elif op == "fc":
            weights = node.params[0]
            gi = self._gcompute(f"gradients/{n}/MatMul_grad_input", node.flops,
                                [gin, self.param_read[weights.name]])
            gw = self._gcompute(f"gradients/{n}/MatMul_grad_weights", node.flops,
                                [gin, ins[0]])
            outs[node.inputs[0]] = gi
            self.result.grad_ops[weights.name] = gw
        elif op == "concat":
            offsets = self._aux(f"gradients/{n}/offsets")
            for i, inp in enumerate(node.inputs):
                sz = float(self.ir.node(inp).out_elements * B)
                outs[inp] = self._gcompute(f"gradients/{n}/Slice_{i}", sz,
                                           [gin, offsets])
        elif op == "add":
            for inp in node.inputs:
                outs[inp] = gin  # gradient of + is identity to both sides
        elif op == "softmax":
            # Loss attaches directly at the head; a softmax consumed mid-graph
            # (never the case in the zoo) would need its own grad.
            outs[node.inputs[0]] = gin
        elif op == "dropout":
            outs[node.inputs[0]] = self._gcompute(
                f"gradients/{n}/mul_grad", elems,
                [gin, self.result.output_ops[n]])
        elif op == "lrn":
            outs[node.inputs[0]] = self._gcompute(
                f"gradients/{n}/LRNGrad", 4.0 * elems,
                [gin, self.result.output_ops[n], ins[0]])
        else:  # pragma: no cover
            raise GraphError(f"no backward rule for IR op {op!r}")
        return outs

    def _emit_param_exits(self) -> None:
        """Per-parameter gradient exits: sends (worker) or SGD apply (canonical)."""
        missing = [p.name for p in self.ir.params if p.name not in self.result.grad_ops]
        if missing:
            raise GraphError(
                f"{len(missing)} parameters received no gradient, e.g. {missing[:3]}"
            )
        if self.worker_mode:
            for p in self.ir.params:
                gop = self.result.grad_ops[p.name]
                send = self.g.add_op(
                    f"{p.name}/grad_send", OpKind.SEND, [gop], cost=p.nbytes,
                    param=p.name, ps=self._ps_of(p),
                    timing_key=f"{p.name}/grad_send", shape=p.shape,
                ).name
                self.result.send_ops[p.name] = send
        else:
            lr = self._aux("optimizer/learning_rate")
            for p in self.ir.params:
                gop = self.result.grad_ops[p.name]
                self._compute(
                    f"optimizer/{p.name}/ApplyGradientDescent",
                    2.0 * p.n_elements,
                    [gop, self.param_var[p.name], lr],
                )
            step = self._aux("optimizer/global_step")
            self._aux("optimizer/global_step/incr", [step])

    # ------------------------------------------------------------------
    def run(self) -> EmitResult:
        for param in self.ir.params:
            self.emit_param(param)
        for node in self.ir:
            self.emit_forward(node)
        if self.training:
            self.emit_training_tail()
        return self.result


def emit_graph(
    ir: ModelIR,
    mode: str = WORKER_INFERENCE,
    *,
    placement: Optional[Mapping[str, str]] = None,
) -> EmitResult:
    """Lower ``ir`` in the given mode.

    ``placement`` (parameter name -> PS device name) is required in worker
    modes — it determines the ``ps`` attribute of recv/send ops, and thus
    which channel each transfer occupies.
    """
    return _Emitter(ir, mode, placement).run()


def op_counts(ir: ModelIR) -> tuple[int, int]:
    """(inference, training) canonical op counts — our Table 1 columns."""
    inf = len(emit_graph(ir, CANONICAL_INFERENCE).graph)
    tr = len(emit_graph(ir, CANONICAL_TRAINING).graph)
    return inf, tr
