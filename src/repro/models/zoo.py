"""Model registry and Table 1 accounting.

``MODEL_BUILDERS`` maps the paper's model names to IR builders;
``PAPER_TABLE_1`` holds the published characteristics used as reproduction
targets (tests assert exact parameter-tensor counts and near-exact sizes,
and EXPERIMENTS.md reports measured-vs-paper op counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .alexnet import alexnet_v2
from .inception import inception_v1, inception_v2, inception_v3
from .ir import ModelIR
from .resnet import (
    resnet_v1_50,
    resnet_v1_101,
    resnet_v2_50,
    resnet_v2_101,
    resnet_v2_152,
)
from .vgg import vgg_16, vgg_19


@dataclass(frozen=True)
class PaperModelRow:
    """One row of the paper's Table 1."""

    name: str
    n_params: int
    param_mib: float
    ops_inference: int
    ops_training: int
    batch_size: int


#: Published Table 1, in the paper's row order.
PAPER_TABLE_1: dict[str, PaperModelRow] = {
    row.name: row
    for row in (
        PaperModelRow("AlexNet v2", 16, 191.89, 235, 483, 512),
        PaperModelRow("Inception v1", 116, 25.24, 1114, 2246, 128),
        PaperModelRow("Inception v2", 141, 42.64, 1369, 2706, 128),
        PaperModelRow("Inception v3", 196, 103.54, 1904, 3672, 32),
        PaperModelRow("ResNet-50 v1", 108, 97.39, 1114, 2096, 32),
        PaperModelRow("ResNet-101 v1", 210, 169.74, 2083, 3898, 64),
        PaperModelRow("ResNet-50 v2", 125, 97.45, 1423, 2813, 64),
        PaperModelRow("ResNet-101 v2", 244, 169.86, 2749, 5380, 32),
        PaperModelRow("VGG-16", 32, 527.79, 388, 758, 32),
        PaperModelRow("VGG-19", 38, 548.05, 442, 857, 32),
    )
}

MODEL_BUILDERS: dict[str, Callable[[int], ModelIR]] = {
    "AlexNet v2": alexnet_v2,
    "Inception v1": inception_v1,
    "Inception v2": inception_v2,
    "Inception v3": inception_v3,
    "ResNet-50 v1": resnet_v1_50,
    "ResNet-101 v1": resnet_v1_101,
    "ResNet-50 v2": resnet_v2_50,
    "ResNet-101 v2": resnet_v2_101,
    "VGG-16": vgg_16,
    "VGG-19": vgg_19,
}

MODEL_NAMES: tuple[str, ...] = tuple(MODEL_BUILDERS)

#: Models referenced by the paper outside Table 1 (e.g. §2.2's motivating
#: ResNet-v2-152). Buildable via build_model but excluded from Table 1
#: parity checks and the evaluation sweeps.
EXTRA_MODEL_BUILDERS: dict[str, Callable[[int], ModelIR]] = {
    "ResNet-152 v2": resnet_v2_152,
}

#: The subset evaluated in envC (Fig. 13).
ENVC_MODEL_NAMES: tuple[str, ...] = ("Inception v2", "VGG-16", "AlexNet v2")


def standard_batch_size(name: str) -> int:
    """The paper's per-model standard batch size (Table 1 last column)."""
    return PAPER_TABLE_1[name].batch_size


def build_model(name: str, batch_size: Optional[int] = None,
                batch_factor: float = 1.0) -> ModelIR:
    """Build a model IR by its Table 1 name (or an extra model's name).

    ``batch_size`` defaults to the paper's standard size (32 for extras);
    ``batch_factor`` applies the x0.5 / x1 / x2 scaling of the Fig. 10
    sweep (result is rounded to at least 1).
    """
    builder = MODEL_BUILDERS.get(name) or EXTRA_MODEL_BUILDERS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown model {name!r}; available: "
            f"{MODEL_NAMES + tuple(EXTRA_MODEL_BUILDERS)}"
        )
    if batch_size is None:
        batch_size = (
            standard_batch_size(name) if name in PAPER_TABLE_1 else 32
        )
    batch_size = max(1, round(batch_size * batch_factor))
    return builder(batch_size)
