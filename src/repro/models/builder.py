"""Shape-tracking builder for :class:`~repro.models.ir.ModelIR`.

Provides the layer vocabulary needed by the ten Table-1 architectures:
convolutions (plain, depthwise-separable, asymmetric kxl kernels), batch
norm, activations, pooling, fully connected, concat (Inception), residual
add (ResNet), LRN (AlexNet-era), dropout and the softmax/loss heads.

All FLOP counts use the multiply+add = 2 FLOPs convention and are scaled
by the model's batch size at build time.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .ir import ModelIR, Node, ParamTensor, conv_out_hw


class NetBuilder:
    """Accumulates micro-layers while inferring output shapes.

    Every method returns the name of the node whose output carries the
    layer's result, so calls chain naturally::

        b = NetBuilder("vgg_16", batch_size=32, input_hw=(224, 224))
        x = b.conv("conv1/conv1_1", 3, 64, bias=True, bn=False)
        x = b.conv("conv1/conv1_2", 3, 64, bias=True, bn=False)
        x = b.max_pool("pool1")
    """

    def __init__(
        self,
        name: str,
        batch_size: int,
        input_hw: tuple[int, int] = (224, 224),
        input_channels: int = 3,
    ) -> None:
        self.ir = ModelIR(name, batch_size)
        self._last = "input"
        self.ir.add(
            Node(
                name="input",
                op="input",
                inputs=[],
                out_shape=(input_hw[0], input_hw[1], input_channels),
            )
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _shape(self, node: str) -> tuple[int, ...]:
        return self.ir.node(node).out_shape

    def _add(self, node: Node) -> str:
        self.ir.add(node)
        self._last = node.name
        return node.name

    def _resolve(self, input: Optional[str]) -> str:
        return self._last if input is None else input

    @property
    def last(self) -> str:
        return self._last

    @property
    def batch(self) -> int:
        return self.ir.batch_size

    # ------------------------------------------------------------------
    # Convolutions
    # ------------------------------------------------------------------
    def conv(
        self,
        name: str,
        kernel,
        out_ch: int,
        stride: int = 1,
        padding: str = "SAME",
        *,
        bias: bool = False,
        bn: bool = True,
        relu: bool = True,
        input: Optional[str] = None,
    ) -> str:
        """2-D convolution with optional bias / batch-norm / ReLU tail.

        ``kernel`` is an int or ``(kh, kw)`` (asymmetric 1x7/7x1 factorized
        kernels of Inception v3). Parameter convention follows TF-slim:
        ``bn=True`` adds a beta tensor and suppresses the conv bias.
        """
        x = self._resolve(input)
        h, w, cin = self._shape(x)
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        oh, ow = conv_out_hw(h, w, kh, kw, stride, padding)
        weights = ParamTensor(f"{name}/weights", (kh, kw, cin, out_ch))
        flops = 2.0 * kh * kw * cin * out_ch * oh * ow * self.batch
        out = self._add(
            Node(
                name=name,
                op="conv",
                inputs=[x],
                out_shape=(oh, ow, out_ch),
                flops=flops,
                params=[weights],
                attrs={"kernel": (kh, kw), "stride": stride, "padding": padding},
            )
        )
        return self._tail(name, out, out_ch, bias=bias, bn=bn, relu=relu)

    def depthwise_conv(
        self,
        name: str,
        kernel: int,
        depth_multiplier: int = 1,
        stride: int = 1,
        padding: str = "SAME",
        *,
        bn: bool = True,
        relu: bool = True,
        input: Optional[str] = None,
    ) -> str:
        """Depthwise convolution (Inception v2's separable stem)."""
        x = self._resolve(input)
        h, w, cin = self._shape(x)
        oh, ow = conv_out_hw(h, w, kernel, kernel, stride, padding)
        out_ch = cin * depth_multiplier
        weights = ParamTensor(f"{name}/depthwise_weights", (kernel, kernel, cin, depth_multiplier))
        flops = 2.0 * kernel * kernel * cin * depth_multiplier * oh * ow * self.batch
        out = self._add(
            Node(
                name=name,
                op="depthwise_conv",
                inputs=[x],
                out_shape=(oh, ow, out_ch),
                flops=flops,
                params=[weights],
                attrs={"kernel": (kernel, kernel), "stride": stride},
            )
        )
        return self._tail(name, out, out_ch, bias=False, bn=bn, relu=relu)

    def _tail(self, base: str, x: str, channels: int, *, bias: bool, bn: bool, relu: bool) -> str:
        """Append the bias/BN/ReLU micro-layers following a conv or fc."""
        shape = self._shape(x)
        elems = 1
        for d in shape:
            elems *= d
        if bias:
            b = ParamTensor(f"{base}/biases", (channels,))
            x = self._add(
                Node(
                    name=f"{base}/BiasAdd",
                    op="biasadd",
                    inputs=[x],
                    out_shape=shape,
                    flops=float(elems * self.batch),
                    params=[b],
                )
            )
        if bn:
            beta = ParamTensor(f"{base}/BatchNorm/beta", (channels,))
            x = self._add(
                Node(
                    name=f"{base}/BatchNorm",
                    op="bn",
                    inputs=[x],
                    out_shape=shape,
                    flops=float(2 * elems * self.batch),
                    params=[beta],
                )
            )
        if relu:
            x = self._add(
                Node(
                    name=f"{base}/Relu",
                    op="relu",
                    inputs=[x],
                    out_shape=shape,
                    flops=float(elems * self.batch),
                )
            )
        return x

    def batch_norm(self, name: str, input: Optional[str] = None, *, relu: bool = False) -> str:
        """Standalone BN (ResNet-v2 pre-activation / post-norm). Carries a
        beta parameter, optionally followed by ReLU."""
        x = self._resolve(input)
        shape = self._shape(x)
        channels = shape[-1]
        elems = 1
        for d in shape:
            elems *= d
        beta = ParamTensor(f"{name}/beta", (channels,))
        out = self._add(
            Node(
                name=name,
                op="bn",
                inputs=[x],
                out_shape=shape,
                flops=float(2 * elems * self.batch),
                params=[beta],
            )
        )
        if relu:
            out = self._add(
                Node(
                    name=f"{name}/Relu",
                    op="relu",
                    inputs=[out],
                    out_shape=shape,
                    flops=float(elems * self.batch),
                )
            )
        return out

    def relu(self, name: str, input: Optional[str] = None) -> str:
        x = self._resolve(input)
        shape = self._shape(x)
        elems = 1
        for d in shape:
            elems *= d
        return self._add(
            Node(name=name, op="relu", inputs=[x], out_shape=shape,
                 flops=float(elems * self.batch))
        )

    # ------------------------------------------------------------------
    # Pooling and shape ops
    # ------------------------------------------------------------------
    def _pool(self, name: str, op: str, kernel: int, stride: int, padding: str,
              input: Optional[str]) -> str:
        x = self._resolve(input)
        h, w, c = self._shape(x)
        oh, ow = conv_out_hw(h, w, kernel, kernel, stride, padding)
        flops = float(kernel * kernel * oh * ow * c * self.batch)
        return self._add(
            Node(name=name, op=op, inputs=[x], out_shape=(oh, ow, c), flops=flops,
                 attrs={"kernel": kernel, "stride": stride})
        )

    def max_pool(self, name: str, kernel: int = 2, stride: int = 2,
                 padding: str = "VALID", input: Optional[str] = None) -> str:
        return self._pool(name, "maxpool", kernel, stride, padding, input)

    def avg_pool(self, name: str, kernel: int = 2, stride: int = 2,
                 padding: str = "VALID", input: Optional[str] = None) -> str:
        return self._pool(name, "avgpool", kernel, stride, padding, input)

    def global_avg_pool(self, name: str, input: Optional[str] = None) -> str:
        """Spatial mean reducing (H, W, C) -> (C,)."""
        x = self._resolve(input)
        h, w, c = self._shape(x)
        return self._add(
            Node(name=name, op="avgpool", inputs=[x], out_shape=(c,),
                 flops=float(h * w * c * self.batch), attrs={"global": True})
        )

    def flatten(self, name: str, input: Optional[str] = None) -> str:
        x = self._resolve(input)
        shape = self._shape(x)
        elems = 1
        for d in shape:
            elems *= d
        return self._add(
            Node(name=name, op="flatten", inputs=[x], out_shape=(elems,), flops=0.0)
        )

    # ------------------------------------------------------------------
    # Dense layers and heads
    # ------------------------------------------------------------------
    def fc(self, name: str, out_dim: int, *, bias: bool = True,
           relu: bool = False, input: Optional[str] = None) -> str:
        """Fully connected layer; flattens spatial input automatically."""
        x = self._resolve(input)
        shape = self._shape(x)
        if len(shape) != 1:
            x = self.flatten(f"{name}/flatten", input=x)
            shape = self._shape(x)
        in_dim = shape[0]
        weights = ParamTensor(f"{name}/weights", (in_dim, out_dim))
        out = self._add(
            Node(
                name=name,
                op="fc",
                inputs=[x],
                out_shape=(out_dim,),
                flops=2.0 * in_dim * out_dim * self.batch,
                params=[weights],
            )
        )
        return self._tail(name, out, out_dim, bias=bias, bn=False, relu=relu)

    def softmax(self, name: str, input: Optional[str] = None) -> str:
        x = self._resolve(input)
        (c,) = self._shape(x)
        return self._add(
            Node(name=name, op="softmax", inputs=[x], out_shape=(c,),
                 flops=float(5 * c * self.batch))
        )

    def dropout(self, name: str, input: Optional[str] = None) -> str:
        x = self._resolve(input)
        shape = self._shape(x)
        elems = 1
        for d in shape:
            elems *= d
        return self._add(
            Node(name=name, op="dropout", inputs=[x], out_shape=shape,
                 flops=float(2 * elems * self.batch))
        )

    def lrn(self, name: str, input: Optional[str] = None) -> str:
        """Local response normalization (AlexNet heritage)."""
        x = self._resolve(input)
        shape = self._shape(x)
        elems = 1
        for d in shape:
            elems *= d
        return self._add(
            Node(name=name, op="lrn", inputs=[x], out_shape=shape,
                 flops=float(8 * elems * self.batch))
        )

    # ------------------------------------------------------------------
    # Multi-input combinators
    # ------------------------------------------------------------------
    def concat(self, name: str, inputs: Sequence[str]) -> str:
        """Channel concatenation (Inception branch merge)."""
        shapes = [self._shape(i) for i in inputs]
        h, w = shapes[0][0], shapes[0][1]
        for s in shapes:
            if (s[0], s[1]) != (h, w):
                raise ValueError(
                    f"concat {name!r}: mismatched spatial dims {shapes}"
                )
        c = sum(s[2] for s in shapes)
        elems = h * w * c
        return self._add(
            Node(name=name, op="concat", inputs=list(inputs), out_shape=(h, w, c),
                 flops=float(elems * self.batch))
        )

    def add(self, name: str, a: str, b: str, *, relu: bool = False) -> str:
        """Elementwise residual addition (ResNet shortcut merge)."""
        sa, sb = self._shape(a), self._shape(b)
        if sa != sb:
            raise ValueError(f"add {name!r}: shape mismatch {sa} vs {sb}")
        elems = 1
        for d in sa:
            elems *= d
        out = self._add(
            Node(name=name, op="add", inputs=[a, b], out_shape=sa,
                 flops=float(elems * self.batch))
        )
        if relu:
            out = self.relu(f"{name}/Relu", input=out)
        return out

    # ------------------------------------------------------------------
    def build(self, final: Optional[str] = None) -> ModelIR:
        """Validate and return the IR. ``final`` asserts which node ends
        the network (defaults to the last added)."""
        if final is not None and final != self._last:
            raise ValueError(
                f"expected final node {final!r} but last added was {self._last!r}"
            )
        self.ir.validate()
        return self.ir
