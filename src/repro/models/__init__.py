"""Model zoo: the ten DNNs of the paper's Table 1, as layer IR plus
op-graph emission (canonical and Model-Replica worker forms)."""

from .builder import NetBuilder
from .emit import (
    CANONICAL_INFERENCE,
    CANONICAL_TRAINING,
    EMIT_MODES,
    WORKER_INFERENCE,
    WORKER_TRAINING,
    EmitResult,
    emit_graph,
    op_counts,
)
from .ir import FLOAT_BYTES, ModelIR, Node, ParamTensor, conv_out_hw
from .zoo import (
    ENVC_MODEL_NAMES,
    EXTRA_MODEL_BUILDERS,
    MODEL_BUILDERS,
    MODEL_NAMES,
    PAPER_TABLE_1,
    PaperModelRow,
    build_model,
    standard_batch_size,
)

__all__ = [
    "NetBuilder",
    "CANONICAL_INFERENCE",
    "CANONICAL_TRAINING",
    "EMIT_MODES",
    "WORKER_INFERENCE",
    "WORKER_TRAINING",
    "EmitResult",
    "emit_graph",
    "op_counts",
    "FLOAT_BYTES",
    "ModelIR",
    "Node",
    "ParamTensor",
    "conv_out_hw",
    "ENVC_MODEL_NAMES",
    "EXTRA_MODEL_BUILDERS",
    "MODEL_BUILDERS",
    "MODEL_NAMES",
    "PAPER_TABLE_1",
    "PaperModelRow",
    "build_model",
    "standard_batch_size",
]
