"""Layer-level intermediate representation of DNN models.

The model zoo describes each of the paper's ten networks (Table 1) as an
ordered set of micro-layer :class:`Node` objects (conv, bn, relu, pool,
fc, concat, add, ...) with explicit parameter tensors and FLOP counts.
Graph emission (:mod:`repro.models.emit`) lowers this IR to the op-level
:class:`~repro.graph.dag.Graph` consumed by the scheduler and simulator.

The IR deliberately mirrors TF-slim's variable conventions so that the
parameter-tensor counts and byte sizes of Table 1 are reproduced exactly:
conv layers carry a weight tensor and (when batch-normalized) a BN ``beta``
— no bias, no BN ``gamma`` (slim's ``scale=False`` default); fully
connected layers carry weights and biases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

FLOAT_BYTES = 4  # all evaluated models use fp32 parameters


@dataclass(frozen=True)
class ParamTensor:
    """A trainable tensor: one unit of PS placement and network transfer."""

    name: str
    shape: tuple[int, ...]

    @property
    def n_elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        return self.n_elements * FLOAT_BYTES


@dataclass
class Node:
    """One micro-layer: lowers to exactly one kernel op plus fixed aux ops.

    ``inputs`` reference other node names; ``params`` are the tensors this
    node consumes; ``flops`` is the forward cost; ``out_shape`` is
    ``(H, W, C)`` for spatial tensors or ``(C,)`` after flattening —
    batch excluded (the builder scales FLOPs by batch already).
    """

    name: str
    op: str
    inputs: list[str]
    out_shape: tuple[int, ...]
    flops: float = 0.0
    params: list[ParamTensor] = field(default_factory=list)
    attrs: dict = field(default_factory=dict)

    @property
    def out_elements(self) -> int:
        n = 1
        for d in self.out_shape:
            n *= d
        return n


class ModelIR:
    """An ordered, validated collection of :class:`Node` micro-layers."""

    def __init__(self, name: str, batch_size: int) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.name = name
        self.batch_size = batch_size
        self.nodes: dict[str, Node] = {}

    def add(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node {node.name!r} in model {self.name!r}")
        for inp in node.inputs:
            if inp not in self.nodes:
                raise ValueError(
                    f"node {node.name!r} references unknown input {inp!r}"
                )
        self.nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def __iter__(self):
        return iter(self.nodes.values())

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Table 1 accounting
    # ------------------------------------------------------------------
    @property
    def params(self) -> list[ParamTensor]:
        """All parameter tensors in definition order (the transfer units)."""
        out: list[ParamTensor] = []
        for node in self:
            out.extend(node.params)
        return out

    @property
    def n_param_tensors(self) -> int:
        """Table 1's ``#Par`` column."""
        return len(self.params)

    @property
    def total_param_bytes(self) -> int:
        return sum(p.nbytes for p in self.params)

    @property
    def total_param_mib(self) -> float:
        """Table 1's ``Total Par Size (MiB)`` column."""
        return self.total_param_bytes / 2**20

    @property
    def n_param_elements(self) -> int:
        return sum(p.n_elements for p in self.params)

    def forward_flops(self) -> float:
        """Total forward FLOPs for one batch."""
        return sum(n.flops for n in self)

    def consumers(self) -> dict[str, list[str]]:
        """Reverse adjacency: node name -> names of nodes consuming it."""
        out: dict[str, list[str]] = {name: [] for name in self.nodes}
        for node in self:
            for inp in node.inputs:
                out[inp].append(node.name)
        return out

    def structural_fingerprint(self) -> str:
        """Content hash of everything graph emission consumes: node order,
        ops, wiring, shapes, FLOPs and the full parameter census.

        Two IRs with equal fingerprints emit identical graphs (up to
        batch size, hashed in), so the fingerprint is a sound memo key
        for anything derived from the emitted graph — e.g. the ordering
        wizard's schedules (:func:`repro.backends.prepare_comm_schedule`).
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(f"{self.name}|{self.batch_size}".encode())
        for node in self:
            digest.update(
                f"|{node.name}|{node.op}|{','.join(node.inputs)}"
                f"|{node.out_shape}|{node.flops}|{sorted(node.attrs.items())!r}"
                .encode()
            )
            for p in node.params:
                digest.update(f"|{p.name}|{p.shape}".encode())
        return digest.hexdigest()

    def validate(self) -> None:
        """Check IR invariants: unique params, positive shapes, known ops."""
        seen: set[str] = set()
        for node in self:
            if any(d <= 0 for d in node.out_shape):
                raise ValueError(f"node {node.name!r} has bad shape {node.out_shape}")
            if node.flops < 0:
                raise ValueError(f"node {node.name!r} has negative flops")
            for p in node.params:
                if p.name in seen:
                    raise ValueError(f"parameter {p.name!r} used by two nodes")
                seen.add(p.name)


def conv_out_hw(h: int, w: int, kh: int, kw: int, stride: int, padding: str) -> tuple[int, int]:
    """TensorFlow SAME/VALID output-size arithmetic."""
    if padding == "SAME":
        return math.ceil(h / stride), math.ceil(w / stride)
    if padding == "VALID":
        if h < kh or w < kw:
            raise ValueError(f"VALID padding with input {h}x{w} smaller than kernel {kh}x{kw}")
        return (h - kh) // stride + 1, (w - kw) // stride + 1
    raise ValueError(f"unknown padding {padding!r}")
