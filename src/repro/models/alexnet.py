"""AlexNet v2 (Krizhevsky 2014, "one weird trick"), TF-slim variant.

16 parameter tensors (8 weight/bias pairs), 191.9 MiB — Table 1 row 1.
Slim's ``alexnet_v2`` implements the fully connected head as convolutions
(fc6 as a 5x5 VALID conv, fc7/fc8 as 1x1 convs), which we follow.
"""

from __future__ import annotations

from .builder import NetBuilder
from .ir import ModelIR


def alexnet_v2(batch_size: int = 512) -> ModelIR:
    b = NetBuilder("alexnet_v2", batch_size, input_hw=(224, 224))
    b.conv("conv1", 11, 64, stride=4, padding="VALID", bias=True, bn=False)
    b.max_pool("pool1", 3, 2)
    b.conv("conv2", 5, 192, bias=True, bn=False)
    b.max_pool("pool2", 3, 2)
    b.conv("conv3", 3, 384, bias=True, bn=False)
    b.conv("conv4", 3, 384, bias=True, bn=False)
    b.conv("conv5", 3, 256, bias=True, bn=False)
    b.max_pool("pool5", 3, 2)
    # fc layers implemented as convolutions, as in slim.
    b.conv("fc6", 5, 4096, padding="VALID", bias=True, bn=False)
    b.dropout("dropout6")
    b.conv("fc7", 1, 4096, bias=True, bn=False)
    b.dropout("dropout7")
    b.conv("fc8", 1, 1000, bias=True, bn=False, relu=False)
    b.flatten("logits")
    b.softmax("predictions")
    return b.build()
