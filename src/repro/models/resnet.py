"""ResNet-50/101, v1 (He 2015) and v2 pre-activation (He 2016).

Parameter-tensor accounting matches Table 1 via TF-slim conventions:

* v1: every conv carries a weight tensor and a BN beta (slim
  ``scale=False`` => no gamma, conv bias disabled); one logits fc with
  weight+bias. ResNet-50 v1: 1 root conv + 16 bottleneck units x 3 convs
  + 4 shortcut convs = 53 convs -> 106 tensors + 2 = **108** (Table 1).
* v2 additionally has a pre-activation BN per unit and a final post-norm
  BN: ResNet-50 v2 = 108 + 16 + 1 = **125**; ResNet-101 v2 = 210 + 33 + 1
  = **244** (Table 1).
"""

from __future__ import annotations

from .builder import NetBuilder
from .ir import ModelIR

#: (units per stage) for each depth.
_UNITS = {50: (3, 4, 6, 3), 101: (3, 4, 23, 3), 152: (3, 8, 36, 3)}
#: Bottleneck inner width per stage; output width is 4x this.
_DEPTHS = (64, 128, 256, 512)


def _bottleneck_v1(b: NetBuilder, scope: str, x: str, depth: int, stride: int,
                   project: bool) -> str:
    """v1 bottleneck: conv-BN-ReLU x2, conv-BN, shortcut, add, ReLU."""
    out_ch = depth * 4
    if project:
        shortcut = b.conv(f"{scope}/shortcut", 1, out_ch, stride=stride,
                          relu=False, input=x)
    else:
        shortcut = x
    y = b.conv(f"{scope}/conv1", 1, depth, input=x)
    y = b.conv(f"{scope}/conv2", 3, depth, stride=stride, input=y)
    y = b.conv(f"{scope}/conv3", 1, out_ch, relu=False, input=y)
    return b.add(f"{scope}/add", shortcut, y, relu=True)


def _bottleneck_v2(b: NetBuilder, scope: str, x: str, depth: int, stride: int,
                   project: bool) -> str:
    """v2 pre-activation bottleneck: BN-ReLU first, un-normalized residual add."""
    out_ch = depth * 4
    preact = b.batch_norm(f"{scope}/preact", input=x, relu=True)
    if project:
        shortcut = b.conv(f"{scope}/shortcut", 1, out_ch, stride=stride,
                          relu=False, input=preact)
    else:
        shortcut = x
    y = b.conv(f"{scope}/conv1", 1, depth, input=preact)
    y = b.conv(f"{scope}/conv2", 3, depth, stride=stride, input=y)
    y = b.conv(f"{scope}/conv3", 1, out_ch, relu=False, input=y)
    return b.add(f"{scope}/add", shortcut, y, relu=False)


def _resnet(depth: int, version: int, batch_size: int) -> ModelIR:
    units = _UNITS[depth]
    name = f"resnet_v{version}_{depth}"
    b = NetBuilder(name, batch_size, input_hw=(224, 224))
    # Root conv is batch-normalized in both versions (the v2 pre-activation
    # units re-normalize their inputs; the root keeps its own BN, which is
    # what Table 1's 125/244 tensor counts imply). v2 defers the root ReLU
    # to the first unit's pre-activation.
    x = b.conv("conv1", 7, 64, stride=2, relu=(version == 1))
    x = b.max_pool("pool1", 3, 2, padding="SAME")
    unit_fn = _bottleneck_v1 if version == 1 else _bottleneck_v2
    for stage, (n_units, inner) in enumerate(zip(units, _DEPTHS), start=1):
        for unit in range(1, n_units + 1):
            stride = 2 if (unit == 1 and stage > 1) else 1
            project = unit == 1
            x = unit_fn(b, f"block{stage}/unit_{unit}/bottleneck_v{version}",
                        x, inner, stride, project)
    if version == 2:
        x = b.batch_norm("postnorm", input=x, relu=True)
    b.global_avg_pool("pool5", input=x)
    b.fc("logits", 1000)
    b.softmax("predictions")
    return b.build()


def resnet_v1_50(batch_size: int = 32) -> ModelIR:
    return _resnet(50, 1, batch_size)


def resnet_v1_101(batch_size: int = 64) -> ModelIR:
    return _resnet(101, 1, batch_size)


def resnet_v2_50(batch_size: int = 64) -> ModelIR:
    return _resnet(50, 2, batch_size)


def resnet_v2_101(batch_size: int = 32) -> ModelIR:
    return _resnet(101, 2, batch_size)


def resnet_v2_152(batch_size: int = 32) -> ModelIR:
    """The §2.2 motivating example: '363 parameters with an aggregate size
    of 229.5 MB' and a ~4655-op training graph. Not part of Table 1's
    evaluation set; exposed for the motivation experiment."""
    return _resnet(152, 2, batch_size)
