"""Multi-job co-scheduling: several jobs' DAGs on one shared cluster.

TicTac schedules one job on a dedicated cluster; real clusters run many
jobs whose transfers contend for shared links (Wang et al.,
arXiv:2002.10105). This module lifts the single-job assumption without
touching the engine's semantics for single jobs:

* :class:`JobSpec` names one job — a model, a communication backend
  ('ps'/'allreduce'), a cluster shape, a scheduling algorithm and an
  arrival offset;
* :class:`JobMixSpec` is a *set* of jobs plus a placement policy
  (:mod:`repro.backends.placement`) mapping every job's logical devices
  onto shared hosts. It is a first-class backend spec: ``SimCell`` grids,
  :func:`repro.sim.runner.simulate_cluster`, the sweep cache and the
  shared-core publication all consume it through the backend registry.

**The union compile path.** :func:`build_jobmix_graph` builds each job's
cluster DAG through the (memoized) backend builders, then splices them
into one graph under per-job namespaces ``j0/``, ``j1/``, ...: op names,
devices, parameters, chunk names and link resources are all prefixed, so
the union is a concatenation — op ids of job *i* are the original ids
plus an offset, and the engine's channel numbering (keyed on logical
(src, dst) device pairs) reproduces each job's private channels exactly.
The placement's ``host_map`` is the only coupling between jobs: devices
sharing a host share NIC resources in the compiled core. A 1-job mix on
the ``dedicated`` placement is **byte-identical** to the plain single-job
path (pinned by ``tests/sim/test_jobmix_golden.py``).

**Priority namespaces.** :func:`prepare_jobmix_schedule` runs the
ordering wizard per job (memoized, per-job reference projections) and
composes the passes by prefixing every priority key. The §5.1 counter
groups are per (link, iteration) and links are per job, so the composed
rank arrays are re-normalized densely within each job's own groups —
rank arrays from independent wizard passes can never collide across
jobs. ``algorithm='mix'`` uses each job's own :attr:`JobSpec.algorithm`;
any other name applies one algorithm to every job.

Batch-size scaling (``batch_factor``) is not supported for mixes: every
job builds at its model's native batch size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..core.schedules import Schedule
from ..graph import Graph, Op, Resource, ResourceKind
from ..graph.dag import GraphError
from ..ps.cluster import Transfer

#: workload label reported for mixed-job results.
MIX_WORKLOAD = "mix"


def job_label(index: int) -> str:
    """The namespace label of job ``index`` (``j0``, ``j1``, ...)."""
    return f"j{index}"


@dataclass(frozen=True)
class JobSpec:
    """One job of a mix: model x backend x shape x algorithm x arrival."""

    model: str
    backend: str = "ps"
    n_workers: int = 2
    n_ps: int = 1
    algorithm: str = "baseline"
    #: arrival offset in seconds: the job's roots release at this time.
    arrival: float = 0.0
    workload: str = "training"
    sharding: str = "greedy"
    #: per-job fault plan (see :mod:`repro.faults`), written against the
    #: job's *own* device names — the engine scopes it into the job's
    #: ``j<i>/`` namespace at compile time.
    faults: object = None

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        # NaN slips through a plain `< 0` check and would poison the
        # compiled deferred-release table (event time comparisons against
        # NaN are all False); infinities would defer the job forever.
        if not math.isfinite(self.arrival) or self.arrival < 0:
            raise ValueError(
                f"arrival offset must be finite and >= 0, got {self.arrival!r}"
            )
        if self.faults is not None:
            from ..faults.plan import FaultPlan

            if not isinstance(self.faults, FaultPlan):
                raise ValueError(
                    f"faults must be a FaultPlan or None, got {self.faults!r}"
                )

    def to_spec(self):
        """The backend spec this job's cluster DAG is built from."""
        from ..backends import make_spec

        if self.backend == "ps":
            return make_spec(
                "ps",
                n_workers=self.n_workers,
                n_ps=self.n_ps,
                workload=self.workload,
                sharding=self.sharding,
            )
        return make_spec(self.backend, n_workers=self.n_workers)

    def devices(self) -> list[str]:
        """Logical device names of this job (workers, then any PS)."""
        spec = self.to_spec()
        return list(spec.workers) + list(getattr(spec, "ps", []))


@dataclass(frozen=True)
class JobMixSpec:
    """A set of jobs placed on one shared cluster.

    Exposes the ``n_workers``/``n_ps``/``workload`` surface of a
    single-job spec (summed over jobs) so result assembly and the sweep
    runner consume mixes unchanged. ``n_hosts=0`` auto-sizes the shared
    cluster to the minimum feasible host count.
    """

    jobs: tuple[JobSpec, ...]
    placement: str = "dedicated"
    n_hosts: int = 0
    slots_per_host: int = 2
    rack_size: int = 4

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a job mix needs at least one job")
        # fail fast (with difflib hints) on unknown placement names
        from ..backends.placement import get_placement

        get_placement(self.placement)

    # -- single-job-spec compatible surface -----------------------------
    @property
    def n_workers(self) -> int:
        return sum(j.n_workers for j in self.jobs)

    @property
    def n_ps(self) -> int:
        return sum(len(j.devices()) - j.n_workers for j in self.jobs)

    @property
    def workload(self) -> str:
        kinds = {j.workload for j in self.jobs}
        return kinds.pop() if len(kinds) == 1 else MIX_WORKLOAD

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(job_label(i) for i in range(len(self.jobs)))

    def solo(self, index: int) -> "JobMixSpec":
        """The 1-job mix of job ``index`` on dedicated hosts — the
        denominator of slowdown-vs-dedicated metrics."""
        return replace(
            self, jobs=(self.jobs[index],), placement="dedicated", n_hosts=0
        )


@dataclass
class JobMixGraph:
    """The union cluster DAG of a mix (the engine's cluster surface)."""

    spec: JobMixSpec
    graph: Graph
    #: every transfer, grouped by the (prefixed) link resource.
    transfers_by_link: dict[Resource, list[Transfer]] = field(default_factory=dict)
    #: op ids per (prefixed) worker device.
    worker_ops: dict[str, list[int]] = field(default_factory=dict)
    #: collective chunk metadata, prefixed (schedule lowering seam).
    chunk_params: dict[str, tuple[str, ...]] = field(default_factory=dict)
    chunk_order: dict[str, int] = field(default_factory=dict)
    #: op ids per job label (per-job completion accounting).
    job_ops: dict[str, list[int]] = field(default_factory=dict)
    #: job label -> arrival offset in seconds.
    job_arrivals: dict[str, float] = field(default_factory=dict)
    #: logical device -> shared host (the placement's output).
    host_map: dict[str, str] = field(default_factory=dict)
    n_iterations: int = 1

    @property
    def param_transfers(self) -> list[Transfer]:
        return [
            t
            for transfers in self.transfers_by_link.values()
            for t in transfers
            if t.kind == "param"
        ]


def _prefixed_resource(res: Resource, prefix: str) -> Resource:
    if res.kind is ResourceKind.LINK:
        src, dst = res.name[len("link:"):].split("->")
        return Resource.link(prefix + src, prefix + dst)
    return Resource.compute(prefix + res.name[len("compute:"):])


def build_jobmix_graph(ir, spec: JobMixSpec) -> JobMixGraph:
    """Assemble the union DAG of ``spec``.

    ``ir`` (the conventional builder argument) is ignored: a mix names
    several models, each built at its native batch size through the
    memoized per-job builders.
    """
    from ..backends import build_comm_graph
    from ..backends.placement import place_jobs
    from ..models import build_model

    union = Graph("jobmix/" + "+".join(j.model for j in spec.jobs))
    mix = JobMixGraph(spec=spec, graph=union)
    devices_by_job: list[list[str]] = []

    for i, job in enumerate(spec.jobs):
        prefix = job_label(i) + "/"
        jir = build_model(job.model)
        jspec = job.to_spec()
        sub = build_comm_graph(jir, jspec)
        devices_by_job.append([prefix + d for d in job.devices()])

        def rebuild(op: Op, new_id: int, _prefix=prefix) -> Op:
            if op.resource is None:
                raise GraphError(f"op {op.name!r} has no resource tag")
            return Op(
                op_id=new_id,
                name=_prefix + op.name,
                kind=op.kind,
                resource=_prefixed_resource(op.resource, _prefix),
                cost=op.cost,
                param=_prefix + op.param if op.param else None,
                device=_prefix + op.device if op.device else None,
                attrs=dict(op.attrs),
            )

        mapping = union.splice(sub.graph, rebuild)
        mix.job_ops[job_label(i)] = sorted(mapping.values())
        mix.job_arrivals[job_label(i)] = float(job.arrival)
        for link, transfers in sub.transfers_by_link.items():
            new_link = _prefixed_resource(link, prefix)
            mix.transfers_by_link[new_link] = [
                Transfer(
                    op_id=mapping[t.op_id],
                    param=prefix + t.param,
                    src=prefix + t.src,
                    dst=prefix + t.dst,
                    kind=t.kind,
                    iteration=t.iteration,
                )
                for t in transfers
            ]
        for worker, ids in sub.worker_ops.items():
            mix.worker_ops[prefix + worker] = [mapping[o] for o in ids]
        for cname, params in (getattr(sub, "chunk_params", None) or {}).items():
            mix.chunk_params[prefix + cname] = tuple(prefix + p for p in params)
        for cname, order in (getattr(sub, "chunk_order", None) or {}).items():
            mix.chunk_order[prefix + cname] = order

    mix.host_map = place_jobs(
        devices_by_job,
        spec.placement,
        n_hosts=spec.n_hosts,
        slots_per_host=spec.slots_per_host,
        rack_size=spec.rack_size,
    )
    return mix


def prepare_jobmix_schedule(
    ir,
    spec: JobMixSpec,
    algorithm: str,
    platform,
    *,
    trace_runs: int = 5,
    seed: int = 0,
) -> Schedule:
    """Compose per-job wizard passes into one namespaced schedule.

    ``algorithm='mix'`` dispatches each job to its own
    :attr:`JobSpec.algorithm`; any other name applies uniformly.
    ``'baseline'`` jobs contribute no priorities (their transfers run
    unordered, exactly as a single-job baseline does).
    """
    from ..backends import prepare_comm_schedule
    from ..models import build_model

    priorities: dict[str, int] = {}
    algorithms: list[str] = []
    for i, job in enumerate(spec.jobs):
        alg = job.algorithm if algorithm == MIX_WORKLOAD else algorithm
        algorithms.append(alg)
        if alg == "baseline":
            continue
        sched = prepare_comm_schedule(
            build_model(job.model), job.to_spec(), alg, platform,
            trace_runs=trace_runs, seed=seed,
        )
        prefix = job_label(i) + "/"
        for param, rank in sched.priorities.items():
            priorities[prefix + param] = rank
    return Schedule(
        algorithm=algorithm,
        priorities=priorities,
        meta={"jobs": tuple(algorithms)},
    )


def jobmix_schedule_key(spec: JobMixSpec) -> tuple:
    """Wizard-memo projection of a mix: the full jobs tuple (coarser
    projections risk cross-mix collisions; placement and arrivals do not
    influence the wizard, so they are excluded)."""
    return ("jobmix", spec.jobs)
