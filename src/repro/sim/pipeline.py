"""Pipelined multi-iteration simulation (extension of the paper's model).

The paper measures barrier-to-barrier iterations. Real PS training
pipelines *per parameter* across the barrier: a parameter's next-iteration
pull may start as soon as its own update lands, while other parameters'
gradients are still aggregating. This module unrolls a window of K
iterations with those cross-iteration edges
(:func:`repro.ps.cluster.build_cluster_graph` with ``n_iterations=K``) and
reports the steady-state iteration time

    (finish_{K-1} - finish_0) / (K - 1)

which is what a long-running job actually experiences. Comparing it to the
barrier model quantifies how much of TicTac's benefit survives pipelining
(ablation: it does — ordering acts within each iteration's pull phase,
which pipelining does not remove).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..core.schedules import Schedule
from ..models import build_model
from ..models.ir import ModelIR
from ..ps.cluster import ClusterSpec, build_cluster_graph
from ..timing import Platform, get_platform
from .config import SimConfig
from .engine import CompiledCore, SimVariant
from .runner import prepare_schedule


@dataclass
class PipelinedResult:
    """Steady-state measurements over a window of unrolled iterations."""

    model: str
    algorithm: str
    window: int
    #: per run: completion time of each unrolled iteration.
    finish_times: list[np.ndarray] = field(default_factory=list)

    @property
    def steady_iteration_times(self) -> np.ndarray:
        """Per-run steady-state iteration time (excludes fill latency)."""
        return np.array(
            [(f[-1] - f[0]) / (len(f) - 1) for f in self.finish_times]
        )

    @property
    def mean_steady_iteration_time(self) -> float:
        return float(self.steady_iteration_times.mean())

    @property
    def fill_latency(self) -> float:
        """Mean completion time of the first iteration (pipeline fill)."""
        return float(np.mean([f[0] for f in self.finish_times]))


def simulate_pipelined(
    model: Union[str, ModelIR],
    spec: ClusterSpec,
    *,
    window: int = 4,
    algorithm: str = "baseline",
    schedule: Optional[Schedule] = None,
    platform: Union[str, Platform] = "envG",
    config: Optional[SimConfig] = None,
) -> PipelinedResult:
    """Simulate ``config.iterations`` runs of a K-iteration pipelined window."""
    if window < 2:
        raise ValueError("pipelined simulation needs window >= 2")
    plat = get_platform(platform) if isinstance(platform, str) else platform
    cfg = config or SimConfig()
    ir = model if isinstance(model, ModelIR) else build_model(model)
    cluster = build_cluster_graph(ir, spec, n_iterations=window)
    if schedule is None:
        if algorithm == "baseline":
            schedule = Schedule("baseline")
        else:
            schedule = prepare_schedule(ir, spec, algorithm, plat, seed=cfg.seed)
    sim = SimVariant(CompiledCore(cluster, plat), schedule, cfg)
    result = PipelinedResult(
        model=ir.name, algorithm=schedule.algorithm, window=window
    )
    for record in sim.iter_iterations(0, cfg.iterations):
        finishes = np.array(
            [
                record.end[np.asarray(cluster.iteration_ops[k])].max()
                for k in range(window)
            ]
        )
        result.finish_times.append(finishes)
    return result
