"""Discrete-event execution engine (the TensorFlow-runtime stand-in).

Executes one cluster-iteration DAG over explicit resources:

* one **compute resource** per device (worker or PS) executing one op at a
  time, picking from its ready queue per the §3.1 rule — lowest priority
  number first, uniformly random among ties and unprioritized ops;
* one **egress NIC** per device and one **ingress NIC** per device. Every
  worker↔PS pair has a directional *channel* (gRPC: one channel per pair);
  a channel's transfers are serialized in hand-off order, and a NIC shares
  its bandwidth across its channels the way a real NIC shares across TCP
  connections — modeled by serving transfers in fixed-size **chunks**,
  round-robin over channels, each chunk occupying the source egress and
  destination ingress NICs exclusively for its wire time. A transfer
  completes one RPC latency after its last chunk.

Transfer ordering follows the configured enforcement mode (see
:mod:`repro.sim.config`): the paper's sender-side counters gate each
parameter transfer's *hand-off* (the zero-cost PS ``send`` activation op),
so the channel still pipelines; ``dag`` mode holds each transfer until its
priority predecessor has *completed* (the §5.1 strawman, which forfeits
pipelining and pays one RPC latency per transfer); ``ready_queue`` applies
priorities at the channel queue; ``none`` ignores priorities.

The engine is deterministic given (cluster, platform, schedule, config,
iteration index).

**Compile-once / run-many split.** Compilation is two-tier:

* :class:`CompiledCore` lowers ``(cluster, platform)`` to immutable flat
  arrays — the dependency CSR, resource/capacity tables, per-transfer
  integer *channel ids* (one id per directional (egress, ingress) NIC
  pair), oracle durations, and the per-(link, iteration) parameter-group
  structure the §5.1 counters operate on. It is independent of any
  :class:`~repro.core.schedules.Schedule` or :class:`SimConfig`, so one
  core serves every algorithm/config variant of a cell group.
* :class:`SimVariant` binds a core to one ``(schedule, config)`` pair:
  dense gate/priority arrays, slowdown-scaled durations, jitter sigma.
  Variant compilation touches only O(n) array fills — no graph traversal.

**Multi-job mixes.** A core compiled from a job-mix cluster (see
:mod:`repro.sim.jobmix`) carries job tags (``jobs``/``job_of``) and
per-root release times (``root_times``): roots of a job with a non-zero
arrival offset enter the event loop through deferred code-3 heap events
instead of the t=0 init path, and a placement's ``host_map`` lets
co-located jobs share NIC resources while keeping per-job wire channels.
Single-job clusters leave all of this empty and execute byte-identically
to the pre-mix engine.

The hot loop itself is array-native:
flat per-channel queues with head/tail cursors instead of ``list.pop(0)``,
eligible-set bookkeeping that avoids rescanning ready queues, and a
:meth:`SimVariant.run_iterations` batch API that amortizes per-iteration
setup (jitter factors for a whole batch are drawn as one matrix). The
rewrite is bit-exact: the RNG stream per ``(seed, iteration)`` and every
floating-point operation order are preserved from the reference
implementation (see ``tests/sim/test_engine_golden.py``).

**Kernel seam.** The event loop exists in two interchangeable,
bit-exact implementations selected by ``SimConfig.kernel`` /
``REPRO_ENGINE_KERNEL``: the tuned pure-Python loop in this module
(:meth:`SimVariant._execute`, always available) and the numba
``@njit(cache=True)`` array kernel in :mod:`repro.sim.kernel`
(:meth:`SimVariant._execute_kernel`; optional dependency, auto-detected).
``tests/sim/test_kernel_parity.py`` pins them against each other and the
golden matrix, so the kernel choice is observable only in wall time.
"""

from __future__ import annotations

import difflib
import heapq
from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.schedules import Schedule, chunk_ranks
from ..graph import OpKind, ResourceKind
from ..obs.events import TraceEvents
from ..ps.cluster import ClusterGraph
from ..timing import Platform
from . import kernel as _kernel
from .config import SimConfig

#: Revision of the engine's compiled-array layout / numerical contract.
#: Folded into the sweep cache key (see :mod:`repro.sweep.fingerprint`):
#: bump it whenever the engine's numbers are *intended* to change, so
#: cached cells simulated by an older engine can never be served as hits.
ENGINE_REV = 3

# Event codes (heap entries are (time, seq, code, op_id)).
_COMPUTE_DONE = 0
_TRANSFER_DONE = 1
_CHUNK_DONE = 2
#: deferred root release: a job-mix root op arriving at its job's offset
#: (offset-zero roots keep the direct make_ready init path, bit-exact
#: with the single-job engine).
_ROOT_ARRIVAL = 3


@dataclass
class IterationRecord:
    """Raw outcome of one simulated iteration."""

    makespan: float
    start: np.ndarray
    end: np.ndarray
    #: dedicated-resource duration of each op (oracle-style time: compute
    #: time, or wire+latency for transfers) — the Time(op) of Eq. 1-3.
    dedicated: np.ndarray
    #: count of param transfers that hit the wire out of priority order
    #: (the residual gRPC reordering the paper measured at 0.4-0.5%).
    out_of_order_handoffs: int = 0
    #: raw per-op event streams when ``SimConfig.trace`` is on (see
    #: :mod:`repro.obs`), ``None`` otherwise. Tracing is observational:
    #: every other field is bit-identical with tracing on or off.
    trace: Optional[TraceEvents] = None


def _compute_fault_end(t: float, work: float, windows) -> float:
    """Absolute finish time of ``work`` seconds of compute started at
    ``t`` under sorted disjoint ``(w0, w1, rate)`` fault windows, where
    ``rate`` is the fraction of nominal speed inside the window and
    ``rate == 0`` stalls (work resumes where it stopped at window end).

    KEEP IN SYNC with :func:`repro.sim.kernel._compute_fault_end`: the
    two kernels stay bit-exact only because both walk the windows with
    this exact floating-point operation order.
    """
    cur = t
    rem = work
    for w0, w1, rate in windows:
        if w1 <= cur:
            continue
        if w0 > cur:
            gap = w0 - cur
            if rem <= gap:
                return cur + rem
            rem -= gap
            cur = w0
        if rate <= 0.0:
            cur = w1
            continue
        cap = (w1 - cur) * rate
        if rem <= cap:
            return cur + rem / rate
        rem -= cap
        cur = w1
    return cur + rem


def _chunk_fault_end(t: float, work: float, windows) -> float:
    """Like :func:`_compute_fault_end` for one wire chunk, except a
    zero-rate (outage) window *loses* the in-flight chunk: transmission
    restarts from the full chunk at window end (host failure / dead-link
    semantics — the RPC retransmits, it does not resume mid-chunk).
    KEEP IN SYNC with :func:`repro.sim.kernel._chunk_fault_end`."""
    cur = t
    rem = work
    for w0, w1, rate in windows:
        if w1 <= cur:
            continue
        if w0 > cur:
            gap = w0 - cur
            if rem <= gap:
                return cur + rem
            rem -= gap
            cur = w0
        if rate <= 0.0:
            cur = w1
            rem = work
            continue
        cap = (w1 - cur) * rate
        if rem <= cap:
            return cur + rem / rate
        rem -= cap
        cur = w1
    return cur + rem


def _find_activation(g, transfer_op_id: int) -> Optional[int]:
    """The PS-side send-activation op feeding a param transfer (§5.1's
    hand-off point), or ``None`` when the graph has no such op."""
    for pred in g.predecessors(transfer_op_id):
        if pred.kind is OpKind.SEND and pred.attrs.get("activation_only"):
            return pred.op_id
    return None


class CompiledCore:
    """``(cluster, platform)`` lowered to immutable flat arrays.

    ``cluster`` is either a PS :class:`~repro.ps.cluster.ClusterGraph` or a
    collective :class:`~repro.collectives.CollectiveGraph` — the engine
    only consumes their shared surface (``graph``, ``transfers_by_link``,
    ``worker_ops``) plus, for collective graphs, the chunk metadata that
    lowers schedule priorities onto chunk transfer ops.

    Everything here is independent of :class:`Schedule` and
    :class:`SimConfig`; bind those with :class:`SimVariant`. The arrays are
    treated as frozen — variants and iterations never mutate them — so one
    core can back any number of variants.
    """

    def __init__(self, cluster: ClusterGraph, platform: Platform) -> None:
        self.cluster = cluster
        self.platform = platform
        g = cluster.graph
        n = self.n = len(g)

        # --- dependency structure -------------------------------------
        self.base_indeg = np.array([g.in_degree(i) for i in range(n)], dtype=np.int32)
        succ_lists = [g.succ_ids(i) for i in range(n)]
        self.succ_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum([len(s) for s in succ_lists], out=self.succ_indptr[1:])
        self.succ_indices = (
            np.fromiter((s for lst in succ_lists for s in lst), dtype=np.int64)
            if self.succ_indptr[-1]
            else np.zeros(0, dtype=np.int64)
        )

        # --- resources --------------------------------------------------
        # ``host_map`` (job-mix placements) maps logical device names onto
        # shared physical hosts: co-located jobs then share NIC resources
        # (and their capacity) while each logical (src, dst) device pair
        # keeps its own wire channel — separate TCP connections round-
        # robining on one shared NIC. Empty/missing map = dedicated hosts.
        host_map: dict[str, str] = getattr(cluster, "host_map", None) or {}
        self._res_index: dict[str, int] = {}
        self.is_transfer = np.zeros(n, dtype=bool)
        self.op_res = np.full(n, -1, dtype=np.int64)  # compute ops
        self.t_egress = np.full(n, -1, dtype=np.int64)
        self.t_ingress = np.full(n, -1, dtype=np.int64)
        self.base_dur = np.zeros(n)  # raw platform times (no slowdown)
        self.wire_base = np.zeros(n)
        self.lat = np.zeros(n)
        device_ops: dict[str, list[int]] = {}
        tr_pair: dict[int, tuple[str, str]] = {}
        for op in g:
            if op.resource is None:
                raise ValueError(f"op {op.name!r} has no resource tag")
            if op.resource.kind is ResourceKind.LINK:
                src, dst = op.resource.name[len("link:"):].split("->")
                tr_pair[op.op_id] = (src, dst)
                self.is_transfer[op.op_id] = True
                self.t_egress[op.op_id] = self._rid(
                    f"nic_out:{host_map.get(src, src)}"
                )
                self.t_ingress[op.op_id] = self._rid(
                    f"nic_in:{host_map.get(dst, dst)}"
                )
                self.wire_base[op.op_id] = op.cost / platform.bandwidth_bps
                self.lat[op.op_id] = platform.rpc_latency_s
            else:
                self.op_res[op.op_id] = self._rid(op.resource.name)
                self.base_dur[op.op_id] = platform.op_time(op)
                device_ops.setdefault(op.device, []).append(op.op_id)
        self.n_res = len(self._res_index)
        #: compute op ids per device (slowdown lowering; transfers excluded).
        self.device_compute_ops = {
            dev: np.array(ids, dtype=np.int64) for dev, ids in device_ops.items()
        }

        # --- wire channels ----------------------------------------------
        # One integer channel id per directional *logical* (src, dst)
        # device pair, numbered by first appearance in op-id order. With
        # dedicated hosts the logical pair and the (egress, ingress) NIC
        # pair are in bijection, so the numbering is identical to the
        # reference engine's NIC-pair keying; under a shared-host
        # placement, co-located jobs keep distinct channels (distinct TCP
        # connections) on the shared NICs. ``egress_ids``/``eg_chan_lists``
        # preserve the reference round-robin orders: egress NICs by first
        # transfer, channels within an egress by first transfer on that
        # pair.
        chan_index: dict[tuple[str, str], int] = {}
        self.t_chan = np.full(n, -1, dtype=np.int64)
        chan_eid: list[int] = []
        chan_iid: list[int] = []
        chan_devices: list[tuple[str, str]] = []
        self.egress_ids: list[int] = []
        self.eg_chan_lists: list[list[int]] = []
        eg_pos: dict[int, int] = {}
        chan_sizes: list[int] = []
        for op_id in np.flatnonzero(self.is_transfer):
            op_id = int(op_id)
            eid, iid = int(self.t_egress[op_id]), int(self.t_ingress[op_id])
            key = tr_pair[op_id]
            c = chan_index.get(key)
            if c is None:
                c = chan_index[key] = len(chan_index)
                chan_eid.append(eid)
                chan_iid.append(iid)
                chan_devices.append(key)
                chan_sizes.append(0)
                pos = eg_pos.get(eid)
                if pos is None:
                    pos = eg_pos[eid] = len(self.egress_ids)
                    self.egress_ids.append(eid)
                    self.eg_chan_lists.append([])
                self.eg_chan_lists[pos].append(c)
            self.t_chan[op_id] = c
            chan_sizes[c] += 1
        self.n_wire_channels = len(chan_index)
        self.chan_eid = chan_eid
        self.chan_iid = chan_iid
        #: logical (src, dst) device pair per channel id — the fault
        #: layer's link universe (see :mod:`repro.faults.compile`).
        self.chan_devices = chan_devices
        #: resource id -> position in ``egress_ids`` (-1 for non-egress).
        self.eg_pos = [-1] * self.n_res
        for eid, pos in eg_pos.items():
            self.eg_pos[eid] = pos
        #: flat per-channel queue layout: channel c owns slots
        #: [q_base[c], q_base[c+1]) of a shared buffer (CSR over channels).
        self.q_base = [0] * (self.n_wire_channels + 1)
        for c, size in enumerate(chan_sizes):
            self.q_base[c + 1] = self.q_base[c] + size
        self.q_slots = self.q_base[-1]

        #: collective chunk transfers (reduce-scatter/all-gather steps);
        #: gated by priority rank at the channel queue, not by §5.1
        #: sender counters (there is no PS-side hand-off op to gate).
        self.is_chunk = np.zeros(n, dtype=bool)
        chunk_op_ids: list[int] = []
        chunk_param_names: list[str] = []
        for transfers in cluster.transfers_by_link.values():
            for t in transfers:
                if t.kind == "chunk":
                    self.is_chunk[t.op_id] = True
                    chunk_op_ids.append(t.op_id)
                    chunk_param_names.append(t.param)
        self.chunk_op_ids = chunk_op_ids
        self.chunk_param_names = chunk_param_names

        #: concurrent-capacity per resource: compute engines run one op at
        #: a time; a NIC sustains platform.nic_slots(device) full-rate
        #: connections (PS NICs are fatter than worker NICs in envG).
        self.capacity = np.ones(self.n_res, dtype=np.int64)
        for name, rid in self._res_index.items():
            if name.startswith(("nic_out:", "nic_in:")):
                device = name.split(":", 1)[1]
                self.capacity[rid] = platform.nic_slots(device)

        # --- §5.1 counter-channel structure -----------------------------
        # One counter per (link, iteration) parameter group, in (sorted
        # link name, sorted iteration) order — the reference gate-compile
        # order. Schedules bind ranks onto these groups per variant.
        # ``None`` activation ids are legal until a variant requests
        # sender enforcement.
        self.param_groups: list[tuple[tuple[str, ...], list[int], list[Optional[int]]]] = []
        for _link, transfers in sorted(
            cluster.transfers_by_link.items(), key=lambda kv: kv[0].name
        ):
            by_iteration: dict[int, list] = {}
            for t in transfers:
                if t.kind == "param":
                    by_iteration.setdefault(t.iteration, []).append(t)
            for k in sorted(by_iteration):
                group = by_iteration[k]
                self.param_groups.append(
                    (
                        tuple(t.param for t in group),
                        [t.op_id for t in group],
                        [_find_activation(g, t.op_id) for t in group],
                    )
                )

        # --- root ops (in-degree zero, ascending op id) ------------------
        self.roots = [int(i) for i in np.flatnonzero(self.base_indeg == 0)]

        # --- job tags + arrival offsets (multi-job mixes) -----------------
        # ``job_ops``/``job_arrivals`` are optional cluster surfaces (set
        # by the job-mix builder): op ids per job label, and each job's
        # arrival offset in seconds. Single-job clusters leave them empty:
        # every root then releases at t=0 through the original init path.
        job_ops: dict = getattr(cluster, "job_ops", None) or {}
        job_arrivals: dict = getattr(cluster, "job_arrivals", None) or {}
        self.jobs = tuple(job_ops)
        self.job_of = np.full(n, -1, dtype=np.int32)
        for j, ids in enumerate(job_ops.values()):
            self.job_of[np.asarray(list(ids), dtype=np.int64)] = j
        arrival_of = np.zeros(n)
        for label, t0 in job_arrivals.items():
            if t0:
                ids = np.asarray(list(job_ops[label]), dtype=np.int64)
                arrival_of[ids] = float(t0)
        #: release time per root (parallel to ``roots``; zeros = legacy).
        self.root_times = arrival_of[np.asarray(self.roots, dtype=np.int64)] \
            if self.roots else np.zeros(0)

        # --- per-job fault scoping (ISSUE 9) ------------------------------
        # A job-mix spec may attach a FaultPlan per job; scope each into
        # the job's ``j<i>/`` namespace at compile time. Variants merge
        # this with SimConfig.faults when compiling fault windows.
        self.job_faults = None
        spec = getattr(cluster, "spec", None)
        for i, job in enumerate(getattr(spec, "jobs", ()) or ()):
            jp = getattr(job, "faults", None)
            if jp is not None and jp.events:
                scoped = jp.scoped(f"j{i}/")
                self.job_faults = (
                    scoped if self.job_faults is None
                    else self.job_faults + scoped
                )

        # --- resource_loads index arrays ---------------------------------
        self.tr_ids = np.flatnonzero(self.is_transfer)
        self.tr_eg = self.t_egress[self.tr_ids]
        self.tr_in = self.t_ingress[self.tr_ids]
        self.comp_ids = np.flatnonzero(~self.is_transfer)
        self.comp_res = self.op_res[self.comp_ids]

        self._build_mirrors()

    @classmethod
    def from_arrays(cls, arrays: dict, state: dict) -> "CompiledCore":
        """Rebuild a core from its compiled arrays + small python state,
        skipping the graph traversal entirely (the cross-process shared-
        core path — see :mod:`repro.sweep.sharedcore`). The arrays may be
        read-only views of a shared-memory buffer; the core never writes
        them. ``state['cluster']`` is typically a detached stand-in
        exposing only the post-compile surface (``worker_ops``,
        ``chunk_params``, ``chunk_order``)."""
        core = cls.__new__(cls)
        for name, arr in arrays.items():
            setattr(core, name, arr)
        for name, value in state.items():
            setattr(core, name, value)
        core.device_compute_ops = {
            dev: np.asarray(ids, dtype=np.int64)
            for dev, ids in core.device_compute_ops.items()
        }
        core._build_mirrors()
        return core

    def _build_mirrors(self) -> None:
        # --- python-native mirrors for the event loop --------------------
        # Scalar indexing of numpy arrays costs ~10x a list index in the
        # interpreter; the hot loop reads these instead.
        n = self.n
        self.base_indeg_list = self.base_indeg.tolist()
        self.succ_indptr_list = self.succ_indptr.tolist()
        self.succ_indices_list = self.succ_indices.tolist()
        #: per-op successor id lists (CSR unpacked once: the succ walk is
        #: the single most-executed statement of the event loop).
        self.succ_of = [
            self.succ_indices_list[self.succ_indptr_list[i]:self.succ_indptr_list[i + 1]]
            for i in range(n)
        ]
        self.is_transfer_list = self.is_transfer.tolist()
        self.is_chunk_list = self.is_chunk.tolist()
        self.op_res_list = self.op_res.tolist()
        self.t_egress_list = self.t_egress.tolist()
        self.t_ingress_list = self.t_ingress.tolist()
        self.t_chan_list = self.t_chan.tolist()
        self.lat_list = self.lat.tolist()
        self.capacity_list = self.capacity.tolist()
        self.root_times_list = self.root_times.tolist()

    # ------------------------------------------------------------------
    def _rid(self, name: str) -> int:
        rid = self._res_index.get(name)
        if rid is None:
            rid = self._res_index[name] = len(self._res_index)
        return rid

    def resource_names(self) -> list[str]:
        """Resource names in id order (compute + NIC resources)."""
        return [name for name, _ in sorted(self._res_index.items(), key=lambda kv: kv[1])]


class SimVariant:
    """One ``(schedule, config)`` binding of a :class:`CompiledCore`.

    Holds everything schedule- or config-dependent: dense gate/priority
    arrays, slowdown-scaled durations, the wire chunk quantum and jitter
    sigma. Construction is O(n) array fills — the expensive graph
    traversal lives in the shared core, so a sweep's variants (algorithms,
    enforcement modes, seeds, iteration counts) compile in microseconds.

    Each iteration is fully deterministic in ``(config.seed, iteration)``
    and never mutates the core, so any number of variants can share one.
    """

    def __init__(
        self,
        core: CompiledCore,
        schedule: Optional[Schedule] = None,
        config: Optional[SimConfig] = None,
    ) -> None:
        self.core = core
        self.schedule = schedule if schedule is not None else Schedule("baseline")
        self.config = config or SimConfig()
        n = core.n

        self.chunk_wire = self.config.chunk_bytes / core.platform.bandwidth_bps

        # --- enforcement gates & priorities ----------------------------
        self.handoff_gate: dict[int, tuple[int, int]] = {}  # activation op -> (ch, rank)
        self.dag_gate: dict[int, tuple[int, int]] = {}  # transfer op -> (ch, rank)
        self.prio: dict[int, int] = {}  # transfer op -> priority rank
        self.n_channels = 0
        if not self.schedule.is_empty and self.config.enforcement != "none":
            self._compile_gates()

        # Dense mirrors of the gate dicts (-1 = ungated/unprioritized).
        self._hg_ch = [-1] * n
        self._hg_rank = [0] * n
        for op, (ch, rank) in self.handoff_gate.items():
            self._hg_ch[op] = ch
            self._hg_rank[op] = rank
        self._dg_ch = [-1] * n
        self._dg_rank = [0] * n
        for op, (ch, rank) in self.dag_gate.items():
            self._dg_ch[op] = ch
            self._dg_rank[op] = rank
        self._prio_arr = [-1] * n
        for op, rank in self.prio.items():
            self._prio_arr[op] = rank

        # Per counter-channel: the compute resource its activations queue
        # on, its group size, and the reverse map resource -> channels.
        # §5.1 eligibility ("rank == counter") is then O(channels-at-
        # resource) instead of an O(queue) rescan per dispatch.
        self._chan_res = [-1] * self.n_channels
        self._chan_size = [0] * self.n_channels
        self._res_channels: list[list[int]] = [[] for _ in range(core.n_res)]
        if self.handoff_gate:
            op_res = core.op_res_list
            for op, (ch, rank) in self.handoff_gate.items():
                rid = op_res[op]
                if self._chan_res[ch] < 0:
                    self._chan_res[ch] = rid
                    self._res_channels[rid].append(ch)
                elif self._chan_res[ch] != rid:  # pragma: no cover - §5.1 invariant
                    raise ValueError(
                        "send activations of one channel span multiple resources"
                    )
                if rank + 1 > self._chan_size[ch]:
                    self._chan_size[ch] = rank + 1

        self._jitter_sigma = (
            core.platform.jitter_sigma
            if self.config.jitter_sigma is None
            else self.config.jitter_sigma
        )

        # Event-loop kernel seam (ISSUE 4): 'python' keeps the loop in
        # this module; 'numba'/'portable' route through the array kernel
        # in repro.sim.kernel. All are bit-exact (golden + parity suites).
        self.kernel = _kernel.resolve(self.config.kernel)
        self._kernel_loop = _kernel.loop_for(self.kernel)

        # Static per-op slowdown multipliers (compute ops of slow devices).
        self.slowdown = np.ones(n)
        for device, factor in self.config.device_slowdown:
            ids = core.device_compute_ops.get(device)
            if ids is None:
                known = sorted(
                    d for d in core.device_compute_ops if d is not None
                )
                hints = difflib.get_close_matches(device, known, n=1)
                msg = (
                    f"device_slowdown names unknown device {device!r}; "
                    f"known devices: {known}"
                )
                if hints:
                    msg += f" — did you mean {hints[0]!r}?"
                raise ValueError(msg)
            self.slowdown[ids] = factor
        self.base_dur = core.base_dur * self.slowdown

        # --- deterministic fault windows (ISSUE 9) ----------------------
        # Merge the config plan with any per-job plans scoped onto the
        # core, then lower to per-resource / per-channel window lists.
        # All-None lists mean the event loops execute the literal
        # fault-free expressions (byte-identical to no faults layer).
        plan = getattr(core, "job_faults", None)
        cfg_plan = self.config.faults
        if cfg_plan is not None and not cfg_plan.is_empty:
            plan = cfg_plan if plan is None else plan + cfg_plan
        if plan is not None and not plan.is_empty:
            from ..faults.compile import compile_fault_plan

            self._fault_comp, self._fault_wire = compile_fault_plan(
                plan, core
            )
        else:
            self._fault_comp = [None] * core.n_res
            self._fault_wire = [None] * core.n_wire_channels

        # Zero-jitter fast path: factors are exactly 1.0, so the jittered
        # arrays equal the base arrays bit-for-bit — precompute once.
        self._dur0 = self.base_dur.tolist()
        self._wire0 = core.wire_base.tolist()
        self._chunk0 = [self.chunk_wire] * n
        self._chunk0_arr = np.full(n, self.chunk_wire)
        self._dedicated0 = np.where(
            core.is_transfer, core.wire_base + core.lat, self.base_dur
        )

        # Expected per-channel rank arrays for the out-of-order audit
        # (satellite of ISSUE 3: compiled once, not re-sorted per recorded
        # iteration). Empty when the audit is off (no schedule / 'none').
        self._ooo_groups: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        if not self.schedule.is_empty and self.config.enforcement != "none":
            for params, op_ids, _acts in core.param_groups:
                ranks = self.schedule.normalized(list(params))
                rank_arr = np.array([ranks[p] for p in params], dtype=np.int64)
                ids = np.array(op_ids, dtype=np.int64)
                self._ooo_groups.append(
                    (ids, rank_arr, np.arange(len(op_ids), dtype=np.int64))
                )

    # -- delegated core surface ----------------------------------------
    @property
    def cluster(self) -> ClusterGraph:
        return self.core.cluster

    @property
    def platform(self) -> Platform:
        return self.core.platform

    @property
    def n(self) -> int:
        return self.core.n

    @property
    def n_res(self) -> int:
        return self.core.n_res

    @property
    def is_transfer(self) -> np.ndarray:
        return self.core.is_transfer

    @property
    def is_chunk(self) -> np.ndarray:
        return self.core.is_chunk

    @property
    def op_res(self) -> np.ndarray:
        return self.core.op_res

    @property
    def t_egress(self) -> np.ndarray:
        return self.core.t_egress

    @property
    def t_ingress(self) -> np.ndarray:
        return self.core.t_ingress

    @property
    def wire_base(self) -> np.ndarray:
        return self.core.wire_base

    @property
    def lat(self) -> np.ndarray:
        return self.core.lat

    @property
    def capacity(self) -> np.ndarray:
        return self.core.capacity

    @property
    def base_indeg(self) -> np.ndarray:
        return self.core.base_indeg

    @property
    def succ_indptr(self) -> np.ndarray:
        return self.core.succ_indptr

    @property
    def succ_indices(self) -> np.ndarray:
        return self.core.succ_indices

    def resource_names(self) -> list[str]:
        return self.core.resource_names()

    @property
    def fault_windows(self) -> list:
        """Name-resolved ``(kind, entity, w0, w1, rate)`` fault windows
        of this variant (empty without a plan) — the obs layer's view."""
        from ..faults.compile import fault_window_rows

        return fault_window_rows(self)

    # ------------------------------------------------------------------
    def _compile_gates(self) -> None:
        core = self.core
        mode = self.config.enforcement
        # Collective chunk transfers: lower the per-parameter schedule
        # onto chunk ranks once, globally (prio comparisons only ever
        # happen within one channel queue, so global dense ranks serve).
        if core.chunk_op_ids and self.config.chunk_queue == "priority":
            ranks = chunk_ranks(
                self.schedule,
                core.cluster.chunk_params,
                core.cluster.chunk_order,
            )
            for op_id, param in zip(core.chunk_op_ids, core.chunk_param_names):
                self.prio[op_id] = ranks[param]
        # One §5.1 counter per (channel, iteration): unrolled windows
        # restart the count every iteration, exactly as deployed.
        for ch, (params, op_ids, acts) in enumerate(core.param_groups):
            ranks = self.schedule.normalized(list(params))
            for param, op_id, act in zip(params, op_ids, acts):
                rank = ranks[param]
                if mode == "ready_queue":
                    self.prio[op_id] = rank
                elif mode == "dag":
                    self.dag_gate[op_id] = (ch, rank)
                else:  # sender
                    if act is None:
                        name = core.cluster.graph.op(op_id).name
                        raise ValueError(
                            f"param transfer {name!r} has no send activation"
                        )
                    self.handoff_gate[act] = (ch, rank)
        self.n_channels = len(core.param_groups)

    # ------------------------------------------------------------------
    def _trace_cap(self) -> int:
        """Static per-iteration chunk-event capacity (ISSUE 8 satellite).

        Jitter scales each op's wire time and chunk size by the SAME
        per-op lognormal factor, so the wire/chunk pass count
        ``ceil(wire/chunk)`` is jitter-invariant — the bound is a pure
        function of core tables and ``chunk_wire`` and is computed once
        per variant instead of per iteration (+1 slack per op for
        floating-point residue passes, +64 headroom). Both event loops
        still survive an undersized bound: the kernel aborts and replays
        with a grown buffer, the python loop grows its arrays in place.
        """
        cap = getattr(self, "_trace_cap_cached", None)
        if cap is None:
            core = self.core
            w = core.wire_base[core.is_transfer]
            cw = self.chunk_wire
            passes = int(np.ceil(w / cw).sum()) if cw > 0 and w.size else 0
            cap = self._trace_cap_cached = passes + core.n + 64
        return cap

    # ------------------------------------------------------------------
    def run_iteration(self, iteration: int = 0) -> IterationRecord:
        """Execute one iteration; deterministic in ``iteration`` and config."""
        return self.run_iterations(iteration, 1)[0]

    #: iterations whose batched setup (RNG matrices) is drawn at once.
    #: Bounds the working set of :meth:`iter_iterations` to O(_SLAB x n)
    #: regardless of the requested count (1000-iteration protocols would
    #: otherwise stage ~5 full (count, n) float64 matrices).
    _SLAB = 64

    def run_iterations(self, first: int = 0, count: int = 1) -> list[IterationRecord]:
        """Execute ``count`` consecutive iterations starting at ``first``.

        Materializes every record; prefer :meth:`iter_iterations` when the
        records are summarized and discarded one at a time."""
        return list(self.iter_iterations(first, count))

    def iter_iterations(self, first: int = 0, count: int = 1):
        """Yield ``count`` consecutive iteration records lazily.

        The batch API amortizes per-iteration setup: RNG construction
        happens up front per slab and the jitter factors are drawn as one
        ``(slab, n)`` matrix (one row per iteration's own generator, so
        each iteration's RNG stream is identical to a standalone
        :meth:`run_iteration` call — results are bit-equal either way).
        """
        cfg = self.config
        core = self.core
        n = core.n
        sigma = self._jitter_sigma
        use_kernel = self._kernel_loop is not None
        if use_kernel and not cfg.trace:
            # untraced array-kernel runs go through the variant-batched
            # entry: the whole slab of iterations becomes ONE kernel call
            # (the iteration loop lives inside the JIT), bit-exact with
            # the per-iteration dispatch below.
            for _vi, record in iter_variant_records([self], count, first):
                yield record
            return
        for lo in range(0, max(count, 0), self._SLAB):
            slab = min(self._SLAB, count - lo)
            rngs = [
                np.random.default_rng(
                    np.random.SeedSequence((cfg.seed, first + lo + i))
                )
                for i in range(slab)
            ]
            if sigma > 0:
                factors = np.empty((slab, n))
                for i, rng in enumerate(rngs):
                    factors[i] = rng.lognormal(0.0, sigma, n)
                durs = self.base_dur * factors
                wires = core.wire_base * factors
                chunks = self.chunk_wire * factors
                dedicated = np.where(core.is_transfer, wires + core.lat, durs)
                for i in range(slab):
                    # the dedicated row is copied so a surviving record
                    # does not pin the whole slab matrix alive
                    if use_kernel:
                        yield self._execute_kernel(
                            rngs[i], durs[i], wires[i], chunks[i],
                            dedicated[i].copy(),
                        )
                    else:
                        yield self._execute(
                            rngs[i],
                            durs[i].tolist(),
                            wires[i].tolist(),
                            chunks[i].tolist(),
                            dedicated[i].copy(),
                        )
            else:
                for rng in rngs:
                    if use_kernel:
                        yield self._execute_kernel(
                            rng, self.base_dur, core.wire_base,
                            self._chunk0_arr, self._dedicated0.copy(),
                        )
                    else:
                        yield self._execute(
                            rng, self._dur0, self._wire0, self._chunk0,
                            self._dedicated0.copy(),
                        )

    # ------------------------------------------------------------------
    def _execute_kernel(self, rng, dur, wire, chunk_of, dedicated) -> IterationRecord:
        """Run one iteration through the array kernel (numba/portable).

        Bit-exact with :meth:`_execute`: the kernel replays the same
        event order and consumes the same RNG stream (see
        :mod:`repro.sim.kernel`)."""
        start_arr, end_arr, traced = _kernel.execute_event_loop(
            self, rng, dur, wire, chunk_of, self._kernel_loop
        )
        if np.isnan(end_arr).any():  # pragma: no cover - would indicate a bug
            stuck = int(np.isnan(end_arr).sum())
            raise RuntimeError(f"simulation deadlock: {stuck} ops never ran")
        trace = None if traced is None else TraceEvents(*traced)
        return IterationRecord(
            makespan=float(np.nanmax(end_arr)),
            start=start_arr,
            end=end_arr,
            dedicated=dedicated,
            out_of_order_handoffs=self._count_out_of_order(start_arr),
            trace=trace,
        )

    # ------------------------------------------------------------------
    def _execute(self, rng, dur, wire, chunk_of, dedicated) -> IterationRecord:
        """The event loop. ``dur``/``wire``/``chunk_of`` are plain-python
        float lists (read-only); ``dedicated`` is the record's array."""
        core = self.core
        cfg = self.config
        n = core.n
        nan = float("nan")

        # -- per-iteration state (flat, preallocated) -------------------
        indeg = core.base_indeg_list.copy()
        start = [nan] * n
        end = [nan] * n
        active = [0] * core.n_res
        cap = core.capacity_list
        # compute ready queues: ungated ops in arrival order, plus (for
        # resources hosting §5.1 counters) gated activations parked in
        # per-channel rank slots and arrival stamps to reconstruct the
        # queue order exactly.
        plain: list[list[int]] = [[] for _ in range(core.n_res)]
        pstamps: list[list[int]] = [[] for _ in range(core.n_res)]
        gated_slots: list[list] = [[None] * size for size in self._chan_size]
        res_channels = self._res_channels
        # wire channels: flat queue buffer with head/tail cursors (a gRPC
        # channel is one TCP connection: its chunks serialize at the
        # connection rate; a busy flag marks a chunk on the wire).
        qbuf = [0] * core.q_slots
        q_base = core.q_base
        q_head = [0] * core.n_wire_channels
        q_tail = [0] * core.n_wire_channels
        ch_busy = [False] * core.n_wire_channels
        egress_ids = core.egress_ids
        eg_chans = core.eg_chan_lists
        n_eg = len(egress_ids)
        rr_ptr = [0] * n_eg
        rem_wire = list(wire)  # outstanding wire seconds per transfer
        started = bytearray(n)
        ch_handoff = [0] * self.n_channels  # sender counters (§5.1)
        ch_complete = [0] * self.n_channels  # dag-mode completion counters
        fabric_cap = cfg.fabric_slots  # shared-fabric congestion (§7)
        fabric_active = 0
        stamp = 0  # ready-arrival sequence (compute-queue order)

        heap: list[tuple[float, int, int, int]] = []
        seq = 0
        heappush = heapq.heappush
        heappop = heapq.heappop

        # -- hot locals --------------------------------------------------
        is_transfer = core.is_transfer_list
        is_chunk = core.is_chunk_list
        op_res = core.op_res_list
        t_egress = core.t_egress_list
        t_ingress = core.t_ingress_list
        t_chan = core.t_chan_list
        eg_pos = core.eg_pos
        chan_iid = core.chan_iid
        lat = core.lat_list
        hg_ch = self._hg_ch
        hg_rank = self._hg_rank
        dg_ch = self._dg_ch
        dg_rank = self._dg_rank
        prio_arr = self._prio_arr
        has_dag = bool(self.dag_gate)
        has_prio = bool(self.prio)
        random_compute = cfg.compute_queue == "random"
        mode = cfg.enforcement
        mode_rq = mode == "ready_queue"
        mode_none = mode == "none"
        mode_dag = mode == "dag"
        noise = cfg.grpc_reorder_prob if mode == "sender" else 0.0
        rng_integers = rng.integers
        rng_random = rng.random

        has_handoff = bool(self.handoff_gate)
        #: fault windows per compute resource / wire channel (ISSUE 9);
        #: all-None without a plan — the None branches below are then the
        #: pre-fault expressions, byte-for-byte.
        fault_comp = self._fault_comp
        fault_wire = self._fault_wire
        #: queued-transfer count per egress position: lets every event
        #: skip the dispatch call for idle NICs (bit-safe: an empty-queue
        #: dispatch consumes no RNG and changes no state).
        eg_pending = [0] * n_eg

        # -- opt-in tracing (repro.obs): side writes only — no RNG, no
        # control flow, so traced and untraced runs are bit-identical.
        # Python lists on purpose: scalar writes in this loop are ~3x
        # cheaper on lists than on numpy arrays, and the one conversion
        # per array at the end is vectorized. The chunk-event lists are
        # pre-sized from the static per-variant bound so they never
        # resize mid-loop.
        tr = cfg.trace
        tce_i = 0
        if tr:
            tr_ready = [nan] * n
            tr_depth = [-1] * n
            tce_cap = self._trace_cap()
            tce_op = [0] * tce_cap
            tce_t0 = [0.0] * tce_cap
            tce_dur = [0.0] * tce_cap

        # --- compute dispatch -------------------------------------------
        # Semantics are the §3.1 rule over the *eligible* subset of the
        # ready queue: every ungated op, plus — per §5.1 counter channel —
        # the one activation whose rank equals the channel counter. The
        # reference engine rescanned the whole queue per dispatch; here
        # eligibility is assembled from the per-channel slots, and the
        # random pick reproduces the reference draw exactly because the
        # eligible count and its queue-order enumeration are identical.
        def dispatch_compute_gated(rid: int, t: float) -> None:
            nonlocal seq
            if active[rid] >= cap[rid]:
                return
            plain_ops = plain[rid]
            chans = res_channels[rid]
            if chans:
                stamps = pstamps[rid]
                elig: list[tuple[int, int]] = []  # (stamp, channel)
                for ch in chans:
                    slots = gated_slots[ch]
                    r = ch_handoff[ch]
                    if r < len(slots):
                        entry = slots[r]
                        if entry is not None:
                            elig.append((entry[0], ch))
                n_plain = len(plain_ops)
                n_gated = len(elig)
                total = n_plain + n_gated
                if total == 0:
                    return
                if random_compute and total > 1:
                    m = rng_integers(total)
                else:
                    m = 0
                if n_gated == 0:
                    op = plain_ops.pop(m)
                    del stamps[m]
                else:
                    if n_gated > 1:
                        elig.sort()
                    # m-th element of the stamp-ordered union of the plain
                    # queue (sorted, indexable) and the eligible gated ops.
                    op = -1
                    for e in range(n_gated):
                        st, ch = elig[e]
                        pos = e + bisect_left(stamps, st)
                        if pos == m:
                            r = ch_handoff[ch]
                            op = gated_slots[ch][r][1]
                            gated_slots[ch][r] = None
                            ch_handoff[ch] = r + 1
                            break
                        if pos > m:
                            k = m - e
                            op = plain_ops.pop(k)
                            del stamps[k]
                            break
                    if op < 0:
                        k = m - n_gated
                        op = plain_ops.pop(k)
                        del stamps[k]
            else:
                total = len(plain_ops)
                if total == 0:
                    return
                if random_compute and total > 1:
                    m = rng_integers(total)
                else:
                    m = 0
                op = plain_ops.pop(m)
            active[rid] += 1
            if tr:
                tr_depth[op] = total
            start[op] = t
            fc = fault_comp[rid]
            if fc is None:
                heappush(heap, (t + dur[op], seq, 0, op))
            else:
                heappush(heap, (_compute_fault_end(t, dur[op], fc), seq, 0, op))
            seq += 1

        def dispatch_compute_plain(rid: int, t: float) -> None:
            # no §5.1 gates anywhere: the whole queue is eligible.
            nonlocal seq
            plain_ops = plain[rid]
            total = len(plain_ops)
            if total == 0 or active[rid] >= cap[rid]:
                return
            if random_compute and total > 1:
                op = plain_ops.pop(rng_integers(total))
            else:
                op = plain_ops.pop(0)
            active[rid] += 1
            if tr:
                tr_depth[op] = total
            start[op] = t
            fc = fault_comp[rid]
            if fc is None:
                heappush(heap, (t + dur[op], seq, 0, op))
            else:
                heappush(heap, (_compute_fault_end(t, dur[op], fc), seq, 0, op))
            seq += 1

        dispatch_compute = (
            dispatch_compute_gated if has_handoff else dispatch_compute_plain
        )

        # --- transfer dispatch (chunked, round-robin over channels) ------
        def dispatch_egress(pos: int, t: float) -> None:
            nonlocal seq, fabric_active, tce_i
            if not eg_pending[pos]:
                return
            chans = eg_chans[pos]
            eid = egress_ids[pos]
            n_chans = len(chans)
            while active[eid] < cap[eid] and (
                fabric_cap is None or fabric_active < fabric_cap
            ):
                ptr = rr_ptr[pos]
                progressed = False
                for step in range(n_chans):
                    slot = ptr + step
                    if slot >= n_chans:
                        slot -= n_chans
                    c = chans[slot]
                    iid = chan_iid[c]
                    if active[iid] >= cap[iid] or ch_busy[c]:
                        continue
                    h = q_head[c]
                    tl = q_tail[c]
                    if h == tl:
                        continue
                    base = q_base[c]
                    # -- pick_head: choose which queued transfer transmits
                    # next on this channel. Once a transfer has started it
                    # keeps the channel until its wire time is done.
                    q0 = qbuf[base + h]
                    if started[q0]:
                        k = 0
                    elif has_prio and (mode_rq or is_chunk[q0]):
                        # Priority pick: the idealized ready-queue
                        # semantics, and the gating for collective chunk
                        # streams under every enforcement mode but 'none'
                        # (see SimConfig.chunk_queue).
                        prios = [prio_arr[qbuf[j]] for j in range(base + h, base + tl)]
                        known = [p for p in prios if p >= 0]
                        if known:
                            lowest = min(known)
                            cands = [
                                i for i, p in enumerate(prios)
                                if p < 0 or p == lowest
                            ]
                        else:
                            cands = list(range(len(prios)))
                        if len(cands) > 1:
                            k = cands[rng_integers(len(cands))]
                        else:
                            k = cands[0]
                    elif mode_none and tl - h > 1:
                        k = int(rng_integers(tl - h))
                    elif mode_dag and has_dag:
                        # Hand-offs are unordered in this mode; find the
                        # transfer whose DAG predecessor chain is satisfied.
                        k = -1
                        for i in range(tl - h):
                            op2 = qbuf[base + h + i]
                            c2 = dg_ch[op2]
                            if c2 < 0 or ch_complete[c2] == dg_rank[op2]:
                                k = i
                                break
                        if k < 0:
                            continue
                    else:
                        k = 0
                    if k != 0:
                        i1 = base + h
                        i2 = i1 + k
                        qbuf[i1], qbuf[i2] = qbuf[i2], qbuf[i1]
                    op = qbuf[base + h]
                    if not started[op]:
                        started[op] = 1
                        start[op] = t
                        if tr:
                            tr_depth[op] = tl - h
                    r = rem_wire[op]
                    co = chunk_of[op]
                    cdur = r if r < co else co
                    r -= cdur
                    rem_wire[op] = r
                    # fault windows stretch the chunk's wall time; the
                    # nominal rem_wire decrement above is untouched, so
                    # faults never lose or duplicate payload bytes.
                    fw = fault_wire[c]
                    cend = (t + cdur) if fw is None else _chunk_fault_end(
                        t, cdur, fw
                    )
                    if r <= 1e-18:
                        q_head[c] = h + 1  # wire done; channel moves on
                        eg_pending[pos] -= 1
                        heappush(heap, (cend + lat[op], seq, 1, op))
                        seq += 1
                    if tr:
                        if tce_i == len(tce_op):  # pragma: no cover
                            # static bound slack exhausted: grow in place
                            tce_op.extend(tce_op)
                            tce_t0.extend(tce_t0)
                            tce_dur.extend(tce_dur)
                        tce_op[tce_i] = op
                        tce_t0[tce_i] = t
                        # nominal cdur when unfaulted: (cend - t) would
                        # differ in the last float bit from the untraced
                        # engine's own cdur arithmetic.
                        tce_dur[tce_i] = cdur if fw is None else cend - t
                        tce_i += 1
                    active[eid] += 1
                    active[iid] += 1
                    fabric_active += 1
                    ch_busy[c] = True
                    heappush(heap, (cend, seq, 2, op))
                    seq += 1
                    rr_ptr[pos] = slot + 1
                    progressed = True
                    break
                if not progressed:
                    return

        def make_ready(op: int, t: float) -> None:
            # KEEP IN SYNC with the hand-inlined copy in the successor
            # walk of the main loop below — the two must enqueue
            # identically or root ops and successor ops would see
            # different queue orders (the golden tests pin this).
            nonlocal stamp
            if tr:
                tr_ready[op] = t
            if is_transfer[op]:
                c = t_chan[op]
                base = q_base[c]
                tl = q_tail[c]
                qbuf[base + tl] = op
                tl += 1
                q_tail[c] = tl
                # residual gRPC reordering: occasionally a hand-off slips
                # one slot (the paper measured 0.4-0.5% of transfers).
                if noise > 0 and tl - q_head[c] >= 2 and rng_random() < noise:
                    i1 = base + tl - 1
                    i2 = i1 - 1
                    qbuf[i1], qbuf[i2] = qbuf[i2], qbuf[i1]
                pos = eg_pos[t_egress[op]]
                eg_pending[pos] += 1
                dispatch_egress(pos, t)
            else:
                rid = op_res[op]
                ch = hg_ch[op]
                if ch >= 0:
                    gated_slots[ch][hg_rank[op]] = (stamp, op)
                    stamp += 1
                elif res_channels[rid]:
                    plain[rid].append(op)
                    pstamps[rid].append(stamp)
                    stamp += 1
                else:
                    # stamps order the merged gated/plain eligibility
                    # pick; resources with no §5.1 channels never merge,
                    # so their arrivals skip the counter entirely.
                    plain[rid].append(op)
                dispatch_compute(rid, t)

        # --- initialization -----------------------------------------------
        # Roots with a zero arrival offset take the direct path (no heap
        # event, no seq consumed — bit-exact with the single-job engine);
        # deferred roots of later-arriving jobs release via code-3 events.
        for op, rt in zip(core.roots, core.root_times_list):
            if rt > 0.0:
                heappush(heap, (rt, seq, 3, op))
                seq += 1
            else:
                make_ready(op, 0.0)

        # --- main loop -----------------------------------------------------
        # The successor walk inlines make_ready: it runs once per DAG edge
        # and dominates the loop, so the call overhead is worth folding.
        succ_of = core.succ_of
        while heap:
            t, _s, code, op = heappop(heap)
            if code == 2:  # chunk done
                eid = t_egress[op]
                iid = t_ingress[op]
                active[eid] -= 1
                active[iid] -= 1
                fabric_active -= 1
                ch_busy[t_chan[op]] = False
                pos = eg_pos[eid]
                dispatch_egress(pos, t)
                # the freed ingress (or fabric slot) may unblock transfers
                # queued at other NICs
                if active[iid] < cap[iid] or fabric_cap is not None:
                    for other in range(n_eg):
                        if other != pos and eg_pending[other]:
                            dispatch_egress(other, t)
                continue
            if code == 3:  # deferred root arrival (job-mix offsets)
                make_ready(op, t)
                continue
            end[op] = t
            if code == 0:  # compute done
                rid = op_res[op]
                active[rid] -= 1
                if plain[rid] or res_channels[rid]:
                    dispatch_compute(rid, t)
            else:  # transfer done
                if has_dag:
                    c = dg_ch[op]
                    if c >= 0:
                        ch_complete[c] += 1
                        for pos in range(n_eg):  # dag gates may have opened
                            if eg_pending[pos]:
                                dispatch_egress(pos, t)
            for s in succ_of[op]:
                d = indeg[s] - 1
                indeg[s] = d
                if d == 0:
                    # KEEP IN SYNC with make_ready above (hand-inlined:
                    # this block runs once per op and the call overhead
                    # is measurable; any edit must land in both copies).
                    if tr:
                        tr_ready[s] = t
                    if is_transfer[s]:
                        c = t_chan[s]
                        base = q_base[c]
                        tl = q_tail[c]
                        qbuf[base + tl] = s
                        tl += 1
                        q_tail[c] = tl
                        if noise > 0 and tl - q_head[c] >= 2 and rng_random() < noise:
                            i1 = base + tl - 1
                            i2 = i1 - 1
                            qbuf[i1], qbuf[i2] = qbuf[i2], qbuf[i1]
                        pos = eg_pos[t_egress[s]]
                        eg_pending[pos] += 1
                        dispatch_egress(pos, t)
                    else:
                        rid = op_res[s]
                        ch = hg_ch[s]
                        if ch >= 0:
                            gated_slots[ch][hg_rank[s]] = (stamp, s)
                            stamp += 1
                        elif res_channels[rid]:
                            plain[rid].append(s)
                            pstamps[rid].append(stamp)
                            stamp += 1
                        else:
                            plain[rid].append(s)
                        dispatch_compute(rid, t)

        end_arr = np.array(end)
        if np.isnan(end_arr).any():  # pragma: no cover - would indicate a bug
            stuck = int(np.isnan(end_arr).sum())
            raise RuntimeError(f"simulation deadlock: {stuck} ops never ran")
        start_arr = np.array(start)
        trace = None
        if tr:
            trace = TraceEvents(
                ready=np.array(tr_ready),
                depth=np.array(tr_depth, dtype=np.int64),
                chunk_op=np.array(tce_op[:tce_i], dtype=np.int64),
                chunk_start=np.array(tce_t0[:tce_i], dtype=np.float64),
                chunk_dur=np.array(tce_dur[:tce_i], dtype=np.float64),
            )
        return IterationRecord(
            makespan=float(np.nanmax(end_arr)),
            start=start_arr,
            end=end_arr,
            dedicated=dedicated,
            out_of_order_handoffs=self._count_out_of_order(start_arr),
            trace=trace,
        )

    # ------------------------------------------------------------------
    def _count_out_of_order(self, start: np.ndarray) -> int:
        """Param transfers that hit the wire out of priority order.

        Uses the rank arrays compiled at variant construction: per §5.1
        channel, a stable argsort of the wire start times against the
        expected dense ranks (no per-iteration re-normalization)."""
        count = 0
        for op_ids, ranks, arange in self._ooo_groups:
            order = np.argsort(start[op_ids], kind="stable")
            count += int(np.count_nonzero(ranks[order] != arange))
        return count

    # ------------------------------------------------------------------
    def resource_loads(self, record: IterationRecord) -> dict[str, float]:
        """Dedicated-time load per effective resource for one iteration:
        compute loads plus per-NIC wire loads (a transfer loads both its
        egress and its ingress NIC; multi-slot NICs divide their load by
        their slot count). This is Eq. 2's inner sum under the simulator's
        true resource model, accumulated with ``np.add.at`` over the
        core's precomputed resource-id arrays."""
        core = self.core
        loads = np.zeros(core.n_res)
        wire_actual = record.dedicated - core.lat  # wire component
        w = wire_actual[core.tr_ids]
        np.add.at(loads, core.tr_eg, w)
        np.add.at(loads, core.tr_in, w)
        np.add.at(
            loads,
            core.comp_res,
            record.end[core.comp_ids] - record.start[core.comp_ids],
        )
        loads /= core.capacity
        out = dict(zip(core.resource_names(), loads.tolist()))
        if self.config.fabric_slots is not None:
            out["fabric"] = float(
                wire_actual[core.is_transfer].sum() / self.config.fabric_slots
            )
        return out


# ----------------------------------------------------------------------
# variant-batched execution (ISSUE 8)
# ----------------------------------------------------------------------
def iter_variant_records(variants, count, first=0, *, parallel=None):
    """Stream ``(variant_index, IterationRecord)`` for every variant of a
    shared-core set across ``count`` iterations, variant-major.

    This is the batched lane behind :func:`run_variants` and the sweep
    runner: the ``(variant, iteration)`` grid is flattened into rows,
    sliced into ``SimVariant._SLAB``-row slabs, and each slab runs as ONE
    kernel call (:func:`repro.sim.kernel.execute_rows`) against the
    shared :class:`CompiledCore` tables plus stacked per-variant arrays.
    Every row's RNG, jitter factors and dedicated times are built exactly
    as :meth:`SimVariant.iter_iterations` builds them, so the records are
    bit-identical to the one-at-a-time path — batching (like ``kernel``
    and ``trace``) never changes results.

    Falls back to per-variant :meth:`~SimVariant.iter_iterations` when
    any variant cannot batch (python kernel, or tracing on) — same yield
    order, same records, just per-iteration dispatch.

    ``parallel=None`` reads ``REPRO_ENGINE_PARALLEL`` (see
    :func:`repro.sim.kernel.resolve_parallel`); rows are independent, so
    the ``prange`` entry is bit-exact too.
    """
    if not variants:
        return
    core = variants[0].core
    for v in variants[1:]:
        if v.core is not core:
            raise ValueError(
                "iter_variant_records requires variants sharing one "
                "CompiledCore (got distinct cores)"
            )
    count = max(int(count), 0)
    if any(v._kernel_loop is None or v.config.trace for v in variants):
        for vi, v in enumerate(variants):
            for record in v.iter_iterations(first, count):
                yield vi, record
        return
    n = core.n
    rows = [(vi, it) for vi in range(len(variants)) for it in range(count)]
    slab_rows = SimVariant._SLAB
    for lo in range(0, len(rows), slab_rows):
        chunk = rows[lo:lo + slab_rows]
        n_rows = len(chunk)
        vrow = np.array([vi for vi, _it in chunk], dtype=np.int64)
        rngs = [
            np.random.default_rng(
                np.random.SeedSequence((variants[vi].config.seed, first + it))
            )
            for vi, it in chunk
        ]
        DUR = np.empty((n_rows, n))
        WIRE = np.empty((n_rows, n))
        CHUNK = np.empty((n_rows, n))
        DED = np.empty((n_rows, n))
        for r, ((vi, _it), rng) in enumerate(zip(chunk, rngs)):
            v = variants[vi]
            sigma = v._jitter_sigma
            if sigma > 0:
                # jitter is drawn BEFORE execute_rows pre-draws the raw
                # stream, so each row's generator position matches the
                # single-iteration path exactly.
                factors = rng.lognormal(0.0, sigma, n)
                DUR[r] = v.base_dur * factors
                WIRE[r] = core.wire_base * factors
                CHUNK[r] = v.chunk_wire * factors
                DED[r] = np.where(core.is_transfer, WIRE[r] + core.lat, DUR[r])
            else:
                DUR[r] = v.base_dur
                WIRE[r] = core.wire_base
                CHUNK[r] = v._chunk0_arr
                DED[r] = v._dedicated0
        START, END = _kernel.execute_rows(
            variants, vrow, rngs, DUR, WIRE, CHUNK, parallel=parallel
        )
        for r, (vi, _it) in enumerate(chunk):
            v = variants[vi]
            # rows are copied out of the slab matrices so a surviving
            # record never pins the whole slab alive
            end_row = END[r].copy()
            if np.isnan(end_row).any():  # pragma: no cover - engine bug
                stuck = int(np.isnan(end_row).sum())
                raise RuntimeError(
                    f"simulation deadlock: {stuck} ops never ran"
                )
            start_row = START[r].copy()
            yield vi, IterationRecord(
                makespan=float(np.nanmax(end_row)),
                start=start_row,
                end=end_row,
                dedicated=DED[r].copy(),
                out_of_order_handoffs=v._count_out_of_order(start_row),
            )


def run_variants(core, variants, iterations, first=0, *, parallel=None):
    """Run every variant of one shared core for ``iterations`` iterations
    through the batched kernel lane; returns one ``IterationRecord`` list
    per variant, each bit-identical to
    ``variants[i].run_iterations(first, iterations)``.

    ``core`` must be the (single) ``CompiledCore`` every variant wraps —
    passing it explicitly keeps call sites honest about the shared-core
    contract the batched kernel entry relies on.
    """
    for v in variants:
        if v.core is not core:
            raise ValueError(
                "run_variants: every variant must wrap the given core"
            )
    out: list[list[IterationRecord]] = [[] for _ in variants]
    for vi, record in iter_variant_records(
        variants, iterations, first, parallel=parallel
    ):
        out[vi].append(record)
    return out


