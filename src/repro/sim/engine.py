"""Discrete-event execution engine (the TensorFlow-runtime stand-in).

Executes one cluster-iteration DAG over explicit resources:

* one **compute resource** per device (worker or PS) executing one op at a
  time, picking from its ready queue per the §3.1 rule — lowest priority
  number first, uniformly random among ties and unprioritized ops;
* one **egress NIC** per device and one **ingress NIC** per device. Every
  worker↔PS pair has a directional *channel* (gRPC: one channel per pair);
  a channel's transfers are serialized in hand-off order, and a NIC shares
  its bandwidth across its channels the way a real NIC shares across TCP
  connections — modeled by serving transfers in fixed-size **chunks**,
  round-robin over channels, each chunk occupying the source egress and
  destination ingress NICs exclusively for its wire time. A transfer
  completes one RPC latency after its last chunk.

Transfer ordering follows the configured enforcement mode (see
:mod:`repro.sim.config`): the paper's sender-side counters gate each
parameter transfer's *hand-off* (the zero-cost PS ``send`` activation op),
so the channel still pipelines; ``dag`` mode holds each transfer until its
priority predecessor has *completed* (the §5.1 strawman, which forfeits
pipelining and pays one RPC latency per transfer); ``ready_queue`` applies
priorities at the channel queue; ``none`` ignores priorities.

The engine is deterministic given (cluster, platform, schedule, config,
iteration index).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.schedules import Schedule, chunk_ranks
from ..graph import OpKind, ResourceKind
from ..ps.cluster import ClusterGraph
from ..timing import Platform
from .config import SimConfig

# Event codes (heap entries are (time, seq, code, op_id)).
_COMPUTE_DONE = 0
_TRANSFER_DONE = 1
_CHUNK_DONE = 2


@dataclass
class IterationRecord:
    """Raw outcome of one simulated iteration."""

    makespan: float
    start: np.ndarray
    end: np.ndarray
    #: dedicated-resource duration of each op (oracle-style time: compute
    #: time, or wire+latency for transfers) — the Time(op) of Eq. 1-3.
    dedicated: np.ndarray
    #: count of param transfers that hit the wire out of priority order
    #: (the residual gRPC reordering the paper measured at 0.4-0.5%).
    out_of_order_handoffs: int = 0


class CompiledSimulation:
    """A cluster graph compiled to flat arrays, executable per iteration.

    ``cluster`` is either a PS :class:`~repro.ps.cluster.ClusterGraph` or a
    collective :class:`~repro.collectives.CollectiveGraph` — the engine
    only consumes their shared surface (``graph``, ``transfers_by_link``,
    ``worker_ops``) plus, for collective graphs, the chunk metadata that
    lowers schedule priorities onto chunk transfer ops.
    """

    def __init__(
        self,
        cluster: ClusterGraph,
        platform: Platform,
        schedule: Optional[Schedule] = None,
        config: Optional[SimConfig] = None,
    ) -> None:
        self.cluster = cluster
        self.platform = platform
        self.schedule = schedule if schedule is not None else Schedule("baseline")
        self.config = config or SimConfig()
        g = cluster.graph
        n = self.n = len(g)

        # --- dependency structure -------------------------------------
        self.base_indeg = np.array([g.in_degree(i) for i in range(n)], dtype=np.int32)
        succ_lists = [g.succ_ids(i) for i in range(n)]
        self.succ_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum([len(s) for s in succ_lists], out=self.succ_indptr[1:])
        self.succ_indices = (
            np.fromiter((s for lst in succ_lists for s in lst), dtype=np.int64)
            if self.succ_indptr[-1]
            else np.zeros(0, dtype=np.int64)
        )

        # --- resources --------------------------------------------------
        self._res_index: dict[str, int] = {}
        self.is_transfer = np.zeros(n, dtype=bool)
        self.op_res = np.full(n, -1, dtype=np.int64)  # compute ops
        self.t_egress = np.full(n, -1, dtype=np.int64)
        self.t_ingress = np.full(n, -1, dtype=np.int64)
        self.base_dur = np.zeros(n)
        self.wire_base = np.zeros(n)
        self.lat = np.zeros(n)
        for op in g:
            if op.resource is None:
                raise ValueError(f"op {op.name!r} has no resource tag")
            if op.resource.kind is ResourceKind.LINK:
                src, dst = op.resource.name[len("link:"):].split("->")
                self.is_transfer[op.op_id] = True
                self.t_egress[op.op_id] = self._rid(f"nic_out:{src}")
                self.t_ingress[op.op_id] = self._rid(f"nic_in:{dst}")
                self.wire_base[op.op_id] = op.cost / platform.bandwidth_bps
                self.lat[op.op_id] = platform.rpc_latency_s
            else:
                self.op_res[op.op_id] = self._rid(op.resource.name)
                self.base_dur[op.op_id] = platform.op_time(op)
        self.n_res = len(self._res_index)
        #: per egress NIC, the ordered list of ingress NICs it talks to.
        self._egress_channel_order: dict[int, list[int]] = {}
        for op_id in np.flatnonzero(self.is_transfer):
            eid, iid = int(self.t_egress[op_id]), int(self.t_ingress[op_id])
            chans = self._egress_channel_order.setdefault(eid, [])
            if iid not in chans:
                chans.append(iid)
        self.chunk_wire = self.config.chunk_bytes / platform.bandwidth_bps
        #: collective chunk transfers (reduce-scatter/all-gather steps);
        #: gated by priority rank at the channel queue, not by §5.1
        #: sender counters (there is no PS-side hand-off op to gate).
        self.is_chunk = np.zeros(n, dtype=bool)
        for transfers in cluster.transfers_by_link.values():
            for t in transfers:
                if t.kind == "chunk":
                    self.is_chunk[t.op_id] = True
        #: concurrent-capacity per resource: compute engines run one op at
        #: a time; a NIC sustains platform.nic_slots(device) full-rate
        #: connections (PS NICs are fatter than worker NICs in envG).
        self.capacity = np.ones(self.n_res, dtype=np.int64)
        for name, rid in self._res_index.items():
            if name.startswith(("nic_out:", "nic_in:")):
                device = name.split(":", 1)[1]
                self.capacity[rid] = platform.nic_slots(device)

        # --- enforcement gates & priorities ----------------------------
        self.handoff_gate: dict[int, tuple[int, int]] = {}  # activation op -> (ch, rank)
        self.dag_gate: dict[int, tuple[int, int]] = {}  # transfer op -> (ch, rank)
        self.prio: dict[int, int] = {}  # transfer op -> priority rank
        self.n_channels = 0
        if not self.schedule.is_empty and self.config.enforcement != "none":
            self._compile_gates(g)

        self._jitter_sigma = (
            platform.jitter_sigma
            if self.config.jitter_sigma is None
            else self.config.jitter_sigma
        )

        # Static per-op slowdown multipliers (compute ops of slow devices).
        self.slowdown = np.ones(n)
        if self.config.device_slowdown:
            factors = dict(self.config.device_slowdown)
            for op in g:
                f = factors.get(op.device)
                if f is not None and not self.is_transfer[op.op_id]:
                    self.slowdown[op.op_id] = f
        self.base_dur = self.base_dur * self.slowdown

    # ------------------------------------------------------------------
    def _rid(self, name: str) -> int:
        rid = self._res_index.get(name)
        if rid is None:
            rid = self._res_index[name] = len(self._res_index)
        return rid

    def resource_names(self) -> list[str]:
        """Resource names in id order (compute + NIC resources)."""
        return [name for name, _ in sorted(self._res_index.items(), key=lambda kv: kv[1])]

    def _compile_gates(self, g) -> None:
        mode = self.config.enforcement
        # Collective chunk transfers: lower the per-parameter schedule
        # onto chunk ranks once, globally (prio comparisons only ever
        # happen within one channel queue, so global dense ranks serve).
        if self.is_chunk.any() and self.config.chunk_queue == "priority":
            ranks = chunk_ranks(
                self.schedule,
                self.cluster.chunk_params,
                self.cluster.chunk_order,
            )
            for transfers in self.cluster.transfers_by_link.values():
                for t in transfers:
                    if t.kind == "chunk":
                        self.prio[t.op_id] = ranks[t.param]
        for link, transfers in sorted(
            self.cluster.transfers_by_link.items(), key=lambda kv: kv[0].name
        ):
            # One §5.1 counter per (channel, iteration): unrolled windows
            # restart the count every iteration, exactly as deployed.
            by_iteration: dict[int, list] = {}
            for t in transfers:
                if t.kind == "param":
                    by_iteration.setdefault(t.iteration, []).append(t)
            for k in sorted(by_iteration):
                group = by_iteration[k]
                by_param = {t.param: t for t in group}
                ranks = self.schedule.normalized([t.param for t in group])
                ch = self.n_channels
                self.n_channels += 1
                for param, rank in ranks.items():
                    op_id = by_param[param].op_id
                    if mode == "ready_queue":
                        self.prio[op_id] = rank
                    elif mode == "dag":
                        self.dag_gate[op_id] = (ch, rank)
                    else:  # sender
                        activation = self._find_activation(g, op_id)
                        self.handoff_gate[activation] = (ch, rank)

    @staticmethod
    def _find_activation(g, transfer_op_id: int) -> int:
        """The PS-side send-activation op feeding a param transfer (§5.1's
        hand-off point)."""
        for pred in g.predecessors(transfer_op_id):
            if pred.kind is OpKind.SEND and pred.attrs.get("activation_only"):
                return pred.op_id
        raise ValueError(
            f"param transfer {g.op(transfer_op_id).name!r} has no send activation"
        )

    # ------------------------------------------------------------------
    def run_iteration(self, iteration: int = 0) -> IterationRecord:
        """Execute one iteration; deterministic in ``iteration`` and config."""
        cfg = self.config
        rng = np.random.default_rng(np.random.SeedSequence((cfg.seed, iteration)))
        n = self.n
        if self._jitter_sigma > 0:
            factors = rng.lognormal(0.0, self._jitter_sigma, n)
        else:
            factors = np.ones(n)
        dur = self.base_dur * factors
        wire = self.wire_base * factors
        chunk_of = self.chunk_wire * factors  # per-transfer jittered chunk time
        dedicated = np.where(self.is_transfer, wire + self.lat, dur)

        indeg = self.base_indeg.copy()
        start = np.full(n, np.nan)
        end = np.full(n, np.nan)
        active = np.zeros(self.n_res, dtype=np.int64)
        cap = self.capacity
        cqueues: list[list[int]] = [[] for _ in range(self.n_res)]  # compute queues
        # per (egress, ingress) channel: FIFO of handed-off transfers and a
        # flag marking a chunk currently on the wire (a gRPC channel is one
        # TCP connection: its chunks serialize at the connection rate).
        chq: dict[tuple[int, int], list[int]] = {}
        ch_busy: dict[tuple[int, int], bool] = {}
        rr_ptr: dict[int, int] = {eid: 0 for eid in self._egress_channel_order}
        rem_wire = wire.copy()  # outstanding wire seconds per transfer
        started = np.zeros(n, dtype=bool)
        ch_handoff = [0] * self.n_channels  # sender counters (§5.1)
        ch_complete = [0] * self.n_channels  # dag-mode completion counters
        fabric_cap = cfg.fabric_slots  # shared-fabric congestion (§7)
        fabric_active = 0

        heap: list[tuple[float, int, int, int]] = []
        seq = 0

        def push(t: float, code: int, op: int) -> None:
            nonlocal seq
            heapq.heappush(heap, (t, seq, code, op))
            seq += 1

        random_compute = cfg.compute_queue == "random"
        mode = cfg.enforcement
        noise = cfg.grpc_reorder_prob if mode == "sender" else 0.0

        # --- compute dispatch -------------------------------------------
        def pick_compute(queue: list[int]) -> int:
            if self.handoff_gate:
                eligible = [
                    k
                    for k, op in enumerate(queue)
                    if op not in self.handoff_gate
                    or ch_handoff[self.handoff_gate[op][0]] == self.handoff_gate[op][1]
                ]
            else:
                eligible = list(range(len(queue)))
            if not eligible:
                return -1
            if random_compute and len(eligible) > 1:
                return eligible[rng.integers(len(eligible))]
            return eligible[0]

        def dispatch_compute(rid: int, t: float) -> None:
            if active[rid] >= cap[rid] or not cqueues[rid]:
                return
            k = pick_compute(cqueues[rid])
            if k < 0:
                return
            op = cqueues[rid].pop(k)
            gate = self.handoff_gate.get(op)
            if gate is not None:
                ch_handoff[gate[0]] += 1
            active[rid] += 1
            start[op] = t
            push(t + dur[op], _COMPUTE_DONE, op)

        # --- transfer dispatch (chunked, round-robin over channels) ------
        def pick_head(queue: list[int]) -> int:
            """Choose which queued transfer transmits next on a channel.

            Returns an index into ``queue`` or -1 if the channel is gated.
            Once a transfer has started it keeps the channel until done.
            """
            if started[queue[0]]:
                return 0
            if self.prio and (mode == "ready_queue" or self.is_chunk[queue[0]]):
                # Priority pick: the idealized ready-queue semantics, and
                # the gating for collective chunk streams under every
                # enforcement mode but 'none' (see SimConfig.chunk_queue).
                prios = [self.prio.get(op) for op in queue]
                known = [p for p in prios if p is not None]
                lowest = min(known) if known else None
                cands = [k for k, p in enumerate(prios) if p is None or p == lowest]
                return cands[rng.integers(len(cands))] if len(cands) > 1 else cands[0]
            if mode == "none" and len(queue) > 1:
                return int(rng.integers(len(queue)))
            if mode == "dag" and self.dag_gate:
                # Hand-offs are unordered in this mode; find the transfer
                # whose DAG predecessor chain is satisfied.
                for k, op in enumerate(queue):
                    gate = self.dag_gate.get(op)
                    if gate is None or ch_complete[gate[0]] == gate[1]:
                        return k
                return -1
            return 0

        def dispatch_egress(eid: int, t: float) -> None:
            nonlocal fabric_active
            chans = self._egress_channel_order.get(eid)
            if not chans:
                return
            while active[eid] < cap[eid] and (
                fabric_cap is None or fabric_active < fabric_cap
            ):
                ptr = rr_ptr[eid]
                progressed = False
                for step in range(len(chans)):
                    iid = chans[(ptr + step) % len(chans)]
                    key = (eid, iid)
                    if active[iid] >= cap[iid] or ch_busy.get(key):
                        continue
                    queue = chq.get(key)
                    if not queue:
                        continue
                    k = pick_head(queue)
                    if k < 0:
                        continue
                    if k != 0:
                        queue[0], queue[k] = queue[k], queue[0]
                    op = queue[0]
                    if not started[op]:
                        started[op] = True
                        start[op] = t
                    cdur = min(rem_wire[op], chunk_of[op])
                    rem_wire[op] -= cdur
                    if rem_wire[op] <= 1e-18:
                        queue.pop(0)  # wire done; channel moves on (pipelining)
                        push(t + cdur + self.lat[op], _TRANSFER_DONE, op)
                    active[eid] += 1
                    active[iid] += 1
                    fabric_active += 1
                    ch_busy[key] = True
                    push(t + cdur, _CHUNK_DONE, op)
                    rr_ptr[eid] = ((ptr + step) % len(chans)) + 1
                    progressed = True
                    break
                if not progressed:
                    return

        def all_egress_dispatch(t: float) -> None:
            for eid in self._egress_channel_order:
                dispatch_egress(eid, t)

        def make_ready(op: int, t: float) -> None:
            if self.is_transfer[op]:
                key = (int(self.t_egress[op]), int(self.t_ingress[op]))
                q = chq.setdefault(key, [])
                q.append(op)
                # residual gRPC reordering: occasionally a hand-off slips
                # one slot (the paper measured 0.4-0.5% of transfers).
                if noise > 0 and len(q) >= 2 and rng.random() < noise:
                    q[-1], q[-2] = q[-2], q[-1]
                dispatch_egress(key[0], t)
            else:
                rid = self.op_res[op]
                cqueues[rid].append(op)
                dispatch_compute(rid, t)

        # --- initialization -----------------------------------------------
        for op in np.flatnonzero(self.base_indeg == 0):
            make_ready(int(op), 0.0)

        # --- main loop -----------------------------------------------------
        succ_indptr, succ_indices = self.succ_indptr, self.succ_indices
        while heap:
            t, _, code, op = heapq.heappop(heap)
            if code == _CHUNK_DONE:
                eid, iid = int(self.t_egress[op]), int(self.t_ingress[op])
                active[eid] -= 1
                active[iid] -= 1
                fabric_active -= 1
                ch_busy[(eid, iid)] = False
                dispatch_egress(eid, t)
                # the freed ingress (or fabric slot) may unblock transfers
                # queued at other NICs
                if active[iid] < cap[iid] or fabric_cap is not None:
                    for other in self._egress_channel_order:
                        if other != eid:
                            dispatch_egress(other, t)
                continue
            end[op] = t
            if code == _COMPUTE_DONE:
                rid = self.op_res[op]
                active[rid] -= 1
                dispatch_compute(rid, t)
            else:  # _TRANSFER_DONE
                gate_info = self.dag_gate.get(op)
                if gate_info is not None:
                    ch_complete[gate_info[0]] += 1
                    all_egress_dispatch(t)  # dag gates may have opened
            for j in range(succ_indptr[op], succ_indptr[op + 1]):
                s = int(succ_indices[j])
                indeg[s] -= 1
                if indeg[s] == 0:
                    make_ready(s, t)

        if np.isnan(end).any():  # pragma: no cover - would indicate a bug
            stuck = int(np.isnan(end).sum())
            raise RuntimeError(f"simulation deadlock: {stuck} ops never ran")
        return IterationRecord(
            makespan=float(np.nanmax(end)),
            start=start,
            end=end,
            dedicated=dedicated,
            out_of_order_handoffs=self._count_out_of_order(start),
        )

    # ------------------------------------------------------------------
    def _count_out_of_order(self, start: np.ndarray) -> int:
        """Param transfers that hit the wire out of priority order."""
        if self.schedule.is_empty or self.config.enforcement == "none":
            return 0
        count = 0
        for link, transfers in self.cluster.transfers_by_link.items():
            by_iteration: dict[int, list] = {}
            for t in transfers:
                if t.kind == "param":
                    by_iteration.setdefault(t.iteration, []).append(t)
            for group in by_iteration.values():
                ranks = self.schedule.normalized([t.param for t in group])
                ordered = sorted(group, key=lambda t: start[t.op_id])
                for pos, t in enumerate(ordered):
                    if ranks[t.param] != pos:
                        count += 1
        return count

    # ------------------------------------------------------------------
    def resource_loads(self, record: IterationRecord) -> dict[str, float]:
        """Dedicated-time load per effective resource for one iteration:
        compute loads plus per-NIC wire loads (a transfer loads both its
        egress and its ingress NIC; multi-slot NICs divide their load by
        their slot count). This is Eq. 2's inner sum under the simulator's
        true resource model."""
        names = self.resource_names()
        loads = np.zeros(self.n_res)
        wire_actual = record.dedicated - self.lat  # wire component
        for op_id in range(self.n):
            if self.is_transfer[op_id]:
                loads[self.t_egress[op_id]] += wire_actual[op_id]
                loads[self.t_ingress[op_id]] += wire_actual[op_id]
            else:
                loads[self.op_res[op_id]] += record.end[op_id] - record.start[op_id]
        loads /= self.capacity
        out = dict(zip(names, loads.tolist()))
        if self.config.fabric_slots is not None:
            out["fabric"] = float(
                wire_actual[self.is_transfer].sum() / self.config.fabric_slots
            )
        return out
