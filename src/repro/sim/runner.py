"""High-level simulation entry points.

:func:`simulate_cluster` is the one call experiments make: model name ->
schedule (via the ordering wizard) -> cluster graph -> compiled simulation
-> recorded iterations with the paper's metrics. Mirrors the paper's
measurement protocol: discard warm-up iterations, record the next N
(§6 Setup: discard 2, record 10).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..backends import build_comm_graph, prepare_comm_schedule
from ..core.schedules import Schedule
from ..models import build_model
from ..models.ir import ModelIR
from ..ps.cluster import ClusterGraph, ClusterSpec
from ..timing import Platform, get_platform
from .config import SimConfig
from .engine import CompiledCore, SimVariant
from .metrics import SimulationResult, summarize_iteration


def prepare_schedule(
    ir: ModelIR,
    spec: ClusterSpec,
    algorithm: str,
    platform: Platform,
    *,
    trace_runs: int = 5,
    seed: int = 0,
) -> Schedule:
    """Offline ordering-wizard pass for a cluster configuration (§5):
    build the reference worker partition, trace it for TAC's oracle,
    run the heuristic. Dispatches on the spec's backend (PS or
    collective) and memoizes identical passes within the process — see
    :func:`repro.backends.prepare_comm_schedule`."""
    return prepare_comm_schedule(
        ir, spec, algorithm, platform, trace_runs=trace_runs, seed=seed
    )


def simulate_cluster(
    model: Union[str, ModelIR],
    spec: ClusterSpec,
    *,
    algorithm: str = "baseline",
    schedule: Optional[Schedule] = None,
    platform: Union[str, Platform] = "envG",
    config: Optional[SimConfig] = None,
    batch_factor: float = 1.0,
    cluster: Optional[ClusterGraph] = None,
    core: Optional[CompiledCore] = None,
) -> SimulationResult:
    """Simulate ``config.iterations`` iterations of one configuration.

    Either pass a precomputed ``schedule`` or an ``algorithm`` name for the
    wizard ('baseline', 'tic', 'tac', 'tic_plus', 'random', 'layerwise',
    'reverse_layerwise'). ``cluster`` short-circuits graph assembly and
    ``core`` short-circuits array compilation when sweeping algorithms
    over one configuration (see :func:`simulate_cell_group`). ``spec``
    selects the communication backend by type: a PS
    :class:`~repro.ps.cluster.ClusterSpec`, a collective
    :class:`~repro.collectives.CollectiveSpec`, or a multi-job
    :class:`~repro.sim.jobmix.JobMixSpec` (several jobs unioned onto
    shared hosts; per-job completions land in
    ``IterationResult.job_finish``).
    """
    plat = get_platform(platform) if isinstance(platform, str) else platform
    cfg = config or SimConfig()
    ir = model if isinstance(model, ModelIR) else build_model(model, batch_factor=batch_factor)
    if core is not None and cluster is None:
        cluster = core.cluster
    if cluster is None:
        cluster = build_comm_graph(ir, spec)
    elif cluster.spec != spec:
        raise ValueError("provided cluster graph was built for a different spec")
    if schedule is None:
        if algorithm == "baseline":
            schedule = Schedule("baseline")
        else:
            schedule = prepare_schedule(ir, spec, algorithm, plat, seed=cfg.seed)

    if core is None:
        core = CompiledCore(cluster, plat)
    elif core.cluster is not cluster or core.platform != plat:
        raise ValueError("provided core was compiled for a different cluster/platform")
    sim = SimVariant(core, schedule, cfg)
    result = SimulationResult(
        model=ir.name,
        batch_size=ir.batch_size,
        n_workers=spec.n_workers,
        n_ps=spec.n_ps,
        workload=spec.workload,
        algorithm=schedule.algorithm,
        platform=plat.name,
        n_params=ir.n_param_tensors,
    )
    # iter_iterations streams records (slabbed batch setup inside): each
    # is summarized and dropped, so 1000-iteration protocols stay O(n).
    for i, record in enumerate(sim.iter_iterations(0, cfg.total_iterations)):
        summary = summarize_iteration(sim, record, keep_op_times=cfg.keep_op_times)
        (result.warmup if i < cfg.warmup else result.iterations).append(summary)
    return result


def simulate_cell_group(
    model: Union[str, ModelIR],
    spec: ClusterSpec,
    variants: Sequence[tuple[str, Optional[SimConfig]]],
    *,
    platform: Union[str, Platform] = "envG",
    batch_factor: float = 1.0,
) -> list[SimulationResult]:
    """Compile once, simulate many: build the model IR, the cluster graph
    AND the engine's :class:`~repro.sim.engine.CompiledCore` arrays a
    single time, then bind a lightweight
    :class:`~repro.sim.engine.SimVariant` per ``(algorithm, config)``
    variant. This is the sweep runner's unit of work — a grid's algorithms
    and iteration counts differ only in ``Schedule`` and ``SimConfig``, so
    recompiling the dependency CSR/resource/channel arrays per cell (as
    earlier revisions did) is pure waste. Each variant is still fully
    deterministic in its own config: the engine seeds from
    ``(config.seed, iteration)`` and never mutates the core or the cluster
    graph, so results are identical to separate one-shot
    :func:`simulate_cluster` calls."""
    plat = get_platform(platform) if isinstance(platform, str) else platform
    ir = model if isinstance(model, ModelIR) else build_model(model, batch_factor=batch_factor)
    cluster = build_comm_graph(ir, spec)
    core = CompiledCore(cluster, plat)
    return [
        simulate_cluster(ir, spec, algorithm=algorithm, platform=plat,
                         config=config, cluster=cluster, core=core)
        for algorithm, config in variants
    ]


def throughput_gain_pct(sched: SimulationResult, base: SimulationResult) -> float:
    """Relative throughput gain of a scheduled run over a baseline run, in
    percent (the quantity plotted in Fig. 7, 9, 10, 13)."""
    return (sched.throughput - base.throughput) / base.throughput * 100.0


def speedup_vs_baseline(
    model: Union[str, ModelIR],
    spec: ClusterSpec,
    *,
    algorithm: str = "tic",
    platform: Union[str, Platform] = "envG",
    config: Optional[SimConfig] = None,
    batch_factor: float = 1.0,
) -> tuple[float, SimulationResult, SimulationResult]:
    """Throughput gain of ``algorithm`` over the no-scheduling baseline, in
    percent (the quantity plotted in Fig. 7, 9, 10, 13)."""
    base, sched = simulate_cell_group(
        model, spec, [("baseline", config), (algorithm, config)],
        platform=platform, batch_factor=batch_factor,
    )
    return throughput_gain_pct(sched, base), sched, base
