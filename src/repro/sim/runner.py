"""High-level simulation entry points.

:func:`simulate_cluster` is the one call experiments make: model name ->
schedule (via the ordering wizard) -> cluster graph -> compiled simulation
-> recorded iterations with the paper's metrics. Mirrors the paper's
measurement protocol: discard warm-up iterations, record the next N
(§6 Setup: discard 2, record 10).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..backends import build_comm_graph, prepare_comm_schedule
from ..core.schedules import Schedule
from ..models import build_model
from ..models.ir import ModelIR
from ..ps.cluster import ClusterGraph, ClusterSpec
from ..timing import Platform, get_platform
from .config import SimConfig
from .engine import CompiledSimulation
from .metrics import SimulationResult, summarize_iteration


def prepare_schedule(
    ir: ModelIR,
    spec: ClusterSpec,
    algorithm: str,
    platform: Platform,
    *,
    trace_runs: int = 5,
    seed: int = 0,
) -> Schedule:
    """Offline ordering-wizard pass for a cluster configuration (§5):
    build the reference worker partition, trace it for TAC's oracle,
    run the heuristic. Dispatches on the spec's backend (PS or
    collective) and memoizes identical passes within the process — see
    :func:`repro.backends.prepare_comm_schedule`."""
    return prepare_comm_schedule(
        ir, spec, algorithm, platform, trace_runs=trace_runs, seed=seed
    )


def simulate_cluster(
    model: Union[str, ModelIR],
    spec: ClusterSpec,
    *,
    algorithm: str = "baseline",
    schedule: Optional[Schedule] = None,
    platform: Union[str, Platform] = "envG",
    config: Optional[SimConfig] = None,
    batch_factor: float = 1.0,
    cluster: Optional[ClusterGraph] = None,
) -> SimulationResult:
    """Simulate ``config.iterations`` iterations of one configuration.

    Either pass a precomputed ``schedule`` or an ``algorithm`` name for the
    wizard ('baseline', 'tic', 'tac', 'tic_plus', 'random', 'layerwise',
    'reverse_layerwise'). ``cluster`` short-circuits graph assembly when
    sweeping algorithms over one configuration. ``spec`` selects the
    communication backend by type: a PS
    :class:`~repro.ps.cluster.ClusterSpec` or a collective
    :class:`~repro.collectives.CollectiveSpec`.
    """
    plat = get_platform(platform) if isinstance(platform, str) else platform
    cfg = config or SimConfig()
    ir = model if isinstance(model, ModelIR) else build_model(model, batch_factor=batch_factor)
    if cluster is None:
        cluster = build_comm_graph(ir, spec)
    elif cluster.spec != spec:
        raise ValueError("provided cluster graph was built for a different spec")
    if schedule is None:
        if algorithm == "baseline":
            schedule = Schedule("baseline")
        else:
            schedule = prepare_schedule(ir, spec, algorithm, plat, seed=cfg.seed)

    sim = CompiledSimulation(cluster, plat, schedule, cfg)
    result = SimulationResult(
        model=ir.name,
        batch_size=ir.batch_size,
        n_workers=spec.n_workers,
        n_ps=spec.n_ps,
        workload=spec.workload,
        algorithm=schedule.algorithm,
        platform=plat.name,
        n_params=ir.n_param_tensors,
    )
    for i in range(cfg.warmup + cfg.iterations):
        record = sim.run_iteration(i)
        summary = summarize_iteration(sim, record, keep_op_times=cfg.keep_op_times)
        (result.warmup if i < cfg.warmup else result.iterations).append(summary)
    return result


def simulate_cell_group(
    model: Union[str, ModelIR],
    spec: ClusterSpec,
    variants: Sequence[tuple[str, Optional[SimConfig]]],
    *,
    platform: Union[str, Platform] = "envG",
    batch_factor: float = 1.0,
) -> list[SimulationResult]:
    """Compile once, simulate many: build the model IR and cluster graph a
    single time and run every ``(algorithm, config)`` variant against the
    shared :class:`ClusterGraph`. This is the sweep runner's unit of work —
    a grid's algorithms and iteration counts differ only in ``Schedule``
    and ``SimConfig``, so recompiling per cell (as the seed's serial loops
    did) is pure waste. Each variant is still fully deterministic in its
    own config: the engine seeds from ``(config.seed, iteration)`` and
    never mutates the cluster graph, so results are identical to separate
    one-shot :func:`simulate_cluster` calls."""
    plat = get_platform(platform) if isinstance(platform, str) else platform
    ir = model if isinstance(model, ModelIR) else build_model(model, batch_factor=batch_factor)
    cluster = build_comm_graph(ir, spec)
    return [
        simulate_cluster(ir, spec, algorithm=algorithm, platform=plat,
                         config=config, cluster=cluster)
        for algorithm, config in variants
    ]


def throughput_gain_pct(sched: SimulationResult, base: SimulationResult) -> float:
    """Relative throughput gain of a scheduled run over a baseline run, in
    percent (the quantity plotted in Fig. 7, 9, 10, 13)."""
    return (sched.throughput - base.throughput) / base.throughput * 100.0


def speedup_vs_baseline(
    model: Union[str, ModelIR],
    spec: ClusterSpec,
    *,
    algorithm: str = "tic",
    platform: Union[str, Platform] = "envG",
    config: Optional[SimConfig] = None,
    batch_factor: float = 1.0,
) -> tuple[float, SimulationResult, SimulationResult]:
    """Throughput gain of ``algorithm`` over the no-scheduling baseline, in
    percent (the quantity plotted in Fig. 7, 9, 10, 13)."""
    base, sched = simulate_cell_group(
        model, spec, [("baseline", config), (algorithm, config)],
        platform=platform, batch_factor=batch_factor,
    )
    return throughput_gain_pct(sched, base), sched, base
