"""Per-iteration and per-run measurements (§6's reported quantities).

* **iteration time** — barrier-to-barrier makespan of the cluster DAG;
* **throughput** — ``W x batch / iteration_time`` samples/second (the
  paper's headline metric);
* **straggler time %** — maximum time any worker spends waiting for the
  slowest worker, as a fraction of iteration time (§6.3);
* **scheduling efficiency** — Eq. 3 over the iteration: ``U`` sums every
  op's dedicated (oracle-style) time, ``L`` maxes dedicated load over the
  effective resources (device compute engines and NICs), ``m`` is the
  measured makespan. ``E -> 1`` means the run packed the bottleneck
  resource perfectly; random transfer orders leave the bottleneck idle and
  score low.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.efficiency import EfficiencyReport
from .engine import IterationRecord, SimVariant


@dataclass
class IterationResult:
    """Summarized outcome of one iteration."""

    makespan: float
    worker_finish: dict[str, float]
    #: Eq. 1-3 over the whole iteration.
    efficiency: EfficiencyReport
    out_of_order_handoffs: int = 0
    #: raw per-op times; kept only when SimConfig.keep_op_times is set.
    start: Optional[np.ndarray] = None
    end: Optional[np.ndarray] = None
    #: job label -> last op finish time (multi-job mixes only; a job's
    #: completion time is ``job_finish[j] - arrival[j]``).
    job_finish: dict[str, float] = field(default_factory=dict)

    @property
    def straggler_pct(self) -> float:
        """Max worker wait relative to iteration time, in percent (§6.3)."""
        finishes = list(self.worker_finish.values())
        if len(finishes) <= 1 or self.makespan == 0:
            return 0.0
        return (max(finishes) - min(finishes)) / self.makespan * 100.0


@dataclass
class SimulationResult:
    """All recorded iterations of one simulated run."""

    model: str
    batch_size: int
    n_workers: int
    n_ps: int
    workload: str
    algorithm: str
    platform: str
    iterations: list[IterationResult] = field(default_factory=list)
    #: iterations discarded as warm-up (kept for reference).
    warmup: list[IterationResult] = field(default_factory=list)
    #: parameter-tensor count of the model (for out-of-order rates).
    n_params: int = 0

    @property
    def iteration_times(self) -> np.ndarray:
        return np.array([it.makespan for it in self.iterations])

    @property
    def mean_iteration_time(self) -> float:
        return float(self.iteration_times.mean())

    @property
    def throughput(self) -> float:
        """Mean samples/second across recorded iterations (training and
        inference alike process W x batch samples per iteration)."""
        return self.n_workers * self.batch_size / self.mean_iteration_time

    @property
    def max_straggler_pct(self) -> float:
        """The paper reports the max across iterations (§6 Setup)."""
        return max(it.straggler_pct for it in self.iterations)

    @property
    def mean_straggler_pct(self) -> float:
        return float(np.mean([it.straggler_pct for it in self.iterations]))

    @property
    def efficiencies(self) -> np.ndarray:
        return np.array([it.efficiency.efficiency for it in self.iterations])

    @property
    def max_efficiency(self) -> float:
        return float(self.efficiencies.max())

    @property
    def mean_efficiency(self) -> float:
        return float(self.efficiencies.mean())

    @property
    def out_of_order_rate(self) -> float:
        """Fraction of param transfers that hit the wire out of priority
        order (compare against the paper's measured 0.4-0.5%)."""
        total = sum(it.out_of_order_handoffs for it in self.iterations)
        denom = self.n_params * self.n_workers * max(len(self.iterations), 1)
        return total / denom if denom else 0.0

    def summary(self) -> dict:
        """Flat dict for CSV reporting."""
        return {
            "model": self.model,
            "workload": self.workload,
            "algorithm": self.algorithm,
            "platform": self.platform,
            "workers": self.n_workers,
            "ps": self.n_ps,
            "batch": self.batch_size,
            "iteration_time_s": self.mean_iteration_time,
            "iteration_time_p95_s": float(np.percentile(self.iteration_times, 95)),
            "throughput_sps": self.throughput,
            "straggler_pct_max": self.max_straggler_pct,
            "efficiency_mean": self.mean_efficiency,
        }


def summarize_iteration(
    sim: SimVariant,
    record: IterationRecord,
    *,
    keep_op_times: bool = False,
) -> IterationResult:
    """Reduce one raw :class:`IterationRecord` to its reported metrics."""
    cluster = sim.cluster
    finishes: dict[str, float] = {}
    for worker, op_ids in cluster.worker_ops.items():
        ids = np.asarray(op_ids)
        finishes[worker] = float(record.end[ids].max())
    # Per-job completion (multi-job mixes): last op finish per job label.
    # Computed from the recorded end times, not in the hot loop, so both
    # kernels produce it identically by construction.
    job_finish: dict[str, float] = {}
    for label, op_ids in (getattr(cluster, "job_ops", None) or {}).items():
        ids = np.asarray(list(op_ids))
        job_finish[label] = float(record.end[ids].max())
    loads = sim.resource_loads(record)
    report = EfficiencyReport(
        makespan=record.makespan,
        upper=float(record.dedicated.sum()),
        lower=max(loads.values()),
    )
    return IterationResult(
        makespan=record.makespan,
        worker_finish=finishes,
        efficiency=report,
        out_of_order_handoffs=record.out_of_order_handoffs,
        start=record.start if keep_op_times else None,
        end=record.end if keep_op_times else None,
        job_finish=job_finish,
    )
