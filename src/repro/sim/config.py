"""Simulation configuration knobs.

The defaults reproduce the paper's deployed system: sender-side counter
enforcement in front of the gRPC channel (§5.1) with the residual
reordering rate the paper measured (~0.5%), random executor tie-breaking
(vanilla TensorFlow's behaviour for unprioritized ops), and the platform's
own jitter. The alternatives exist for the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

#: How a schedule's priorities are imposed on the network (§5.1 discusses
#: all candidate points; the paper deploys ``sender``):
#:
#: * ``sender`` — per-(PS,worker,iteration) counters gate each transfer's
#:   hand-off to the channel; hand-offs happen in priority order, channel
#:   pipelining preserved (the paper's choice).
#: * ``ready_queue`` — the idealized §3.1 semantics: the channel's ready
#:   queue picks the lowest-priority-number transfer (random among ties
#:   and unprioritized ops). No counters, no hand-off gating.
#: * ``dag`` — the conservative alternative the paper rejects: transfer k
#:   may not start until transfer k-1 has *completed* (as if chained by
#:   DAG edges), forfeiting request/response pipelining.
#: * ``none`` — ignore priorities entirely (vanilla TF baseline).
ENFORCEMENT_MODES = ("sender", "ready_queue", "dag", "none")

#: Ready-queue policy for compute resources: ``random`` models TF's
#: nondeterministic executor; ``fifo`` is deterministic by ready time.
COMPUTE_QUEUE_POLICIES = ("random", "fifo")

#: Event-loop kernel implementations (see :mod:`repro.sim.kernel`). All
#: of them are bit-exact — the choice is observable only in wall time:
#:
#: * ``auto`` — honour ``REPRO_ENGINE_KERNEL`` if set, else ``numba``
#:   when importable, else ``python``;
#: * ``python`` — the tuned pure-Python loop (always available);
#: * ``numba`` — the ``@njit(cache=True)`` array kernel (requires the
#:   optional numba dependency; explicit requests fail loudly when it
#:   is missing instead of silently falling back);
#: * ``portable`` — the array kernel on any host: identical to ``numba``
#:   where numba is installed, the same source uncompiled (slow)
#:   elsewhere. Lets tests/debug runs pin the array code path without
#:   depending on numba.
from .kernel import KERNELS as ENGINE_KERNELS  # single source of truth

from ..faults.plan import FaultPlan  # noqa: E402  (stdlib-only module)

#: How a schedule's priorities gate *collective chunk* transfers (the
#: reduce-scatter/all-gather ops of :mod:`repro.collectives`). Chunk
#: streams are worker-to-worker pipelines with no PS-side hand-off op, so
#: the §5.1 sender counters and the DAG strawman do not apply; instead a
#: scheduled channel picks from its ready queue:
#:
#: * ``priority`` — lowest chunk rank first (ByteScheduler's priority
#:   queue; applied under every enforcement mode except ``none``);
#: * ``fifo`` — ignore chunk ranks, serve in hand-off order (ablation:
#:   enforcement machinery without priorities).
CHUNK_QUEUE_POLICIES = ("priority", "fifo")


@dataclass(frozen=True)
class SimConfig:
    """Knobs of one simulation run."""

    seed: int = 0
    enforcement: str = "sender"
    compute_queue: str = "random"
    #: collective chunk gating policy (see CHUNK_QUEUE_POLICIES; ignored
    #: by the PS backend, whose transfers follow ``enforcement``).
    chunk_queue: str = "priority"
    #: probability that a hand-off lands one slot early in the gRPC queue
    #: (the paper measured 0.4-0.5% residual out-of-order transfers).
    grpc_reorder_prob: float = 0.005
    #: override the platform's lognormal jitter sigma (None = platform's).
    jitter_sigma: Optional[float] = None
    #: wire-level multiplexing granularity. Distinct gRPC channels are
    #: distinct TCP connections; a NIC shares bandwidth among them at
    #: packet granularity. The simulator serves transfers in chunks of
    #: this many bytes, round-robin across a NIC's channels, which
    #: reproduces that fair sharing without per-packet events.
    chunk_bytes: int = 4 * 2**20
    #: iterations to simulate and how many leading ones to discard (the
    #: paper discards 2 warm-up iterations and records 10).
    iterations: int = 10
    warmup: int = 0
    #: keep per-op start/end arrays on each IterationResult (memory-heavy
    #: for 1000-run experiments; summaries are always kept).
    keep_op_times: bool = False
    #: per-device compute slowdown factors, e.g. (("worker:2", 1.5),) makes
    #: worker:2's compute ops 1.5x slower. Models the *system-level*
    #: straggler source of §6.3 (preempted/oversubscribed cloud workers),
    #: as opposed to the scheduling-induced source TicTac removes.
    device_slowdown: tuple = ()
    #: optional shared-fabric capacity: at most this many chunks in flight
    #: across the whole network (None = unconstrained). The §7 future-work
    #: knob — 'take into account congestion from the network fabric'.
    fabric_slots: Optional[int] = None
    #: event-loop kernel (see ENGINE_KERNELS). Excluded from sweep cache
    #: keys: every kernel is bit-exact, so results are interchangeable.
    kernel: str = "auto"
    #: record per-op trace events (queue-enter, dispatch, finish, queue
    #: depth, per-chunk wire occupancy) on each ``IterationRecord`` (see
    #: :mod:`repro.obs`). Tracing is observational only — it consumes no
    #: RNG and never changes event order, so results are bit-identical
    #: with tracing on or off. Excluded from sweep cache keys (like
    #: ``kernel``): a traced run produces the same numbers as an
    #: untraced one.
    trace: bool = False
    #: declarative fault plan (see :mod:`repro.faults`): time-windowed
    #: link degradation, NIC flaps, straggler bursts and host failures,
    #: honored bit-identically by every kernel. ``None`` (and an empty
    #: plan) is byte-identical to the pre-fault engine. Unlike ``kernel``
    #: and ``trace``, faults DO change results, so a set plan folds into
    #: sweep cache keys (see ``SimCell.key_payload``).
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.enforcement not in ENFORCEMENT_MODES:
            raise ValueError(
                f"enforcement must be one of {ENFORCEMENT_MODES}, got {self.enforcement!r}"
            )
        if self.compute_queue not in COMPUTE_QUEUE_POLICIES:
            raise ValueError(
                f"compute_queue must be one of {COMPUTE_QUEUE_POLICIES}"
            )
        if self.chunk_queue not in CHUNK_QUEUE_POLICIES:
            raise ValueError(
                f"chunk_queue must be one of {CHUNK_QUEUE_POLICIES}"
            )
        if not 0.0 <= self.grpc_reorder_prob <= 1.0:
            raise ValueError("grpc_reorder_prob must be in [0, 1]")
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        for entry in self.device_slowdown:
            device, factor = entry
            if factor <= 0:
                raise ValueError(f"slowdown factor for {device!r} must be > 0")
        if self.fabric_slots is not None and self.fabric_slots <= 0:
            raise ValueError("fabric_slots must be positive or None")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ValueError(
                f"faults must be a FaultPlan or None, got {self.faults!r}"
            )
        if self.kernel not in ENGINE_KERNELS:
            raise ValueError(
                f"kernel must be one of {ENGINE_KERNELS}, got {self.kernel!r}"
            )
        if self.iterations <= 0 or self.warmup < 0 or self.warmup >= self.iterations + 1:
            if self.iterations <= 0 or self.warmup < 0:
                raise ValueError("iterations must be > 0 and warmup >= 0")

    @property
    def total_iterations(self) -> int:
        """Warm-up plus recorded iterations — the count one simulated run
        executes (the batch handed to ``SimVariant.run_iterations``)."""
        return self.warmup + self.iterations

    def with_(self, **changes) -> "SimConfig":
        return replace(self, **changes)
