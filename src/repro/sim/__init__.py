"""Discrete-event simulation of Model-Replica + PS clusters."""

from . import kernel
from .config import (
    COMPUTE_QUEUE_POLICIES,
    ENFORCEMENT_MODES,
    ENGINE_KERNELS,
    SimConfig,
)
from .engine import (
    ENGINE_REV,
    CompiledCore,
    IterationRecord,
    SimVariant,
    iter_variant_records,
    run_variants,
)
from .jobmix import (
    JobMixGraph,
    JobMixSpec,
    JobSpec,
    build_jobmix_graph,
    prepare_jobmix_schedule,
)
from .metrics import IterationResult, SimulationResult, summarize_iteration
from .pipeline import PipelinedResult, simulate_pipelined
from .runner import (
    prepare_schedule,
    simulate_cell_group,
    simulate_cluster,
    speedup_vs_baseline,
    throughput_gain_pct,
)

__all__ = [
    "COMPUTE_QUEUE_POLICIES",
    "ENFORCEMENT_MODES",
    "ENGINE_KERNELS",
    "ENGINE_REV",
    "kernel",
    "SimConfig",
    "CompiledCore",
    "SimVariant",
    "IterationRecord",
    "iter_variant_records",
    "run_variants",
    "IterationResult",
    "SimulationResult",
    "summarize_iteration",
    "JobSpec",
    "JobMixSpec",
    "JobMixGraph",
    "build_jobmix_graph",
    "prepare_jobmix_schedule",
    "PipelinedResult",
    "simulate_pipelined",
    "prepare_schedule",
    "simulate_cell_group",
    "simulate_cluster",
    "speedup_vs_baseline",
    "throughput_gain_pct",
]
