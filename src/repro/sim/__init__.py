"""Discrete-event simulation of Model-Replica + PS clusters."""

from . import kernel
from .config import (
    COMPUTE_QUEUE_POLICIES,
    ENFORCEMENT_MODES,
    ENGINE_KERNELS,
    SimConfig,
)
from .engine import (
    ENGINE_REV,
    CompiledCore,
    CompiledSimulation,
    IterationRecord,
    SimVariant,
)
from .metrics import IterationResult, SimulationResult, summarize_iteration
from .pipeline import PipelinedResult, simulate_pipelined
from .runner import (
    prepare_schedule,
    simulate_cell_group,
    simulate_cluster,
    speedup_vs_baseline,
    throughput_gain_pct,
)

__all__ = [
    "COMPUTE_QUEUE_POLICIES",
    "ENFORCEMENT_MODES",
    "ENGINE_KERNELS",
    "ENGINE_REV",
    "kernel",
    "SimConfig",
    "CompiledCore",
    "CompiledSimulation",
    "SimVariant",
    "IterationRecord",
    "IterationResult",
    "SimulationResult",
    "summarize_iteration",
    "PipelinedResult",
    "simulate_pipelined",
    "prepare_schedule",
    "simulate_cell_group",
    "simulate_cluster",
    "speedup_vs_baseline",
    "throughput_gain_pct",
]
