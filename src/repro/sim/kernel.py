"""Standalone event-loop kernel: the ``SimVariant`` hot loop over flat arrays.

The engine's inner loop exists in two interchangeable implementations
behind one seam (selected via ``SimConfig.kernel`` / the
``REPRO_ENGINE_KERNEL`` environment variable, default ``auto``):

* ``python`` — the tuned pure-Python loop living in
  :meth:`repro.sim.engine.SimVariant._execute` (always available);
* ``numba`` — this module's array-native kernel compiled with
  ``@njit(cache=True)``. Requires the optional ``numba`` dependency
  (``pip install .[fast]``); ``auto`` falls back to ``python`` when it is
  missing. ``portable`` selects the same array kernel but never requires
  numba: it is identical to ``numba`` where numba is installed and runs
  the same functions uncompiled (slowly) elsewhere — so the array code
  path stays testable on every host.

Both implementations are **bit-exact**: same event order, same
floating-point operation order, and the same RNG stream per
``(seed, iteration)`` as ``numpy.random.Generator``. The kernel cannot
call back into a ``Generator``, so it consumes a pre-drawn buffer of raw
PCG64 ``uint64`` outputs and re-implements exactly the two consumers the
loop uses (see ``tests/sim/test_kernel_parity.py`` which pins both
against numpy):

* ``Generator.random()`` — one raw draw: ``(u64 >> 11) * 2**-53``;
* ``Generator.integers(0, total)`` (int64 dtype, ``total < 2**32``) —
  numpy's buffered 32-bit Lemire rejection: raw ``uint64`` draws are
  split low-half-first into ``uint32`` words (the PCG64
  ``has_uint32``/``uinteger`` buffer), and ``m = u32 * total`` is
  rejected while ``low32(m) < (2**32 - total) % total``.

If the buffer runs dry (rejection sampling consumes a variable number of
words) the kernel aborts with a status code and the caller re-runs it
with a longer buffer — iterations are pure functions of their inputs, so
the re-run is bit-identical.

Everything the kernel touches is a flat numpy array; the CSR/slot
layouts are compiled once per :class:`~repro.sim.engine.CompiledCore` /
:class:`~repro.sim.engine.SimVariant` (``core_tables`` /
``variant_tables``) and shared by every iteration.
"""

from __future__ import annotations

import os

import numpy as np

#: numba is an optional dependency: never imported at package import
#: time beyond this guarded probe, never required for the fallback.
try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit
    from numba import prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common container case
    HAVE_NUMBA = False
    prange = range

    def _njit(**kwargs):
        def wrap(fn):
            return fn

        return wrap


def kernel_func(fn):
    """Decorator applied to every kernel function: ``@njit(cache=True)``
    when numba is importable, identity otherwise (the ``portable`` mode
    and numba-less hosts run the same source uncompiled)."""
    return _njit(cache=True)(fn)


#: user-facing kernel names accepted by SimConfig.kernel / the env var.
KERNELS = ("auto", "python", "numba", "portable")

ENV_VAR = "REPRO_ENGINE_KERNEL"

#: opt-in ``prange`` parallelism across the rows of a batched dispatch
#: (ISSUE 8). Off by default: rows are independent and consume their own
#: pre-drawn RNG streams, so turning it on is bit-exact — but it claims
#: every core of the host, which a ``--jobs N`` sweep already does at
#: the process level.
PARALLEL_ENV_VAR = "REPRO_ENGINE_PARALLEL"
_PARALLEL_OFF = ("0", "off", "false", "no")
_PARALLEL_ON = ("1", "on", "true", "yes")

# kernel exit statuses
_OK = 0
_RAW_EXHAUSTED = 1
_HEAP_OVERFLOW = 2
_TRACE_OVERFLOW = 3

# scalar-state slots (st int64 array)
_SEQ = 0
_STAMP = 1
_FABRIC = 2
_HEAP_LEN = 3
_STATUS = 4
#: chunk-trace write cursor (next free slot of the tce_* arrays).
_TRACE = 5

_U32_MASK = np.uint64(0xFFFFFFFF)
_U64_INV53 = 1.0 / 9007199254740992.0  # 2**-53


def _did_you_mean(value: str, known) -> str:
    """The standard suggestion suffix used across the CLI surfaces."""
    import difflib

    hints = difflib.get_close_matches(value, list(known), n=1)
    return f" — did you mean {hints[0]!r}?" if hints else ""


def resolve(name: str) -> str:
    """Resolve a configured kernel name to an implementation name.

    ``auto`` consults ``REPRO_ENGINE_KERNEL`` and falls back to numba
    when importable, else python. Requesting ``numba`` explicitly on a
    host without numba raises (CI leans on this to fail loudly instead
    of silently regressing to the fallback)."""
    if name == "auto":
        env = os.environ.get(ENV_VAR, "").strip()
        if env:
            if env not in KERNELS:
                raise ValueError(
                    f"{ENV_VAR}={env!r} is not one of {KERNELS}"
                    + _did_you_mean(env, KERNELS)
                )
            name = env
    if name == "auto":
        return "numba" if HAVE_NUMBA else "python"
    if name == "numba" and not HAVE_NUMBA:
        raise RuntimeError(
            "kernel 'numba' was requested explicitly but numba is not "
            "importable; install the optional dependency "
            "(pip install 'tictac-repro[fast]') or use kernel 'auto'/"
            "'python'"
        )
    if name not in KERNELS or name == "auto":
        raise ValueError(f"unknown engine kernel {name!r}; expected one of {KERNELS}")
    return name


def resolve_parallel() -> bool:
    """Resolve ``REPRO_ENGINE_PARALLEL`` to a bool (default off).

    Unknown values raise with a suggestion instead of being silently
    ignored — a typo like ``REPRO_ENGINE_PARALLEL=ture`` must not quietly
    run serial. On hosts without numba the flag is accepted but has no
    effect (the batched entry runs the same source uncompiled, serially).
    """
    raw = os.environ.get(PARALLEL_ENV_VAR, "")
    value = raw.strip().lower()
    if not value or value in _PARALLEL_OFF:
        return False
    if value in _PARALLEL_ON:
        return True
    known = _PARALLEL_ON + _PARALLEL_OFF
    raise ValueError(
        f"{PARALLEL_ENV_VAR}={raw!r} is not one of {known}"
        + _did_you_mean(value, known)
    )


def loop_for(resolved: str):
    """The event-loop callable for a resolved kernel name, or ``None``
    when the engine should use its built-in python loop."""
    if resolved == "python":
        return None
    # 'numba' and 'portable' share one callable: _event_loop is jitted
    # at module level when numba is present, plain otherwise.
    return _event_loop


# ----------------------------------------------------------------------
# compiled tables
# ----------------------------------------------------------------------
class CoreTables:
    """Schedule-independent kernel arrays of one ``CompiledCore``."""

    def __init__(self, core) -> None:
        n = core.n
        self.n = n
        self.succ_indptr = np.ascontiguousarray(core.succ_indptr, dtype=np.int64)
        self.succ_indices = np.ascontiguousarray(core.succ_indices, dtype=np.int64)
        self.base_indeg = np.ascontiguousarray(core.base_indeg, dtype=np.int64)
        self.is_transfer = core.is_transfer.astype(np.uint8)
        self.is_chunk = core.is_chunk.astype(np.uint8)
        self.op_res = np.ascontiguousarray(core.op_res, dtype=np.int64)
        self.t_egress = np.ascontiguousarray(core.t_egress, dtype=np.int64)
        self.t_ingress = np.ascontiguousarray(core.t_ingress, dtype=np.int64)
        self.t_chan = np.ascontiguousarray(core.t_chan, dtype=np.int64)
        self.lat = np.ascontiguousarray(core.lat, dtype=np.float64)
        self.capacity = np.ascontiguousarray(core.capacity, dtype=np.int64)
        self.chan_iid = np.array(core.chan_iid, dtype=np.int64)
        self.eg_pos = np.array(core.eg_pos, dtype=np.int64)
        self.egress_ids = np.array(core.egress_ids, dtype=np.int64)
        self.eg_chan_indptr = np.zeros(len(core.eg_chan_lists) + 1, dtype=np.int64)
        np.cumsum(
            [len(chans) for chans in core.eg_chan_lists],
            out=self.eg_chan_indptr[1:],
        )
        self.eg_chan_indices = np.array(
            [c for chans in core.eg_chan_lists for c in chans], dtype=np.int64
        )
        self.q_base = np.array(core.q_base, dtype=np.int64)
        self.roots = np.array(core.roots, dtype=np.int64)
        self.root_times = np.ascontiguousarray(core.root_times, dtype=np.float64)
        # plain compute queues: each resource holds at most its own
        # compute-op count at once (every op is enqueued exactly once).
        counts = np.bincount(
            core.op_res[~core.is_transfer], minlength=core.n_res
        ).astype(np.int64)
        self.pq_base = np.zeros(core.n_res + 1, dtype=np.int64)
        np.cumsum(counts, out=self.pq_base[1:])
        # in-heap events are bounded by pending latency tails (<= n) plus
        # concurrently active compute/chunk slots (<= sum of capacities)
        # plus deferred job-mix root arrivals (<= root count).
        self.heap_cap = int(
            n + int(self.capacity.sum()) + self.roots.shape[0] + 64
        )
        #: initial raw-uint64 budget per iteration; the kernel aborts and
        #: the caller doubles it in the (rare) rejection-heavy case.
        self.raw_init = 4 * n + 1024


def _window_csr(windows):
    """CSR-pack per-entity fault window lists (ISSUE 9): ``windows`` is
    one entry per compute resource / wire channel, each ``None`` or a
    sorted ``[(w0, w1, rate), ...]``. Returns (indptr, w0, w1, rate);
    an all-``None`` input packs to all-empty rows — the kernels then
    take the literal fault-free branches."""
    indptr = np.zeros(len(windows) + 1, dtype=np.int64)
    np.cumsum(
        [0 if ws is None else len(ws) for ws in windows], out=indptr[1:]
    )
    total = int(indptr[-1])
    w0 = np.zeros(total, dtype=np.float64)
    w1 = np.zeros(total, dtype=np.float64)
    rate = np.zeros(total, dtype=np.float64)
    i = 0
    for ws in windows:
        if ws:
            for a, b, r in ws:
                w0[i] = a
                w1[i] = b
                rate[i] = r
                i += 1
    return indptr, w0, w1, rate


class VariantTables:
    """Schedule/config-dependent kernel arrays of one ``SimVariant``."""

    def __init__(self, variant) -> None:
        core = variant.core
        cfg = variant.config
        self.hg_ch = np.array(variant._hg_ch, dtype=np.int64)
        self.hg_rank = np.array(variant._hg_rank, dtype=np.int64)
        self.dg_ch = np.array(variant._dg_ch, dtype=np.int64)
        self.dg_rank = np.array(variant._dg_rank, dtype=np.int64)
        self.prio = np.array(variant._prio_arr, dtype=np.int64)
        self.rc_indptr = np.zeros(core.n_res + 1, dtype=np.int64)
        np.cumsum(
            [len(chans) for chans in variant._res_channels],
            out=self.rc_indptr[1:],
        )
        self.rc_indices = np.array(
            [c for chans in variant._res_channels for c in chans], dtype=np.int64
        )
        self.gs_base = np.zeros(variant.n_channels + 1, dtype=np.int64)
        np.cumsum(variant._chan_size, out=self.gs_base[1:])
        self.mode = ("sender", "ready_queue", "dag", "none").index(cfg.enforcement)
        self.noise = float(cfg.grpc_reorder_prob) if cfg.enforcement == "sender" else 0.0
        self.fabric_cap = -1 if cfg.fabric_slots is None else int(cfg.fabric_slots)
        self.random_compute = cfg.compute_queue == "random"
        self.has_dag = bool(variant.dag_gate)
        self.has_prio = bool(variant.prio)
        # fault-window CSRs (ISSUE 9): empty rows for unfaulted entities.
        self.fc_indptr, self.fc_w0, self.fc_w1, self.fc_rate = _window_csr(
            variant._fault_comp
        )
        self.fw_indptr, self.fw_w0, self.fw_w1, self.fw_rate = _window_csr(
            variant._fault_wire
        )


def core_tables(core) -> CoreTables:
    """The (cached) kernel table set of a compiled core."""
    tables = getattr(core, "_kernel_tables", None)
    if tables is None:
        tables = core._kernel_tables = CoreTables(core)
    return tables


def variant_tables(variant) -> VariantTables:
    tables = getattr(variant, "_kernel_variant_tables", None)
    if tables is None:
        tables = variant._kernel_variant_tables = VariantTables(variant)
    return tables


def _flat_with_offsets(arrays, dtype):
    """CSR-pack variable-length per-variant arrays: (flat, offsets)."""
    off = np.zeros(len(arrays) + 1, dtype=np.int64)
    np.cumsum([a.shape[0] for a in arrays], out=off[1:])
    if off[-1]:
        flat = np.ascontiguousarray(np.concatenate(arrays), dtype=dtype)
    else:
        flat = np.zeros(0, dtype=dtype)
    return flat, off


class StackedVariantTables:
    """Several same-core variants' tables stacked along a leading axis.

    This is what the variant-batched kernel entry consumes: the dense
    per-op arrays become ``(V, n)`` matrices, the variable-length ones
    (channel lists, group-slot bases) CSR-pack into flat+offset pairs,
    and the per-variant scalars become length-``V`` vectors. Values are
    exactly the :class:`VariantTables` entries — stacking changes layout,
    never content.
    """

    def __init__(self, variants) -> None:
        vts = [variant_tables(v) for v in variants]
        self.hg_ch = np.stack([vt.hg_ch for vt in vts])
        self.hg_rank = np.stack([vt.hg_rank for vt in vts])
        self.dg_ch = np.stack([vt.dg_ch for vt in vts])
        self.dg_rank = np.stack([vt.dg_rank for vt in vts])
        self.prio = np.stack([vt.prio for vt in vts])
        self.rc_indptr = np.stack([vt.rc_indptr for vt in vts])
        self.rc_indices, self.rc_off = _flat_with_offsets(
            [vt.rc_indices for vt in vts], np.int64
        )
        self.gs_base, self.gsb_off = _flat_with_offsets(
            [vt.gs_base for vt in vts], np.int64
        )
        self.mode = np.array([vt.mode for vt in vts], dtype=np.int64)
        self.noise = np.array([vt.noise for vt in vts], dtype=np.float64)
        self.fabric_cap = np.array(
            [vt.fabric_cap for vt in vts], dtype=np.int64
        )
        self.random_compute = np.array(
            [vt.random_compute for vt in vts], dtype=np.uint8
        )
        self.has_dag = np.array([vt.has_dag for vt in vts], dtype=np.uint8)
        self.has_prio = np.array([vt.has_prio for vt in vts], dtype=np.uint8)
        # fault CSRs: indptr rows stack densely; the window payloads
        # (equal lengths per variant) share one flat+offset packing.
        self.fc_indptr = np.stack([vt.fc_indptr for vt in vts])
        self.fc_w0, self.fcw_off = _flat_with_offsets(
            [vt.fc_w0 for vt in vts], np.float64
        )
        self.fc_w1, _ = _flat_with_offsets([vt.fc_w1 for vt in vts], np.float64)
        self.fc_rate, _ = _flat_with_offsets(
            [vt.fc_rate for vt in vts], np.float64
        )
        self.fw_indptr = np.stack([vt.fw_indptr for vt in vts])
        self.fw_w0, self.fww_off = _flat_with_offsets(
            [vt.fw_w0 for vt in vts], np.float64
        )
        self.fw_w1, _ = _flat_with_offsets([vt.fw_w1 for vt in vts], np.float64)
        self.fw_rate, _ = _flat_with_offsets(
            [vt.fw_rate for vt in vts], np.float64
        )


def stacked_tables(variants) -> StackedVariantTables:
    """Stacked tables for a variant set; the ubiquitous single-variant
    stack (the in-JIT iteration loop of ``iter_iterations``) is cached
    on the variant like the flat tables are."""
    if len(variants) == 1:
        tables = getattr(variants[0], "_kernel_stacked_tables", None)
        if tables is None:
            tables = variants[0]._kernel_stacked_tables = StackedVariantTables(
                variants
            )
        return tables
    return StackedVariantTables(variants)


# ----------------------------------------------------------------------
# RNG: numpy.random.Generator re-implemented over a raw PCG64 stream
# ----------------------------------------------------------------------
@kernel_func
def _rng_random(raw, rsi, st):
    """``Generator.random()``: one raw uint64, top 53 bits. Ignores (and
    preserves) the 32-bit half-word buffer, exactly like numpy's
    ``next_double``."""
    pos = rsi[0]
    if pos >= raw.shape[0]:
        st[_STATUS] = _RAW_EXHAUSTED
        return 0.0
    v = raw[pos]
    rsi[0] = pos + 1
    return float(v >> np.uint64(11)) * _U64_INV53


@kernel_func
def _next32(raw, rsi, rsu, st):
    """PCG64's ``next_uint32``: raw uint64 draws handed out low half
    first, high half stashed (the ``has_uint32`` buffer)."""
    if rsi[1] == 1:
        rsi[1] = 0
        return rsu[0]
    pos = rsi[0]
    if pos >= raw.shape[0]:
        st[_STATUS] = _RAW_EXHAUSTED
        return np.uint64(0)
    v = raw[pos]
    rsi[0] = pos + 1
    rsi[1] = 1
    rsu[0] = v >> np.uint64(32)
    return v & _U32_MASK


@kernel_func
def _rng_integers(raw, rsi, rsu, st, total):
    """``Generator.integers(0, total)`` for ``2 <= total < 2**32``:
    numpy's buffered 32-bit Lemire rejection (``distributions.c``)."""
    rng = np.uint64(total - 1)
    rng_excl = rng + np.uint64(1)
    m = _next32(raw, rsi, rsu, st) * rng_excl
    leftover = m & _U32_MASK
    if leftover < rng_excl:
        threshold = (_U32_MASK - rng) % rng_excl
        while leftover < threshold:
            if st[_STATUS] != _OK:
                return np.int64(0)
            m = _next32(raw, rsi, rsu, st) * rng_excl
            leftover = m & _U32_MASK
    return np.int64(m >> np.uint64(32))


# ----------------------------------------------------------------------
# binary heap over parallel arrays, ordered by (time, seq)
# ----------------------------------------------------------------------
@kernel_func
def _heap_push(ht, hseq, hcode, hop, st, t, code, op):
    i = st[_HEAP_LEN]
    seq = st[_SEQ]
    st[_SEQ] = seq + 1
    if i >= ht.shape[0]:
        st[_STATUS] = _HEAP_OVERFLOW
        return
    ht[i] = t
    hseq[i] = seq
    hcode[i] = code
    hop[i] = op
    st[_HEAP_LEN] = i + 1
    while i > 0:
        p = (i - 1) >> 1
        if ht[i] < ht[p] or (ht[i] == ht[p] and hseq[i] < hseq[p]):
            ht[i], ht[p] = ht[p], ht[i]
            hseq[i], hseq[p] = hseq[p], hseq[i]
            hcode[i], hcode[p] = hcode[p], hcode[i]
            hop[i], hop[p] = hop[p], hop[i]
            i = p
        else:
            break


@kernel_func
def _heap_pop(ht, hseq, hcode, hop, st):
    t = ht[0]
    code = hcode[0]
    op = hop[0]
    n = st[_HEAP_LEN] - 1
    st[_HEAP_LEN] = n
    if n > 0:
        ht[0] = ht[n]
        hseq[0] = hseq[n]
        hcode[0] = hcode[n]
        hop[0] = hop[n]
        i = 0
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            c = left
            right = left + 1
            if right < n and (
                ht[right] < ht[left]
                or (ht[right] == ht[left] and hseq[right] < hseq[left])
            ):
                c = right
            if ht[c] < ht[i] or (ht[c] == ht[i] and hseq[c] < hseq[i]):
                ht[i], ht[c] = ht[c], ht[i]
                hseq[i], hseq[c] = hseq[c], hseq[i]
                hcode[i], hcode[c] = hcode[c], hcode[i]
                hop[i], hop[c] = hop[c], hop[i]
                i = c
            else:
                break
    return t, code, op


# ----------------------------------------------------------------------
# fault-window evaluators (ISSUE 9): CSR translations of the engine's
# _compute_fault_end/_chunk_fault_end — KEEP the float-op order IN SYNC
# with repro.sim.engine, bit-exactness across kernels depends on it.
# ----------------------------------------------------------------------
@kernel_func
def _compute_fault_end(t, work, fw0, fw1, frate, lo, hi):
    """Finish time of ``work`` compute seconds started at ``t`` under
    the sorted disjoint windows ``[lo, hi)`` of the fault CSR; rate 0
    stalls (work resumes at window end)."""
    cur = t
    rem = work
    for i in range(lo, hi):
        w1 = fw1[i]
        if w1 <= cur:
            continue
        w0 = fw0[i]
        if w0 > cur:
            gap = w0 - cur
            if rem <= gap:
                return cur + rem
            rem -= gap
            cur = w0
        rate = frate[i]
        if rate <= 0.0:
            cur = w1
            continue
        cap = (w1 - cur) * rate
        if rem <= cap:
            return cur + rem / rate
        rem -= cap
        cur = w1
    return cur + rem


@kernel_func
def _chunk_fault_end(t, work, fw0, fw1, frate, lo, hi):
    """Like ``_compute_fault_end`` for one wire chunk: a zero-rate
    (outage) window loses the in-flight chunk, which retransmits from
    scratch at window end."""
    cur = t
    rem = work
    for i in range(lo, hi):
        w1 = fw1[i]
        if w1 <= cur:
            continue
        w0 = fw0[i]
        if w0 > cur:
            gap = w0 - cur
            if rem <= gap:
                return cur + rem
            rem -= gap
            cur = w0
        rate = frate[i]
        if rate <= 0.0:
            cur = w1
            rem = work
            continue
        cap = (w1 - cur) * rate
        if rem <= cap:
            return cur + rem / rate
        rem -= cap
        cur = w1
    return cur + rem


# ----------------------------------------------------------------------
# dispatchers (exact array translations of SimVariant._execute's inner
# functions — any semantic edit must land in both; the golden + parity
# suites pin them against each other)
# ----------------------------------------------------------------------
@kernel_func
def _pop_plain(pq_buf, pq_stamp, pq_len, base, rid, m):
    op = pq_buf[base + m]
    last = pq_len[rid] - 1
    for i in range(m, last):
        pq_buf[base + i] = pq_buf[base + i + 1]
        pq_stamp[base + i] = pq_stamp[base + i + 1]
    pq_len[rid] = last
    return op


@kernel_func
def _dispatch_compute(
    rid, t, random_compute,
    capacity, active,
    pq_base, pq_buf, pq_stamp, pq_len,
    rc_indptr, rc_indices,
    gs_base, gs_stamp, gs_op, ch_handoff,
    elig_stamp, elig_ch,
    fc_indptr, fc_w0, fc_w1, fc_rate,
    dur, start,
    ht, hseq, hcode, hop, st,
    raw, rsi, rsu,
    tr_on, tr_depth,
):
    if active[rid] >= capacity[rid]:
        return
    c0 = rc_indptr[rid]
    c1 = rc_indptr[rid + 1]
    base = pq_base[rid]
    n_plain = pq_len[rid]
    if c1 > c0:
        # §5.1 eligibility: per counter channel, the one parked
        # activation whose rank equals the channel counter.
        n_elig = 0
        for j in range(c0, c1):
            ch = rc_indices[j]
            r = ch_handoff[ch]
            g0 = gs_base[ch]
            if r < gs_base[ch + 1] - g0 and gs_stamp[g0 + r] >= 0:
                elig_stamp[n_elig] = gs_stamp[g0 + r]
                elig_ch[n_elig] = ch
                n_elig += 1
        total = n_plain + n_elig
        if total == 0:
            return
        if random_compute and total > 1:
            m = _rng_integers(raw, rsi, rsu, st, total)
        else:
            m = np.int64(0)
        if n_elig == 0:
            op = _pop_plain(pq_buf, pq_stamp, pq_len, base, rid, m)
        else:
            if n_elig > 1:
                # insertion sort by arrival stamp (stamps are unique)
                for a in range(1, n_elig):
                    ks = elig_stamp[a]
                    kc = elig_ch[a]
                    b = a - 1
                    while b >= 0 and elig_stamp[b] > ks:
                        elig_stamp[b + 1] = elig_stamp[b]
                        elig_ch[b + 1] = elig_ch[b]
                        b -= 1
                    elig_stamp[b + 1] = ks
                    elig_ch[b + 1] = kc
            # m-th element of the stamp-ordered union of the (sorted)
            # plain queue and the eligible gated activations.
            op = np.int64(-1)
            for e in range(n_elig):
                stamp_e = elig_stamp[e]
                lo = np.int64(0)
                hi = n_plain
                while lo < hi:
                    mid = (lo + hi) >> 1
                    if pq_stamp[base + mid] < stamp_e:
                        lo = mid + 1
                    else:
                        hi = mid
                pos = e + lo
                if pos == m:
                    ch = elig_ch[e]
                    r = ch_handoff[ch]
                    op = gs_op[gs_base[ch] + r]
                    gs_stamp[gs_base[ch] + r] = -1
                    ch_handoff[ch] = r + 1
                    break
                if pos > m:
                    op = _pop_plain(pq_buf, pq_stamp, pq_len, base, rid, m - e)
                    break
            if op < 0:
                op = _pop_plain(pq_buf, pq_stamp, pq_len, base, rid, m - n_elig)
    else:
        total = n_plain
        if n_plain == 0:
            return
        if random_compute and n_plain > 1:
            m = _rng_integers(raw, rsi, rsu, st, n_plain)
        else:
            m = np.int64(0)
        op = _pop_plain(pq_buf, pq_stamp, pq_len, base, rid, m)
    active[rid] += 1
    if tr_on:
        tr_depth[op] = total
    start[op] = t
    if fc_indptr[rid + 1] > fc_indptr[rid]:
        cend = _compute_fault_end(
            t, dur[op], fc_w0, fc_w1, fc_rate,
            fc_indptr[rid], fc_indptr[rid + 1],
        )
    else:
        cend = t + dur[op]
    _heap_push(ht, hseq, hcode, hop, st, cend, 0, op)


@kernel_func
def _dispatch_egress(
    pos, t, mode, has_dag, has_prio, fabric_cap,
    capacity, active,
    egress_ids, eg_chan_indptr, eg_chan_indices,
    chan_iid, q_base, qbuf, q_head, q_tail, ch_busy,
    rr_ptr, eg_pending,
    prio, dg_ch, dg_rank, ch_complete,
    started, rem_wire, chunk_of, lat, is_chunk,
    fw_indptr, fw_w0, fw_w1, fw_rate,
    start,
    ht, hseq, hcode, hop, st,
    raw, rsi, rsu,
    tr_on, tr_depth, tce_op, tce_t0, tce_dur,
):
    if eg_pending[pos] == 0:
        return
    e0 = eg_chan_indptr[pos]
    n_chans = eg_chan_indptr[pos + 1] - e0
    eid = egress_ids[pos]
    while active[eid] < capacity[eid] and (
        fabric_cap < 0 or st[_FABRIC] < fabric_cap
    ):
        ptr = rr_ptr[pos]
        progressed = False
        for step in range(n_chans):
            slot = ptr + step
            if slot >= n_chans:
                slot -= n_chans
            c = eg_chan_indices[e0 + slot]
            iid = chan_iid[c]
            if active[iid] >= capacity[iid] or ch_busy[c] == 1:
                continue
            h = q_head[c]
            tl = q_tail[c]
            if h == tl:
                continue
            qb = q_base[c]
            # pick_head: which queued transfer transmits next on this
            # channel (started transfers keep it until wire-done).
            q0 = qbuf[qb + h]
            if started[q0] == 1:
                k = np.int64(0)
            elif has_prio and (mode == 1 or is_chunk[q0] == 1):
                qlen = tl - h
                lowest = np.int64(-1)
                for i in range(qlen):
                    p = prio[qbuf[qb + h + i]]
                    if p >= 0 and (lowest < 0 or p < lowest):
                        lowest = p
                ncand = np.int64(0)
                for i in range(qlen):
                    p = prio[qbuf[qb + h + i]]
                    if lowest < 0 or p < 0 or p == lowest:
                        ncand += 1
                if ncand > 1:
                    m = _rng_integers(raw, rsi, rsu, st, ncand)
                else:
                    m = np.int64(0)
                k = np.int64(0)
                cnt = np.int64(0)
                for i in range(qlen):
                    p = prio[qbuf[qb + h + i]]
                    if lowest < 0 or p < 0 or p == lowest:
                        if cnt == m:
                            k = np.int64(i)
                            break
                        cnt += 1
            elif mode == 3 and tl - h > 1:
                k = _rng_integers(raw, rsi, rsu, st, tl - h)
            elif mode == 2 and has_dag:
                k = np.int64(-1)
                for i in range(tl - h):
                    op2 = qbuf[qb + h + i]
                    c2 = dg_ch[op2]
                    if c2 < 0 or ch_complete[c2] == dg_rank[op2]:
                        k = np.int64(i)
                        break
                if k < 0:
                    continue
            else:
                k = np.int64(0)
            if k != 0:
                i1 = qb + h
                i2 = i1 + k
                tmp = qbuf[i1]
                qbuf[i1] = qbuf[i2]
                qbuf[i2] = tmp
            op = qbuf[qb + h]
            if started[op] == 0:
                started[op] = 1
                start[op] = t
                if tr_on:
                    tr_depth[op] = tl - h
            r = rem_wire[op]
            co = chunk_of[op]
            if r < co:
                cdur = r
            else:
                cdur = co
            r -= cdur
            rem_wire[op] = r
            # fault windows stretch wall time only; the nominal rem_wire
            # decrement above keeps payload bytes conserved.
            faulted = fw_indptr[c + 1] > fw_indptr[c]
            if faulted:
                cend = _chunk_fault_end(
                    t, cdur, fw_w0, fw_w1, fw_rate,
                    fw_indptr[c], fw_indptr[c + 1],
                )
            else:
                cend = t + cdur
            if r <= 1e-18:
                q_head[c] = h + 1  # wire done; channel moves on
                eg_pending[pos] -= 1
                _heap_push(ht, hseq, hcode, hop, st, cend + lat[op], 1, op)
            if tr_on:
                ci = st[_TRACE]
                if ci >= tce_op.shape[0]:
                    st[_STATUS] = _TRACE_OVERFLOW
                    return
                tce_op[ci] = op
                tce_t0[ci] = t
                # nominal cdur when unfaulted: (cend - t) would differ
                # in the last float bit from the untraced arithmetic.
                if faulted:
                    tce_dur[ci] = cend - t
                else:
                    tce_dur[ci] = cdur
                st[_TRACE] = ci + 1
            active[eid] += 1
            active[iid] += 1
            st[_FABRIC] += 1
            ch_busy[c] = 1
            _heap_push(ht, hseq, hcode, hop, st, cend, 2, op)
            rr_ptr[pos] = slot + 1
            progressed = True
            break
        if not progressed:
            return


@kernel_func
def _make_ready(
    op, t, mode, has_dag, has_prio, random_compute, noise, fabric_cap,
    is_transfer, is_chunk, op_res, t_egress, t_chan, lat,
    capacity, active,
    hg_ch, hg_rank, dg_ch, dg_rank, prio,
    eg_pos, egress_ids, eg_chan_indptr, eg_chan_indices, chan_iid,
    q_base, qbuf, q_head, q_tail, ch_busy, rr_ptr, eg_pending,
    pq_base, pq_buf, pq_stamp, pq_len,
    rc_indptr, rc_indices,
    gs_base, gs_stamp, gs_op, ch_handoff, ch_complete,
    elig_stamp, elig_ch,
    started, rem_wire, chunk_of, dur, start,
    fc_indptr, fc_w0, fc_w1, fc_rate,
    fw_indptr, fw_w0, fw_w1, fw_rate,
    ht, hseq, hcode, hop, st,
    raw, rsi, rsu,
    tr_on, tr_ready, tr_depth, tce_op, tce_t0, tce_dur,
):
    if tr_on:
        tr_ready[op] = t
    if is_transfer[op] == 1:
        c = t_chan[op]
        qb = q_base[c]
        tl = q_tail[c]
        qbuf[qb + tl] = op
        tl += 1
        q_tail[c] = tl
        # residual gRPC reordering: occasionally a hand-off slips a slot
        if noise > 0.0 and tl - q_head[c] >= 2:
            if _rng_random(raw, rsi, st) < noise:
                i1 = qb + tl - 1
                i2 = i1 - 1
                tmp = qbuf[i1]
                qbuf[i1] = qbuf[i2]
                qbuf[i2] = tmp
        pos = eg_pos[t_egress[op]]
        eg_pending[pos] += 1
        _dispatch_egress(
            pos, t, mode, has_dag, has_prio, fabric_cap,
            capacity, active,
            egress_ids, eg_chan_indptr, eg_chan_indices,
            chan_iid, q_base, qbuf, q_head, q_tail, ch_busy,
            rr_ptr, eg_pending,
            prio, dg_ch, dg_rank, ch_complete,
            started, rem_wire, chunk_of, lat, is_chunk,
            fw_indptr, fw_w0, fw_w1, fw_rate,
            start,
            ht, hseq, hcode, hop, st,
            raw, rsi, rsu,
            tr_on, tr_depth, tce_op, tce_t0, tce_dur,
        )
    else:
        rid = op_res[op]
        ch = hg_ch[op]
        if ch >= 0:
            g = gs_base[ch] + hg_rank[op]
            gs_stamp[g] = st[_STAMP]
            gs_op[g] = op
            st[_STAMP] += 1
        elif rc_indptr[rid + 1] > rc_indptr[rid]:
            b = pq_base[rid] + pq_len[rid]
            pq_buf[b] = op
            pq_stamp[b] = st[_STAMP]
            pq_len[rid] += 1
            st[_STAMP] += 1
        else:
            # resources with no §5.1 channels never merge against gated
            # activations; their arrivals skip the stamp counter.
            b = pq_base[rid] + pq_len[rid]
            pq_buf[b] = op
            pq_stamp[b] = 0
            pq_len[rid] += 1
        _dispatch_compute(
            rid, t, random_compute,
            capacity, active,
            pq_base, pq_buf, pq_stamp, pq_len,
            rc_indptr, rc_indices,
            gs_base, gs_stamp, gs_op, ch_handoff,
            elig_stamp, elig_ch,
            fc_indptr, fc_w0, fc_w1, fc_rate,
            dur, start,
            ht, hseq, hcode, hop, st,
            raw, rsi, rsu,
            tr_on, tr_depth,
        )


@kernel_func
def _event_loop(
    # core tables
    succ_indptr, succ_indices, base_indeg,
    is_transfer, is_chunk, op_res, t_egress, t_ingress, t_chan, lat,
    capacity, chan_iid, eg_pos, egress_ids,
    eg_chan_indptr, eg_chan_indices, q_base, roots, root_times, pq_base,
    # variant tables
    hg_ch, hg_rank, dg_ch, dg_rank, prio,
    rc_indptr, rc_indices, gs_base,
    mode, noise, fabric_cap, random_compute, has_dag, has_prio,
    fc_indptr, fc_w0, fc_w1, fc_rate,
    fw_indptr, fw_w0, fw_w1, fw_rate,
    # per-iteration inputs
    dur, wire, chunk_of, raw, heap_cap,
    # trace outputs (repro.obs; 0-size dummies when tr_on is False)
    tr_on, tr_ready, tr_depth, tce_op, tce_t0, tce_dur,
):
    n = op_res.shape[0]
    n_res = capacity.shape[0]
    n_chan = chan_iid.shape[0]
    n_eg = egress_ids.shape[0]
    n_cch = gs_base.shape[0] - 1

    indeg = base_indeg.copy()
    start = np.full(n, np.nan)
    end = np.full(n, np.nan)
    active = np.zeros(n_res, np.int64)
    pq_buf = np.zeros(pq_base[n_res], np.int64)
    pq_stamp = np.zeros(pq_base[n_res], np.int64)
    pq_len = np.zeros(n_res, np.int64)
    gs_stamp = np.full(gs_base[n_cch], -1, np.int64)
    gs_op = np.zeros(gs_base[n_cch], np.int64)
    ch_handoff = np.zeros(n_cch, np.int64)
    ch_complete = np.zeros(n_cch, np.int64)
    qbuf = np.zeros(q_base[n_chan], np.int64)
    q_head = np.zeros(n_chan, np.int64)
    q_tail = np.zeros(n_chan, np.int64)
    ch_busy = np.zeros(n_chan, np.uint8)
    rr_ptr = np.zeros(n_eg, np.int64)
    eg_pending = np.zeros(n_eg, np.int64)
    rem_wire = wire.copy()
    started = np.zeros(n, np.uint8)
    elig_stamp = np.zeros(n_cch + 1, np.int64)
    elig_ch = np.zeros(n_cch + 1, np.int64)
    ht = np.zeros(heap_cap, np.float64)
    hseq = np.zeros(heap_cap, np.int64)
    hcode = np.zeros(heap_cap, np.int64)
    hop = np.zeros(heap_cap, np.int64)
    st = np.zeros(8, np.int64)
    rsi = np.zeros(2, np.int64)  # (raw position, has_uint32)
    rsu = np.zeros(1, np.uint64)  # stashed high half-word

    for ri in range(roots.shape[0]):
        # deferred job-mix roots release via code-3 events; zero-offset
        # roots keep the direct path (no heap entry, no seq consumed).
        if root_times[ri] > 0.0:
            _heap_push(ht, hseq, hcode, hop, st, root_times[ri], 3, roots[ri])
            if st[_STATUS] != _OK:
                return st[_STATUS], start, end, st[_TRACE]
            continue
        _make_ready(
            roots[ri], 0.0, mode, has_dag, has_prio, random_compute, noise,
            fabric_cap,
            is_transfer, is_chunk, op_res, t_egress, t_chan, lat,
            capacity, active,
            hg_ch, hg_rank, dg_ch, dg_rank, prio,
            eg_pos, egress_ids, eg_chan_indptr, eg_chan_indices, chan_iid,
            q_base, qbuf, q_head, q_tail, ch_busy, rr_ptr, eg_pending,
            pq_base, pq_buf, pq_stamp, pq_len,
            rc_indptr, rc_indices,
            gs_base, gs_stamp, gs_op, ch_handoff, ch_complete,
            elig_stamp, elig_ch,
            started, rem_wire, chunk_of, dur, start,
            fc_indptr, fc_w0, fc_w1, fc_rate,
            fw_indptr, fw_w0, fw_w1, fw_rate,
            ht, hseq, hcode, hop, st,
            raw, rsi, rsu,
            tr_on, tr_ready, tr_depth, tce_op, tce_t0, tce_dur,
        )
        if st[_STATUS] != _OK:
            return st[_STATUS], start, end, st[_TRACE]

    while st[_HEAP_LEN] > 0:
        if st[_STATUS] != _OK:
            return st[_STATUS], start, end, st[_TRACE]
        t, code, op = _heap_pop(ht, hseq, hcode, hop, st)
        if code == 2:  # chunk done
            eid = t_egress[op]
            iid = t_ingress[op]
            active[eid] -= 1
            active[iid] -= 1
            st[_FABRIC] -= 1
            ch_busy[t_chan[op]] = 0
            pos = eg_pos[eid]
            _dispatch_egress(
                pos, t, mode, has_dag, has_prio, fabric_cap,
                capacity, active,
                egress_ids, eg_chan_indptr, eg_chan_indices,
                chan_iid, q_base, qbuf, q_head, q_tail, ch_busy,
                rr_ptr, eg_pending,
                prio, dg_ch, dg_rank, ch_complete,
                started, rem_wire, chunk_of, lat, is_chunk,
                fw_indptr, fw_w0, fw_w1, fw_rate,
                start,
                ht, hseq, hcode, hop, st,
                raw, rsi, rsu,
                tr_on, tr_depth, tce_op, tce_t0, tce_dur,
            )
            # the freed ingress (or fabric slot) may unblock transfers
            # queued at other NICs
            if active[iid] < capacity[iid] or fabric_cap >= 0:
                for other in range(n_eg):
                    if other != pos and eg_pending[other] > 0:
                        _dispatch_egress(
                            other, t, mode, has_dag, has_prio, fabric_cap,
                            capacity, active,
                            egress_ids, eg_chan_indptr, eg_chan_indices,
                            chan_iid, q_base, qbuf, q_head, q_tail, ch_busy,
                            rr_ptr, eg_pending,
                            prio, dg_ch, dg_rank, ch_complete,
                            started, rem_wire, chunk_of, lat, is_chunk,
                            fw_indptr, fw_w0, fw_w1, fw_rate,
                            start,
                            ht, hseq, hcode, hop, st,
                            raw, rsi, rsu,
                            tr_on, tr_depth, tce_op, tce_t0, tce_dur,
                        )
            continue
        if code == 3:  # deferred root arrival (job-mix offsets)
            _make_ready(
                op, t, mode, has_dag, has_prio, random_compute, noise,
                fabric_cap,
                is_transfer, is_chunk, op_res, t_egress, t_chan, lat,
                capacity, active,
                hg_ch, hg_rank, dg_ch, dg_rank, prio,
                eg_pos, egress_ids, eg_chan_indptr, eg_chan_indices,
                chan_iid,
                q_base, qbuf, q_head, q_tail, ch_busy, rr_ptr, eg_pending,
                pq_base, pq_buf, pq_stamp, pq_len,
                rc_indptr, rc_indices,
                gs_base, gs_stamp, gs_op, ch_handoff, ch_complete,
                elig_stamp, elig_ch,
                started, rem_wire, chunk_of, dur, start,
                fc_indptr, fc_w0, fc_w1, fc_rate,
                fw_indptr, fw_w0, fw_w1, fw_rate,
                ht, hseq, hcode, hop, st,
                raw, rsi, rsu,
                tr_on, tr_ready, tr_depth, tce_op, tce_t0, tce_dur,
            )
            continue
        end[op] = t
        if code == 0:  # compute done
            rid = op_res[op]
            active[rid] -= 1
            if pq_len[rid] > 0 or rc_indptr[rid + 1] > rc_indptr[rid]:
                _dispatch_compute(
                    rid, t, random_compute,
                    capacity, active,
                    pq_base, pq_buf, pq_stamp, pq_len,
                    rc_indptr, rc_indices,
                    gs_base, gs_stamp, gs_op, ch_handoff,
                    elig_stamp, elig_ch,
                    fc_indptr, fc_w0, fc_w1, fc_rate,
                    dur, start,
                    ht, hseq, hcode, hop, st,
                    raw, rsi, rsu,
                    tr_on, tr_depth,
                )
        else:  # transfer done
            if has_dag:
                c = dg_ch[op]
                if c >= 0:
                    ch_complete[c] += 1
                    for pos2 in range(n_eg):  # dag gates may have opened
                        if eg_pending[pos2] > 0:
                            _dispatch_egress(
                                pos2, t, mode, has_dag, has_prio, fabric_cap,
                                capacity, active,
                                egress_ids, eg_chan_indptr, eg_chan_indices,
                                chan_iid, q_base, qbuf, q_head, q_tail,
                                ch_busy, rr_ptr, eg_pending,
                                prio, dg_ch, dg_rank, ch_complete,
                                started, rem_wire, chunk_of, lat, is_chunk,
                                fw_indptr, fw_w0, fw_w1, fw_rate,
                                start,
                                ht, hseq, hcode, hop, st,
                                raw, rsi, rsu,
                                tr_on, tr_depth, tce_op, tce_t0, tce_dur,
                            )
        for j in range(succ_indptr[op], succ_indptr[op + 1]):
            s = succ_indices[j]
            d = indeg[s] - 1
            indeg[s] = d
            if d == 0:
                _make_ready(
                    s, t, mode, has_dag, has_prio, random_compute, noise,
                    fabric_cap,
                    is_transfer, is_chunk, op_res, t_egress, t_chan, lat,
                    capacity, active,
                    hg_ch, hg_rank, dg_ch, dg_rank, prio,
                    eg_pos, egress_ids, eg_chan_indptr, eg_chan_indices,
                    chan_iid,
                    q_base, qbuf, q_head, q_tail, ch_busy, rr_ptr, eg_pending,
                    pq_base, pq_buf, pq_stamp, pq_len,
                    rc_indptr, rc_indices,
                    gs_base, gs_stamp, gs_op, ch_handoff, ch_complete,
                    elig_stamp, elig_ch,
                    started, rem_wire, chunk_of, dur, start,
                    fc_indptr, fc_w0, fc_w1, fc_rate,
                    fw_indptr, fw_w0, fw_w1, fw_rate,
                    ht, hseq, hcode, hop, st,
                    raw, rsi, rsu,
                    tr_on, tr_ready, tr_depth, tce_op, tce_t0, tce_dur,
                )
    return st[_STATUS], start, end, st[_TRACE]


# ----------------------------------------------------------------------
# variant-batched dispatch (ISSUE 8): many (variant, iteration) rows per
# compiled call
# ----------------------------------------------------------------------
def _rows_body(
    # core tables (shared by every row)
    succ_indptr, succ_indices, base_indeg,
    is_transfer, is_chunk, op_res, t_egress, t_ingress, t_chan, lat,
    capacity, chan_iid, eg_pos, egress_ids,
    eg_chan_indptr, eg_chan_indices, q_base, roots, root_times, pq_base,
    # stacked variant tables (leading axis = variant)
    hg_ch2, hg_rank2, dg_ch2, dg_rank2, prio2,
    rc_indptr2, rc_ind_flat, rc_off, gsb_flat, gsb_off,
    modes, noises, fabric_caps, rand_comp, dag_flags, prio_flags,
    fc_indptr2, fc_w0_flat, fc_w1_flat, fc_rate_flat, fcw_off,
    fw_indptr2, fw_w0_flat, fw_w1_flat, fw_rate_flat, fww_off,
    # per-row inputs (leading axis = row)
    vrow, DUR, WIRE, CHUNK, raw_flat, raw_off, heap_cap,
    # per-row outputs
    START, END, STATUS,
):
    """Run every (variant, iteration) row through ``_event_loop``.

    Rows are fully independent — each consumes its own pre-drawn RNG
    block and owns one output slice — so the ``prange`` compilation is
    bit-exact with the serial one. Rows that abort (raw exhaustion, heap
    overflow) report through ``STATUS``; the python driver replays just
    those rows with bigger buffers, mirroring the single-row retry loop.
    Tracing never routes through here (traced runs keep the one-row
    entry), so the trace side-arrays are 0-size dummies.
    """
    zf = np.zeros(0, np.float64)
    zi = np.zeros(0, np.int64)
    for r in prange(vrow.shape[0]):
        v = vrow[r]
        status, start, end, _n_tce = _event_loop(
            succ_indptr, succ_indices, base_indeg,
            is_transfer, is_chunk, op_res, t_egress, t_ingress, t_chan, lat,
            capacity, chan_iid, eg_pos, egress_ids,
            eg_chan_indptr, eg_chan_indices, q_base, roots, root_times,
            pq_base,
            hg_ch2[v], hg_rank2[v], dg_ch2[v], dg_rank2[v], prio2[v],
            rc_indptr2[v], rc_ind_flat[rc_off[v]:rc_off[v + 1]],
            gsb_flat[gsb_off[v]:gsb_off[v + 1]],
            modes[v], noises[v], fabric_caps[v],
            rand_comp[v] == 1, dag_flags[v] == 1, prio_flags[v] == 1,
            fc_indptr2[v], fc_w0_flat[fcw_off[v]:fcw_off[v + 1]],
            fc_w1_flat[fcw_off[v]:fcw_off[v + 1]],
            fc_rate_flat[fcw_off[v]:fcw_off[v + 1]],
            fw_indptr2[v], fw_w0_flat[fww_off[v]:fww_off[v + 1]],
            fw_w1_flat[fww_off[v]:fww_off[v + 1]],
            fw_rate_flat[fww_off[v]:fww_off[v + 1]],
            DUR[r], WIRE[r], CHUNK[r],
            raw_flat[raw_off[r]:raw_off[r + 1]], heap_cap,
            False, zf, zi, zi, zf, zf,
        )
        STATUS[r] = status
        START[r] = start
        END[r] = end


#: serial rows entry: jitted where numba exists, plain source elsewhere
#: (``prange`` degrades to ``range`` in both of those cases).
_run_rows = _njit(cache=True)(_rows_body)
if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    #: opt-in parallel entry (REPRO_ENGINE_PARALLEL): same body compiled
    #: with ``parallel=True`` so the row loop fans out across cores.
    _run_rows_parallel = _njit(cache=True, parallel=True)(_rows_body)
else:
    _run_rows_parallel = _run_rows


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def _loop_args(ct, vt):
    """Positional prefix shared by every ``_event_loop`` call: the 20
    core-table arrays followed by the 22 variant tables/scalars."""
    return (
        ct.succ_indptr, ct.succ_indices, ct.base_indeg,
        ct.is_transfer, ct.is_chunk, ct.op_res, ct.t_egress,
        ct.t_ingress, ct.t_chan, ct.lat,
        ct.capacity, ct.chan_iid, ct.eg_pos, ct.egress_ids,
        ct.eg_chan_indptr, ct.eg_chan_indices, ct.q_base, ct.roots,
        ct.root_times, ct.pq_base,
        vt.hg_ch, vt.hg_rank, vt.dg_ch, vt.dg_rank, vt.prio,
        vt.rc_indptr, vt.rc_indices, vt.gs_base,
        vt.mode, vt.noise, vt.fabric_cap, vt.random_compute,
        vt.has_dag, vt.has_prio,
        vt.fc_indptr, vt.fc_w0, vt.fc_w1, vt.fc_rate,
        vt.fw_indptr, vt.fw_w0, vt.fw_w1, vt.fw_rate,
    )


def execute_event_loop(variant, rng, dur, wire, chunk_of, loop):
    """Run one iteration through an array kernel.

    ``rng`` is the iteration's fresh ``numpy.random.Generator``; its raw
    PCG64 outputs are pre-drawn into a buffer the kernel consumes (the
    draw happens *after* any jitter sampling, so the stream position
    matches the python loop exactly). Returns ``(start, end, trace)``:
    float64 op-time arrays plus, when ``variant.config.trace`` is on,
    the raw event streams as a ``(ready, depth, chunk_op, chunk_start,
    chunk_dur)`` tuple (``None`` untraced) — the engine wraps them into
    :class:`repro.obs.events.TraceEvents`."""
    ct = core_tables(variant.core)
    vt = variant_tables(variant)
    dur = np.ascontiguousarray(dur, dtype=np.float64)
    wire = np.ascontiguousarray(wire, dtype=np.float64)
    chunk_of = np.ascontiguousarray(chunk_of, dtype=np.float64)
    raw = rng.bit_generator.random_raw(ct.raw_init)
    heap_cap = ct.heap_cap
    tr_on = bool(variant.config.trace)
    if tr_on:
        # static per-variant bound (jitter cancels in wire/chunk);
        # ``_TRACE_OVERFLOW`` still grows + replays if it is ever wrong.
        tce_cap = variant._trace_cap()
        tr_ready = np.full(ct.n, np.nan)
        tr_depth = np.full(ct.n, -1, dtype=np.int64)
    else:
        tce_cap = 0
        tr_ready = np.zeros(0)
        tr_depth = np.zeros(0, dtype=np.int64)
    tce_op = np.zeros(tce_cap, dtype=np.int64)
    tce_t0 = np.zeros(tce_cap)
    tce_dur = np.zeros(tce_cap)
    args = _loop_args(ct, vt)
    while True:
        status, start, end, n_tce = loop(
            *args,
            dur, wire, chunk_of, raw, heap_cap,
            tr_on, tr_ready, tr_depth, tce_op, tce_t0, tce_dur,
        )
        if status == _OK:
            if not tr_on:
                return start, end, None
            n_ev = int(n_tce)
            return start, end, (
                tr_ready, tr_depth,
                tce_op[:n_ev].copy(), tce_t0[:n_ev].copy(),
                tce_dur[:n_ev].copy(),
            )
        if status == _RAW_EXHAUSTED:
            # rejection sampling outran the buffer: extend the raw
            # stream in place (same prefix) and replay the iteration.
            # (Trace buffers are simply rewritten: a replay is
            # bit-identical, and the cursor restarts at zero.)
            raw = np.concatenate(
                [raw, rng.bit_generator.random_raw(raw.shape[0])]
            )
        elif status == _HEAP_OVERFLOW:  # pragma: no cover - safety belt
            heap_cap *= 2
        elif status == _TRACE_OVERFLOW:  # pragma: no cover - safety belt
            tce_cap = max(2 * tce_cap, 1024)
            tce_op = np.zeros(tce_cap, dtype=np.int64)
            tce_t0 = np.zeros(tce_cap)
            tce_dur = np.zeros(tce_cap)
        else:  # pragma: no cover - unreachable
            raise RuntimeError(f"kernel returned unknown status {status}")


def execute_rows(variants, vrow, rngs, DUR, WIRE, CHUNK, *, parallel=None):
    """Run many (variant, iteration) rows through one batched kernel call.

    ``variants`` all share one ``CompiledCore``; ``vrow[r]`` names the
    variant index of row ``r``; ``rngs[r]`` is row ``r``'s fresh
    per-iteration generator, and ``DUR``/``WIRE``/``CHUNK`` are ``(R, n)``
    float64 matrices whose rows were built exactly as the one-at-a-time
    path builds them (jitter drawn *before* the raw pre-draw below, so
    every stream position matches). Returns ``(START, END)`` ``(R, n)``
    matrices bit-identical to ``R`` calls of :func:`execute_event_loop`.

    ``parallel=None`` reads ``REPRO_ENGINE_PARALLEL``; the parallel entry
    is the same source compiled with ``prange`` and stays bit-exact
    because rows never share state. Rows that abort inside the batch
    (raw exhaustion / heap overflow) are replayed one-at-a-time with
    grown buffers, mirroring the single-row retry loop.
    """
    ct = core_tables(variants[0].core)
    svt = stacked_tables(variants)
    n_rows = vrow.shape[0]
    raws = [rng.bit_generator.random_raw(ct.raw_init) for rng in rngs]
    raw_flat, raw_off = _flat_with_offsets(raws, np.uint64)
    START = np.empty((n_rows, ct.n), dtype=np.float64)
    END = np.empty((n_rows, ct.n), dtype=np.float64)
    STATUS = np.empty(n_rows, dtype=np.int64)
    if parallel is None:
        parallel = resolve_parallel()
    rows = _run_rows_parallel if parallel else _run_rows
    rows(
        ct.succ_indptr, ct.succ_indices, ct.base_indeg,
        ct.is_transfer, ct.is_chunk, ct.op_res, ct.t_egress,
        ct.t_ingress, ct.t_chan, ct.lat,
        ct.capacity, ct.chan_iid, ct.eg_pos, ct.egress_ids,
        ct.eg_chan_indptr, ct.eg_chan_indices, ct.q_base, ct.roots,
        ct.root_times, ct.pq_base,
        svt.hg_ch, svt.hg_rank, svt.dg_ch, svt.dg_rank, svt.prio,
        svt.rc_indptr, svt.rc_indices, svt.rc_off,
        svt.gs_base, svt.gsb_off,
        svt.mode, svt.noise, svt.fabric_cap, svt.random_compute,
        svt.has_dag, svt.has_prio,
        svt.fc_indptr, svt.fc_w0, svt.fc_w1, svt.fc_rate, svt.fcw_off,
        svt.fw_indptr, svt.fw_w0, svt.fw_w1, svt.fw_rate, svt.fww_off,
        vrow, DUR, WIRE, CHUNK, raw_flat, raw_off, ct.heap_cap,
        START, END, STATUS,
    )
    zf = np.zeros(0)
    zi = np.zeros(0, dtype=np.int64)
    for r in np.nonzero(STATUS != _OK)[0]:
        # rare per-row retries run outside the batch: extend that row's
        # raw stream / heap exactly like the single-row driver would.
        args = _loop_args(ct, variant_tables(variants[int(vrow[r])]))
        raw = raws[r]
        heap_cap = ct.heap_cap
        while STATUS[r] != _OK:
            if STATUS[r] == _RAW_EXHAUSTED:
                raw = np.concatenate(
                    [raw, rngs[r].bit_generator.random_raw(raw.shape[0])]
                )
            elif STATUS[r] == _HEAP_OVERFLOW:  # pragma: no cover - belt
                heap_cap *= 2
            else:  # pragma: no cover - unreachable
                raise RuntimeError(
                    f"kernel returned unknown status {STATUS[r]}"
                )
            status, start, end, _n_tce = _event_loop(
                *args, DUR[r], WIRE[r], CHUNK[r], raw, heap_cap,
                False, zf, zi, zi, zf, zf,
            )
            STATUS[r] = status
            if status == _OK:
                START[r] = start
                END[r] = end
    return START, END
