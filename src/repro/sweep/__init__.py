"""Sweep automation: declarative grids, a parallel process-pool executor,
and a code-fingerprinted on-disk result cache.

Every experiment driver submits its slice of the paper's evaluation grid
here instead of hand-rolling nested ``simulate_cluster`` loops; overlapping
drivers (and re-runs) hit the cache, and ``--jobs N`` fans independent
cells out across cores with bitwise-identical results.
"""

from . import sharedcore
from .cache import CacheStats, ResultCache, cache_key
from .fingerprint import code_fingerprint, module_fingerprint
from .runner import Speedup, SweepRunner
from .serialize import result_from_dict, result_to_dict
from .spec import FnTask, GridSpec, SimCell

__all__ = [
    "sharedcore",
    "CacheStats",
    "ResultCache",
    "cache_key",
    "code_fingerprint",
    "module_fingerprint",
    "Speedup",
    "SweepRunner",
    "result_from_dict",
    "result_to_dict",
    "FnTask",
    "GridSpec",
    "SimCell",
]
