"""Zero-copy cross-process sharing of compiled engine cores.

A :class:`~repro.sim.engine.CompiledCore` is immutable once compiled, so
every worker of a ``--jobs N`` pool simulating cells of one group can
read the *same* arrays instead of re-deriving them from the cluster
graph. :func:`publish` serializes a core's numpy arrays once into a
single ``multiprocessing.shared_memory`` block and returns a small
picklable :class:`SharedCoreHandle` (block name + array directory + a
pickled header with the non-array state); :func:`attach` maps the block
read-only in a worker and rebuilds the core around zero-copy views —
no graph build, no model build, no O(n) traversal, only the cheap
python-native list mirrors. Attaches are memoized per worker process,
so the batched phase-B lane (many cells per task, see
:func:`repro.sweep.runner._run_shared_cells_batched`) pays one map per
worker however many chunks it processes.

Ownership is explicit: :func:`publish` immediately detaches the block
from the creating process's ``resource_tracker`` (workers of a pool must
be able to outlive their publisher), and whoever holds the handle — the
:class:`~repro.sweep.runner.SweepRunner` — must call
:meth:`SharedCoreHandle.unlink` when done. The runner does so from
``close()``/``finally``/``atexit`` so crashed runs do not leak
``/dev/shm`` segments (see ``tests/sweep/test_sharedcore.py``).

The header intentionally does not carry the cluster graph: workers get a
:class:`DetachedCluster` exposing only the post-compile surface the
engine and metrics layer read (``worker_ops``, ``chunk_params``,
``chunk_order``, ``spec``).
"""

from __future__ import annotations

import os
import pickle
import secrets
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from types import SimpleNamespace

import numpy as np

from ..sim.engine import CompiledCore

#: /dev/shm name prefix — lets tests (and operators) spot leaked blocks.
SHM_PREFIX = "reprocore"

#: core attributes whose numpy arrays live in the shared block (the big,
#: compile-expensive part); everything else travels in the pickled header.
ARRAY_ATTRS = (
    "base_indeg",
    "succ_indptr",
    "succ_indices",
    "is_transfer",
    "op_res",
    "t_egress",
    "t_ingress",
    "base_dur",
    "wire_base",
    "lat",
    "t_chan",
    "is_chunk",
    "capacity",
    "tr_ids",
    "tr_eg",
    "tr_in",
    "comp_ids",
    "comp_res",
    "root_times",
    "job_of",
)

#: plain-python core attributes shipped in the header.
STATE_ATTRS = (
    "n",
    "n_res",
    "n_wire_channels",
    "_res_index",
    "chan_eid",
    "chan_iid",
    "egress_ids",
    "eg_chan_lists",
    "eg_pos",
    "q_base",
    "q_slots",
    "chunk_op_ids",
    "chunk_param_names",
    "param_groups",
    "roots",
    "jobs",
    "platform",
    "chan_devices",
    "job_faults",
)


class _DetachedGraph:
    """Stand-in for the op graph on an attached core: only the engine's
    error path ever asks it anything."""

    def op(self, op_id: int) -> SimpleNamespace:
        return SimpleNamespace(name=f"op#{op_id}")


@dataclass
class DetachedCluster:
    """The post-compile cluster surface an attached core exposes."""

    spec: object
    worker_ops: dict
    chunk_params: dict = field(default_factory=dict)
    chunk_order: dict = field(default_factory=dict)
    #: job-mix surfaces (empty for single-job clusters): op ids per job
    #: label and per-job arrival offsets, read by the metrics layer.
    job_ops: dict = field(default_factory=dict)
    job_arrivals: dict = field(default_factory=dict)
    graph: _DetachedGraph = field(default_factory=_DetachedGraph)


@dataclass
class SharedCoreHandle:
    """Picklable directory of one published core (send it to workers)."""

    shm_name: str
    nbytes: int
    #: (attr name, dtype str, shape, byte offset) per shared array.
    arrays: tuple
    #: pickled header: STATE_ATTRS + the detached cluster + result meta.
    header: bytes

    def unlink(self) -> None:
        """Remove the backing block. Idempotent; safe while workers still
        hold attachments (POSIX keeps the mapping alive until unmapped)."""
        try:
            shm = shared_memory.SharedMemory(name=self.shm_name)
        except FileNotFoundError:
            return
        shm.close()
        try:
            # SharedMemory.unlink() also unregisters from the tracker,
            # balancing the attach-time register two lines up.
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - racing unlinkers
            pass


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach a block from this process's resource tracker: ownership of
    published cores is manual (runner ``close``/``atexit``), and tracked
    blocks would be unlinked prematurely when a pool worker exits (or
    spam 'leaked shared_memory' warnings)."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variations across 3.x
        pass


def publish(core: CompiledCore, meta: dict) -> SharedCoreHandle:
    """Copy a compiled core's arrays into one shared-memory block.

    ``meta`` carries the per-group result metadata the workers need to
    assemble :class:`~repro.sim.metrics.SimulationResult` rows without
    the model IR (name, batch size, parameter count).
    """
    specs = []
    offset = 0
    arrays = []
    for attr in ARRAY_ATTRS:
        arr = np.ascontiguousarray(getattr(core, attr))
        # align every array to 16 bytes so the views are cleanly typed
        offset = (offset + 15) & ~15
        specs.append((attr, arr.dtype.str, arr.shape, offset))
        arrays.append((arr, offset))
        offset += arr.nbytes
    nbytes = max(offset, 1)
    name = f"{SHM_PREFIX}_{os.getpid()}_{secrets.token_hex(6)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
    try:
        for arr, off in arrays:
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
            dst[...] = arr
        cluster = core.cluster
        state = {attr: getattr(core, attr) for attr in STATE_ATTRS}
        state["device_compute_ops"] = {
            dev: ids.tolist() for dev, ids in core.device_compute_ops.items()
        }
        state["cluster"] = DetachedCluster(
            spec=cluster.spec,
            worker_ops={w: list(ids) for w, ids in cluster.worker_ops.items()},
            chunk_params=dict(getattr(cluster, "chunk_params", {}) or {}),
            chunk_order=dict(getattr(cluster, "chunk_order", {}) or {}),
            job_ops={
                j: list(ids)
                for j, ids in (getattr(cluster, "job_ops", None) or {}).items()
            },
            job_arrivals=dict(getattr(cluster, "job_arrivals", None) or {}),
        )
        header = pickle.dumps(
            {"state": state, "meta": dict(meta)}, protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception:
        shm.close()
        shm.unlink()  # unregisters too, balancing the create-register
        raise
    _untrack(shm)
    shm.close()
    return SharedCoreHandle(
        shm_name=name, nbytes=nbytes, arrays=tuple(specs), header=header
    )


#: per-process attachment cache: a pool worker simulating many cells of
#: one group maps + rebuilds the core once. Holding the SharedMemory
#: object keeps the mapping alive for the views.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, CompiledCore, dict]] = {}


def attach(handle: SharedCoreHandle) -> tuple[CompiledCore, dict]:
    """Map a published core read-only and rebuild it (cached per process).

    Returns ``(core, meta)``. The array attributes are zero-copy views
    of the shared block with ``writeable=False``; list mirrors and
    kernel tables are rebuilt locally (cheap O(n) ``tolist`` fills).
    """
    got = _ATTACHED.get(handle.shm_name)
    if got is not None:
        return got[1], got[2]
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    # attaching registers with some interpreter versions' trackers too;
    # ownership stays with the publisher's holder either way.
    _untrack(shm)
    arrays = {}
    for attr, dtype, shape, offset in handle.arrays:
        view = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf,
                          offset=offset)
        view.flags.writeable = False
        arrays[attr] = view
    payload = pickle.loads(handle.header)
    core = CompiledCore.from_arrays(arrays, payload["state"])
    _ATTACHED[handle.shm_name] = (shm, core, payload["meta"])
    return core, payload["meta"]


def detach_all() -> None:
    """Drop this process's attachment cache (test isolation helper)."""
    for shm, _core, _meta in _ATTACHED.values():
        shm.close()
    _ATTACHED.clear()


def leaked_segments() -> list[str]:
    """Names of live ``/dev/shm`` blocks published by this machine's
    runners (diagnostics + leak tests)."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    return sorted(
        name for name in os.listdir(shm_dir) if name.startswith(SHM_PREFIX)
    )
