"""Code fingerprints for cache keys.

A cached simulation result is only valid while the code that produced it
is unchanged. Rather than a hand-bumped version constant (easy to forget),
the cache key folds in a content hash of every source file in the
packages that determine simulation numbers: ``core``, ``graph``,
``models``, ``ps``, ``sim``, ``timing`` and ``training``. Presentation
layers (``analysis``, ``experiments``, ``sweep`` itself) are deliberately
excluded so that editing a driver's table formatting does not invalidate
hours of simulated cells; function tasks additionally hash their defining
module (see :meth:`FnTask.key_payload <repro.sweep.spec.FnTask>`).
"""

from __future__ import annotations

import hashlib
import importlib
import os
from functools import lru_cache

#: Bump when the cache payload schema changes shape.
CACHE_FORMAT = 1

#: Subpackages of ``repro`` whose source affects simulated numbers.
SIM_PACKAGES = (
    "backends", "collectives", "core", "graph", "models", "ps", "sim",
    "timing", "training",
)


def _package_root() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def _iter_sources(root: str) -> list[tuple[str, str]]:
    """(relative path, absolute path) of every .py file under ``root``."""
    out = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                out.append((os.path.relpath(path, root), path))
    out.sort()
    return out


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Stable hash of all simulation-relevant source in this checkout.

    The engine's compiled-array layout revision
    (:data:`repro.sim.engine.ENGINE_REV`) is folded in explicitly: the
    source hash already changes with any engine edit, but the revision
    constant guards the semantic contract — entries cached by an engine
    with a different numerical contract can never be served, even across
    refactors that move the source out of the hashed tree."""
    from ..sim.engine import ENGINE_REV

    digest = hashlib.sha256()
    digest.update(f"format:{CACHE_FORMAT}".encode())
    digest.update(f"engine_rev:{ENGINE_REV}".encode())
    root = _package_root()
    for package in SIM_PACKAGES:
        for rel, path in _iter_sources(os.path.join(root, package)):
            digest.update(f"{package}/{rel}".encode())
            with open(path, "rb") as fh:
                digest.update(fh.read())
    return digest.hexdigest()


@lru_cache(maxsize=None)
def module_fingerprint(module_name: str) -> str:
    """Content hash of one module's source file (for function tasks whose
    defining module sits outside :data:`SIM_PACKAGES`)."""
    module = importlib.import_module(module_name)
    path = getattr(module, "__file__", None)
    if path is None:  # pragma: no cover - builtins/namespace packages
        return hashlib.sha256(module_name.encode()).hexdigest()
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()
