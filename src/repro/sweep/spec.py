"""Declarative sweep specifications.

The paper's evaluation is a grid — model x workers x PS x algorithm x
platform x knobs — and every experiment driver wants some slice of it.
Two unit types cover all of them:

* :class:`SimCell` — one simulated configuration, the unit the runner
  caches and parallelizes. Cells sharing (model, batch factor, cluster
  spec, platform) also share one compiled cluster graph (compile-once
  reuse), because only the :class:`~repro.core.schedules.Schedule` and
  :class:`~repro.sim.config.SimConfig` differ between them.
* :class:`FnTask` — an arbitrary deterministic function call addressed as
  ``"module:qualname"`` with JSON-serializable kwargs, for driver work
  that is not a plain cluster simulation (Fig. 8's SGD runs, §2.2's
  unique-order counts, Table 1's model characteristics, custom-schedule
  ablations).

:class:`GridSpec` expands the cartesian product declaratively; drivers
with irregular slices build their cell lists directly.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Iterator, Optional

from ..ps.cluster import ClusterSpec
from ..sim.config import SimConfig
from .fingerprint import code_fingerprint, module_fingerprint


def canonical_json(payload: object) -> str:
    """Deterministic JSON encoding used for cache-key material."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def ps_for_workers(n_workers: int) -> int:
    """Fig. 7's PS-provisioning policy: PS:workers = 1:4, at least one PS.
    The single definition — ``experiments.common`` re-exports it."""
    return max(1, n_workers // 4)


@dataclass(frozen=True)
class SimCell:
    """One point of the evaluation grid."""

    model: str
    spec: ClusterSpec
    algorithm: str = "baseline"
    platform: str = "envG"
    batch_factor: float = 1.0
    config: SimConfig = field(default_factory=SimConfig)

    def with_(self, **changes) -> "SimCell":
        return replace(self, **changes)

    @property
    def group_key(self) -> tuple:
        """Cells with equal group keys share one compiled cluster graph."""
        return (self.model, self.batch_factor, self.spec, self.platform)

    @property
    def cacheable(self) -> bool:
        """Per-op time arrays are too heavy for the JSON cache."""
        return not self.config.keep_op_times

    def key_payload(self) -> dict:
        # The spec's class name is part of the key: multiple backend spec
        # types share this cache keyspace, and two specs of different
        # backends must never collide even if their field dicts coincide.
        # The engine revision pins the compiled-array layout that produced
        # a cached cell, so results simulated by a pre-refactor engine can
        # never be served as hits (also folded into code_fingerprint).
        from ..sim.engine import ENGINE_REV

        cell = asdict(self)
        # The event-loop kernel is observable only in wall time (every
        # kernel is bit-exact, pinned by the golden + parity suites), so
        # numba and python runs share cache entries.
        cell["config"].pop("kernel", None)
        # Tracing is observational (side-array writes, no RNG use): a
        # traced run produces the same summaries as an untraced one, so
        # both share — and can never poison — one cache entry.
        cell["config"].pop("trace", None)
        # Faults DO change results, so a set plan stays in the key (the
        # event dataclasses carry a ``kind`` marker field, so asdict()
        # output distinguishes event types). A None plan is dropped so
        # pre-fault cache entries keep their keys.
        if cell["config"].get("faults") is None:
            cell["config"].pop("faults", None)
        return {
            "kind": "sim_cell",
            "spec_type": type(self.spec).__name__,
            "engine_rev": ENGINE_REV,
            "cell": cell,
        }

    def cache_key_material(self) -> str:
        return canonical_json(
            {"payload": self.key_payload(), "code": code_fingerprint()}
        )


@dataclass(frozen=True)
class FnTask:
    """A cacheable call to ``module:qualname`` with keyword arguments.

    The target must be a module-level function (so worker processes can
    import it) that is deterministic in its kwargs and returns
    JSON-serializable data.
    """

    fn: str
    kwargs: tuple[tuple[str, object], ...] = ()

    @classmethod
    def make(cls, fn: Callable, **kwargs) -> "FnTask":
        """Build a task from the function object itself."""
        path = f"{fn.__module__}:{fn.__qualname__}"
        return cls(fn=path, kwargs=tuple(sorted(kwargs.items())))

    @property
    def module(self) -> str:
        return self.fn.split(":", 1)[0]

    def resolve(self) -> Callable:
        module_name, _, qualname = self.fn.partition(":")
        obj = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        return obj

    def key_payload(self) -> dict:
        return {"kind": "fn_task", "fn": self.fn, "kwargs": dict(self.kwargs)}

    def cache_key_material(self) -> str:
        return canonical_json(
            {
                "payload": self.key_payload(),
                "code": code_fingerprint(),
                "module": module_fingerprint(self.module),
            }
        )


@dataclass(frozen=True)
class GridSpec:
    """Declarative cartesian grid over the evaluation axes.

    ``ps_from_workers`` applies Fig. 7's PS:workers = 1:4 policy instead of
    enumerating ``ps_counts``. Expansion order is the drivers' conventional
    nesting — workload, model, workers, PS, platform, batch factor,
    algorithm — so rows assembled from the expansion match the seed's
    hand-rolled loops.
    """

    models: tuple[str, ...]
    workloads: tuple[str, ...] = ("training",)
    worker_counts: tuple[int, ...] = (1,)
    ps_counts: tuple[int, ...] = (1,)
    ps_from_workers: bool = False
    algorithms: tuple[str, ...] = ("baseline",)
    platforms: tuple[str, ...] = ("envG",)
    batch_factors: tuple[float, ...] = (1.0,)
    sharding: str = "greedy"

    def cells(self, config: Optional[SimConfig] = None) -> list["SimCell"]:
        return list(self.iter_cells(config))

    def iter_cells(self, config: Optional[SimConfig] = None) -> Iterator["SimCell"]:
        cfg = config or SimConfig()
        for workload in self.workloads:
            for model in self.models:
                for n_workers in self.worker_counts:
                    for n_ps in self._ps_counts_for(n_workers):
                        spec = ClusterSpec(
                            n_workers=n_workers,
                            n_ps=n_ps,
                            workload=workload,
                            sharding=self.sharding,
                        )
                        for platform in self.platforms:
                            for factor in self.batch_factors:
                                for algorithm in self.algorithms:
                                    yield SimCell(
                                        model=model,
                                        spec=spec,
                                        algorithm=algorithm,
                                        platform=platform,
                                        batch_factor=factor,
                                        config=cfg,
                                    )

    def _ps_counts_for(self, n_workers: int) -> tuple[int, ...]:
        if self.ps_from_workers:
            return (ps_for_workers(n_workers),)
        return self.ps_counts

    def __len__(self) -> int:
        per_worker_ps = (
            len(self.worker_counts)
            if self.ps_from_workers
            else len(self.worker_counts) * len(self.ps_counts)
        )
        return (
            len(self.workloads)
            * len(self.models)
            * per_worker_ps
            * len(self.platforms)
            * len(self.batch_factors)
            * len(self.algorithms)
        )
