"""On-disk result cache.

One JSON file per cache key under a two-level fan-out directory
(``<root>/ab/<key>.json``). Writes are atomic (temp file + rename) so a
crashed or parallel run never leaves a half-written entry; unreadable
entries are treated as misses and overwritten. Keys are SHA-256 over the
canonical JSON of (cell/task payload, code fingerprint) — see
:mod:`repro.sweep.fingerprint` for what invalidates them.

Entries live until :meth:`ResultCache.gc` evicts them: a size-capped LRU
pass that deletes least-recently-*used* entries (every cache hit bumps the
entry's mtime) until the cache fits the cap. Stale ``.tmp-`` droppings
from crashed writers are collected on the way.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Optional


def cache_key(material: str) -> str:
    """SHA-256 hex digest of key material (see ``cache_key_material``)."""
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}


@dataclass
class ResultCache:
    """Directory-backed JSON store keyed by content hash."""

    root: str
    stats: CacheStats = field(default_factory=CacheStats)

    def path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        path = self.path(key)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            # ValueError covers JSONDecodeError and UnicodeDecodeError:
            # any unreadable entry is a miss, never a crash.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        try:
            os.utime(path)  # LRU bump: gc evicts by mtime
        except OSError:  # pragma: no cover - read-only cache mounts
            pass
        return payload

    def note_invalid(self) -> None:
        """Reclassify the latest hit as a miss — for callers that reject a
        payload after ``get`` (stale format, foreign entry)."""
        self.stats.hits -= 1
        self.stats.misses += 1

    def put(self, key: str, payload: dict) -> str:
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def gc(self, max_bytes: int) -> dict:
        """Size-capped LRU eviction: delete least-recently-used entries
        until the cache holds at most ``max_bytes`` of entry payloads.

        Usage recency is the entry file's mtime (bumped by :meth:`get`).
        Orphaned ``.tmp-`` files from crashed writers are always removed.
        Concurrent deletion is tolerated (missing files just count as
        already gone). Returns a summary dict for logging/tests.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        entries: list[tuple[float, int, str]] = []  # (mtime, size, path)
        removed = freed = 0
        for dirpath, _dirs, files in os.walk(self.root):
            for name in files:
                path = os.path.join(dirpath, name)
                if name.startswith(".tmp-"):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                    continue
                if not name.endswith(".json"):
                    continue
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                entries.append((st.st_mtime, st.st_size, path))
        total = sum(size for _, size, _ in entries)
        entries.sort()  # oldest mtime first
        i = 0
        while total > max_bytes and i < len(entries):
            _, size, path = entries[i]
            i += 1
            try:
                os.unlink(path)
            except OSError:
                continue
            removed += 1
            freed += size
            total -= size
        # prune fan-out directories emptied by the eviction pass
        for dirpath, dirs, files in os.walk(self.root, topdown=False):
            if dirpath != self.root and not dirs and not files:
                try:
                    os.rmdir(dirpath)
                except OSError:
                    pass
        return {
            "entries_kept": len(entries) - removed,
            "entries_removed": removed,
            "bytes_kept": total,
            "bytes_removed": freed,
        }

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path(key))

    def entry_count(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(
            1
            for dirpath, _dirs, files in os.walk(self.root)
            for name in files
            if name.endswith(".json") and not name.startswith(".tmp-")
        )
