"""On-disk result cache.

One JSON file per cache key under a two-level fan-out directory
(``<root>/ab/<key>.json``). Writes are atomic (temp file + rename) so a
crashed or parallel run never leaves a half-written entry; unreadable
entries are treated as misses and overwritten. Keys are SHA-256 over the
canonical JSON of (cell/task payload, code fingerprint) — see
:mod:`repro.sweep.fingerprint` for what invalidates them.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Optional


def cache_key(material: str) -> str:
    """SHA-256 hex digest of key material (see ``cache_key_material``)."""
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}


@dataclass
class ResultCache:
    """Directory-backed JSON store keyed by content hash."""

    root: str
    stats: CacheStats = field(default_factory=CacheStats)

    def path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        path = self.path(key)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            # ValueError covers JSONDecodeError and UnicodeDecodeError:
            # any unreadable entry is a miss, never a crash.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def note_invalid(self) -> None:
        """Reclassify the latest hit as a miss — for callers that reject a
        payload after ``get`` (stale format, foreign entry)."""
        self.stats.hits -= 1
        self.stats.misses += 1

    def put(self, key: str, payload: dict) -> str:
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path(key))

    def entry_count(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(
            1
            for dirpath, _dirs, files in os.walk(self.root)
            for name in files
            if name.endswith(".json") and not name.startswith(".tmp-")
        )
