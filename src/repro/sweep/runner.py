"""The sweep runner: parallel, cached execution of evaluation grids.

Execution pipeline for a batch of :class:`~repro.sweep.spec.SimCell`:

1. **Dedupe** — identical cells (drivers overlap heavily; e.g. Fig. 7 and
   the headline scan share their whole grid, and every speedup pair wants
   the same baseline cell) collapse to one simulation.
2. **Cache probe** — each unique cell's key (config + code fingerprint)
   is looked up in the on-disk JSON cache; hits skip simulation entirely.
3. **Group** — misses are grouped by (model, batch factor, cluster spec,
   platform); each group compiles its model IR and cluster graph once and
   runs all member cells against it (:func:`simulate_cell_group`).
4. **Fan out** — groups execute either in-process (``jobs <= 1``) or on a
   ``ProcessPoolExecutor``. Cells are independent and the engine seeds
   from ``(config.seed, iteration)``, so parallel and serial execution
   produce bitwise-identical results.
5. **Round-trip** — every fresh result passes through the JSON
   serialization (lossless for IEEE doubles) before being returned and
   cached, so the first run and every cached re-run yield the exact same
   numbers.

:class:`FnTask` batches follow the same dedupe/cache/fan-out path, minus
the grouping.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import NamedTuple, Optional, Sequence

from ..sim.metrics import SimulationResult
from ..sim.runner import simulate_cell_group, throughput_gain_pct
from .cache import CacheStats, ResultCache, cache_key
from .serialize import result_from_dict, result_to_dict
from .spec import FnTask, SimCell

def _run_group(cells: Sequence[SimCell]) -> list:
    """Worker entry point: simulate one compile-once group (module-level
    so process pools can pickle it). Cacheable cells come back as
    serialized dicts; ``keep_op_times`` cells keep their live result (the
    per-op arrays do not fit the JSON cache)."""
    first = cells[0]
    variants = [(c.algorithm, c.config) for c in cells]
    results = simulate_cell_group(
        first.model,
        first.spec,
        variants,
        platform=first.platform,
        batch_factor=first.batch_factor,
    )
    return [
        result_to_dict(r) if cell.cacheable else r
        for cell, r in zip(cells, results)
    ]


def _run_task(task: FnTask) -> object:
    """Worker entry point for function tasks."""
    return task.resolve()(**dict(task.kwargs))


class Speedup(NamedTuple):
    """One scheduled-vs-baseline comparison (Fig. 7/9/10/13's unit)."""

    gain_pct: float
    sched: SimulationResult
    base: SimulationResult


@dataclass
class SweepRunner:
    """Executes cell and task batches with caching and parallelism.

    ``jobs`` caps worker processes (<=1 means in-process serial).
    ``cache_dir=None`` disables the on-disk cache; ``rerun`` recomputes
    every unit and refreshes its cache entry.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    rerun: bool = False
    stats: CacheStats = field(init=False)
    _cache: Optional[ResultCache] = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.cache_dir:
            self._cache = ResultCache(os.fspath(self.cache_dir))
            self.stats = self._cache.stats
        else:
            self.stats = CacheStats()

    # -- cells ----------------------------------------------------------
    def run_cells(self, cells: Sequence[SimCell]) -> list[SimulationResult]:
        """Simulate a batch of cells; returns results in input order."""
        order: dict[SimCell, None] = dict.fromkeys(cells)
        resolved: dict[SimCell, SimulationResult] = {}
        keys: dict[SimCell, str] = {}

        pending: list[SimCell] = []
        for cell in order:
            payload = None
            if self._cache is not None and cell.cacheable:
                keys[cell] = cache_key(cell.cache_key_material())
                if not self.rerun:
                    payload = self._cache.get(keys[cell])
            if payload is not None:
                try:
                    resolved[cell] = result_from_dict(payload)
                    continue
                except (KeyError, ValueError):
                    self._cache.note_invalid()  # stale/foreign: recompute
            pending.append(cell)

        groups: dict[tuple, list[SimCell]] = {}
        for cell in pending:
            groups.setdefault(cell.group_key, []).append(cell)

        for group, payloads in zip(
            groups.values(), self._map(_run_group, list(groups.values()))
        ):
            for cell, payload in zip(group, payloads):
                if isinstance(payload, dict):
                    resolved[cell] = result_from_dict(payload)
                    if self._cache is not None:
                        self._cache.put(keys[cell], payload)
                else:  # keep_op_times: live result, never cached
                    resolved[cell] = payload
        return [resolved[cell] for cell in cells]

    def run_speedups(self, cells: Sequence[SimCell]) -> list[Speedup]:
        """For each scheduled cell, also run its baseline twin and report
        the throughput gain — the batched form of
        :func:`~repro.sim.runner.speedup_vs_baseline` (identical numbers:
        same shared cluster graph, same pairing, same gain formula)."""
        flat: list[SimCell] = []
        for cell in cells:
            flat.append(cell.with_(algorithm="baseline"))
            flat.append(cell)
        results = self.run_cells(flat)
        return [
            Speedup(throughput_gain_pct(sched, base), sched, base)
            for base, sched in zip(results[::2], results[1::2])
        ]

    # -- function tasks -------------------------------------------------
    def run_tasks(self, tasks: Sequence[FnTask]) -> list[object]:
        """Execute a batch of function tasks; returns values in input
        order. Values are JSON-normalized (tuples become lists) so cached
        and fresh runs are indistinguishable."""
        import json

        order: dict[FnTask, None] = dict.fromkeys(tasks)
        resolved: dict[FnTask, object] = {}
        keys: dict[FnTask, str] = {}

        pending: list[FnTask] = []
        for task in order:
            payload = None
            if self._cache is not None:
                keys[task] = cache_key(task.cache_key_material())
                if not self.rerun:
                    payload = self._cache.get(keys[task])
            if payload is not None:
                if "value" in payload:
                    resolved[task] = payload["value"]
                    continue
                self._cache.note_invalid()  # foreign entry: recompute
            pending.append(task)

        for task, value in zip(pending, self._map(_run_task, pending)):
            value = json.loads(json.dumps(value))
            resolved[task] = value
            if self._cache is not None:
                self._cache.put(keys[task], {"value": value})
        return [resolved[task] for task in tasks]

    # -- cache maintenance ----------------------------------------------
    def gc_cache(self, max_mb: float) -> Optional[dict]:
        """Evict least-recently-used cache entries down to ``max_mb``
        mebibytes (see :meth:`~repro.sweep.cache.ResultCache.gc`).
        Returns the eviction summary, or ``None`` when caching is off."""
        if self._cache is None:
            return None
        return self._cache.gc(int(max_mb * 2**20))

    # -- execution ------------------------------------------------------
    def _map(self, fn, items: list) -> list:
        if not items:
            return []
        if self.jobs <= 1 or len(items) == 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(items))) as pool:
            return list(pool.map(fn, items))
