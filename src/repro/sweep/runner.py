"""The sweep runner: parallel, cached execution of evaluation grids.

Execution pipeline for a batch of :class:`~repro.sweep.spec.SimCell`:

1. **Dedupe** — identical cells (drivers overlap heavily; e.g. Fig. 7 and
   the headline scan share their whole grid, and every speedup pair wants
   the same baseline cell) collapse to one simulation.
2. **Cache probe** — each unique cell's key (config + code fingerprint)
   is looked up in the on-disk JSON cache; hits skip simulation entirely.
3. **Group** — misses are grouped by (model, batch factor, cluster spec,
   platform); each group compiles its model IR and cluster graph once and
   runs all member cells against it (:func:`simulate_cell_group`).
4. **Fan out** — groups execute either in-process (``jobs <= 1``) or on a
   **persistent** ``ProcessPoolExecutor`` that lives for the whole runner
   (one pool spawn per run, not one per grid). With ``jobs > 1``,
   variant-heavy groups go through the shared-core path: one worker
   compiles the group's :class:`~repro.sim.engine.CompiledCore` *once*,
   publishes its arrays into a shared-memory block
   (:mod:`repro.sweep.sharedcore`) together with the group's wizard
   schedules, and — as soon as that completes, no cross-group barrier —
   the group's cells fan out against the attached read-only core, so a
   grid's variants parallelize across the pool instead of serializing
   inside one group task. By default the fan-out is **batched** (ISSUE
   8): each worker receives a contiguous chunk of the group's cells and
   runs ALL their iterations through the variant-batched kernel entry —
   whole slabs of (variant, iteration) rows per compiled call instead
   of one dispatch each (``batch_cells=False`` restores one task per
   cell). Small groups in a group-rich batch keep the classic
   one-task-per-group lane on the same pool (group-level parallelism
   already saturates it). Cells are independent and the engine seeds
   from ``(config.seed, iteration)``, so serial, grouped, shared-core
   and batched execution produce bitwise-identical results.
5. **Round-trip** — every fresh result passes through the JSON
   serialization (lossless for IEEE doubles) before being returned and
   cached, so the first run and every cached re-run yield the exact same
   numbers.

:class:`FnTask` batches follow the same dedupe/cache/fan-out path, minus
the grouping.

Shared-memory blocks are owned by the runner: they are reused across
``run_cells`` calls (a driver re-sweeping a group never recompiles it)
and unlinked on :meth:`SweepRunner.close` — which runs from ``with``
blocks, ``__del__`` and ``atexit``, so aborted runs do not leak
``/dev/shm`` segments.
"""

from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import NamedTuple, Optional, Sequence

from ..core.schedules import Schedule
from ..obs.telemetry import Telemetry
from ..sim.metrics import SimulationResult
from ..sim.runner import simulate_cell_group, throughput_gain_pct
from .cache import CacheStats, ResultCache, cache_key
from .serialize import result_from_dict, result_to_dict
from .spec import FnTask, SimCell
from . import sharedcore


def _run_group(cells: Sequence[SimCell]) -> tuple:
    """Worker entry point: simulate one compile-once group (module-level
    so process pools can pickle it). Cacheable cells come back as
    serialized dicts; ``keep_op_times`` cells keep their live result (the
    per-op arrays do not fit the JSON cache). Returns ``(elapsed_s,
    payloads)`` so the runner's telemetry sees worker-side wall time."""
    t0 = time.perf_counter()
    first = cells[0]
    variants = [(c.algorithm, c.config) for c in cells]
    results = simulate_cell_group(
        first.model,
        first.spec,
        variants,
        platform=first.platform,
        batch_factor=first.batch_factor,
    )
    payloads = [
        result_to_dict(r) if cell.cacheable else r
        for cell, r in zip(cells, results)
    ]
    return time.perf_counter() - t0, payloads


class _PreparedGroup(NamedTuple):
    """One published group core plus everything phase-B workers need."""

    handle: sharedcore.SharedCoreHandle
    #: (algorithm, seed) -> wizard Schedule ('baseline' entries omitted).
    schedules: dict


def _prepare_schedules(cells: Sequence[SimCell]) -> dict:
    """Run the ordering wizard once per distinct (algorithm, seed) of
    ``cells``. Identical inputs to
    :func:`repro.sim.runner.simulate_cluster`'s own schedule prep, so
    phase-B results match the one-shot path bit-for-bit."""
    from ..backends import prepare_comm_schedule
    from ..models import build_model
    from ..timing import get_platform

    first = cells[0]
    plat = get_platform(first.platform)
    ir = build_model(first.model, batch_factor=first.batch_factor)
    schedules: dict = {}
    for cell in cells:
        key = (cell.algorithm, cell.config.seed)
        if cell.algorithm != "baseline" and key not in schedules:
            schedules[key] = prepare_comm_schedule(
                ir, cell.spec, cell.algorithm, plat, seed=cell.config.seed
            )
    return schedules


def _prepare_group(cells: Sequence[SimCell]) -> _PreparedGroup:
    """Phase A worker entry point: compile one group's model IR, cluster
    graph and engine core, publish the core to shared memory, and run the
    ordering wizard for the group's variants."""
    from ..backends import build_comm_graph
    from ..models import build_model
    from ..sim.engine import CompiledCore
    from ..timing import get_platform

    first = cells[0]
    plat = get_platform(first.platform)
    ir = build_model(first.model, batch_factor=first.batch_factor)
    cluster = build_comm_graph(ir, first.spec)
    core = CompiledCore(cluster, plat)
    # wizard BEFORE publish: once a block exists, only the returned
    # handle can unlink it — a schedule failure after publish would
    # leak the segment past close()/atexit.
    schedules = _prepare_schedules(cells)
    handle = sharedcore.publish(
        core,
        meta={
            "model": ir.name,
            "batch_size": ir.batch_size,
            "n_params": ir.n_param_tensors,
        },
    )
    return _PreparedGroup(handle=handle, schedules=schedules)




def _run_shared_cell(args: tuple) -> tuple:
    """Phase B worker entry point: simulate one cell against an attached
    shared core. Mirrors :func:`repro.sim.runner.simulate_cluster` (same
    variant binding, same iteration protocol, same summarization), so the
    result is bit-identical to the grouped/serial paths. Returns
    ``(elapsed_s, payload)``."""
    from ..sim.engine import SimVariant
    from ..sim.metrics import summarize_iteration
    from ..timing import get_platform

    t0 = time.perf_counter()
    handle, schedule, cell = args
    core, meta = sharedcore.attach(handle)
    plat = get_platform(cell.platform)
    cfg = cell.config
    if cell.algorithm == "baseline":
        schedule = Schedule("baseline")
    elif schedule is None:
        # belt-and-braces: a missing schedule must never silently mean
        # 'baseline' — recompute it here (memoized per worker process).
        from ..backends import prepare_comm_schedule
        from ..models import build_model

        ir = build_model(cell.model, batch_factor=cell.batch_factor)
        schedule = prepare_comm_schedule(
            ir, cell.spec, cell.algorithm, plat, seed=cfg.seed
        )
    sim = SimVariant(core, schedule, cfg)
    result = SimulationResult(
        model=meta["model"],
        batch_size=meta["batch_size"],
        n_workers=cell.spec.n_workers,
        n_ps=cell.spec.n_ps,
        workload=cell.spec.workload,
        algorithm=schedule.algorithm,
        platform=plat.name,
        n_params=meta["n_params"],
    )
    for i, record in enumerate(sim.iter_iterations(0, cfg.total_iterations)):
        summary = summarize_iteration(sim, record, keep_op_times=cfg.keep_op_times)
        (result.warmup if i < cfg.warmup else result.iterations).append(summary)
    payload = result_to_dict(result) if cell.cacheable else result
    return time.perf_counter() - t0, payload


def _run_shared_cells_batched(args: tuple) -> tuple:
    """Phase B worker entry point (batched lane): simulate MANY cells of
    one group against the attached shared core, dispatching all their
    iterations through the variant-batched kernel entry
    (:func:`repro.sim.engine.iter_variant_records`) — one compiled call
    per row slab instead of one per (cell, iteration). Cell binding and
    summarization mirror :func:`_run_shared_cell` exactly, and the
    batched kernel lane is pinned bit-identical to per-iteration
    dispatch, so payloads match the per-cell path byte for byte.
    ``args`` is ``(handle, [(schedule, cell), ...])``; returns
    ``(elapsed_s, payloads)`` in input cell order."""
    from ..sim.engine import SimVariant, iter_variant_records
    from ..sim.metrics import summarize_iteration
    from ..timing import get_platform

    t0 = time.perf_counter()
    handle, items = args
    core, meta = sharedcore.attach(handle)
    sims = []
    results = []
    for schedule, cell in items:
        plat = get_platform(cell.platform)
        cfg = cell.config
        if cell.algorithm == "baseline":
            schedule = Schedule("baseline")
        elif schedule is None:
            # belt-and-braces twin of _run_shared_cell: a missing
            # schedule must never silently mean 'baseline'.
            from ..backends import prepare_comm_schedule
            from ..models import build_model

            ir = build_model(cell.model, batch_factor=cell.batch_factor)
            schedule = prepare_comm_schedule(
                ir, cell.spec, cell.algorithm, plat, seed=cfg.seed
            )
        sims.append(SimVariant(core, schedule, cfg))
        results.append(
            SimulationResult(
                model=meta["model"],
                batch_size=meta["batch_size"],
                n_workers=cell.spec.n_workers,
                n_ps=cell.spec.n_ps,
                workload=cell.spec.workload,
                algorithm=schedule.algorithm,
                platform=plat.name,
                n_params=meta["n_params"],
            )
        )
    # One batched sweep per distinct iteration protocol (cells of a
    # group virtually always share one; mixed counts just sub-batch).
    by_count: dict[int, list[int]] = {}
    for idx, (_schedule, cell) in enumerate(items):
        by_count.setdefault(cell.config.total_iterations, []).append(idx)
    seen = [0] * len(items)
    for count, idxs in by_count.items():
        for vi, record in iter_variant_records([sims[i] for i in idxs], count):
            idx = idxs[vi]
            sim = sims[idx]
            i = seen[idx]
            seen[idx] = i + 1
            summary = summarize_iteration(
                sim, record, keep_op_times=sim.config.keep_op_times
            )
            result = results[idx]
            (result.warmup if i < sim.config.warmup
             else result.iterations).append(summary)
    payloads = [
        result_to_dict(r) if cell.cacheable else r
        for (_schedule, cell), r in zip(items, results)
    ]
    return time.perf_counter() - t0, payloads


def _balanced_chunks(seq: list, n_chunks: int) -> list[list]:
    """Split ``seq`` into at most ``n_chunks`` contiguous, size-balanced
    (difference <= 1) non-empty chunks, preserving order."""
    n_chunks = max(1, min(n_chunks, len(seq)))
    size, extra = divmod(len(seq), n_chunks)
    chunks = []
    i = 0
    for j in range(n_chunks):
        step = size + (1 if j < extra else 0)
        chunks.append(seq[i:i + step])
        i += step
    return chunks


def _run_task(task: FnTask) -> object:
    """Worker entry point for function tasks."""
    return task.resolve()(**dict(task.kwargs))


class Speedup(NamedTuple):
    """One scheduled-vs-baseline comparison (Fig. 7/9/10/13's unit)."""

    gain_pct: float
    sched: SimulationResult
    base: SimulationResult


@dataclass
class SweepRunner:
    """Executes cell and task batches with caching and parallelism.

    ``jobs`` caps worker processes (<=1 means in-process serial).
    ``cache_dir=None`` disables the on-disk cache; ``rerun`` recomputes
    every unit and refreshes its cache entry. ``share_cores=False``
    forces the legacy one-task-per-group fan-out (no shared memory).
    ``batch_cells=False`` forces one task per shared-core cell instead
    of the batched lane (ISSUE 8) that hands each worker a chunk of a
    group's cells to run through one variant-batched kernel sweep —
    batching, like sharing, never changes results (bit-exact lanes) and
    is excluded from cache keys.

    The worker pool is persistent: it is spawned on first use and reused
    by every subsequent ``run_cells``/``run_tasks`` call until
    :meth:`close` (usable as a context manager; ``atexit`` covers runs
    that never close explicitly).
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    rerun: bool = False
    share_cores: bool = True
    batch_cells: bool = True
    #: resilience knobs (ISSUE 9): a cell task that raises, times out or
    #: is lost to a worker-pool crash is retried up to ``max_retries``
    #: times (exponential backoff ``retry_backoff_s * 2**(attempt-1)``)
    #: on a robust self-contained lane before being quarantined;
    #: ``cell_timeout_s`` bounds any single task's wall time (``None`` =
    #: unbounded). A dead pool (``BrokenProcessPool`` — a worker was
    #: OOM-killed or segfaulted) is rebuilt transparently, surviving
    #: shared cores are kept, lost ones re-prepare on next use.
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    cell_timeout_s: Optional[float] = None
    #: cells that exhausted their retries, as ``(cell, error)`` pairs —
    #: the batch completes with partial results instead of raising
    #: (``run_cells`` returns ``None`` at their positions).
    quarantined: list = field(init=False, default_factory=list, repr=False)
    stats: CacheStats = field(init=False)
    #: run-level counters (see :mod:`repro.obs.telemetry`): cells
    #: requested/deduped/cached/simulated, group/shared-core activity,
    #: worker wall time. Always on — surfaced per scenario as
    #: ``ResultSet.telemetry``.
    telemetry: Telemetry = field(init=False)
    _cache: Optional[ResultCache] = field(init=False, default=None, repr=False)
    _pool: Optional[ProcessPoolExecutor] = field(init=False, default=None, repr=False)
    _group_cores: dict = field(init=False, default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.cache_dir:
            self._cache = ResultCache(os.fspath(self.cache_dir))
            self.stats = self._cache.stats
        else:
            self.stats = CacheStats()
        self.telemetry = Telemetry()

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down and unlink published shared cores.
        Idempotent; runs from ``with`` exits, ``__del__`` and ``atexit``
        so crashed sweeps do not leak ``/dev/shm`` blocks."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        groups, self._group_cores = self._group_cores, {}
        for prepared in groups.values():
            prepared.handle.unlink()
        atexit.unregister(self.close)

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    # -- cells ----------------------------------------------------------
    def run_cells(self, cells: Sequence[SimCell]) -> list[SimulationResult]:
        """Simulate a batch of cells; returns results in input order.

        Cells that exhausted their retries (see :attr:`quarantined`)
        come back as ``None`` — the rest of the batch still completes.
        """
        tm = self.telemetry
        tm.add("run_cells_calls")
        with tm.timer("run_cells_wall_s"):
            order: dict[SimCell, None] = dict.fromkeys(cells)
            tm.add("cells_requested", len(cells))
            tm.add("cells_deduped", len(cells) - len(order))
            resolved: dict[SimCell, SimulationResult] = {}
            keys: dict[SimCell, str] = {}

            pending: list[SimCell] = []
            for cell in order:
                payload = None
                if self._cache is not None and cell.cacheable:
                    keys[cell] = cache_key(cell.cache_key_material())
                    if not self.rerun:
                        payload = self._cache.get(keys[cell])
                if payload is not None:
                    try:
                        resolved[cell] = result_from_dict(payload)
                        tm.add("cells_cached")
                        continue
                    except (KeyError, ValueError):
                        self._cache.note_invalid()  # stale/foreign: recompute
                pending.append(cell)
            tm.add("cells_simulated", len(pending))

            groups: dict[tuple, list[SimCell]] = {}
            for cell in pending:
                groups.setdefault(cell.group_key, []).append(cell)

            reusable = any(gk in self._group_cores for gk in groups)
            if self.jobs > 1 and self.share_cores and (len(pending) > 1 or reusable):
                # also route single-cell batches through the shared path
                # when their group's core is already published — attaching
                # beats recompiling the IR/cluster/core from scratch.
                self._run_groups_shared(groups, resolved, keys)
            else:
                tm.add("groups_run", len(groups))
                for group, (elapsed, payloads) in zip(
                    groups.values(), self._map(_run_group, list(groups.values()))
                ):
                    tm.add("sim_wall_s", elapsed)
                    tm.peak("cell_wall_max_s", elapsed)
                    for cell, payload in zip(group, payloads):
                        self._store(cell, payload, resolved, keys)
        return [resolved.get(cell) for cell in cells]

    def _worth_sharing(self, n_cells: int, n_groups: int) -> bool:
        """Split a group's cells across workers only when that buys
        parallelism or amortization: either the batch has fewer groups
        than workers (group-level fan-out would leave the pool starved),
        or the group is variant-heavy enough that the publish/attach
        overhead is dwarfed. Small groups in a group-rich batch stay on
        the one-task-per-group lane, which already saturates the pool
        with no shared-memory round trips. The batched lane lowered the
        variant-heavy threshold from 4 to 3: chunked cells amortize the
        attach + per-task dispatch that made small shared groups
        marginal."""
        return n_groups < self.jobs or n_cells >= 3

    def _run_groups_shared(self, groups, resolved, keys) -> None:
        """Streaming shared-core fan-out (``jobs > 1``).

        Each new shareable group gets a *prepare* task (compile the
        IR/cluster/core once, publish to shared memory, wizard the
        schedules); the moment it completes, one *cell* task per member
        fans out against the attached core — no barrier between groups,
        so a slow-compiling group never stalls the others' simulations.
        Already-published groups (cross-call reuse) skip straight to cell
        tasks, topping up wizard schedules first when the reuse brings
        algorithms/seeds the original publish did not cover (a missing
        schedule must never degrade a cell to baseline). Groups not worth
        sharing run as classic one-task-per-group units on the same pool.
        Cores persist on the runner for reuse and are unlinked in
        :meth:`close`.

        **Resilience** (ISSUE 9): any lost unit — a task that raised,
        exceeded ``cell_timeout_s``, or was in flight when the pool
        crashed — is decomposed into its member cells and each cell
        retried as a self-contained single-cell group task (no
        shared-memory dependency, so retries survive lost cores), with
        exponential backoff and at most ``max_retries`` attempts before
        the cell is quarantined. ``BrokenProcessPool`` rebuilds the pool,
        drops published cores whose ``/dev/shm`` blocks did not survive
        and retries everything that was in flight; the batch always
        completes without raising.
        """
        tm = self.telemetry
        pending: dict = {}  # future -> ("cell", cell) | ("group", cells) | ...
        deadlines: dict = {}  # future -> monotonic deadline (opt-in)
        attempts: dict = {}  # cell -> retries consumed

        def track(fut, tag) -> None:
            pending[fut] = tag
            if self.cell_timeout_s is not None:
                deadlines[fut] = time.monotonic() + self.cell_timeout_s

        def submit_cells(group_key, cells) -> None:
            prepared = self._group_cores[group_key]
            pool = self._get_pool()
            tm.add("shared_cell_tasks", len(cells))
            items = [
                (prepared.schedules.get((cell.algorithm, cell.config.seed)),
                 cell)
                for cell in cells
            ]
            if self.batch_cells and len(cells) > 1:
                # batched lane: one chunk of cells per worker, all their
                # iterations dispatched as variant-batched kernel sweeps.
                for chunk in _balanced_chunks(items, self.jobs):
                    tm.add("shared_batch_tasks")
                    fut = pool.submit(
                        _run_shared_cells_batched, (prepared.handle, chunk)
                    )
                    track(fut, ("batch", [cell for _s, cell in chunk]))
                return
            for schedule, cell in items:
                fut = pool.submit(
                    _run_shared_cell, (prepared.handle, schedule, cell)
                )
                track(fut, ("cell", cell))

        def cells_of(tag) -> list:
            kind = tag[0]
            if kind == "cell":
                return [tag[1]]
            if kind in ("group", "batch"):
                return list(tag[1])
            return list(tag[2])  # prep / sched carry their member cells

        def fail(tag, err) -> list:
            """Split a lost unit into cells to retry vs. quarantine."""
            retry = []
            for cell in cells_of(tag):
                if cell in resolved:
                    continue
                n = attempts.get(cell, 0) + 1
                if n > self.max_retries:
                    tm.add("quarantined")
                    self.quarantined.append(
                        (cell, f"{type(err).__name__}: {err}")
                    )
                    continue
                attempts[cell] = n
                tm.add("retries")
                retry.append(cell)
            return retry

        def resubmit(cells_to_retry) -> None:
            if not cells_to_retry:
                return
            delay = self.retry_backoff_s * (
                2 ** (max(attempts[c] for c in cells_to_retry) - 1)
            )
            if delay > 0:
                time.sleep(delay)
            pool = self._get_pool()
            for cell in cells_to_retry:
                tm.add("groups_run")
                track(pool.submit(_run_group, [cell]), ("group", [cell]))

        pool = self._get_pool()
        for group_key, cells in groups.items():
            prepared = self._group_cores.get(group_key)
            if prepared is not None:
                missing = [
                    cell
                    for cell in cells
                    if cell.algorithm != "baseline"
                    and (cell.algorithm, cell.config.seed)
                    not in prepared.schedules
                ]
                submit_cells(
                    group_key, [c for c in cells if c not in missing]
                )
                if missing:
                    fut = pool.submit(_prepare_schedules, missing)
                    track(fut, ("sched", group_key, missing))
            elif len(cells) > 1 and self._worth_sharing(len(cells), len(groups)):
                fut = pool.submit(_prepare_group, cells)
                track(fut, ("prep", group_key, cells))
            else:
                tm.add("groups_run")
                fut = pool.submit(_run_group, cells)
                track(fut, ("group", cells))

        while pending:
            timeout = None
            if deadlines:
                timeout = max(0.0, min(deadlines.values()) - time.monotonic())
            done, _ = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
            retry: list = []
            if deadlines:
                now = time.monotonic()
                for fut in [
                    f for f, dl in list(deadlines.items())
                    if dl <= now and f not in done
                ]:
                    tag = pending.pop(fut)
                    deadlines.pop(fut, None)
                    # cancel() frees the slot if the task never started;
                    # a running worker keeps burning but its eventual
                    # result is discarded (the future is untracked now).
                    fut.cancel()
                    retry += fail(
                        tag,
                        TimeoutError(
                            f"cell task exceeded {self.cell_timeout_s}s"
                        ),
                    )
            for fut in done:
                tag = pending.pop(fut, None)
                if tag is None:
                    continue  # already written off by a pool rebuild
                deadlines.pop(fut, None)
                kind = tag[0]
                try:
                    value = fut.result()
                except BrokenProcessPool as err:
                    # the pool is dead: every in-flight future is lost.
                    tm.add("pool_rebuilds")
                    lost = [tag] + list(pending.values())
                    pending.clear()
                    deadlines.clear()
                    self._rebuild_pool()
                    self._drop_dead_cores()
                    for t in lost:
                        retry += fail(t, err)
                    continue
                except Exception as err:
                    retry += fail(tag, err)
                    continue
                if kind == "cell":
                    elapsed, payload = value
                    tm.add("sim_wall_s", elapsed)
                    tm.peak("cell_wall_max_s", elapsed)
                    self._store(tag[1], payload, resolved, keys)
                elif kind in ("group", "batch"):
                    elapsed, payloads = value
                    tm.add("sim_wall_s", elapsed)
                    tm.peak("cell_wall_max_s", elapsed)
                    for cell, payload in zip(tag[1], payloads):
                        self._store(cell, payload, resolved, keys)
                elif kind == "prep":
                    _, group_key, cells = tag
                    self._group_cores[group_key] = value
                    tm.add("cores_published")
                    submit_cells(group_key, cells)
                else:  # sched top-up completed
                    _, group_key, cells = tag
                    self._group_cores[group_key].schedules.update(value)
                    tm.add("schedule_topups")
                    submit_cells(group_key, cells)
            resubmit(retry)

    def _store(self, cell, payload, resolved, keys) -> None:
        if isinstance(payload, dict):
            resolved[cell] = result_from_dict(payload)
            if self._cache is not None:
                self._cache.put(keys[cell], payload)
        else:  # keep_op_times: live result, never cached
            resolved[cell] = payload

    def run_speedups(self, cells: Sequence[SimCell]) -> list[Speedup]:
        """For each scheduled cell, also run its baseline twin and report
        the throughput gain — the batched form of
        :func:`~repro.sim.runner.speedup_vs_baseline` (identical numbers:
        same shared cluster graph, same pairing, same gain formula)."""
        flat: list[SimCell] = []
        for cell in cells:
            flat.append(cell.with_(algorithm="baseline"))
            flat.append(cell)
        results = self.run_cells(flat)
        return [
            Speedup(
                throughput_gain_pct(sched, base)
                if sched is not None and base is not None
                else float("nan"),
                sched,
                base,
            )
            for base, sched in zip(results[::2], results[1::2])
        ]

    # -- function tasks -------------------------------------------------
    def run_tasks(self, tasks: Sequence[FnTask]) -> list[object]:
        """Execute a batch of function tasks; returns values in input
        order. Values are JSON-normalized (tuples become lists) so cached
        and fresh runs are indistinguishable."""
        import json

        order: dict[FnTask, None] = dict.fromkeys(tasks)
        resolved: dict[FnTask, object] = {}
        keys: dict[FnTask, str] = {}

        pending: list[FnTask] = []
        for task in order:
            payload = None
            if self._cache is not None:
                keys[task] = cache_key(task.cache_key_material())
                if not self.rerun:
                    payload = self._cache.get(keys[task])
            if payload is not None:
                if "value" in payload:
                    resolved[task] = payload["value"]
                    continue
                self._cache.note_invalid()  # foreign entry: recompute
            pending.append(task)

        self.telemetry.add("fn_tasks", len(pending))
        for task, value in zip(pending, self._map(_run_task, pending)):
            value = json.loads(json.dumps(value))
            resolved[task] = value
            if self._cache is not None:
                self._cache.put(keys[task], {"value": value})
        return [resolved[task] for task in tasks]

    # -- cache maintenance ----------------------------------------------
    def gc_cache(self, max_mb: float) -> Optional[dict]:
        """Evict least-recently-used cache entries down to ``max_mb``
        mebibytes (see :meth:`~repro.sweep.cache.ResultCache.gc`).
        Returns the eviction summary, or ``None`` when caching is off."""
        if self._cache is None:
            return None
        return self._cache.gc(int(max_mb * 2**20))

    # -- execution ------------------------------------------------------
    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            atexit.register(self.close)
        return self._pool

    def _rebuild_pool(self) -> None:
        """Discard a dead pool so the next :meth:`_get_pool` spawns a
        fresh one (a broken pool rejects all further submissions)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _drop_dead_cores(self) -> None:
        """After a pool crash, drop published cores whose ``/dev/shm``
        blocks did not survive (publish untracks blocks, so a SIGKILLed
        worker normally leaves them intact — this guards the abnormal
        teardown orders where a tracker reaped them anyway). Survivors
        keep serving; dropped groups re-prepare on next use."""
        from multiprocessing import shared_memory

        for group_key, prepared in list(self._group_cores.items()):
            try:
                shm = shared_memory.SharedMemory(name=prepared.handle.shm_name)
                sharedcore._untrack(shm)
                shm.close()
            except FileNotFoundError:
                self._group_cores.pop(group_key)

    def _map(self, fn, items: list) -> list:
        if not items:
            return []
        if self.jobs <= 1 or len(items) == 1:
            return [fn(item) for item in items]
        # explicit chunksize: default (1) pickles one task per IPC round
        # trip; batching amortizes it while keeping the pool balanced.
        chunksize = max(1, len(items) // (self.jobs * 4) or 1)
        try:
            return list(self._get_pool().map(fn, items, chunksize=chunksize))
        except BrokenProcessPool:
            # one retry on a fresh pool: a crashed worker (OOM-killed,
            # segfaulted) must not take the whole batch down.
            self.telemetry.add("pool_rebuilds")
            self._rebuild_pool()
            return list(self._get_pool().map(fn, items, chunksize=chunksize))
