"""Lossless JSON round-trip for simulation results.

The cache stores :class:`~repro.sim.metrics.SimulationResult` as JSON.
Python's JSON encoder emits the shortest float representation that parses
back to the identical IEEE-754 double, so a cached result reproduces the
exact numbers of a fresh simulation — the equality the sweep tests assert
bitwise. Per-op time arrays (``keep_op_times``) are not serialized; cells
that request them bypass the cache.
"""

from __future__ import annotations

from ..core.efficiency import EfficiencyReport
from ..sim.metrics import IterationResult, SimulationResult

RESULT_FORMAT = 1


def iteration_to_dict(it: IterationResult) -> dict:
    data = {
        "makespan": it.makespan,
        "worker_finish": dict(it.worker_finish),
        "efficiency": {
            "makespan": it.efficiency.makespan,
            "upper": it.efficiency.upper,
            "lower": it.efficiency.lower,
        },
        "out_of_order_handoffs": it.out_of_order_handoffs,
    }
    # job-mix extension: emitted only when present so single-job cache
    # entries keep their pre-mix byte layout.
    if it.job_finish:
        data["job_finish"] = dict(it.job_finish)
    return data


def iteration_from_dict(data: dict) -> IterationResult:
    eff = data["efficiency"]
    return IterationResult(
        makespan=data["makespan"],
        worker_finish=dict(data["worker_finish"]),
        efficiency=EfficiencyReport(
            makespan=eff["makespan"], upper=eff["upper"], lower=eff["lower"]
        ),
        out_of_order_handoffs=data["out_of_order_handoffs"],
        job_finish=dict(data.get("job_finish", {})),
    )


def result_to_dict(result: SimulationResult) -> dict:
    return {
        "format": RESULT_FORMAT,
        "model": result.model,
        "batch_size": result.batch_size,
        "n_workers": result.n_workers,
        "n_ps": result.n_ps,
        "workload": result.workload,
        "algorithm": result.algorithm,
        "platform": result.platform,
        "n_params": result.n_params,
        "iterations": [iteration_to_dict(it) for it in result.iterations],
        "warmup": [iteration_to_dict(it) for it in result.warmup],
    }


def result_from_dict(data: dict) -> SimulationResult:
    version = data.get("format")
    if version != RESULT_FORMAT:
        raise ValueError(
            f"unsupported result format {version!r} (expected {RESULT_FORMAT})"
        )
    return SimulationResult(
        model=data["model"],
        batch_size=data["batch_size"],
        n_workers=data["n_workers"],
        n_ps=data["n_ps"],
        workload=data["workload"],
        algorithm=data["algorithm"],
        platform=data["platform"],
        n_params=data["n_params"],
        iterations=[iteration_from_dict(d) for d in data["iterations"]],
        warmup=[iteration_from_dict(d) for d in data["warmup"]],
    )
