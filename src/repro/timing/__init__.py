"""Timing subsystem: oracles, platforms, tracing (§3.1, §5 of the paper)."""

from .oracle import (
    GeneralTimeOracle,
    MappingTimeOracle,
    PerturbedOracle,
    TimeOracle,
    TimeOracleLike,
    oracle_from_runs,
)
from .platform import ENV_C, ENV_G, PLATFORMS, Platform, get_platform
from .tracer import (
    TraceRecord,
    TracingModule,
    estimate_time_oracle,
    sample_ground_truth,
    trace_platform_runs,
)

__all__ = [
    "GeneralTimeOracle",
    "MappingTimeOracle",
    "PerturbedOracle",
    "TimeOracle",
    "TimeOracleLike",
    "oracle_from_runs",
    "ENV_C",
    "ENV_G",
    "PLATFORMS",
    "Platform",
    "get_platform",
    "TraceRecord",
    "TracingModule",
    "estimate_time_oracle",
    "sample_ground_truth",
    "trace_platform_runs",
]
