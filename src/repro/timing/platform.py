"""Platform cost models: the substitute for the paper's testbeds.

The paper evaluates on two environments (§6):

* **envG** — Azure cloud: Standard NC6 workers (1× NVIDIA K80) and
  Standard F64s v2 parameter servers (64-core CPU), cloud networking;
* **envC** — a commodity CPU cluster: 32-core machines on 1 GbE.

We cannot run on that hardware, so a :class:`Platform` converts the model
zoo's abstract op costs (FLOPs for compute ops, bytes for transfers) into
seconds. The absolute constants are published peak/typical figures derated
by an efficiency factor; the *ratios* (communication vs computation) are
what shape every result in the paper, and they are covered by tests and by
the calibration notes in EXPERIMENTS.md.

Ground-truth execution in the simulator additionally applies per-run
lognormal jitter (``jitter_sigma``) — the paper's "system-level performance
variations" that remain even under perfect scheduling (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..graph import Graph, Op, OpKind
from .oracle import TimeOracle


def _basename(device: str) -> str:
    """Device name with any job-mix namespace (``j0/``) stripped."""
    return device.rsplit("/", 1)[-1]


@dataclass(frozen=True)
class Platform:
    """Hardware model translating work units into seconds.

    Attributes
    ----------
    worker_flops:
        Effective FLOP/s of a worker's compute device.
    ps_flops:
        Effective FLOP/s of a PS's compute device (PS ops are lightweight;
        §2.2 — aggregation, read, update).
    bandwidth_bps:
        Effective per-connection bandwidth in bytes/second (the worker-side
        NIC line rate — a single gRPC channel never moves faster than
        this).
    ps_nic_slots:
        How many concurrent full-rate connections a parameter server's NIC
        sustains (its NIC bandwidth divided by the per-connection rate).
        envG's F64s-v2 parameter servers have ~4x the NC6 workers' NIC;
        envC's 1 GbE cluster is symmetric (1).
    rpc_latency_s:
        Fixed per-transfer overhead: the request/response round trip of the
        gRPC transfer lifecycle (Fig. 6 stages A-B-C minus payload time).
    op_overhead_s:
        Fixed per-op launch overhead on compute resources (kernel launch /
        executor dispatch). Gives the many tiny AUX ops of real TF graphs a
        small but non-zero footprint.
    jitter_sigma:
        Lognormal sigma of per-run multiplicative noise applied by the
        simulator's ground truth (not by oracles).
    """

    name: str
    worker_flops: float
    ps_flops: float
    bandwidth_bps: float
    rpc_latency_s: float = 0.0
    op_overhead_s: float = 0.0
    jitter_sigma: float = 0.0
    ps_nic_slots: int = 1

    def nic_slots(self, device: str) -> int:
        """Concurrent full-rate connections of ``device``'s NIC.

        Device roles are read from the basename after any job-mix
        namespace prefix (``j0/ps:1`` is a PS). Shared multi-job hosts
        (``host:N``) are commodity machines: one full-rate connection.
        """
        return self.ps_nic_slots if _basename(device).startswith("ps") else 1

    # ------------------------------------------------------------------
    def compute_time(self, flops: float, device: str = "worker") -> float:
        """Seconds to execute ``flops`` on a worker or PS compute resource."""
        is_worker = _basename(device).startswith("worker")
        rate = self.worker_flops if is_worker else self.ps_flops
        return self.op_overhead_s + flops / rate

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` over one channel (dedicated NICs)."""
        return self.rpc_latency_s + nbytes / self.bandwidth_bps

    def op_time(self, op: Op) -> float:
        """Ground-truth (jitter-free) duration of ``op``.

        Compute-kind ops interpret ``op.cost`` as FLOPs; communication ops
        as bytes. AUX ops and send/recv *activations* (the zero-payload
        bookkeeping ops on PS compute resources) cost one dispatch overhead.
        """
        if op.attrs.get("activation_only"):
            return self.op_overhead_s
        if op.kind.is_communication:
            return self.transfer_time(op.cost)
        if op.kind is OpKind.AUX:
            return self.op_overhead_s
        device = op.device or "worker"
        return self.compute_time(op.cost, device)

    def oracle(self) -> TimeOracle:
        """A :class:`TimeOracle` view of the platform's jitter-free times —
        the 'perfect estimator' upper bound used by oracle-quality ablations."""
        return TimeOracle.wrap(self.op_time)

    def time_vector(self, graph: Graph) -> np.ndarray:
        """Jitter-free durations for all ops of ``graph``, indexed by id."""
        return np.array([self.op_time(op) for op in graph], dtype=float)

    def scaled(self, **changes) -> "Platform":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **changes)


# ----------------------------------------------------------------------
# The two environments of §6.
#
# envG: an NC6 exposes one GK210 die of a K80 board (~2.8 TFLOP/s peak
# fp32), derated to ~30% effective on real convnets => 0.8e12. NC-series
# NICs sustain ~9 Gbit/s per connection => ~1.1e9 B/s; the F64s v2
# parameter servers' ~30 Gbit/s NICs serve ~3 such connections at full
# rate (ps_nic_slots=3). PS CPUs (64 cores AVX-512) ~1.5 TFLOP/s peak
# derated to 2e11 for the memory-bound aggregation ops.
#
# envC: 32-core commodity CPUs, ~1.6e11 effective FLOP/s on convnets;
# symmetric 1 GbE => 125e6 B/s, one full-rate connection per NIC. envC is
# therefore strongly communication-bound, which is why the paper's
# Fig. 13 gains (up to ~75%) exceed envG's.
# ----------------------------------------------------------------------

ENV_G = Platform(
    name="envG",
    worker_flops=0.8e12,
    ps_flops=2.0e11,
    bandwidth_bps=1.1e9,
    rpc_latency_s=250e-6,
    op_overhead_s=8e-6,
    jitter_sigma=0.04,
    ps_nic_slots=3,
)

ENV_C = Platform(
    name="envC",
    worker_flops=1.6e11,
    ps_flops=1.2e11,
    bandwidth_bps=125e6,
    rpc_latency_s=120e-6,
    op_overhead_s=4e-6,
    jitter_sigma=0.05,
)

# A diagnostic platform for wire-level validation: effectively free
# compute, no per-op/RPC overhead, no jitter — a simulation's makespan on
# ``wire`` is purely network time, so it can be compared against analytic
# bandwidth bounds (e.g. ring all-reduce's 2(W-1)/W * M/B; see
# tests/collectives and the allreduce driver's bound-check rows).
WIRE = Platform(
    name="wire",
    worker_flops=1e18,
    ps_flops=1e18,
    bandwidth_bps=1e9,
    rpc_latency_s=0.0,
    op_overhead_s=0.0,
    jitter_sigma=0.0,
    ps_nic_slots=1,
)

PLATFORMS: dict[str, Platform] = {"envG": ENV_G, "envC": ENV_C, "wire": WIRE}


def get_platform(name: str) -> Platform:
    """Look up a platform preset by name (``envG`` / ``envC``)."""
    try:
        return PLATFORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
        ) from None
