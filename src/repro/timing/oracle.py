"""Time oracles (§3.1, §5).

A *time oracle* predicts the execution time of an op: elapsed time on a
compute resource for computation ops, transfer time on the communication
medium for communication ops, assuming the resource is dedicated to the op.

Three oracles matter in the paper:

* the **general time oracle** of Eq. 5 (``TimeGeneral``): 1 for recv ops,
  0 for everything else — this is what TIC uses;
* the **estimated oracle** produced by the time-oracle estimator from
  tracing stats (min of 5 measured runs per op) — this is what TAC uses;
* the **ground truth** known only to the simulator (platform cost model
  plus per-run jitter) — what actually elapses.

Oracles are keyed by op *name* rather than op id so that an oracle fitted
on the reference worker partition can be transferred to the same-named ops
of every replica in a cluster graph.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Mapping, Union

import numpy as np

from ..graph import Graph, Op

#: Anything accepted where a time oracle is expected.
TimeOracleLike = Union["TimeOracle", Mapping[str, float], Callable[[Op], float]]


class TimeOracle:
    """Base class: callable mapping an :class:`~repro.graph.op.Op` to seconds."""

    def __call__(self, op: Op) -> float:
        raise NotImplementedError

    def vector(self, graph: Graph) -> np.ndarray:
        """Vector of predicted times indexed by op id — the representation
        the vectorized Algorithm 1 implementation consumes."""
        return np.array([self(op) for op in graph], dtype=float)

    @staticmethod
    def wrap(source: TimeOracleLike) -> "TimeOracle":
        """Coerce a mapping / callable / oracle into a :class:`TimeOracle`."""
        if isinstance(source, TimeOracle):
            return source
        if isinstance(source, Mapping):
            return MappingTimeOracle(source)
        if callable(source):
            return _CallableOracle(source)
        raise TypeError(f"cannot interpret {source!r} as a time oracle")


class _CallableOracle(TimeOracle):
    def __init__(self, fn: Callable[[Op], float]):
        self._fn = fn

    def __call__(self, op: Op) -> float:
        return float(self._fn(op))


class GeneralTimeOracle(TimeOracle):
    """The universal oracle of Eq. 5: ``Time(op) = 1`` if op is recv else 0.

    TIC runs Algorithm 1 under this oracle, so priorities depend only on
    DAG structure.
    """

    def __call__(self, op: Op) -> float:
        return 1.0 if op.is_recv else 0.0


class MappingTimeOracle(TimeOracle):
    """Oracle backed by a ``{op name: seconds}`` table.

    ``strict=False`` (default) returns ``default`` for unknown ops, which is
    what the paper's system does for ops that never showed up in traces
    (zero-cost bookkeeping ops).
    """

    def __init__(
        self,
        table: Mapping[str, float],
        *,
        default: float = 0.0,
        strict: bool = False,
    ) -> None:
        self.table = dict(table)
        self.default = float(default)
        self.strict = bool(strict)

    def __call__(self, op: Op) -> float:
        try:
            return self.table[op.name]
        except KeyError:
            if self.strict:
                raise KeyError(f"no timing entry for op {op.name!r}") from None
            return self.default

    def __len__(self) -> int:
        return len(self.table)


class PerturbedOracle(TimeOracle):
    """A noisy view over another oracle — used by ablations probing TAC's
    sensitivity to estimation error (the paper's min-of-5 estimator exists
    precisely to suppress this noise).

    Each op's time is multiplied by an i.i.d. lognormal factor with scale
    ``sigma``; the perturbation is fixed per op name so repeated queries are
    consistent (an oracle, however wrong, is deterministic). The per-op
    factor derives from a content hash of ``(seed, op name)`` — not
    Python's ``hash()``, whose per-process salting (PYTHONHASHSEED) would
    make the "same" oracle differ between processes and defeat result
    caching and parallel/serial equality.
    """

    def __init__(self, base: TimeOracleLike, sigma: float, seed: int = 0) -> None:
        self.base = TimeOracle.wrap(base)
        self.sigma = float(sigma)
        self._seed = int(seed)
        self._cache: dict[str, float] = {}

    def __call__(self, op: Op) -> float:
        factor = self._cache.get(op.name)
        if factor is None:
            digest = hashlib.sha256(
                f"{self._seed}\x00{op.name}".encode()
            ).digest()
            rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
            factor = float(rng.lognormal(mean=0.0, sigma=self.sigma)) if self.sigma else 1.0
            self._cache[op.name] = factor
        return self.base(op) * factor


def oracle_from_runs(
    runs: Iterable[Mapping[str, float]],
    *,
    reducer: str = "min",
) -> MappingTimeOracle:
    """Build an oracle from several measured runs (the estimator of §5).

    ``runs`` is an iterable of per-run ``{op name: measured seconds}``
    tables. The paper "executes each operation 5 times ... and chooses the
    minimum of all measured runs"; ``reducer`` may be ``"min"`` (paper),
    ``"mean"`` or ``"median"`` (ablations).
    """
    if reducer not in ("min", "mean", "median"):
        raise ValueError(f"unknown reducer {reducer!r}")
    samples: dict[str, list[float]] = {}
    n_runs = 0
    for run in runs:
        n_runs += 1
        for name, t in run.items():
            samples.setdefault(name, []).append(float(t))
    if n_runs == 0:
        raise ValueError("oracle_from_runs needs at least one run")
    reduce = {"min": min, "mean": lambda v: sum(v) / len(v), "median": np.median}[reducer]
    return MappingTimeOracle({name: float(reduce(v)) for name, v in samples.items()})
