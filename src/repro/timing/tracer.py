"""Tracing module and time-oracle estimator (§5).

The paper extends TensorFlow's internal tracer to record per-op runtimes
(including network transfers) over several executions; the time-oracle
estimator then takes, for every op, the minimum across 5 measured runs.

Here the role of "an execution" is played by either

* an actual simulator run (:class:`TraceRecord` objects are produced by
  :mod:`repro.sim`), or
* a direct sample of the platform's jittered ground truth
  (:func:`trace_platform_runs`) — equivalent in distribution and much
  cheaper when all we need is the oracle.

Both paths feed :func:`repro.timing.oracle.oracle_from_runs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from ..graph import Graph
from .oracle import MappingTimeOracle, oracle_from_runs
from .platform import Platform


@dataclass
class TraceRecord:
    """Timing stats of one execution: op name -> measured duration (s).

    ``makespan`` is the execution's end-to-end span (used by the efficiency
    metric); ``meta`` carries free-form provenance (iteration number,
    worker id, schedule label, ...).
    """

    times: dict[str, float]
    makespan: float = 0.0
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        bad = [n for n, t in self.times.items() if t < 0]
        if bad:
            raise ValueError(f"negative durations for ops {bad[:3]}...")


class TracingModule:
    """Accumulates :class:`TraceRecord` runs and estimates a time oracle.

    Mirrors the paper's pipeline: *tracing module → time-oracle estimator →
    ordering wizard*. The default ``runs=5`` and ``reducer='min'`` match §5.
    """

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def record(self, record: TraceRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[TraceRecord]) -> None:
        for r in records:
            self.record(r)

    @property
    def records(self) -> list[TraceRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def estimate_oracle(
        self, *, runs: Optional[int] = 5, reducer: str = "min"
    ) -> MappingTimeOracle:
        """Estimate the time oracle from the first ``runs`` recorded runs
        (all runs when ``runs`` is None)."""
        selected = self._records if runs is None else self._records[:runs]
        if not selected:
            raise ValueError("no trace records collected yet")
        return oracle_from_runs((r.times for r in selected), reducer=reducer)


def sample_ground_truth(
    graph: Graph,
    platform: Platform,
    rng: np.random.Generator,
    *,
    jitter_sigma: Optional[float] = None,
) -> dict[str, float]:
    """One jittered sample of every op's duration — what one instrumented
    execution would measure.

    Jitter is multiplicative lognormal (median 1), matching the simulator's
    ground-truth draw, so a trace assembled from these samples is
    distributed like a trace harvested from real simulator runs.
    """
    sigma = platform.jitter_sigma if jitter_sigma is None else jitter_sigma
    base = platform.time_vector(graph)
    if sigma > 0:
        base = base * rng.lognormal(mean=0.0, sigma=sigma, size=base.shape)
    return {op.name: float(base[op.op_id]) for op in graph}


def trace_platform_runs(
    graph: Graph,
    platform: Platform,
    *,
    runs: int = 5,
    seed: int = 0,
    jitter_sigma: Optional[float] = None,
) -> TracingModule:
    """Collect ``runs`` ground-truth samples into a :class:`TracingModule`."""
    if runs <= 0:
        raise ValueError("runs must be positive")
    rng = np.random.default_rng(seed)
    tracer = TracingModule()
    for i in range(runs):
        times = sample_ground_truth(graph, platform, rng, jitter_sigma=jitter_sigma)
        tracer.record(TraceRecord(times=times, makespan=sum(times.values()), meta={"run": i}))
    return tracer


def estimate_time_oracle(
    graph: Graph,
    platform: Platform,
    *,
    runs: int = 5,
    seed: int = 0,
    reducer: str = "min",
) -> MappingTimeOracle:
    """End-to-end §5 pipeline: trace ``runs`` executions, reduce per-op.

    This is what experiments call to obtain the oracle TAC consumes.
    """
    tracer = trace_platform_runs(graph, platform, runs=runs, seed=seed)
    return tracer.estimate_oracle(runs=runs, reducer=reducer)
