"""Loader for Alibaba-GPU-2020-style CSV job traces.

The Alibaba cluster-trace-gpu-v2020 release describes each job as task
rows with an instance count and start/end timestamps. This loader
consumes that shape (one row per job):

========== ==========================================================
column      meaning
========== ==========================================================
job_name    unique job id (required)
start_time  submission timestamp, seconds (required)
end_time    completion timestamp, seconds (required)
inst_num    worker instance count (optional; default 2)
status      optional; only ``Terminated`` rows are replayed when present
model       optional model-zoo name; absent columns map jobs onto
            ``model_mix`` round-robin by arrival order
algorithm   optional wizard algorithm (default ``tic``)
========== ==========================================================

Arrival offsets are re-based to the earliest ``start_time``; the demand
is carried as ``duration_s`` (end - start) and converted to an iteration
budget by the replay engine through the job's dedicated iteration time.
Missing required columns fail with did-you-mean hints against the
header actually found, matching the registry errors elsewhere.
"""

from __future__ import annotations

import csv
import difflib
from typing import Optional, Sequence

from .trace import JobTrace, TraceError

_REQUIRED = ("job_name", "start_time", "end_time")

#: models assigned round-robin when the trace has no ``model`` column.
DEFAULT_MODEL_MIX = ("AlexNet v2", "Inception v1", "ResNet-50 v1")


def _check_header(found: Sequence[str], path: str) -> None:
    missing = [c for c in _REQUIRED if c not in found]
    if not missing:
        return
    parts = []
    for name in missing:
        hints = difflib.get_close_matches(name, found, n=2, cutoff=0.4)
        part = repr(name)
        if hints:
            part += f" (did you mean {' or '.join(map(repr, hints))}?)"
        parts.append(part)
    raise TraceError(
        f"{path}: missing required column(s) {', '.join(parts)}; "
        f"found: {', '.join(found) or '(empty header)'}"
    )


def load_alibaba_csv(
    path: str,
    *,
    model_mix: Sequence[str] = DEFAULT_MODEL_MIX,
    workers_cap: int = 8,
    limit: Optional[int] = None,
) -> tuple[JobTrace, ...]:
    """Load ``path`` into a validated, arrival-ordered trace.

    Rows with a non-``Terminated`` status, a non-positive duration or
    unparsable timestamps are skipped (the trace release contains
    failed/running jobs); ``workers_cap`` clamps ``inst_num`` to the
    sizes the simulated cluster supports; ``limit`` keeps only the first
    N surviving jobs (the real trace has tens of thousands).
    """
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        header = tuple(reader.fieldnames or ())
        _check_header(header, path)
        raw = []
        for row in reader:
            if (row.get("status") or "Terminated") != "Terminated":
                continue
            try:
                start = float(row["start_time"])
                end = float(row["end_time"])
            except (TypeError, ValueError):
                continue
            if end <= start:
                continue
            raw.append((start, end, row))
    if not raw:
        raise TraceError(f"{path}: no usable (Terminated, positive-duration) rows")
    raw.sort(key=lambda r: (r[0], r[2]["job_name"]))
    base = raw[0][0]
    jobs = []
    for i, (start, end, row) in enumerate(raw):
        if limit is not None and len(jobs) >= limit:
            break
        try:
            inst = int(float(row.get("inst_num") or 2))
        except ValueError:
            inst = 2
        model = row.get("model") or model_mix[i % len(model_mix)]
        jobs.append(JobTrace(
            job_id=str(row["job_name"]),
            model=model,
            n_workers=max(1, min(inst, workers_cap)),
            n_ps=1,
            algorithm=row.get("algorithm") or "tic",
            arrival_s=round(start - base, 3),
            duration_s=round(end - start, 3),
        ))
    return tuple(jobs)
