"""Trace ingestion: the job-trace schema and the synthetic generator.

A **trace** is a time-ordered sequence of :class:`JobTrace` rows — one
submitted training job each: which model, how many workers/PS, which
scheduling algorithm the job asked for, when it arrived, and how much
work it brings (an explicit iteration budget, or a wall-clock duration
the replay engine converts through the job's dedicated iteration time).

:class:`SyntheticTraceSpec` generates traces from a seed: an arrival
process drawn from the **trace-generator registry** (``poisson`` /
``uniform`` / ``bursty``; extensible via :func:`register_generator`,
unknown names fail with did-you-mean hints exactly like placements and
exporters), a model-zoo mix, and size distributions over worker counts
and iteration budgets.

Determinism note: generation consumes **only raw uniform doubles** from
numpy's PCG64 stream (``Generator.random``), with exponentials, weighted
choices and integer ranges derived in plain Python. The raw stream is
the one part of numpy's random API with a cross-version stability
guarantee, so a seed reproduces the same trace on every host — the
property the committed ``cluster_day`` CSVs and their CI drift gate
rely on.
"""

from __future__ import annotations

import difflib
import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.wizard import ALGORITHMS


class TraceError(ValueError):
    """A trace row or trace spec failed validation."""


class UnknownGeneratorError(KeyError):
    """Lookup of a trace-generator name that is not registered."""

    def __init__(self, name: str, known: tuple[str, ...]):
        hints = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        message = (
            f"unknown trace generator {name!r}; available: {', '.join(known)}"
        )
        if hints:
            message += f" — did you mean {' or '.join(map(repr, hints))}?"
        super().__init__(message)
        self.name = name
        self.hints = tuple(hints)

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0]


def _known_models() -> tuple[str, ...]:
    from ..api.scenario import KNOWN_MODELS

    return KNOWN_MODELS


def _suggest(name: str, known: Sequence[str]) -> str:
    hints = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
    return f" — did you mean {' or '.join(map(repr, hints))}?" if hints else ""


@dataclass(frozen=True)
class JobTrace:
    """One job of a trace (validated at construction).

    Exactly one of ``iterations`` (an explicit budget) or ``duration_s``
    (wall-clock demand; the replay engine divides by the job's dedicated
    per-iteration time) must be set.
    """

    job_id: str
    model: str
    n_workers: int = 2
    n_ps: int = 1
    algorithm: str = "tic"
    arrival_s: float = 0.0
    iterations: Optional[float] = None
    duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise TraceError("job_id must be a non-empty string")
        known = _known_models()
        if self.model not in known:
            raise TraceError(
                f"job {self.job_id!r}: unknown model {self.model!r}"
                + _suggest(self.model, known)
            )
        if self.algorithm not in ALGORITHMS:
            raise TraceError(
                f"job {self.job_id!r}: unknown algorithm {self.algorithm!r}; "
                f"one of {ALGORITHMS}" + _suggest(self.algorithm, ALGORITHMS)
            )
        if self.n_workers <= 0 or self.n_ps <= 0:
            raise TraceError(
                f"job {self.job_id!r}: n_workers and n_ps must be positive"
            )
        if not math.isfinite(self.arrival_s) or self.arrival_s < 0:
            raise TraceError(
                f"job {self.job_id!r}: arrival_s must be finite and >= 0, "
                f"got {self.arrival_s!r}"
            )
        if (self.iterations is None) == (self.duration_s is None):
            raise TraceError(
                f"job {self.job_id!r}: set exactly one of iterations or "
                f"duration_s"
            )
        budget = self.iterations if self.iterations is not None else self.duration_s
        if not math.isfinite(budget) or budget <= 0:
            raise TraceError(
                f"job {self.job_id!r}: the iteration/duration budget must be "
                f"finite and positive, got {budget!r}"
            )

    @property
    def slots(self) -> int:
        """Device slots this job occupies on the shared cluster."""
        return self.n_workers + self.n_ps


# ----------------------------------------------------------------------
# Trace generators (arrival processes)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TraceGenerator:
    """One registered arrival process.

    ``fn(uniforms, n_jobs, horizon_s)`` maps a callable yielding uniform
    doubles in [0, 1) to ``n_jobs`` arrival offsets in seconds (any
    order; the caller sorts).
    """

    name: str
    description: str
    fn: Callable[[Callable[[], float], int, float], list[float]]


_GENERATORS: dict[str, TraceGenerator] = {}


def register_generator(generator: TraceGenerator) -> None:
    """Register a generator; later registrations replace earlier ones."""
    _GENERATORS[generator.name] = generator


def trace_generators() -> dict[str, TraceGenerator]:
    """Registered trace generators by name."""
    return dict(_GENERATORS)


def get_generator(name: str) -> TraceGenerator:
    """Look up a generator by name; unknown names raise
    :class:`UnknownGeneratorError` with near-match suggestions."""
    try:
        return _GENERATORS[name]
    except KeyError:
        raise UnknownGeneratorError(name, tuple(_GENERATORS)) from None


def _poisson(u: Callable[[], float], n_jobs: int, horizon_s: float) -> list[float]:
    # Exponential inter-arrival gaps at rate n_jobs / horizon, rescaled
    # so the last arrival lands inside the horizon (a conditioned
    # Poisson process: uniform order statistics would be equivalent,
    # gaps keep the draw count fixed at one per job).
    gaps = [-math.log(1.0 - u()) for _ in range(n_jobs)]
    total = sum(gaps) or 1.0
    scale = horizon_s * n_jobs / ((n_jobs + 1) * total)
    times, t = [], 0.0
    for g in gaps:
        t += g * scale
        times.append(t)
    return times

def _uniform(u: Callable[[], float], n_jobs: int, horizon_s: float) -> list[float]:
    # Evenly spaced slots with +-40% jitter inside each slot.
    slot = horizon_s / n_jobs
    return [
        (i + 0.5 + 0.8 * (u() - 0.5)) * slot for i in range(n_jobs)
    ]

def _bursty(u: Callable[[], float], n_jobs: int, horizon_s: float) -> list[float]:
    # Jobs clump into bursts (~8 jobs each) whose centers are uniform on
    # the horizon; within a burst, arrivals spread over ~2% of it.
    n_bursts = max(1, n_jobs // 8)
    centers = sorted(u() * horizon_s for _ in range(n_bursts))
    width = 0.02 * horizon_s
    times = []
    for i in range(n_jobs):
        c = centers[int(u() * n_bursts) % n_bursts]
        times.append(min(max(c + (u() - 0.5) * width, 0.0), horizon_s))
    return times


register_generator(TraceGenerator(
    name="poisson",
    description="memoryless arrivals (exponential gaps) across the horizon",
    fn=_poisson,
))
register_generator(TraceGenerator(
    name="uniform",
    description="evenly spaced arrivals with per-slot jitter",
    fn=_uniform,
))
register_generator(TraceGenerator(
    name="bursty",
    description="clustered arrival bursts (~8 jobs) at random times",
    fn=_bursty,
))


# ----------------------------------------------------------------------
# Synthetic trace spec
# ----------------------------------------------------------------------

def _check_weighted(name: str, entries, check) -> None:
    if not entries:
        raise TraceError(f"{name} must name at least one entry")
    for value, weight in entries:
        check(value)
        if not math.isfinite(weight) or weight <= 0:
            raise TraceError(
                f"{name}: weight for {value!r} must be finite and positive, "
                f"got {weight!r}"
            )


@dataclass(frozen=True)
class SyntheticTraceSpec:
    """Seeded synthetic workload: arrival process x model mix x sizes.

    ``models``/``algorithms``/``workers`` are ``(value, weight)``
    distributions; ``iterations`` is an inclusive integer range drawn
    uniformly. All names are validated at construction with did-you-mean
    hints (generator registry, model zoo, wizard algorithms).
    """

    n_jobs: int = 100
    horizon_s: float = 3600.0
    arrival: str = "poisson"
    models: tuple[tuple[str, float], ...] = (
        ("AlexNet v2", 0.6),
        ("Inception v1", 0.4),
    )
    algorithms: tuple[tuple[str, float], ...] = (("tic", 0.5), ("tac", 0.5))
    workers: tuple[tuple[int, float], ...] = ((2, 1.0),)
    n_ps: int = 1
    iterations: tuple[int, int] = (8, 24)

    def __post_init__(self) -> None:
        if self.n_jobs <= 0:
            raise TraceError(f"n_jobs must be positive, got {self.n_jobs}")
        if not math.isfinite(self.horizon_s) or self.horizon_s <= 0:
            raise TraceError(
                f"horizon_s must be finite and positive, got {self.horizon_s!r}"
            )
        get_generator(self.arrival)  # fail fast with did-you-mean hints
        known = _known_models()

        def check_model(name):
            if name not in known:
                raise TraceError(
                    f"models: unknown model {name!r}" + _suggest(name, known)
                )

        def check_algorithm(name):
            if name not in ALGORITHMS:
                raise TraceError(
                    f"algorithms: unknown algorithm {name!r}; one of "
                    f"{ALGORITHMS}" + _suggest(name, ALGORITHMS)
                )

        def check_workers(n):
            if not isinstance(n, int) or n <= 0:
                raise TraceError(
                    f"workers: counts must be positive ints, got {n!r}"
                )

        _check_weighted("models", self.models, check_model)
        _check_weighted("algorithms", self.algorithms, check_algorithm)
        _check_weighted("workers", self.workers, check_workers)
        if self.n_ps <= 0:
            raise TraceError(f"n_ps must be positive, got {self.n_ps}")
        lo, hi = self.iterations
        if lo <= 0 or hi < lo:
            raise TraceError(
                f"iterations must be a positive (lo, hi) range, got "
                f"{self.iterations!r}"
            )


def _pick(u: float, entries) -> object:
    """Weighted choice from one uniform double (cumulative scan)."""
    total = sum(w for _, w in entries)
    mark = u * total
    acc = 0.0
    for value, weight in entries:
        acc += weight
        if mark < acc:
            return value
    return entries[-1][0]


def generate_trace(spec: SyntheticTraceSpec, seed: int = 0) -> tuple[JobTrace, ...]:
    """Generate ``spec``'s trace deterministically from ``seed``.

    Arrivals come from the spec's registered generator; per-job model,
    algorithm, worker count and iteration budget are weighted draws.
    Jobs are ordered by arrival (ties by id), ids are ``job-0000``...
    """
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0x7E9A)))
    u = lambda: float(rng.random())  # noqa: E731 - the only stream tap
    arrivals = sorted(
        get_generator(spec.arrival).fn(u, spec.n_jobs, spec.horizon_s)
    )
    lo, hi = spec.iterations
    jobs = []
    for i, arrival in enumerate(arrivals):
        jobs.append(JobTrace(
            job_id=f"job-{i:04d}",
            model=_pick(u(), spec.models),
            n_workers=_pick(u(), spec.workers),
            n_ps=spec.n_ps,
            algorithm=_pick(u(), spec.algorithms),
            arrival_s=round(max(0.0, arrival), 3),
            iterations=float(lo + int(u() * (hi - lo + 1))),
        ))
    return tuple(jobs)
