"""Streaming result sinks: chunked append with crash-resume.

A replay emits one row per finished job, in event order. A
:class:`RowSink` consumes that stream without ever holding it:

* :class:`CsvChunkSink` — buffers ``chunk_rows`` rows, then *commits*
  the chunk: append to the CSV, ``fsync``, and atomically rewrite a
  sidecar manifest (``<path>.manifest.json``) recording the committed
  row count, byte offset, chunk count and the incremental
  :class:`~repro.replay.aggregate.ReplayAggregate` state. A killed
  replay leaves at most one uncommitted partial chunk; resuming
  truncates the CSV back to the manifest's byte offset, restores the
  aggregate, and skips the already-committed prefix of the
  (deterministic) row stream — the final file and aggregate are
  byte-identical to an uninterrupted run.
* :class:`ParquetChunkSink` — one parquet row group per chunk, gated on
  ``pyarrow`` (this repo adds no hard dependencies; the registry lists
  it with an availability note and construction fails loudly without
  it). No resume: parquet footers cannot be truncated safely.
* :class:`ListSink` — in-memory rows for tests and small studies.

Backends live in a registry with did-you-mean lookup
(:func:`make_sink`), matching placements/exporters/admissions.
"""

from __future__ import annotations

import csv
import difflib
import io
import json
import os
import signal
from typing import Mapping, Optional, Sequence

from .aggregate import ReplayAggregate


class SinkError(ValueError):
    """A sink request that cannot be satisfied (bad resume, missing dep)."""


class UnknownSinkError(KeyError):
    """Lookup of a sink backend name that is not registered."""

    def __init__(self, name: str, known: tuple[str, ...]):
        hints = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        message = (
            f"unknown sink backend {name!r}; available: {', '.join(known)}"
        )
        if hints:
            message += f" — did you mean {' or '.join(map(repr, hints))}?"
        super().__init__(message)
        self.name = name
        self.hints = tuple(hints)

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0]


class RowSink:
    """Base interface: ``append(row)`` rows, then ``close()``."""

    #: rows handed to this sink (committed or buffered; includes skipped
    #: already-committed rows on a resumed sink).
    rows_seen: int = 0
    chunks_committed: int = 0
    aggregate: Optional[ReplayAggregate] = None

    def append(self, row: Mapping) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self, complete: bool = True) -> dict:  # pragma: no cover
        raise NotImplementedError


class ListSink(RowSink):
    """Hold rows in memory — tests and small committed studies only."""

    def __init__(self, aggregate: Optional[ReplayAggregate] = None) -> None:
        self.rows: list[dict] = []
        self.aggregate = aggregate

    def append(self, row: Mapping) -> None:
        self.rows_seen += 1
        self.rows.append(dict(row))
        if self.aggregate is not None:
            self.aggregate.observe(row)

    def close(self, complete: bool = True) -> dict:
        return {"rows": len(self.rows), "chunks": 0, "path": None}


def _write_manifest(path: str, manifest: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(manifest, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class CsvChunkSink(RowSink):
    """Chunked CSV append with manifest-based crash-resume.

    ``crash_after_chunks`` is a test hook: SIGKILL this process right
    after the Nth chunk commit, leaving exactly the on-disk state a real
    mid-replay crash would (committed manifest + possibly-partial tail).
    """

    def __init__(
        self,
        path: str,
        columns: Sequence[str],
        *,
        chunk_rows: int = 512,
        resume: bool = False,
        aggregate: Optional[ReplayAggregate] = None,
        crash_after_chunks: Optional[int] = None,
    ) -> None:
        if chunk_rows <= 0:
            raise SinkError(f"chunk_rows must be positive, got {chunk_rows}")
        self.path = path
        self.columns = tuple(columns)
        self.chunk_rows = chunk_rows
        self.aggregate = aggregate
        self.crash_after_chunks = crash_after_chunks
        self.manifest_path = path + ".manifest.json"
        self._buffer = io.StringIO()
        self._writer = csv.DictWriter(self._buffer, fieldnames=self.columns)
        self._buffered = 0
        self._skip = 0
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        if resume:
            self._open_resume()
        else:
            self._open_fresh()

    # -- opening --------------------------------------------------------
    def _open_fresh(self) -> None:
        with open(self.path, "w", newline="") as fh:
            csv.DictWriter(fh, fieldnames=self.columns).writeheader()
            fh.flush()
            os.fsync(fh.fileno())
            self._bytes = fh.tell()
        self.rows_committed = 0
        self.chunks_committed = 0
        self._commit_manifest(complete=False)
        self._fh = open(self.path, "a", newline="")

    def _open_resume(self) -> None:
        try:
            with open(self.manifest_path) as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            raise SinkError(
                f"cannot resume {self.path}: no manifest at "
                f"{self.manifest_path} (was the original run started "
                f"without a sink, or already cleaned up?)"
            ) from None
        if tuple(manifest["columns"]) != self.columns:
            raise SinkError(
                f"cannot resume {self.path}: manifest columns "
                f"{manifest['columns']} do not match {list(self.columns)}"
            )
        try:
            size = os.path.getsize(self.path)
        except FileNotFoundError:
            raise SinkError(
                f"cannot resume {self.path}: the CSV is gone but its "
                f"manifest survives"
            ) from None
        if size < manifest["bytes"]:
            raise SinkError(
                f"cannot resume {self.path}: file is shorter ({size} B) than "
                f"its manifest's committed offset ({manifest['bytes']} B)"
            )
        # drop the uncommitted tail a crash may have left behind
        with open(self.path, "r+b") as fh:
            fh.truncate(manifest["bytes"])
        self._bytes = int(manifest["bytes"])
        self.rows_committed = int(manifest["rows"])
        self.chunks_committed = int(manifest["chunks"])
        self._skip = self.rows_committed
        if manifest.get("aggregate") is not None:
            self.aggregate = ReplayAggregate.from_state(manifest["aggregate"])
        self._fh = open(self.path, "a", newline="")

    # -- streaming ------------------------------------------------------
    def append(self, row: Mapping) -> None:
        self.rows_seen += 1
        if self._skip:
            # already committed (and aggregated) before the crash: the
            # deterministic replay regenerates it, the sink drops it.
            self._skip -= 1
            return
        if self.aggregate is not None:
            self.aggregate.observe(row)
        self._writer.writerow({c: row.get(c, "") for c in self.columns})
        self._buffered += 1
        if self._buffered >= self.chunk_rows:
            self._commit()

    def _commit(self) -> None:
        if self._buffered:
            self._fh.write(self._buffer.getvalue())
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._bytes = self._fh.tell()
            self.rows_committed += self._buffered
            self._buffer = io.StringIO()
            self._writer = csv.DictWriter(self._buffer, fieldnames=self.columns)
            self._buffered = 0
        self.chunks_committed += 1
        self._commit_manifest(complete=False)
        if (
            self.crash_after_chunks is not None
            and self.chunks_committed >= self.crash_after_chunks
        ):  # pragma: no cover - the crash-resume test's subprocess path
            os.kill(os.getpid(), signal.SIGKILL)

    def _commit_manifest(self, complete: bool) -> None:
        _write_manifest(self.manifest_path, {
            "rows": self.rows_committed,
            "bytes": self._bytes,
            "chunks": self.chunks_committed,
            "columns": list(self.columns),
            "complete": complete,
            "aggregate": (
                self.aggregate.state() if self.aggregate is not None else None
            ),
        })

    def close(self, complete: bool = True) -> dict:
        if self._skip:
            raise SinkError(
                f"resumed sink closed with {self._skip} committed row(s) "
                f"never replayed — the resumed stream diverged from the "
                f"original run"
            )
        if self._buffered:
            self._fh.write(self._buffer.getvalue())
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._bytes = self._fh.tell()
            self.rows_committed += self._buffered
            self._buffered = 0
            self.chunks_committed += 1
        self._fh.close()
        self._commit_manifest(complete=complete)
        return {
            "path": self.path,
            "rows": self.rows_committed,
            "chunks": self.chunks_committed,
            "bytes": self._bytes,
        }


class ParquetChunkSink(RowSink):
    """One parquet row group per chunk; requires the optional pyarrow."""

    def __init__(
        self,
        path: str,
        columns: Sequence[str],
        *,
        chunk_rows: int = 512,
        resume: bool = False,
        aggregate: Optional[ReplayAggregate] = None,
        crash_after_chunks: Optional[int] = None,
    ) -> None:
        try:
            import pyarrow  # noqa: F401
            import pyarrow.parquet  # noqa: F401
        except ImportError:
            raise SinkError(
                "the parquet sink requires the optional pyarrow dependency "
                "(pip install pyarrow) — use the csv sink instead"
            ) from None
        if resume:
            raise SinkError(
                "resume is only supported by the csv sink (parquet footers "
                "cannot be truncated safely)"
            )
        import pyarrow as pa
        import pyarrow.parquet as pq

        self._pa, self._pq = pa, pq
        self.path = path
        self.columns = tuple(columns)
        self.chunk_rows = chunk_rows
        self.aggregate = aggregate
        self.crash_after_chunks = crash_after_chunks
        self._rows: list[dict] = []
        self._writer = None
        self.rows_committed = 0
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)

    def append(self, row: Mapping) -> None:
        self.rows_seen += 1
        if self.aggregate is not None:
            self.aggregate.observe(row)
        self._rows.append({c: row.get(c, "") for c in self.columns})
        if len(self._rows) >= self.chunk_rows:
            self._commit()

    def _commit(self) -> None:
        table = self._pa.Table.from_pylist(
            [{c: str(r[c]) for c in self.columns} for r in self._rows]
        )
        if self._writer is None:
            self._writer = self._pq.ParquetWriter(self.path, table.schema)
        self._writer.write_table(table)
        self.rows_committed += len(self._rows)
        self._rows = []
        self.chunks_committed += 1

    def close(self, complete: bool = True) -> dict:
        if self._rows:
            self._commit()
        if self._writer is not None:
            self._writer.close()
        return {
            "path": self.path,
            "rows": self.rows_committed,
            "chunks": self.chunks_committed,
        }


_SINKS = {"csv": CsvChunkSink, "parquet": ParquetChunkSink}


def sink_backends() -> dict[str, type]:
    """Registered sink backends by name."""
    return dict(_SINKS)


def make_sink(backend: str, path: str, columns: Sequence[str], **kwargs) -> RowSink:
    """Build a sink by backend name; unknown names raise
    :class:`UnknownSinkError` with near-match suggestions."""
    try:
        cls = _SINKS[backend]
    except KeyError:
        raise UnknownSinkError(backend, tuple(_SINKS)) from None
    return cls(path, columns, **kwargs)
