"""The discrete-time epoch scheduler: dynamic admission over job mixes.

The jobmix layer (:mod:`repro.sim.jobmix`) compiles a *fixed* set of
jobs with arrival offsets known at compile time. A day-long trace breaks
that model twice over: thousands of jobs cannot share one union DAG, and
admission decisions (who runs when slots free up) depend on simulated
history. This engine chains the two worlds:

* simulated time advances in **epochs** — intervals during which the set
  of running jobs is constant. An epoch ends when a job departs (its
  iteration budget drains) or an arrival is admitted;
* within an epoch, every running job progresses at the per-iteration
  rate of the current **composition**: the running jobs compiled as one
  :class:`~repro.sim.jobmix.JobMixSpec` on the shared cluster (placement
  recomputed per epoch — the ``host_map`` follows the surviving jobs)
  and simulated for one iteration through the shared
  :class:`~repro.sweep.SweepRunner` — so rate cells hit the same disk
  cache, shared cores and quarantine machinery as every other sweep.
  Identical compositions (a multiset of job shapes) are memoized, which
  is what makes a 1000-job day tractable: a day has thousands of epochs
  but only dozens-to-hundreds of distinct compositions;
* at each epoch boundary departures release slots, arrivals enter the
  FIFO queue, and the configured admission policy
  (:mod:`repro.replay.admission`) picks queue entries against the free
  slot count. Jobs too big for the whole cluster are quarantined.

Each finished job emits one row (queueing delay, wait, JCT, slowdown vs
its dedicated-cluster run) into the caller's streaming sink — rows are
never accumulated here, so peak RSS is bounded by the running set and
the composition memo, not the trace length.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..backends.placement import get_placement
from ..sim.config import SimConfig
from ..sim.jobmix import JobMixSpec, JobSpec, job_label
from ..sweep.spec import SimCell
from ..timing import PLATFORMS
from .admission import get_admission
from .sink import ListSink, RowSink
from .trace import JobTrace

#: columns of the per-job row stream, in sink order.
JOB_COLUMNS = (
    "algorithm", "admission", "job_id", "model", "job_algorithm",
    "n_workers", "n_ps", "slots", "status",
    "arrival_s", "admit_s", "finish_s",
    "queue_delay_s", "run_s", "jct_s", "wait_s",
    "iterations", "dedicated_iter_s", "slowdown",
)

_EPS = 1e-9


class ReplayError(ValueError):
    """A replay that cannot proceed (bad cluster, stalled admission)."""


@dataclass(frozen=True)
class ReplayCluster:
    """The shared cluster a replay runs on: slot capacity + placement."""

    n_hosts: int = 8
    slots_per_host: int = 2
    placement: str = "packed"
    platform: str = "envC"
    rack_size: int = 4

    def __post_init__(self) -> None:
        if self.n_hosts <= 0 or self.slots_per_host <= 0 or self.rack_size <= 0:
            raise ReplayError(
                "n_hosts, slots_per_host and rack_size must be positive"
            )
        get_placement(self.placement)  # fail fast with did-you-mean hints
        if self.platform not in PLATFORMS:
            raise ReplayError(
                f"unknown platform {self.platform!r}; available: "
                f"{sorted(PLATFORMS)}"
            )

    @property
    def total_slots(self) -> int:
        return self.n_hosts * self.slots_per_host


@dataclass
class _Job:
    """Book-keeping of one admitted (or queued) job."""

    trace: JobTrace
    alg: str  # effective algorithm under the replay's mode
    admit_s: float = 0.0
    order: int = 0  # admission sequence (stable tie-break)
    budget: float = 0.0  # iterations to run
    remaining: float = 0.0  # iterations left
    iter_s: float = 0.0  # per-iteration seconds under the current mix
    ded_iter_s: float = 0.0  # per-iteration seconds on a dedicated cluster


@dataclass
class ReplayResult:
    """What one replay run reports beyond its streamed rows."""

    label: str
    algorithm: str
    admission: str
    jobs: int
    done: int
    makespan_s: float
    epochs: int
    compositions: int
    rate_fallbacks: int
    queued: int  # jobs that spent time in the queue
    queue_peak: int
    quarantined: list[tuple[str, str]] = field(default_factory=list)


def _round(value: float) -> float:
    return round(value, 6)


class _RateOracle:
    """Memoized per-job iteration rates of running compositions.

    A composition is the multiset of running job *shapes* — ``(model,
    n_workers, n_ps, algorithm)`` — sorted canonically so the memo (and
    the sweep cache under it) is hit regardless of admission history.
    Rates are position-dependent (placement packs devices in job order),
    so jobs are mapped onto the sorted composition deterministically.
    """

    def __init__(self, cluster, mode, config, runner, telemetry):
        self.cluster = cluster
        self.mode = mode
        self.config = config.with_(iterations=1, warmup=0)
        self.runner = runner
        self.telemetry = telemetry
        self._memo: dict[tuple, tuple[Optional[float], ...]] = {}
        self._solo: dict[tuple, float] = {}
        self.compositions = 0
        self.fallbacks = 0

    @staticmethod
    def _shape(job: _Job) -> tuple:
        t = job.trace
        return (t.model, t.n_workers, t.n_ps, job.alg)

    def _cell(self, shapes: Sequence[tuple], placement, n_hosts) -> SimCell:
        spec = JobMixSpec(
            jobs=tuple(
                JobSpec(
                    model=model, n_workers=w, n_ps=p, algorithm=alg
                )
                for model, w, p, alg in shapes
            ),
            placement=placement,
            n_hosts=n_hosts,
            slots_per_host=self.cluster.slots_per_host,
            rack_size=self.cluster.rack_size,
        )
        return SimCell(
            model=shapes[0][0],
            spec=spec,
            algorithm=self.mode,
            platform=self.cluster.platform,
            config=self.config,
        )

    def _simulate(self, shapes, placement, n_hosts) -> Optional[tuple[float, ...]]:
        cell = self._cell(shapes, placement, n_hosts)
        res = self.runner.run_cells([cell])[0]
        if res is None:  # quarantined by the resilient runner
            return None
        it = res.iterations[0]
        return tuple(
            max(it.job_finish[job_label(i)], 1e-6) for i in range(len(shapes))
        )

    def dedicated(self, job: _Job) -> float:
        """The job's per-iteration time alone on dedicated hosts (the
        slowdown denominator and the duration -> iterations converter)."""
        shape = self._shape(job)
        if shape not in self._solo:
            rates = self._simulate((shape,), "dedicated", 0)
            if rates is None:
                raise ReplayError(
                    f"dedicated rate cell for {shape!r} was quarantined — "
                    f"cannot anchor budgets or slowdowns"
                )
            self._solo[shape] = rates[0]
        return self._solo[shape]

    def assign(self, running: list[_Job]) -> None:
        """Set every running job's ``iter_s`` from its composition."""
        ordered = sorted(
            running, key=lambda j: (self._shape(j), j.order)
        )
        key = tuple(self._shape(j) for j in ordered)
        if key not in self._memo:
            self.compositions += 1
            self._memo[key] = self._simulate(
                key, self.cluster.placement, self.cluster.n_hosts
            )
        rates = self._memo[key]
        if rates is None:
            # the composition's rate cell was quarantined after retries:
            # fall back to contention-free dedicated rates so the replay
            # completes (flagged in telemetry + the scenario's
            # quarantined extras identify the lost cell).
            self.fallbacks += 1
            if self.telemetry is not None:
                self.telemetry.add("replay_rate_fallbacks")
            for job in ordered:
                job.iter_s = self.dedicated(job)
            return
        for job, rate in zip(ordered, rates):
            job.iter_s = rate


def replay(
    traces: Sequence[JobTrace],
    cluster: ReplayCluster,
    *,
    runner,
    algorithm: str = "mix",
    admission: str = "fifo",
    config: Optional[SimConfig] = None,
    sink: Optional[RowSink] = None,
    label: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> ReplayResult:
    """Replay ``traces`` through the epoch scheduler.

    ``algorithm`` is the scheduling mode under study: ``"mix"`` gives
    every job its own :attr:`~repro.replay.trace.JobTrace.algorithm`
    (per-job TIC/TAC); any wizard algorithm name applies uniformly
    (``"baseline"`` is the no-scheduling reference). ``runner`` is the
    shared :class:`~repro.sweep.SweepRunner` rate cells execute on.
    Rows stream into ``sink`` (default: an in-memory :class:`ListSink`)
    tagged with ``label`` (default: the algorithm mode) in the
    ``algorithm`` column.
    """
    policy = get_admission(admission)  # fail fast with did-you-mean hints
    label = label if label is not None else algorithm
    sink = sink if sink is not None else ListSink()
    telemetry = getattr(runner, "telemetry", None)
    oracle = _RateOracle(
        cluster, algorithm, config or SimConfig(), runner, telemetry
    )
    total = cluster.total_slots

    def effective_alg(trace: JobTrace) -> str:
        return trace.algorithm if algorithm == "mix" else algorithm

    def base_row(job: _Job, status: str) -> dict:
        t = job.trace
        return {
            "algorithm": label,
            "admission": admission,
            "job_id": t.job_id,
            "model": t.model,
            "job_algorithm": job.alg,
            "n_workers": t.n_workers,
            "n_ps": t.n_ps,
            "slots": t.slots,
            "status": status,
        }

    pending = deque(sorted(traces, key=lambda t: (t.arrival_s, t.job_id)))
    queue: list[_Job] = []
    running: list[_Job] = []
    result = ReplayResult(
        label=label, algorithm=algorithm, admission=admission,
        jobs=len(pending), done=0, makespan_s=0.0, epochs=0,
        compositions=0, rate_fallbacks=0, queued=0, queue_peak=0,
    )
    now = 0.0
    seq = 0
    free = total

    while pending or queue or running:
        next_arr = pending[0].arrival_s if pending else math.inf
        next_dep = min(
            (now + max(j.remaining, 0.0) * j.iter_s for j in running),
            default=math.inf,
        )
        t = min(next_arr, next_dep)
        if not math.isfinite(t):
            # nothing running, nothing arriving, queue non-empty: the
            # policy admitted nothing against an empty cluster.
            raise ReplayError(
                f"admission policy {admission!r} stalled with "
                f"{len(queue)} queued job(s) on an empty cluster"
            )
        if t > now:
            for job in running:
                job.remaining -= (t - now) / job.iter_s
            now = t
        changed = False

        # departures (admit-order stable under simultaneous finishes)
        finished = sorted(
            (j for j in running if j.remaining <= _EPS), key=lambda j: j.order
        )
        for job in finished:
            run_s = now - job.admit_s
            ded_run = job.budget * job.ded_iter_s
            queue_delay = job.admit_s - job.trace.arrival_s
            row = base_row(job, "done")
            row.update({
                "arrival_s": _round(job.trace.arrival_s),
                "admit_s": _round(job.admit_s),
                "finish_s": _round(now),
                "queue_delay_s": _round(queue_delay),
                "run_s": _round(run_s),
                "jct_s": _round(now - job.trace.arrival_s),
                "wait_s": _round(now - job.trace.arrival_s - ded_run),
                "iterations": _round(job.budget),
                "dedicated_iter_s": _round(job.ded_iter_s),
                "slowdown": round(run_s / ded_run, 4) if ded_run else "",
            })
            sink.append(row)
            free += job.trace.slots
            result.done += 1
            result.makespan_s = max(result.makespan_s, now)
            if queue_delay > _EPS:
                result.queued += 1
            changed = True
            if log is not None and result.done % 200 == 0:
                log(
                    f"  replay[{label}] {result.done}/{result.jobs} jobs "
                    f"done, t={now / 3600.0:.2f}h, queue {len(queue)}"
                )
        if finished:
            running = [j for j in running if j.remaining > _EPS]

        # arrivals enter the queue (oversized jobs are quarantined)
        while pending and pending[0].arrival_s <= now + _EPS:
            trace = pending.popleft()
            if trace.slots > total:
                reason = (
                    f"needs {trace.slots} slots > cluster capacity {total}"
                )
                result.quarantined.append((trace.job_id, reason))
                job = _Job(trace=trace, alg=effective_alg(trace))
                sink.append(base_row(job, "quarantined"))
                if telemetry is not None:
                    telemetry.add("replay_jobs_quarantined")
                continue
            queue.append(_Job(trace=trace, alg=effective_alg(trace)))
        result.queue_peak = max(result.queue_peak, len(queue))

        # admission against the freed slots
        picks = policy.fn([j.trace.slots for j in queue], free)
        if picks:
            seen = set()
            demand = 0
            for i in picks:
                if not 0 <= i < len(queue) or i in seen:
                    raise ReplayError(
                        f"admission policy {admission!r} returned invalid "
                        f"queue index {i} (queue length {len(queue)})"
                    )
                seen.add(i)
                demand += queue[i].trace.slots
            if demand > free:
                raise ReplayError(
                    f"admission policy {admission!r} admitted {demand} "
                    f"slots with only {free} free"
                )
            for i in picks:
                job = queue[i]
                job.admit_s = now
                job.order = seq
                seq += 1
                job.ded_iter_s = oracle.dedicated(job)
                job.budget = (
                    job.trace.iterations
                    if job.trace.iterations is not None
                    else job.trace.duration_s / job.ded_iter_s
                )
                job.remaining = job.budget
                free -= job.trace.slots
                running.append(job)
                if telemetry is not None:
                    telemetry.add("replay_jobs_admitted")
            queue = [j for i, j in enumerate(queue) if i not in seen]
            changed = True

        # the composition changed: recompute every running job's rate
        # (placement — the host_map — is re-derived inside the compile)
        if changed:
            result.epochs += 1
            if running:
                oracle.assign(running)

    result.compositions = oracle.compositions
    result.rate_fallbacks = oracle.fallbacks
    if telemetry is not None:
        telemetry.add("replay_runs")
        telemetry.add("replay_epochs", result.epochs)
        telemetry.add("replay_jobs_done", result.done)
        telemetry.add("replay_jobs_waited", result.queued)
        telemetry.peak("replay_queue_peak", result.queue_peak)
        telemetry.peak("replay_compositions", oracle.compositions)
    return result
