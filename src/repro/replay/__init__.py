"""Trace-driven cluster-scale workload replay (ISSUE 10).

The ROADMAP's "simulate a day of a 1000-job cluster on a laptop" item:
this package replays realistic job mixes — synthetic or loaded from
Alibaba-GPU-2020-style CSV traces — through the multi-job engine with
*dynamic admission*: jobs arrive during the replay, queue when the
cluster is full, and are admitted by a pluggable policy (FIFO or
backfill) as departures free slots. Per-job results stream into a
chunked :class:`~repro.replay.sink.RowSink` with incremental
aggregation, so million-row replays never hold rows in memory and a
killed replay resumes from its last committed chunk.

Layers (each its own module):

* :mod:`repro.replay.trace` — the :class:`JobTrace` schema, the seeded
  :class:`SyntheticTraceSpec` generator and the trace-generator
  (arrival-process) registry;
* :mod:`repro.replay.loader` — the Alibaba-style CSV loader;
* :mod:`repro.replay.admission` — the admission-policy registry
  (mirrors :mod:`repro.backends.placement`);
* :mod:`repro.replay.engine` — the discrete-time epoch scheduler that
  chains :class:`~repro.sim.jobmix.JobMixSpec` compositions;
* :mod:`repro.replay.sink` / :mod:`repro.replay.aggregate` — streaming
  result sinks and the running percentile/fairness aggregation.

The API surface is :mod:`repro.api.replay_scenarios` (the registered
``cluster_day`` study) and the ``tictac-repro replay`` subcommand.
"""

from .admission import (
    AdmissionPolicy,
    UnknownAdmissionError,
    admission_policies,
    get_admission,
    register_admission,
)
from .aggregate import P2Quantile, ReplayAggregate
from .engine import ReplayCluster, ReplayError, ReplayResult, replay
from .loader import load_alibaba_csv
from .sink import (
    CsvChunkSink,
    ListSink,
    RowSink,
    SinkError,
    UnknownSinkError,
    make_sink,
    sink_backends,
)
from .trace import (
    JobTrace,
    SyntheticTraceSpec,
    TraceError,
    TraceGenerator,
    UnknownGeneratorError,
    generate_trace,
    get_generator,
    register_generator,
    trace_generators,
)

__all__ = [
    "AdmissionPolicy",
    "CsvChunkSink",
    "JobTrace",
    "ListSink",
    "P2Quantile",
    "ReplayAggregate",
    "ReplayCluster",
    "ReplayError",
    "ReplayResult",
    "RowSink",
    "SinkError",
    "SyntheticTraceSpec",
    "TraceError",
    "TraceGenerator",
    "UnknownAdmissionError",
    "UnknownGeneratorError",
    "UnknownSinkError",
    "admission_policies",
    "generate_trace",
    "get_admission",
    "get_generator",
    "load_alibaba_csv",
    "make_sink",
    "register_admission",
    "register_generator",
    "replay",
    "sink_backends",
    "trace_generators",
]
