"""Incremental aggregation for streaming replays.

A million-row replay cannot hold its rows to compute percentiles at the
end, so the sink aggregates *as rows stream through it*:

* :class:`P2Quantile` — the P² (piecewise-parabolic) single-pass
  quantile estimator of Jain & Chlamtac (CACM 1985): five markers,
  O(1) memory, deterministic. Exact below five observations.
* :class:`ReplayAggregate` — per-group (one group per replay algorithm
  mode) running JCT/queueing/fairness statistics: counts, means, max
  finish (makespan), Jain fairness from sum/sum-of-squares, busy
  slot-seconds (utilization), and P² percentiles of JCT.

Both serialize to plain-JSON state and restore **exactly** (Python's
json round-trips finite doubles bit-for-bit), which is what lets a
crash-resumed replay produce byte-identical aggregated output: the sink
persists the aggregate state in its chunk manifest and restores it
before replaying the uncommitted tail.
"""

from __future__ import annotations

from typing import Mapping, Optional


class P2Quantile:
    """Streaming estimate of the ``q``-quantile (P² algorithm)."""

    __slots__ = ("q", "heights", "positions", "count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = q
        self.heights: list[float] = []  # first 5 observations, then markers
        self.positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self.count = 0

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        if self.count <= 5:
            self.heights.append(x)
            self.heights.sort()
            return
        h, n, q = self.heights, self.positions, self.q
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = next(i for i in range(4) if h[i] <= x < h[i + 1])
        for i in range(k + 1, 5):
            n[i] += 1.0
        desired = [
            1.0,
            (self.count - 1) * q / 2.0 + 1.0,
            (self.count - 1) * q + 1.0,
            (self.count - 1) * (1.0 + q) / 2.0 + 1.0,
            float(self.count),
        ]
        for i in (1, 2, 3):
            d = desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                s = 1.0 if d >= 1.0 else -1.0
                # piecewise-parabolic prediction, linear fallback when it
                # would break marker monotonicity
                hp = h[i] + s / (n[i + 1] - n[i - 1]) * (
                    (n[i] - n[i - 1] + s) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                    + (n[i + 1] - n[i] - s) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
                )
                if not h[i - 1] < hp < h[i + 1]:
                    j = i + int(s)
                    hp = h[i] + s * (h[j] - h[i]) / (n[j] - n[i])
                h[i] = hp
                n[i] += s

    def value(self) -> float:
        """The current estimate (exact while count <= 5; 0 when empty)."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            rank = self.q * (len(self.heights) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(self.heights) - 1)
            return self.heights[lo] + (rank - lo) * (
                self.heights[hi] - self.heights[lo]
            )
        return self.heights[2]

    # -- manifest persistence -------------------------------------------
    def state(self) -> dict:
        return {
            "q": self.q,
            "heights": list(self.heights),
            "positions": list(self.positions),
            "count": self.count,
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "P2Quantile":
        est = cls(state["q"])
        est.heights = [float(v) for v in state["heights"]]
        est.positions = [float(v) for v in state["positions"]]
        est.count = int(state["count"])
        return est


_QUANTILES = (("p50", 0.5), ("p95", 0.95), ("p99", 0.99))

_SUMS = (
    "jct_sum", "queue_sum", "wait_sum", "run_sum",
    "slowdown_sum", "slowdown_sumsq", "slot_seconds",
)


class _Group:
    """Running statistics of one replay group (algorithm mode)."""

    __slots__ = ("n", "quarantined", "makespan", "queue_max", "sums", "jct")

    def __init__(self) -> None:
        self.n = 0
        self.quarantined = 0
        self.makespan = 0.0
        self.queue_max = 0.0
        self.sums = {name: 0.0 for name in _SUMS}
        self.jct = {name: P2Quantile(q) for name, q in _QUANTILES}


class ReplayAggregate:
    """Per-group streaming summary over replay job rows.

    ``observe`` consumes the exact row dicts the sink writes (grouped by
    ``group_by``, default the ``algorithm`` column); ``summary_rows``
    renders one tidy row per group at any point of the stream.
    """

    def __init__(self, total_slots: int, group_by: str = "algorithm") -> None:
        if total_slots <= 0:
            raise ValueError(f"total_slots must be positive, got {total_slots}")
        self.total_slots = total_slots
        self.group_by = group_by
        self.groups: dict[str, _Group] = {}

    def _group(self, key: str) -> _Group:
        if key not in self.groups:
            self.groups[key] = _Group()
        return self.groups[key]

    def observe(self, row: Mapping) -> None:
        g = self._group(str(row[self.group_by]))
        if row.get("status") != "done":
            g.quarantined += 1
            return
        g.n += 1
        g.makespan = max(g.makespan, float(row["finish_s"]))
        g.queue_max = max(g.queue_max, float(row["queue_delay_s"]))
        slowdown = float(row["slowdown"])
        g.sums["jct_sum"] += float(row["jct_s"])
        g.sums["queue_sum"] += float(row["queue_delay_s"])
        g.sums["wait_sum"] += float(row["wait_s"])
        g.sums["run_sum"] += float(row["run_s"])
        g.sums["slowdown_sum"] += slowdown
        g.sums["slowdown_sumsq"] += slowdown * slowdown
        g.sums["slot_seconds"] += float(row["run_s"]) * int(row["slots"])
        for est in g.jct.values():
            est.add(float(row["jct_s"]))

    def summary_rows(self) -> list[dict]:
        rows = []
        for key in sorted(self.groups):
            g = self.groups[key]
            n = g.n or 1
            sumsq = g.sums["slowdown_sumsq"]
            jain = (
                g.sums["slowdown_sum"] ** 2 / (g.n * sumsq)
                if g.n and sumsq
                else 1.0
            )
            denom = g.makespan * self.total_slots
            rows.append({
                self.group_by: key,
                "jobs": g.n,
                "quarantined": g.quarantined,
                "makespan_s": round(g.makespan, 3),
                "mean_jct_s": round(g.sums["jct_sum"] / n, 3),
                "p50_jct_s": round(g.jct["p50"].value(), 3),
                "p95_jct_s": round(g.jct["p95"].value(), 3),
                "p99_jct_s": round(g.jct["p99"].value(), 3),
                "mean_queue_delay_s": round(g.sums["queue_sum"] / n, 3),
                "max_queue_delay_s": round(g.queue_max, 3),
                "mean_wait_s": round(g.sums["wait_sum"] / n, 3),
                "mean_slowdown": round(g.sums["slowdown_sum"] / n, 4),
                "jain_fairness": round(jain, 4),
                "utilization": round(
                    g.sums["slot_seconds"] / denom if denom else 0.0, 4
                ),
            })
        return rows

    # -- manifest persistence -------------------------------------------
    def state(self) -> dict:
        return {
            "total_slots": self.total_slots,
            "group_by": self.group_by,
            "groups": {
                key: {
                    "n": g.n,
                    "quarantined": g.quarantined,
                    "makespan": g.makespan,
                    "queue_max": g.queue_max,
                    "sums": dict(g.sums),
                    "jct": {name: est.state() for name, est in g.jct.items()},
                }
                for key, g in self.groups.items()
            },
        }

    @classmethod
    def from_state(cls, state: Optional[Mapping]) -> "ReplayAggregate":
        agg = cls(state["total_slots"], state["group_by"])
        for key, gs in state["groups"].items():
            g = agg._group(key)
            g.n = int(gs["n"])
            g.quarantined = int(gs["quarantined"])
            g.makespan = float(gs["makespan"])
            g.queue_max = float(gs["queue_max"])
            g.sums = {name: float(gs["sums"][name]) for name in _SUMS}
            g.jct = {
                name: P2Quantile.from_state(s) for name, s in gs["jct"].items()
            }
        return agg
