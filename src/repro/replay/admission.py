"""Admission policies: which queued jobs enter the cluster when slots free.

The replay engine (:mod:`repro.replay.engine`) keeps a FIFO queue of
arrived-but-not-admitted jobs. At every epoch boundary it asks the
configured *admission policy* which queue entries to admit against the
currently free slot count. Policies are deterministic pure functions
registered exactly like placement policies
(:mod:`repro.backends.placement`): a small registry with difflib
did-you-mean suggestions on unknown names.

* ``fifo`` — strict arrival order with head-of-line blocking: admit the
  queue prefix that fits; a too-big head job blocks everyone behind it.
* ``backfill`` — FIFO first, then scan past a blocked head and admit
  any later job that still fits the remaining slots (EASY-style
  backfill without reservations; small jobs slip around big ones).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Sequence


class UnknownAdmissionError(KeyError):
    """Lookup of an admission policy name that is not registered."""

    def __init__(self, name: str, known: tuple[str, ...]):
        hints = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        message = (
            f"unknown admission policy {name!r}; available: {', '.join(known)}"
        )
        if hints:
            message += f" — did you mean {' or '.join(map(repr, hints))}?"
        super().__init__(message)
        self.name = name
        self.hints = tuple(hints)

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0]


@dataclass(frozen=True)
class AdmissionPolicy:
    """One registered policy.

    ``fn(slots_needed, free_slots)`` sees the queued jobs' slot demands
    in arrival order and returns the *indices* to admit, in admission
    order; the total admitted demand must fit ``free_slots``.
    """

    name: str
    description: str
    fn: Callable[[Sequence[int], int], list[int]]


_ADMISSIONS: dict[str, AdmissionPolicy] = {}


def register_admission(policy: AdmissionPolicy) -> None:
    """Register a policy; later registrations replace earlier ones."""
    _ADMISSIONS[policy.name] = policy


def admission_policies() -> dict[str, AdmissionPolicy]:
    """Registered admission policies by name."""
    return dict(_ADMISSIONS)


def get_admission(name: str) -> AdmissionPolicy:
    """Look up a policy by name; unknown names raise
    :class:`UnknownAdmissionError` with near-match suggestions."""
    try:
        return _ADMISSIONS[name]
    except KeyError:
        raise UnknownAdmissionError(name, tuple(_ADMISSIONS)) from None


def _fifo(slots_needed: Sequence[int], free_slots: int) -> list[int]:
    admitted = []
    for i, need in enumerate(slots_needed):
        if need > free_slots:
            break  # head-of-line blocking: nothing behind may pass
        admitted.append(i)
        free_slots -= need
    return admitted


def _backfill(slots_needed: Sequence[int], free_slots: int) -> list[int]:
    admitted = []
    for i, need in enumerate(slots_needed):
        if need <= free_slots:
            admitted.append(i)
            free_slots -= need
    return admitted


register_admission(AdmissionPolicy(
    name="fifo",
    description="strict arrival order, head-of-line blocking",
    fn=_fifo,
))
register_admission(AdmissionPolicy(
    name="backfill",
    description="FIFO plus backfilling smaller jobs around a blocked head",
    fn=_backfill,
))
