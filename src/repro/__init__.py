"""repro — a full reproduction of *TicTac: Accelerating Distributed Deep
Learning with Communication Scheduling* (Hashemi, Abdu Jyothi, Campbell;
MLSYS 2019).

Subpackages
-----------
``repro.graph``
    Computational-DAG substrate (ops, resources, partitions).
``repro.models``
    The ten Table-1 DNN architectures and their op-graph emission.
``repro.timing``
    Time oracles, tracing, and the envG/envC platform cost models.
``repro.ps``
    Parameter sharding and Model-Replica + Parameter-Server cluster graphs.
``repro.core``
    The paper's contribution: TIC/TAC priority assignment and the
    scheduling-efficiency theory (Eq. 1–4, Algorithms 1–3).
``repro.sim``
    Discrete-event execution engine with priority ready queues and
    sender-side transfer enforcement (the TensorFlow+gRPC stand-in).
``repro.training``
    Numeric data-parallel SGD substrate (Fig. 8's accuracy-preservation).
``repro.api``
    The stable public facade: ``Session``/``Scenario``/``ResultSet`` and
    the declarative scenario registry regenerating every table/figure.
``repro.experiments``
    Deprecated driver shims over ``repro.api`` (and the CLI shell).
``repro.analysis``
    Statistics helpers (regression, CDFs, summaries) and text rendering.
"""

__version__ = "1.0.0"

__all__ = ["__version__", "Session", "schedule_model", "simulate_cluster"]


def __getattr__(name):
    # Lazy convenience re-exports: keep `import repro` light while letting
    # `repro.schedule_model(...)` and friends work without deep imports.
    if name == "schedule_model":
        from .core.wizard import schedule_model

        return schedule_model
    if name == "simulate_cluster":
        from .sim.runner import simulate_cluster

        return simulate_cluster
    if name == "Session":
        from .api import Session

        return Session
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
