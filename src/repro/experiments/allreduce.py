"""Collective backend evaluation: all-reduce topologies under TIC/TAC.

The paper schedules PS transfers; this driver extends the question to the
dominant deployment today — collective data-parallel training — using the
:mod:`repro.collectives` backend:

* **grid** — {ring, hierarchical} x {baseline, TIC, TAC} x partition
  size x worker count, for every model of the scale, on envG. Reports
  per-cell iteration time/throughput and each scheduler's gain over the
  unscheduled baseline (``results/allreduce_comparison.csv``).
* **wire check** — for every (model, W), a ring cell on the diagnostic
  ``wire`` platform (free compute, zero latency/jitter), whose makespan
  must sit on the analytic ring bound ``2(W-1)/W * M/B``
  (``results/allreduce_wire_check.csv``; the collectives tests assert the
  <=5% tolerance).
* **PS vs all-reduce headline** — for every model at the largest swept
  worker count, TAC-scheduled PS (Fig. 7's 1:4 provisioning) against
  TAC-scheduled ring all-reduce at the best partition size
  (``results/allreduce_vs_ps.csv``).

Quick scale trims to 3 models, W in {2, 4} and two partition sizes; full
scale runs every model, W up to 16 and three partition sizes.
"""

from __future__ import annotations

import time

from ..models import build_model
from ..sweep.spec import SimCell
from ..timing import get_platform
from .common import (
    Context,
    ExperimentOutput,
    finish,
    make_spec,
    ps_for_workers,
    render_rows,
    write_csv,
)

TOPOLOGIES = ("ring", "hierarchical")
ALGORITHMS = ("baseline", "tic", "tac")

MIB = 2**20
PARTITIONS_QUICK = (4 * MIB, 16 * MIB)
PARTITIONS_FULL = (1 * MIB, 4 * MIB, 16 * MIB)


def axes(ctx: Context) -> tuple[tuple[str, ...], tuple[int, ...], tuple[int, ...]]:
    """(models, worker counts, partition sizes) for the context's scale."""
    scale = ctx.scale
    if scale.name == "full":
        workers = tuple(w for w in scale.worker_counts if w >= 2)
        return scale.models, workers, PARTITIONS_FULL
    workers = tuple(w for w in scale.worker_counts if 2 <= w <= 4) or (2,)
    return scale.models[:3], workers, PARTITIONS_QUICK


def grid_cells(ctx: Context) -> list[SimCell]:
    """The driver's main evaluation grid, in deterministic row order."""
    models, workers, partitions = axes(ctx)
    cfg = ctx.sim_config()
    cells = []
    for model in models:
        for topology in TOPOLOGIES:
            for n_workers in workers:
                for partition in partitions:
                    spec = make_spec(
                        "allreduce",
                        n_workers=n_workers,
                        topology=topology,
                        partition_bytes=partition,
                    )
                    for algorithm in ALGORITHMS:
                        cells.append(
                            SimCell(
                                model=model,
                                spec=spec,
                                algorithm=algorithm,
                                platform="envG",
                                config=cfg,
                            )
                        )
    return cells


def run(ctx: Context) -> ExperimentOutput:
    t0 = time.perf_counter()
    models, workers, partitions = axes(ctx)

    # --- main grid ----------------------------------------------------
    cells = grid_cells(ctx)
    results = ctx.sweep.run_cells(cells)
    by_cell = dict(zip(cells, results))
    rows = []
    for cell, res in zip(cells, results):
        base = by_cell[cell.with_(algorithm="baseline")]
        gain = (res.throughput - base.throughput) / base.throughput * 100.0
        rows.append(
            {
                "model": cell.model,
                "topology": cell.spec.topology,
                "workers": cell.spec.n_workers,
                "partition_mib": cell.spec.partition_bytes // MIB,
                "algorithm": cell.algorithm,
                "iteration_time_s": round(res.mean_iteration_time, 6),
                "throughput_sps": round(res.throughput, 1),
                "speedup_pct": round(gain, 2),
                "efficiency_mean": round(res.mean_efficiency, 4),
            }
        )
        if cell.algorithm != "baseline":
            ctx.log(
                f"  allreduce {cell.model} {cell.spec.topology} "
                f"w{cell.spec.n_workers} p{cell.spec.partition_bytes // MIB}MiB "
                f"{cell.algorithm}: {gain:+.1f}%"
            )

    # --- analytic ring wire check ------------------------------------
    wire = get_platform("wire")
    wire_cfg = ctx.sim_config(iterations=2, warmup=0)
    wire_cells = [
        SimCell(
            model=model,
            spec=make_spec(
                "allreduce",
                n_workers=w,
                topology="ring",
                partition_bytes=partitions[0],
            ),
            algorithm="baseline",
            platform="wire",
            config=wire_cfg,
        )
        for model in models
        for w in workers
    ]
    model_bytes = {m: build_model(m).total_param_bytes for m in models}
    wire_rows = []
    for cell, res in zip(wire_cells, ctx.sweep.run_cells(wire_cells)):
        w = cell.spec.n_workers
        bound = 2 * (w - 1) / w * model_bytes[cell.model] / wire.bandwidth_bps
        wire_rows.append(
            {
                "model": cell.model,
                "workers": w,
                "analytic_s": round(bound, 6),
                "simulated_s": round(res.mean_iteration_time, 6),
                "ratio": round(res.mean_iteration_time / bound, 4),
            }
        )
    wire_csv = write_csv(
        f"{ctx.results_dir}/allreduce_wire_check.csv", wire_rows
    )

    # --- PS vs all-reduce headline ------------------------------------
    w_head = max(workers)
    vs_rows = []
    ps_cells = [
        SimCell(
            model=model,
            spec=make_spec("ps", n_workers=w_head, n_ps=ps_for_workers(w_head)),
            algorithm="tac",
            platform="envG",
            config=ctx.sim_config(),
        )
        for model in models
    ]
    for model, ps_res in zip(models, ctx.sweep.run_cells(ps_cells)):
        ring_tac = [
            r
            for r in rows
            if r["model"] == model
            and r["topology"] == "ring"
            and r["workers"] == w_head
            and r["algorithm"] == "tac"
        ]
        best = min(ring_tac, key=lambda r: r["iteration_time_s"])
        delta = (
            (ps_res.mean_iteration_time - best["iteration_time_s"])
            / ps_res.mean_iteration_time
            * 100.0
        )
        vs_rows.append(
            {
                "model": model,
                "workers": w_head,
                "ps_tac_s": round(ps_res.mean_iteration_time, 6),
                "allreduce_tac_s": best["iteration_time_s"],
                "best_partition_mib": best["partition_mib"],
                "allreduce_faster_pct": round(delta, 1),
            }
        )
    vs_csv = write_csv(f"{ctx.results_dir}/allreduce_vs_ps.csv", vs_rows)

    text = "\n\n".join(
        [
            render_rows(
                rows,
                "All-reduce backend: {ring, hierarchical} x {baseline, TIC, "
                "TAC} x partition x workers (envG)",
            ),
            render_rows(
                wire_rows,
                "Ring wire check: simulated vs analytic 2(W-1)/W * M/B "
                "(wire platform)",
            ),
            render_rows(
                vs_rows,
                f"PS (TAC, 1:4 provisioning) vs ring all-reduce (TAC), "
                f"W={w_head} (envG)",
            ),
        ]
    )
    return finish(
        ctx,
        "allreduce_comparison",
        rows,
        text,
        t0=t0,
        extras={"wire_check_csv": wire_csv, "vs_ps_csv": vs_csv},
    )
