"""Collective backend evaluation: all-reduce topologies under TIC/TAC.

.. deprecated:: use ``repro.api.Session(...).run("allreduce")``; this
   module is a shim over the scenario registry
   (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ..api.scenarios import (  # noqa: F401 — legacy re-exports
    MIB,
    PARTITIONS_FULL,
    PARTITIONS_QUICK,
    TOPOLOGIES,
    allreduce_axes,
    allreduce_grid_cells,
)
from ..api.scenarios import ALLREDUCE_ALGORITHMS as ALGORITHMS  # noqa: F401
from ..sweep.spec import SimCell
from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def axes(ctx: Context) -> tuple[tuple[str, ...], tuple[int, ...], tuple[int, ...]]:
    """(models, worker counts, partition sizes) for the context's scale
    (legacy signature over :func:`repro.api.scenarios.allreduce_axes`)."""
    return allreduce_axes(ctx.scale)


def grid_cells(ctx: Context) -> list[SimCell]:
    """The main evaluation grid, in deterministic row order (legacy
    signature over :func:`repro.api.scenarios.allreduce_grid_cells`)."""
    return allreduce_grid_cells(ctx.scale, ctx.sim_config())


def run(ctx: Context) -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("allreduce")``."""
    return run_scenario_shim("allreduce", ctx, {})
