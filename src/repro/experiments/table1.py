"""Table 1 — DNN model characteristics, ours vs. the paper.

For each of the ten models: parameter-tensor count, total parameter size
(MiB), canonical op counts in inference and training modes, and the paper's
published values with deltas. Parameter counts and sizes reproduce exactly;
op counts are structural (not padded) and land within a documented margin.
"""

from __future__ import annotations

import time

from ..models import PAPER_TABLE_1, build_model, op_counts
from ..sweep import FnTask
from .common import Context, ExperimentOutput, finish, render_rows


def model_characteristics(name: str) -> dict:
    """Build one model and report Table 1's structural quantities
    (a cacheable/parallelizable sweep task — model IR construction is the
    expensive part of this driver)."""
    ir = build_model(name)
    inf, tr = op_counts(ir)
    return {
        "params": ir.n_param_tensors,
        "size_mib": ir.total_param_mib,
        "ops_inf": inf,
        "ops_train": tr,
        "batch": ir.batch_size,
    }


def run(ctx: Context) -> ExperimentOutput:
    t0 = time.perf_counter()
    names = list(PAPER_TABLE_1)
    tasks = [FnTask.make(model_characteristics, name=name) for name in names]
    rows = []
    for name, char in zip(names, ctx.sweep.run_tasks(tasks)):
        ref = PAPER_TABLE_1[name]
        inf, tr = char["ops_inf"], char["ops_train"]
        rows.append(
            {
                "model": name,
                "params": char["params"],
                "params_paper": ref.n_params,
                "size_mib": round(char["size_mib"], 2),
                "size_mib_paper": ref.param_mib,
                "ops_inf": inf,
                "ops_inf_paper": ref.ops_inference,
                "ops_inf_delta_pct": round(100 * (inf - ref.ops_inference) / ref.ops_inference, 1),
                "ops_train": tr,
                "ops_train_paper": ref.ops_training,
                "ops_train_delta_pct": round(100 * (tr - ref.ops_training) / ref.ops_training, 1),
                "batch": char["batch"],
            }
        )
    text = render_rows(rows, "Table 1: DNN model characteristics (ours vs paper)")
    return finish(ctx, "table1_models", rows, text, t0=t0)
