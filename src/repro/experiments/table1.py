"""Table 1 — DNN model characteristics, ours vs. the paper.

.. deprecated:: use ``repro.api.Session(...).run("table1")``; this module
   is a shim over the scenario registry (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ..api.scenarios import model_characteristics  # noqa: F401 — legacy re-export
from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def run(ctx: Context) -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("table1")``."""
    return run_scenario_shim("table1", ctx, {})
