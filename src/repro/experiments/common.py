"""Shared experiment infrastructure (compatibility layer).

.. deprecated::
    The hand-written driver layer this module served has been replaced
    by the :mod:`repro.api` facade — a declarative scenario registry
    executed by one generic engine. The execution context
    (:class:`~repro.api.context.Context`, :class:`~repro.api.context.Scale`,
    the quick/full protocol) now lives in :mod:`repro.api.context` and
    :func:`make_spec` in :mod:`repro.backends`; everything is re-exported
    here unchanged so existing imports keep working. New code should use
    ``repro.api.Session`` / ``repro.api.execute_scenario``.

Results (CSV + rendered text) land under ``results/``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..analysis import format_table, write_csv
from ..api.context import (  # noqa: F401 — canonical home: repro.api.context
    FIG7_MODELS,
    FULL,
    QUICK,
    QUICK_MODELS,
    Context,
    Scale,
    make_context,
)
from ..backends import make_spec  # noqa: F401 — canonical home: repro.backends
from ..sweep.spec import ps_for_workers  # noqa: F401 — drivers import it from here


@dataclass
class ExperimentOutput:
    """Uniform driver result: rows + rendered text + artifact paths.

    Kept for the deprecated ``experiments.<driver>.run(ctx)`` shims;
    :class:`repro.api.ResultSet` is its replacement."""

    name: str
    rows: list[dict]
    text: str
    csv_path: Optional[str] = None
    extras: dict = field(default_factory=dict)
    elapsed_s: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def finish(
    ctx: Context,
    name: str,
    rows: Sequence[Mapping[str, object]],
    text: str,
    *,
    t0: float,
    extras: Optional[dict] = None,
) -> ExperimentOutput:
    """Persist rows as CSV and assemble the driver output (legacy helper
    for out-of-tree drivers; in-tree scenarios return
    :class:`~repro.api.resultset.Report` objects instead)."""
    csv_path = write_csv(os.path.join(ctx.results_dir, f"{name}.csv"), rows)
    out = ExperimentOutput(
        name=name,
        rows=list(rows),
        text=text,
        csv_path=csv_path,
        extras=extras or {},
        elapsed_s=time.perf_counter() - t0,
    )
    ctx.log(text)
    ctx.log(f"[{name}] {len(out.rows)} rows -> {csv_path} ({out.elapsed_s:.1f}s)")
    return out


def render_rows(rows: Sequence[Mapping[str, object]], title: str, **kw) -> str:
    return format_table(rows, title=title, **kw)
