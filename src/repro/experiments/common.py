"""Shared experiment infrastructure (compatibility re-exports).

The hand-written driver layer this module once served is gone — the
deprecated ``experiments.<driver>.run(ctx)`` shims were deleted after a
release of warning ``DeprecationWarning``; scenarios are declarative
data in the :mod:`repro.api` registry, executed by one generic engine
(``repro.api.Session`` / :func:`repro.api.execute_scenario`). The
execution context (:class:`~repro.api.context.Context`,
:class:`~repro.api.context.Scale`, the quick/full protocol) lives in
:mod:`repro.api.context` and :func:`make_spec` in
:mod:`repro.backends`; both stay re-exported here for existing imports.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..analysis import format_table
from ..api.context import (  # noqa: F401 — canonical home: repro.api.context
    FIG7_MODELS,
    FULL,
    QUICK,
    QUICK_MODELS,
    Context,
    Scale,
    make_context,
)
from ..backends import make_spec  # noqa: F401 — canonical home: repro.backends
from ..sweep.spec import ps_for_workers  # noqa: F401 — legacy import site


def render_rows(rows: Sequence[Mapping[str, object]], title: str, **kw) -> str:
    return format_table(rows, title=title, **kw)
