"""Deprecation shims bridging the legacy driver API onto ``repro.api``.

Every ``repro.experiments.<driver>.run(ctx)`` function is now a thin
wrapper over the scenario registry: it warns ``DeprecationWarning``,
executes the named scenario through the one generic engine, writes the
same CSVs to ``ctx.results_dir`` and adapts the
:class:`~repro.api.resultset.ResultSet` back into the legacy
:class:`~repro.experiments.common.ExperimentOutput` shape (including the
extras path aliases, e.g. the all-reduce driver's ``wire_check_csv``).
"""

from __future__ import annotations

import warnings

from ..api.engine import execute_scenario
from ..api.registry import scenario
from .common import Context, ExperimentOutput


def run_scenario_shim(name: str, ctx: Context, overrides: dict) -> ExperimentOutput:
    """Execute scenario ``name`` for a deprecated ``run(ctx)`` entry."""
    warnings.warn(
        f"repro.experiments.{name}.run() is deprecated; use "
        f"repro.api.Session(...).run({name!r}) (or "
        f"repro.api.execute_scenario) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    result = execute_scenario(ctx, scenario(name), **overrides)
    paths = result.save(ctx.results_dir)
    csv_path = paths[result.name]
    ctx.log(f"[{result.name}] csv -> {csv_path}")
    return ExperimentOutput(
        name=result.name,
        rows=list(result.rows),
        text=result.text,
        csv_path=csv_path,
        extras=dict(result.extras),
        elapsed_s=result.provenance.elapsed_s,
    )
