"""§2.2's motivating measurement: how random is the transfer order?

.. deprecated:: use ``repro.api.Session(...).run("motivation")``; this
   module is a shim over the scenario registry
   (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ..api.scenarios import (  # noqa: F401 — legacy re-exports
    MOTIVATION_MODELS,
    PAPER_UNIQUE,
    count_unique_orders,
)
from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def run(ctx: Context) -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("motivation")``."""
    return run_scenario_shim("motivation", ctx, {})
