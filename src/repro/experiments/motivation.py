"""§2.2's motivating measurement: how random is the transfer order?

The paper runs 1000 training iterations and records the order in which a
worker receives its parameters: ResNet-v2-50 and Inception-v3 never repeat
an order; VGG-16 shows 493 unique orders in 1000 runs. It also sizes the
search space via ResNet-v2-152 (363 parameter tensors -> 363! candidate
orders; 229.5 MB; a ~4.7k-op graph).

This driver reproduces both: it simulates baseline (unscheduled)
iterations, hashes each iteration's parameter-arrival order at worker:0,
and counts distinct orders; and it rebuilds the ResNet-v2-152 sizing note
from the zoo.
"""

from __future__ import annotations

import time

import numpy as np

from ..models import build_model
from ..ps import ClusterSpec, build_cluster_graph
from ..sim import CompiledCore, SimConfig, SimVariant
from ..sweep import FnTask
from ..timing import ENV_G
from .common import Context, ExperimentOutput, finish, render_rows
from .table1 import model_characteristics

#: The three models §2.2 reports order-uniqueness for.
MOTIVATION_MODELS = ("ResNet-50 v2", "Inception v3", "VGG-16")
PAPER_UNIQUE = {"ResNet-50 v2": 1000, "Inception v3": 1000, "VGG-16": 493}


def count_unique_orders(model: str, iterations: int, seed: int = 0) -> int:
    """Distinct parameter-arrival orders at worker:0 across iterations."""
    ir = build_model(model)
    cluster = build_cluster_graph(ir, ClusterSpec(2, 1, "training"))
    sim = SimVariant(CompiledCore(cluster, ENV_G), None, SimConfig(seed=seed, iterations=1))
    recvs = cluster.param_recvs["worker:0"]
    op_ids = np.array(list(recvs.values()))
    seen: set[tuple] = set()
    # stream the 1000-iteration protocol (slabbed batch setup inside)
    for record in sim.iter_iterations(0, iterations):
        order = tuple(np.argsort(record.start[op_ids], kind="stable").tolist())
        seen.add(order)
    return len(seen)


def run(ctx: Context) -> ExperimentOutput:
    t0 = time.perf_counter()
    iterations = min(ctx.scale.consistency_runs, 1000)
    tasks = [
        FnTask.make(
            count_unique_orders, model=model, iterations=iterations, seed=ctx.seed
        )
        for model in MOTIVATION_MODELS
    ] + [FnTask.make(model_characteristics, name="ResNet-152 v2")]
    *uniques, r152 = ctx.sweep.run_tasks(tasks)
    rows = []
    for model, unique in zip(MOTIVATION_MODELS, uniques):
        rows.append(
            {
                "model": model,
                "iterations": iterations,
                "unique_orders": unique,
                "paper_unique_of_1000": PAPER_UNIQUE[model],
            }
        )
        ctx.log(f"  motivation {model}: {unique}/{iterations} unique orders")

    # The §2.2 sizing example.
    rows.append(
        {
            "model": "ResNet-152 v2 (sizing)",
            "iterations": 0,
            "unique_orders": r152["params"],
            "paper_unique_of_1000": 363,
        }
    )
    text = "\n".join(
        [
            render_rows(
                rows,
                f"Motivation (§2.2): distinct parameter-arrival orders over "
                f"{iterations} baseline iterations",
            ),
            f"ResNet-v2-152 sizing: {r152['params']} tensors "
            f"(paper: 363), {r152['size_mib']:.1f} MiB (paper: 229.5), "
            f"{r152['ops_train']} training ops (paper: 4655).",
        ]
    )
    return finish(ctx, "motivation_unique_orders", rows, text, t0=t0)
