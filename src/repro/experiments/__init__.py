"""Experiment drivers: one module per table/figure of the evaluation."""

from .common import (
    FIG7_MODELS,
    FULL,
    QUICK,
    Context,
    ExperimentOutput,
    Scale,
    make_context,
    ps_for_workers,
)

__all__ = [
    "FIG7_MODELS",
    "FULL",
    "QUICK",
    "Context",
    "ExperimentOutput",
    "Scale",
    "make_context",
    "ps_for_workers",
]
