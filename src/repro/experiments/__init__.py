"""Experiment drivers — deprecated shims over :mod:`repro.api`.

.. deprecated::
    The driver-function pattern (``repro.experiments.fig7.run(ctx)`` and
    friends, one hand-written module per table/figure) is deprecated.
    Scenarios are now declarative data in the :mod:`repro.api` registry,
    executed by one generic engine::

        from repro.api import Session

        with Session(scale="quick") as session:
            rs = session.run("fig7")
            rs.to_csv("results")

    Every ``run(Context)`` entry point still works — it executes the same
    scenario through the same engine and writes the same CSVs — but emits
    a ``DeprecationWarning``. The shared infrastructure re-exported here
    (``Context``, ``Scale``, ``make_context``, ...) now lives in
    :mod:`repro.api.context`.
"""

from .common import (
    FIG7_MODELS,
    FULL,
    QUICK,
    Context,
    ExperimentOutput,
    Scale,
    make_context,
    ps_for_workers,
)

__all__ = [
    "FIG7_MODELS",
    "FULL",
    "QUICK",
    "Context",
    "ExperimentOutput",
    "Scale",
    "make_context",
    "ps_for_workers",
]
