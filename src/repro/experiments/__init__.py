"""The ``tictac-repro`` command-line layer.

Scenarios are declarative data in the :mod:`repro.api` registry,
executed by one generic engine; this package is the thin CLI shell over
that facade (``python -m repro.experiments`` / the ``tictac-repro``
console script) plus compatibility re-exports of the shared execution
context::

    from repro.api import Session

    with Session(scale="quick") as session:
        rs = session.run("fig7")
        rs.to_csv("results")

The legacy driver-function pattern (``repro.experiments.fig7.run(ctx)``
and friends, one hand-written module per table/figure) was deprecated
and has been removed; the re-exports below (``Context``, ``Scale``,
``make_context``, ...) keep older import sites working — their
canonical home is :mod:`repro.api.context`.
"""

from .common import (
    FIG7_MODELS,
    FULL,
    QUICK,
    Context,
    Scale,
    make_context,
    ps_for_workers,
)

__all__ = [
    "FIG7_MODELS",
    "FULL",
    "QUICK",
    "Context",
    "Scale",
    "make_context",
    "ps_for_workers",
]
