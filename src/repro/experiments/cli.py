"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    python -m repro.experiments table1 fig7 fig12      # selected drivers
    python -m repro.experiments all --full             # the whole paper
    tictac-repro fig13 --results-dir out/              # console script
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

from . import (
    ablations,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    headline,
    motivation,
    pipelining,
    stragglers,
    table1,
)
from .common import Context, ExperimentOutput, make_context

DRIVERS: dict[str, Callable[[Context], ExperimentOutput]] = {
    "table1": table1.run,
    "motivation": motivation.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "headline": headline.run,
    "ablations": ablations.run,
    "stragglers": stragglers.run,
    "pipelining": pipelining.run,
}

#: 'all' runs everything in the paper's presentation order.
ORDER = (
    "table1",
    "motivation",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "headline",
    "ablations",
    "stragglers",
    "pipelining",
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tictac-repro",
        description="Regenerate the tables and figures of the TicTac paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(DRIVERS) + ["all"],
        help="which drivers to run ('all' for every table/figure)",
    )
    parser.add_argument("--full", action="store_true",
                        help="paper-scale protocol (slow); default is quick scale")
    parser.add_argument("--results-dir", default="results")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                        help="worker processes for the sweep runner "
                        "(default: $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk sweep result cache")
    parser.add_argument("--rerun", action="store_true",
                        help="recompute every cell, refreshing cache entries")
    args = parser.parse_args(argv)

    ctx = make_context(
        full=True if args.full else None,
        results_dir=args.results_dir,
        seed=args.seed,
        verbose=not args.quiet,
        jobs=args.jobs,
        rerun=args.rerun,
        **({"use_cache": False} if args.no_cache else {}),
    )
    names = list(ORDER) if "all" in args.experiments else args.experiments
    for name in names:
        ctx.log(f"=== {name} (scale={ctx.scale.name}, jobs={ctx.jobs}) ===")
        DRIVERS[name](ctx)
    if ctx.use_cache:
        ctx.log(f"sweep cache: {ctx.sweep.stats.as_dict()}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
