"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    python -m repro.experiments table1 fig7 fig12      # selected drivers
    python -m repro.experiments all --full             # the whole paper
    tictac-repro fig13 --results-dir out/              # console script
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

from . import (
    ablations,
    allreduce,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    headline,
    motivation,
    pipelining,
    stragglers,
    table1,
)
from .common import Context, ExperimentOutput, make_context

DRIVERS: dict[str, Callable[[Context], ExperimentOutput]] = {
    "table1": table1.run,
    "motivation": motivation.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "headline": headline.run,
    "ablations": ablations.run,
    "stragglers": stragglers.run,
    "pipelining": pipelining.run,
    "allreduce": allreduce.run,
}

#: 'all' runs everything in the paper's presentation order, then the
#: beyond-the-paper extension drivers.
ORDER = (
    "table1",
    "motivation",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "headline",
    "ablations",
    "stragglers",
    "pipelining",
    "allreduce",
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tictac-repro",
        description="Regenerate the tables and figures of the TicTac paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="which drivers to run ('all' for every table/figure): "
        + ", ".join(sorted(DRIVERS)),
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument("--full", action="store_true",
                       help="paper-scale protocol (slow); default is quick scale")
    scale.add_argument("--quick", action="store_true",
                       help="force quick scale (overrides $REPRO_SCALE)")
    parser.add_argument("--results-dir", default="results")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                        help="worker processes for the sweep runner "
                        "(default: $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk sweep result cache")
    parser.add_argument("--rerun", action="store_true",
                        help="recompute every cell, refreshing cache entries")
    parser.add_argument("--cache-max-mb", type=float, default=None, metavar="MB",
                        help="size cap for the sweep cache; least-recently-"
                        "used entries are evicted after the run "
                        "(default: $REPRO_CACHE_MAX_MB or unbounded)")
    parser.add_argument("--cache-gc", action="store_true",
                        help="run the cache eviction pass (with --cache-max-mb,"
                        " or $REPRO_CACHE_MAX_MB, or 0 to empty); may be used "
                        "without naming any experiment")
    args = parser.parse_args(argv)
    if not args.experiments and not args.cache_gc:
        parser.error("name at least one experiment (or use --cache-gc)")
    unknown = [e for e in args.experiments if e != "all" and e not in DRIVERS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; "
            f"choose from {', '.join(sorted(DRIVERS))}, all"
        )

    full = True if args.full else (False if args.quick else None)
    ctx = make_context(
        full=full,
        results_dir=args.results_dir,
        seed=args.seed,
        verbose=not args.quiet,
        jobs=args.jobs,
        rerun=args.rerun,
        **({"use_cache": False} if args.no_cache else {}),
        **({"cache_max_mb": args.cache_max_mb}
           if args.cache_max_mb is not None else {}),
    )
    names = list(ORDER) if "all" in args.experiments else args.experiments
    try:
        for name in names:
            ctx.log(f"=== {name} (scale={ctx.scale.name}, jobs={ctx.jobs}) ===")
            DRIVERS[name](ctx)
        if names and ctx.use_cache:
            ctx.log(f"sweep cache: {ctx.sweep.stats.as_dict()}")
        if args.cache_gc and ctx.cache_max_mb is None:
            ctx.cache_max_mb = 0.0  # explicit GC with no cap empties the cache
        ctx.gc_cache()
    finally:
        ctx.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
