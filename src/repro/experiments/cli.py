"""Command-line entry point: regenerate any table/figure of the paper.

A thin shell over the :mod:`repro.api` scenario registry — scenarios are
data, execution is the one generic engine, and this module only parses
flags, loops, and persists CSVs.

Usage::

    tictac-repro list                                  # what can run
    python -m repro.experiments table1 fig7 fig12      # selected scenarios
    python -m repro.experiments all --full             # the whole paper
    tictac-repro fig13 --results-dir out/              # console script
    tictac-repro trace headline                        # Perfetto trace
    tictac-repro replay --n-jobs 200                   # trace replay

``trace`` captures one traced iteration of one scenario cell
(:func:`repro.obs.capture.capture_trace`) and writes it through an
exporter — Chrome trace-event JSON for https://ui.perfetto.dev by
default, tidy per-op CSV with ``--exporter csv``.

``replay`` streams a job trace (synthetic or Alibaba-style CSV) through
the dynamic-admission cluster scheduler (:mod:`repro.replay`) into a
chunked, crash-resumable result sink.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from ..api.context import make_context
from ..api.engine import execute_scenario
from ..api.registry import (
    UnknownScenarioError,
    iter_scenarios,
    scenario,
    scenario_names,
)


#: exporter name -> one-line description for the listing.
_EXPORTER_NOTES = {
    "chrome": "Chrome trace-event JSON (load at https://ui.perfetto.dev)",
    "csv": "tidy per-op rows (ready/start/end/wait/depth/priority)",
}


def print_listing() -> None:
    """``tictac-repro list``: scenarios, backends, placements, kernels."""
    from ..backends import backends, spec_fields
    from ..backends.placement import placements
    from ..obs.export import EXPORTERS
    from ..sim.kernel import (
        HAVE_NUMBA,
        KERNELS,
        PARALLEL_ENV_VAR,
        resolve,
        resolve_parallel,
    )
    from ..timing import PLATFORMS

    print("scenarios (presentation order):")
    for sc in iter_scenarios():
        kind = "grid" if sc.grid is not None else "custom"
        aux = f" +{len(sc.aux_outputs)} aux" if sc.aux_outputs else ""
        print(f"  {sc.name:<12} {sc.title}")
        print(f"  {'':<12} [{kind} -> {sc.output}.csv{aux}]")
    print("\ncommunication backends:")
    for name, backend in sorted(backends().items()):
        fields = ", ".join(spec_fields(backend.spec_type))
        print(f"  {name:<12} {backend.spec_type.__name__}({fields})")
    print("\nplacement policies (job mixes):")
    for name, policy in sorted(placements().items()):
        print(f"  {name:<12} {policy.description}")
    print("\nengine kernels:")
    for name in KERNELS:
        if name == "auto":
            note = f"-> {resolve('auto')}"
        elif name == "numba" and not HAVE_NUMBA:
            note = "unavailable (pip install 'tictac-repro[fast]')"
        else:
            note = "available"
        print(f"  {name:<12} {note}")
    try:
        parallel = resolve_parallel()
    except ValueError as exc:  # bad $REPRO_ENGINE_PARALLEL: show, not crash
        parallel = None
        print(f"  {'!':<12} {exc}")
    if parallel is not None:
        active = resolve("auto")
        if active == "python":
            mode = "per-iteration dispatch (tuned python loop)"
        elif parallel:
            mode = "batched dispatch, parallel rows (prange)"
        else:
            mode = "batched dispatch, serial rows"
        print(f"  {'active':<12} {active}: {mode} [{PARALLEL_ENV_VAR}="
              f"{os.environ.get(PARALLEL_ENV_VAR, '') or 'off'}]")
    print("\ntrace exporters (tictac-repro trace <scenario> --exporter NAME):")
    for name in sorted(EXPORTERS):
        print(f"  {name:<12} {_EXPORTER_NOTES.get(name, '')}")
    from ..replay.admission import admission_policies
    from ..replay.sink import CsvChunkSink, sink_backends
    from ..replay.trace import trace_generators

    print("\ntrace generators (tictac-repro replay --arrival NAME):")
    for name, generator in sorted(trace_generators().items()):
        print(f"  {name:<12} {generator.description}")
    print("\nadmission policies (tictac-repro replay --admission NAME):")
    for name, policy in sorted(admission_policies().items()):
        print(f"  {name:<12} {policy.description}")
    print("\nreplay sinks (tictac-repro replay --sink NAME):")
    for name, cls in sorted(sink_backends().items()):
        if cls is CsvChunkSink:
            note = "chunked CSV append with manifest crash-resume"
        else:
            try:
                import pyarrow  # noqa: F401

                note = "one parquet row group per chunk (no resume)"
            except ImportError:
                note = "unavailable (pip install pyarrow)"
        print(f"  {name:<12} {note}")
    print("\nplatforms: " + ", ".join(sorted(PLATFORMS)))


def trace_main(argv: Sequence[str]) -> int:
    """``tictac-repro trace <scenario>``: capture + export one traced
    iteration (no sweep pool, no cache — a few seconds at quick scale)."""
    parser = argparse.ArgumentParser(
        prog="tictac-repro trace",
        description="Trace one iteration of one scenario cell and export "
        "it (Perfetto JSON or per-op CSV).",
    )
    parser.add_argument("scenario", help="registered scenario name, e.g. "
                        "'headline' or 'jobmix_crosstalk'")
    parser.add_argument("--exporter", default="chrome",
                        help="output format: 'chrome' (Perfetto JSON, "
                        "default) or 'csv' (per-op rows)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output path (default: "
                        "<results-dir>/trace_<scenario>.<ext>)")
    parser.add_argument("--cell", type=int, default=0, metavar="N",
                        help="which resolved cell to trace (default: first)")
    parser.add_argument("--iteration", type=int, default=None, metavar="I",
                        help="iteration index (default: first measured)")
    parser.add_argument("--kernel", default=None,
                        help="event-loop kernel override (python/portable/"
                        "numba; streams are identical, only speed differs)")
    parser.add_argument("--full", action="store_true",
                        help="resolve the scenario at full (paper) scale")
    parser.add_argument("--results-dir", default="results")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(list(argv))

    from ..obs.capture import capture_trace
    from ..obs.export import UnknownExporterError, get_exporter, validate_chrome_trace

    try:
        exporter = get_exporter(args.exporter)
    except UnknownExporterError as exc:
        parser.error(str(exc))
    try:
        scenario(args.scenario)
    except UnknownScenarioError as exc:
        parser.error(str(exc))
    try:
        cap = capture_trace(
            args.scenario,
            scale="full" if args.full else "quick",
            seed=args.seed,
            cell_index=args.cell,
            iteration=args.iteration,
            kernel=args.kernel,
        )
    except ValueError as exc:  # scenario with no simulation cells
        parser.error(str(exc))
    ext = "json" if args.exporter == "chrome" else "csv"
    out = args.out or os.path.join(
        args.results_dir, f"trace_{args.scenario}.{ext}"
    )
    os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
    exporter(cap.trace, out)
    if args.exporter == "chrome":
        validate_chrome_trace(out)
    if not args.quiet:
        cell, summary = cap.cell, cap.trace.summary()
        print(
            f"traced {args.scenario} cell {args.cell}: {cell.model} "
            f"{cell.algorithm} on {cell.platform} "
            f"(iteration {cap.iteration}, kernel {cap.kernel})"
        )
        print(
            f"  makespan {summary['makespan_s']:.4f}s, "
            f"{summary['n_ops']} ops, "
            f"{summary['n_chunk_events']} wire chunks, "
            f"overlap {summary['overlap_frac']:.2f}, "
            f"{summary['priority_inversions']} priority inversions"
        )
        print(f"  {args.exporter} -> {out}")
    return 0


def replay_main(argv: Sequence[str]) -> int:
    """``tictac-repro replay``: stream a trace through the epoch
    scheduler (:mod:`repro.replay`) into a chunked result sink.

    The per-job rows land in ``--out`` as they finish (never held in
    memory); the incremental per-mode summary lands in ``--summary-out``
    on exit. A killed run resumes from the sink's last committed chunk
    with ``--resume`` — the finished files are byte-identical to an
    uninterrupted run.
    """
    parser = argparse.ArgumentParser(
        prog="tictac-repro replay",
        description="Replay a job trace (synthetic or Alibaba-style CSV) "
        "through the dynamic-admission cluster scheduler.",
    )
    parser.add_argument("--trace", default=None, metavar="CSV",
                        help="Alibaba-GPU-2020-style CSV trace "
                        "(job_name/start_time/end_time[/inst_num/status]); "
                        "default: a seeded synthetic trace")
    parser.add_argument("--n-jobs", type=int, default=100, metavar="N",
                        help="synthetic trace: number of jobs (default 100)")
    parser.add_argument("--horizon-s", type=float, default=3600.0, metavar="S",
                        help="synthetic trace: arrival horizon in seconds")
    parser.add_argument("--arrival", default="poisson",
                        help="synthetic arrival process (see 'tictac-repro "
                        "list': poisson/uniform/bursty)")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="replay only the first N trace jobs")
    parser.add_argument("--algorithm", default="mix",
                        help="scheduling mode: 'mix' (per-job algorithms), "
                        "'baseline', 'tic', 'tac', ... (default: mix)")
    parser.add_argument("--admission", default="fifo",
                        help="admission policy (fifo/backfill; see list)")
    parser.add_argument("--n-hosts", type=int, default=8)
    parser.add_argument("--slots-per-host", type=int, default=2)
    parser.add_argument("--placement", default="packed",
                        help="placement policy for running jobs (packed/"
                        "spread/rack_aware; see list)")
    parser.add_argument("--platform", default="envC")
    parser.add_argument("--sink", default="csv",
                        help="result sink backend (csv/parquet)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="per-job row stream (default: "
                        "<results-dir>/replay_jobs.<ext>)")
    parser.add_argument("--summary-out", default=None, metavar="PATH",
                        help="per-mode summary CSV (default: "
                        "<results-dir>/replay.csv)")
    parser.add_argument("--chunk-rows", type=int, default=256, metavar="N",
                        help="rows per committed sink chunk (default 256)")
    parser.add_argument("--resume", action="store_true",
                        help="resume a killed run from --out's manifest "
                        "(csv sink only)")
    parser.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                        help="worker processes for rate cells "
                        "(default: $REPRO_JOBS or 1)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--results-dir", default="results")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(list(argv))

    from ..analysis import format_table, write_csv
    from ..replay.admission import UnknownAdmissionError
    from ..replay.aggregate import ReplayAggregate
    from ..replay.engine import (
        JOB_COLUMNS,
        ReplayCluster,
        ReplayError,
        replay,
    )
    from ..replay.loader import load_alibaba_csv
    from ..replay.sink import SinkError, UnknownSinkError, make_sink
    from ..replay.trace import SyntheticTraceSpec, TraceError, generate_trace

    try:
        if args.trace is not None:
            traces = load_alibaba_csv(args.trace, limit=args.limit)
        else:
            traces = generate_trace(
                SyntheticTraceSpec(
                    n_jobs=args.n_jobs,
                    horizon_s=args.horizon_s,
                    arrival=args.arrival,
                ),
                seed=args.seed,
            )
            if args.limit is not None:
                traces = traces[: args.limit]
        cluster = ReplayCluster(
            n_hosts=args.n_hosts,
            slots_per_host=args.slots_per_host,
            placement=args.placement,
            platform=args.platform,
        )
    except (TraceError, ReplayError, KeyError) as exc:
        parser.error(str(exc))

    ext = "parquet" if args.sink == "parquet" else "csv"
    out = args.out or os.path.join(args.results_dir, f"replay_jobs.{ext}")
    summary_out = args.summary_out or os.path.join(
        args.results_dir, "replay.csv"
    )
    # test hook: SIGKILL this process right after the Nth chunk commit,
    # leaving exactly the on-disk state a real crash would.
    crash_after = os.environ.get("REPRO_REPLAY_CRASH_AFTER_CHUNKS")
    try:
        sink = make_sink(
            args.sink,
            out,
            JOB_COLUMNS,
            chunk_rows=args.chunk_rows,
            resume=args.resume,
            aggregate=ReplayAggregate(cluster.total_slots),
            crash_after_chunks=int(crash_after) if crash_after else None,
        )
    except (UnknownSinkError, SinkError) as exc:
        parser.error(str(exc))

    ctx = make_context(
        full=False,  # replay rates are scale-independent (1-iteration cells)
        results_dir=args.results_dir,
        seed=args.seed,
        verbose=not args.quiet,
        jobs=args.jobs,
        **({"use_cache": False} if args.no_cache else {}),
    )
    try:
        try:
            result = replay(
                traces,
                cluster,
                runner=ctx.sweep,
                algorithm=args.algorithm,
                admission=args.admission,
                config=ctx.sim_config(),
                sink=sink,
                log=ctx.log,
            )
        except (ReplayError, UnknownAdmissionError) as exc:
            sink.close(complete=False)
            parser.error(str(exc))
        info = sink.close()
        summary = sink.aggregate.summary_rows()
        write_csv(summary_out, summary)
        if not args.quiet:
            print(format_table(summary))
            print(
                f"replay[{result.label}] {result.done}/{result.jobs} jobs, "
                f"{len(result.quarantined)} quarantined, {result.epochs} "
                f"epochs, {result.compositions} compositions, queue peak "
                f"{result.queue_peak}"
            )
            print(f"  jobs    -> {info['path']} ({info['rows']} rows, "
                  f"{info['chunks']} chunks)")
            print(f"  summary -> {summary_out}")
    finally:
        ctx.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "replay":
        return replay_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="tictac-repro",
        description="Regenerate the tables and figures of the TicTac paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="SCENARIO",
        help="which scenarios to run ('all' for every table/figure, "
        "'list' to enumerate scenarios/backends/exporters/kernels, "
        "'trace <scenario>' to capture a Perfetto trace, 'replay' to "
        "stream a job trace through the cluster scheduler): "
        + ", ".join(scenario_names()),
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument("--full", action="store_true",
                       help="paper-scale protocol (slow); default is quick scale")
    scale.add_argument("--quick", action="store_true",
                       help="force quick scale (overrides $REPRO_SCALE)")
    parser.add_argument("--results-dir", default="results")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                        help="worker processes for the sweep runner "
                        "(default: $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk sweep result cache")
    parser.add_argument("--rerun", action="store_true",
                        help="recompute every cell, refreshing cache entries")
    parser.add_argument("--cache-max-mb", type=float, default=None, metavar="MB",
                        help="size cap for the sweep cache; least-recently-"
                        "used entries are evicted after the run "
                        "(default: $REPRO_CACHE_MAX_MB or unbounded)")
    parser.add_argument("--cache-gc", action="store_true",
                        help="run the cache eviction pass (with --cache-max-mb,"
                        " or $REPRO_CACHE_MAX_MB, or 0 to empty); may be used "
                        "without naming any experiment")
    args = parser.parse_args(argv)
    if "list" in args.experiments:
        if len(args.experiments) > 1:
            parser.error("'list' cannot be combined with scenario names")
        print_listing()
        return 0
    if not args.experiments and not args.cache_gc:
        parser.error("name at least one scenario (or use 'list'/--cache-gc)")
    # fail fast on every named scenario (even alongside 'all'), with
    # near-match suggestions
    for name in args.experiments:
        if name == "all":
            continue
        try:
            scenario(name)
        except UnknownScenarioError as exc:
            parser.error(str(exc))
    names = (
        list(scenario_names())
        if "all" in args.experiments
        else list(args.experiments)
    )

    full = True if args.full else (False if args.quick else None)
    ctx = make_context(
        full=full,
        results_dir=args.results_dir,
        seed=args.seed,
        verbose=not args.quiet,
        jobs=args.jobs,
        rerun=args.rerun,
        **({"use_cache": False} if args.no_cache else {}),
        **({"cache_max_mb": args.cache_max_mb}
           if args.cache_max_mb is not None else {}),
    )
    try:
        for name in names:
            ctx.log(f"=== {name} (scale={ctx.scale.name}, jobs={ctx.jobs}) ===")
            result = execute_scenario(ctx, scenario(name))
            paths = result.save(ctx.results_dir)
            ctx.log(f"[{result.name}] csv -> {paths[result.name]}")
        if names and ctx.use_cache:
            ctx.log(f"sweep cache: {ctx.sweep.stats.as_dict()}")
        if args.cache_gc and ctx.cache_max_mb is None:
            ctx.cache_max_mb = 0.0  # explicit GC with no cap empties the cache
        ctx.gc_cache()
    finally:
        ctx.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
