"""Command-line entry point: regenerate any table/figure of the paper.

A thin shell over the :mod:`repro.api` scenario registry — scenarios are
data, execution is the one generic engine, and this module only parses
flags, loops, and persists CSVs.

Usage::

    tictac-repro list                                  # what can run
    python -m repro.experiments table1 fig7 fig12      # selected scenarios
    python -m repro.experiments all --full             # the whole paper
    tictac-repro fig13 --results-dir out/              # console script
    tictac-repro trace headline                        # Perfetto trace

``trace`` captures one traced iteration of one scenario cell
(:func:`repro.obs.capture.capture_trace`) and writes it through an
exporter — Chrome trace-event JSON for https://ui.perfetto.dev by
default, tidy per-op CSV with ``--exporter csv``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from ..api.context import make_context
from ..api.engine import execute_scenario
from ..api.registry import (
    UnknownScenarioError,
    iter_scenarios,
    scenario,
    scenario_names,
)


#: exporter name -> one-line description for the listing.
_EXPORTER_NOTES = {
    "chrome": "Chrome trace-event JSON (load at https://ui.perfetto.dev)",
    "csv": "tidy per-op rows (ready/start/end/wait/depth/priority)",
}


def print_listing() -> None:
    """``tictac-repro list``: scenarios, backends, placements, kernels."""
    from ..backends import backends, spec_fields
    from ..backends.placement import placements
    from ..obs.export import EXPORTERS
    from ..sim.kernel import (
        HAVE_NUMBA,
        KERNELS,
        PARALLEL_ENV_VAR,
        resolve,
        resolve_parallel,
    )
    from ..timing import PLATFORMS

    print("scenarios (presentation order):")
    for sc in iter_scenarios():
        kind = "grid" if sc.grid is not None else "custom"
        aux = f" +{len(sc.aux_outputs)} aux" if sc.aux_outputs else ""
        print(f"  {sc.name:<12} {sc.title}")
        print(f"  {'':<12} [{kind} -> {sc.output}.csv{aux}]")
    print("\ncommunication backends:")
    for name, backend in sorted(backends().items()):
        fields = ", ".join(spec_fields(backend.spec_type))
        print(f"  {name:<12} {backend.spec_type.__name__}({fields})")
    print("\nplacement policies (job mixes):")
    for name, policy in sorted(placements().items()):
        print(f"  {name:<12} {policy.description}")
    print("\nengine kernels:")
    for name in KERNELS:
        if name == "auto":
            note = f"-> {resolve('auto')}"
        elif name == "numba" and not HAVE_NUMBA:
            note = "unavailable (pip install 'tictac-repro[fast]')"
        else:
            note = "available"
        print(f"  {name:<12} {note}")
    try:
        parallel = resolve_parallel()
    except ValueError as exc:  # bad $REPRO_ENGINE_PARALLEL: show, not crash
        parallel = None
        print(f"  {'!':<12} {exc}")
    if parallel is not None:
        active = resolve("auto")
        if active == "python":
            mode = "per-iteration dispatch (tuned python loop)"
        elif parallel:
            mode = "batched dispatch, parallel rows (prange)"
        else:
            mode = "batched dispatch, serial rows"
        print(f"  {'active':<12} {active}: {mode} [{PARALLEL_ENV_VAR}="
              f"{os.environ.get(PARALLEL_ENV_VAR, '') or 'off'}]")
    print("\ntrace exporters (tictac-repro trace <scenario> --exporter NAME):")
    for name in sorted(EXPORTERS):
        print(f"  {name:<12} {_EXPORTER_NOTES.get(name, '')}")
    print("\nplatforms: " + ", ".join(sorted(PLATFORMS)))


def trace_main(argv: Sequence[str]) -> int:
    """``tictac-repro trace <scenario>``: capture + export one traced
    iteration (no sweep pool, no cache — a few seconds at quick scale)."""
    parser = argparse.ArgumentParser(
        prog="tictac-repro trace",
        description="Trace one iteration of one scenario cell and export "
        "it (Perfetto JSON or per-op CSV).",
    )
    parser.add_argument("scenario", help="registered scenario name, e.g. "
                        "'headline' or 'jobmix_crosstalk'")
    parser.add_argument("--exporter", default="chrome",
                        help="output format: 'chrome' (Perfetto JSON, "
                        "default) or 'csv' (per-op rows)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output path (default: "
                        "<results-dir>/trace_<scenario>.<ext>)")
    parser.add_argument("--cell", type=int, default=0, metavar="N",
                        help="which resolved cell to trace (default: first)")
    parser.add_argument("--iteration", type=int, default=None, metavar="I",
                        help="iteration index (default: first measured)")
    parser.add_argument("--kernel", default=None,
                        help="event-loop kernel override (python/portable/"
                        "numba; streams are identical, only speed differs)")
    parser.add_argument("--full", action="store_true",
                        help="resolve the scenario at full (paper) scale")
    parser.add_argument("--results-dir", default="results")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(list(argv))

    from ..obs.capture import capture_trace
    from ..obs.export import UnknownExporterError, get_exporter, validate_chrome_trace

    try:
        exporter = get_exporter(args.exporter)
    except UnknownExporterError as exc:
        parser.error(str(exc))
    try:
        scenario(args.scenario)
    except UnknownScenarioError as exc:
        parser.error(str(exc))
    try:
        cap = capture_trace(
            args.scenario,
            scale="full" if args.full else "quick",
            seed=args.seed,
            cell_index=args.cell,
            iteration=args.iteration,
            kernel=args.kernel,
        )
    except ValueError as exc:  # scenario with no simulation cells
        parser.error(str(exc))
    ext = "json" if args.exporter == "chrome" else "csv"
    out = args.out or os.path.join(
        args.results_dir, f"trace_{args.scenario}.{ext}"
    )
    os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
    exporter(cap.trace, out)
    if args.exporter == "chrome":
        validate_chrome_trace(out)
    if not args.quiet:
        cell, summary = cap.cell, cap.trace.summary()
        print(
            f"traced {args.scenario} cell {args.cell}: {cell.model} "
            f"{cell.algorithm} on {cell.platform} "
            f"(iteration {cap.iteration}, kernel {cap.kernel})"
        )
        print(
            f"  makespan {summary['makespan_s']:.4f}s, "
            f"{summary['n_ops']} ops, "
            f"{summary['n_chunk_events']} wire chunks, "
            f"overlap {summary['overlap_frac']:.2f}, "
            f"{summary['priority_inversions']} priority inversions"
        )
        print(f"  {args.exporter} -> {out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="tictac-repro",
        description="Regenerate the tables and figures of the TicTac paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="SCENARIO",
        help="which scenarios to run ('all' for every table/figure, "
        "'list' to enumerate scenarios/backends/exporters/kernels, "
        "'trace <scenario>' to capture a Perfetto trace): "
        + ", ".join(scenario_names()),
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument("--full", action="store_true",
                       help="paper-scale protocol (slow); default is quick scale")
    scale.add_argument("--quick", action="store_true",
                       help="force quick scale (overrides $REPRO_SCALE)")
    parser.add_argument("--results-dir", default="results")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                        help="worker processes for the sweep runner "
                        "(default: $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk sweep result cache")
    parser.add_argument("--rerun", action="store_true",
                        help="recompute every cell, refreshing cache entries")
    parser.add_argument("--cache-max-mb", type=float, default=None, metavar="MB",
                        help="size cap for the sweep cache; least-recently-"
                        "used entries are evicted after the run "
                        "(default: $REPRO_CACHE_MAX_MB or unbounded)")
    parser.add_argument("--cache-gc", action="store_true",
                        help="run the cache eviction pass (with --cache-max-mb,"
                        " or $REPRO_CACHE_MAX_MB, or 0 to empty); may be used "
                        "without naming any experiment")
    args = parser.parse_args(argv)
    if "list" in args.experiments:
        if len(args.experiments) > 1:
            parser.error("'list' cannot be combined with scenario names")
        print_listing()
        return 0
    if not args.experiments and not args.cache_gc:
        parser.error("name at least one scenario (or use 'list'/--cache-gc)")
    # fail fast on every named scenario (even alongside 'all'), with
    # near-match suggestions
    for name in args.experiments:
        if name == "all":
            continue
        try:
            scenario(name)
        except UnknownScenarioError as exc:
            parser.error(str(exc))
    names = (
        list(scenario_names())
        if "all" in args.experiments
        else list(args.experiments)
    )

    full = True if args.full else (False if args.quick else None)
    ctx = make_context(
        full=full,
        results_dir=args.results_dir,
        seed=args.seed,
        verbose=not args.quiet,
        jobs=args.jobs,
        rerun=args.rerun,
        **({"use_cache": False} if args.no_cache else {}),
        **({"cache_max_mb": args.cache_max_mb}
           if args.cache_max_mb is not None else {}),
    )
    try:
        for name in names:
            ctx.log(f"=== {name} (scale={ctx.scale.name}, jobs={ctx.jobs}) ===")
            result = execute_scenario(ctx, scenario(name))
            paths = result.save(ctx.results_dir)
            ctx.log(f"[{result.name}] csv -> {paths[result.name]}")
        if names and ctx.use_cache:
            ctx.log(f"sweep cache: {ctx.sweep.stats.as_dict()}")
        if args.cache_gc and ctx.cache_max_mb is None:
            ctx.cache_max_mb = 0.0  # explicit GC with no cap empties the cache
        ctx.gc_cache()
    finally:
        ctx.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
