"""Fig. 8 — training loss with and without enforced ordering.

The paper trains Inception v3 on ImageNet for 500 iterations under
no-ordering and TIC and shows coinciding loss curves (scheduling permutes
transfer order only — the arithmetic is untouched). Our numeric substrate
(:mod:`repro.training`) makes the transfer order an explicit step of
data-parallel SGD, so we can assert the curves are not merely close but
*identical*.
"""

from __future__ import annotations

import time

import numpy as np

from ..training import (
    baseline_ordering,
    enforced_ordering,
    make_dataset,
    train_data_parallel,
)
from .common import Context, ExperimentOutput, finish, render_rows


def run(ctx: Context) -> ExperimentOutput:
    t0 = time.perf_counter()
    iters = ctx.scale.loss_iterations
    ds = make_dataset(seed=ctx.seed)
    runs = {
        "no_ordering": train_data_parallel(
            ds, iterations=iters, ordering=baseline_ordering(ctx.seed),
            label="no_ordering", seed=ctx.seed,
        ),
        "tic": train_data_parallel(
            ds, iterations=iters, ordering=enforced_ordering(),
            label="tic", seed=ctx.seed,
        ),
    }
    identical = bool(
        np.array_equal(runs["no_ordering"].loss_array, runs["tic"].loss_array)
    )
    rows = []
    stride = max(1, iters // 50)
    for i in range(0, iters, stride):
        rows.append(
            {
                "iteration": i,
                "loss_no_ordering": runs["no_ordering"].losses[i],
                "loss_tic": runs["tic"].losses[i],
            }
        )
    first, last = runs["tic"].losses[0], runs["tic"].losses[-1]
    text = "\n".join(
        [
            "Fig. 8: training loss, no-ordering vs TIC "
            f"({iters} iterations, synthetic dataset)",
            f"  curves identical: {identical}",
            f"  loss {first:.4f} -> {last:.4f} "
            f"(accuracy {runs['tic'].eval_accuracy:.3f})",
            render_rows(rows[:10], "  first sampled points", floatfmt=".4f"),
        ]
    )
    return finish(
        ctx,
        "fig8_training_loss",
        rows,
        text,
        t0=t0,
        extras={"identical": identical, "final_loss": last},
    )
