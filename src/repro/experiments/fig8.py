"""Fig. 8 — training loss with and without enforced ordering.

The paper trains Inception v3 on ImageNet for 500 iterations under
no-ordering and TIC and shows coinciding loss curves (scheduling permutes
transfer order only — the arithmetic is untouched). Our numeric substrate
(:mod:`repro.training`) makes the transfer order an explicit step of
data-parallel SGD, so we can assert the curves are not merely close but
*identical*.
"""

from __future__ import annotations

import time

import numpy as np

from ..sweep import FnTask
from ..training import (
    baseline_ordering,
    enforced_ordering,
    make_dataset,
    train_data_parallel,
)
from .common import Context, ExperimentOutput, finish, render_rows


def training_run(ordering: str, iterations: int, seed: int) -> dict:
    """One Fig. 8 SGD run as a cacheable sweep task. The dataset is
    rebuilt from ``seed``, so both orderings train on identical data."""
    ds = make_dataset(seed=seed)
    policy = (
        baseline_ordering(seed) if ordering == "no_ordering" else enforced_ordering()
    )
    log = train_data_parallel(
        ds, iterations=iterations, ordering=policy, label=ordering, seed=seed
    )
    return {
        "losses": [float(x) for x in log.losses],
        "accuracy": float(log.eval_accuracy),
    }


def run(ctx: Context) -> ExperimentOutput:
    t0 = time.perf_counter()
    iters = ctx.scale.loss_iterations
    labels = ("no_ordering", "tic")
    tasks = [
        FnTask.make(training_run, ordering=label, iterations=iters, seed=ctx.seed)
        for label in labels
    ]
    runs = dict(zip(labels, ctx.sweep.run_tasks(tasks)))
    identical = bool(
        np.array_equal(
            np.array(runs["no_ordering"]["losses"]), np.array(runs["tic"]["losses"])
        )
    )
    rows = []
    stride = max(1, iters // 50)
    for i in range(0, iters, stride):
        rows.append(
            {
                "iteration": i,
                "loss_no_ordering": runs["no_ordering"]["losses"][i],
                "loss_tic": runs["tic"]["losses"][i],
            }
        )
    first, last = runs["tic"]["losses"][0], runs["tic"]["losses"][-1]
    text = "\n".join(
        [
            "Fig. 8: training loss, no-ordering vs TIC "
            f"({iters} iterations, synthetic dataset)",
            f"  curves identical: {identical}",
            f"  loss {first:.4f} -> {last:.4f} "
            f"(accuracy {runs['tic']['accuracy']:.3f})",
            render_rows(rows[:10], "  first sampled points", floatfmt=".4f"),
        ]
    )
    return finish(
        ctx,
        "fig8_training_loss",
        rows,
        text,
        t0=t0,
        extras={"identical": identical, "final_loss": last},
    )
