"""Fig. 8 — training loss with and without enforced ordering.

.. deprecated:: use ``repro.api.Session(...).run("fig8")``; this module
   is a shim over the scenario registry (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ..api.scenarios import training_run  # noqa: F401 — legacy re-export
from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def run(ctx: Context) -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("fig8")``."""
    return run_scenario_shim("fig8", ctx, {})
