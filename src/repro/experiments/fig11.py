"""Fig. 11 — scheduling efficiency and straggler effect vs. model size.

Samples every (model, workload) pair in envG with and without TIC and
plots (a) the Eq. 3 efficiency metric and (b) straggler time percentage
against the number of ops per worker.

Shape targets: with TIC the efficiency metric approaches 1 across all
sizes while the baseline scatters lower; baseline straggler percentages
reach tens of percent and grow with op count, while any enforced order
compresses them (the paper quotes up to 2.3x reduction).
"""

from __future__ import annotations

import time

from ..models import build_model, emit_graph
from ..models.emit import WORKER_INFERENCE, WORKER_TRAINING
from ..ps import ClusterSpec, build_cluster_graph, shard_parameters
from ..sim import simulate_cluster
from .common import Context, ExperimentOutput, finish, ps_for_workers, render_rows


def ops_per_worker(model: str, workload: str) -> int:
    """Worker-partition op count (Fig. 11's x axis)."""
    ir = build_model(model)
    placement = shard_parameters(ir.params, ["ps:0"])
    mode = WORKER_TRAINING if workload == "training" else WORKER_INFERENCE
    return len(emit_graph(ir, mode, placement=placement).graph)


def run(ctx: Context, *, n_workers: int = 4) -> ExperimentOutput:
    t0 = time.perf_counter()
    rows = []
    spec_ps = ps_for_workers(n_workers)
    for workload in ("inference", "training"):
        for model in ctx.scale.models:
            spec = ClusterSpec(n_workers=n_workers, n_ps=spec_ps, workload=workload)
            ir = build_model(model)
            cluster = build_cluster_graph(ir, spec)
            n_ops = ops_per_worker(model, workload)
            for algorithm in ("baseline", "tic"):
                result = simulate_cluster(
                    ir, spec, algorithm=algorithm, platform="envG",
                    config=ctx.sim_config(), cluster=cluster,
                )
                rows.append(
                    {
                        "model": model,
                        "workload": workload,
                        "algorithm": algorithm,
                        "ops_per_worker": n_ops,
                        "efficiency_mean": round(result.mean_efficiency, 4),
                        "efficiency_max": round(result.max_efficiency, 4),
                        "straggler_pct_max": round(result.max_straggler_pct, 2),
                        "straggler_pct_mean": round(result.mean_straggler_pct, 2),
                    }
                )
            ctx.log(f"  fig11 {model} {workload}: done")
    text = render_rows(
        rows,
        "Fig. 11: (a) scheduling efficiency and (b) straggler time vs ops per "
        f"worker (envG, {n_workers} workers, baseline vs TIC)",
        floatfmt=".3f",
    )
    return finish(ctx, "fig11_efficiency_stragglers", rows, text, t0=t0)
