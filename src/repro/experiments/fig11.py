"""Fig. 11 — scheduling efficiency and straggler effect vs. model size.

Samples every (model, workload) pair in envG with and without TIC and
plots (a) the Eq. 3 efficiency metric and (b) straggler time percentage
against the number of ops per worker.

Shape targets: with TIC the efficiency metric approaches 1 across all
sizes while the baseline scatters lower; baseline straggler percentages
reach tens of percent and grow with op count, while any enforced order
compresses them (the paper quotes up to 2.3x reduction).
"""

from __future__ import annotations

import time
from functools import lru_cache

from ..models import build_model, emit_graph
from ..models.emit import WORKER_INFERENCE, WORKER_TRAINING
from ..ps import ClusterSpec, shard_parameters
from ..sweep import FnTask, SimCell
from .common import Context, ExperimentOutput, finish, ps_for_workers, render_rows


@lru_cache(maxsize=None)
def ops_per_worker(model: str, workload: str) -> int:
    """Worker-partition op count (Fig. 11's x axis; submitted as a sweep
    task so warm-cache runs skip the model builds too)."""
    ir = build_model(model)
    placement = shard_parameters(ir.params, ["ps:0"])
    mode = WORKER_TRAINING if workload == "training" else WORKER_INFERENCE
    return len(emit_graph(ir, mode, placement=placement).graph)


def run(ctx: Context, *, n_workers: int = 4) -> ExperimentOutput:
    t0 = time.perf_counter()
    spec_ps = ps_for_workers(n_workers)
    cells = [
        SimCell(
            model=model,
            spec=ClusterSpec(n_workers=n_workers, n_ps=spec_ps, workload=workload),
            algorithm=algorithm,
            platform="envG",
            config=ctx.sim_config(),
        )
        for workload in ("inference", "training")
        for model in ctx.scale.models
        for algorithm in ("baseline", "tic")
    ]
    results = ctx.sweep.run_cells(cells)
    n_ops_of = dict(
        zip(
            [(c.model, c.spec.workload) for c in cells],
            ctx.sweep.run_tasks(
                [
                    FnTask.make(
                        ops_per_worker, model=c.model, workload=c.spec.workload
                    )
                    for c in cells
                ]
            ),
        )
    )
    rows = []
    for cell, result in zip(cells, results):
        rows.append(
            {
                "model": cell.model,
                "workload": cell.spec.workload,
                "algorithm": cell.algorithm,
                "ops_per_worker": n_ops_of[(cell.model, cell.spec.workload)],
                "efficiency_mean": round(result.mean_efficiency, 4),
                "efficiency_max": round(result.max_efficiency, 4),
                "straggler_pct_max": round(result.max_straggler_pct, 2),
                "straggler_pct_mean": round(result.mean_straggler_pct, 2),
            }
        )
        if cell.algorithm == "tic":
            ctx.log(f"  fig11 {cell.model} {cell.spec.workload}: done")
    text = render_rows(
        rows,
        "Fig. 11: (a) scheduling efficiency and (b) straggler time vs ops per "
        f"worker (envG, {n_workers} workers, baseline vs TIC)",
        floatfmt=".3f",
    )
    return finish(ctx, "fig11_efficiency_stragglers", rows, text, t0=t0)
