"""Fig. 11 — scheduling efficiency and straggler effect vs. model size.

.. deprecated:: use ``repro.api.Session(...).run("fig11")``; this module
   is a shim over the scenario registry (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ..api.scenarios import ops_per_worker  # noqa: F401 — legacy re-export
from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def run(ctx: Context, *, n_workers: int = 4) -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("fig11", n_workers=...)``."""
    return run_scenario_shim("fig11", ctx, {"n_workers": n_workers})
