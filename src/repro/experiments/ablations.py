"""Ablations beyond the paper's figures — the design choices §5.1 argues
for in prose, made measurable:

* **enforcement point** — sender-side counters (deployed) vs the idealized
  ready-queue semantics vs DAG-dependency chaining (the strawman §5.1
  rejects because it forfeits pipelining) vs no enforcement;
* **comparator erratum** — Eq. 6 vs Algorithm 3's comparator as printed
  (inverted; see :mod:`repro.core.comparator`);
* **TIC vs TIC+** — single-shot Algorithm 2 vs the iterative
  timing-independent variant;
* **oracle quality** — TAC under the min-of-5 estimated oracle vs the
  exact oracle vs a heavily perturbed one;
* **gRPC reorder noise** — sensitivity of gains to residual reordering;
* **sharding strategy** — greedy-by-bytes vs round-robin placement.

Plain-grid variants run as sweep cells; the custom-schedule variants
(comparator/oracle studies need a hand-built :class:`Schedule`) run as
sweep tasks. Both kinds cache and parallelize like any other sweep unit.
"""

from __future__ import annotations

import time

from ..core.comparator import precedes_as_printed
from ..core.tac import tac
from ..ps import ClusterSpec, build_reference_partition
from ..models import build_model
from ..sim import SimConfig, simulate_cluster
from ..sweep import FnTask, SimCell
from ..timing import ENV_G, PerturbedOracle, estimate_time_oracle
from .common import Context, ExperimentOutput, finish, render_rows

MODEL = "ResNet-50 v1"
WORKERS, PS = 4, 1

def custom_schedule_throughputs(seed: int, iterations: int, warmup: int) -> dict:
    """Throughput of every hand-scheduled variant (one sweep task: the
    model, reference partition and traced oracle are shared across the
    four tac() invocations, as the comparator/oracle study intends)."""
    ir = build_model(MODEL)
    spec = ClusterSpec(n_workers=WORKERS, n_ps=PS, workload="training")
    reference = build_reference_partition(ir, workload="training", n_ps=PS)
    oracle = estimate_time_oracle(reference.graph, ENV_G, seed=seed)
    schedules = {
        "tac_eq6": tac(reference.graph, oracle),
        "tac_as_printed": tac(
            reference.graph, oracle, comparator=precedes_as_printed,
            algorithm_name="tac_as_printed",
        ),
        "tac_exact": tac(
            reference.graph, ENV_G.oracle(), algorithm_name="tac_exact"
        ),
        "tac_noisy": tac(
            reference.graph, PerturbedOracle(oracle, sigma=1.0, seed=seed),
            algorithm_name="tac_noisy",
        ),
    }
    cfg = SimConfig(seed=seed, iterations=iterations, warmup=warmup)
    return {
        variant: float(
            simulate_cluster(
                ir, spec, schedule=schedule, platform="envG", config=cfg
            ).throughput
        )
        for variant, schedule in schedules.items()
    }


def run(ctx: Context) -> ExperimentOutput:
    t0 = time.perf_counter()
    spec = ClusterSpec(n_workers=WORKERS, n_ps=PS, workload="training")
    cfg = ctx.sim_config()

    def cell(algorithm: str = "tic", *, spec=spec, config=cfg) -> SimCell:
        return SimCell(
            model=MODEL, spec=spec, algorithm=algorithm,
            platform="envG", config=config,
        )

    # --- grid-shaped variants: one batch of cells -----------------------
    enforcement_modes = ("sender", "ready_queue", "dag")
    noise_probs = (0.0, 0.005, 0.05)
    sharding_strategies = ("greedy", "round_robin")
    cells = [cell("baseline")]
    cells += [
        cell(config=cfg.with_(enforcement=mode)) for mode in enforcement_modes
    ]
    cells += [cell(algo) for algo in ("tic", "tic_plus")]
    cells += [
        cell(config=cfg.with_(grpc_reorder_prob=prob)) for prob in noise_probs
    ]
    cells += [
        cell(spec=ClusterSpec(n_workers=WORKERS, n_ps=2, workload="training",
                              sharding=strategy))
        for strategy in sharding_strategies
    ]
    results = iter(ctx.sweep.run_cells(cells))

    # --- custom-schedule variants: one shared-build task ----------------
    custom_tps, = ctx.sweep.run_tasks(
        [
            FnTask.make(
                custom_schedule_throughputs, seed=ctx.seed,
                iterations=cfg.iterations, warmup=cfg.warmup,
            )
        ]
    )
    # 'estimated (min of 5)' re-reports tac_eq6 (it is the same schedule).
    task_order = ("tac_eq6", "tac_as_printed", "tac_eq6", "tac_exact", "tac_noisy")
    throughputs = iter(custom_tps[v] for v in task_order)

    rows = []
    base_tp = next(results).throughput

    def add(group: str, variant: str, tp: float) -> None:
        rows.append(
            {
                "group": group,
                "variant": variant,
                "throughput_sps": round(tp, 1),
                "vs_baseline_pct": round((tp - base_tp) / base_tp * 100, 1),
            }
        )

    add("enforcement", "none (baseline)", base_tp)
    for mode in enforcement_modes:
        add("enforcement", mode, next(results).throughput)

    tic_tp, tic_plus_tp = (next(results).throughput for _ in range(2))
    noise_tps = [next(results).throughput for _ in noise_probs]
    sharding_tps = [next(results).throughput for _ in sharding_strategies]

    add("comparator", "tac (Eq. 6)", next(throughputs))
    add("comparator", "tac (as printed)", next(throughputs))

    add("tic_variant", "tic", tic_tp)
    add("tic_variant", "tic_plus", tic_plus_tp)

    add("oracle", "estimated (min of 5)", next(throughputs))
    add("oracle", "exact", next(throughputs))
    add("oracle", "perturbed (sigma=1.0)", next(throughputs))

    for prob, tp in zip(noise_probs, noise_tps):
        add("grpc_noise", f"p={prob}", tp)

    for strategy, tp in zip(sharding_strategies, sharding_tps):
        rows.append(
            {
                "group": "sharding",
                "variant": strategy,
                "throughput_sps": round(tp, 1),
                "vs_baseline_pct": float("nan"),
            }
        )

    text = render_rows(
        rows, f"Ablations ({MODEL}, training, {WORKERS} workers, envG)"
    )
    return finish(ctx, "ablations", rows, text, t0=t0)
