"""Ablations beyond the paper's figures (§5.1 design choices).

.. deprecated:: use ``repro.api.Session(...).run("ablations")``; this
   module is a shim over the scenario registry
   (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ..api.scenarios import (  # noqa: F401 — legacy re-exports
    custom_schedule_throughputs,
)
from ..api.scenarios import ABLATION_MODEL as MODEL  # noqa: F401
from ..api.scenarios import ABLATION_PS as PS  # noqa: F401
from ..api.scenarios import ABLATION_WORKERS as WORKERS  # noqa: F401
from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def run(ctx: Context) -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("ablations")``."""
    return run_scenario_shim("ablations", ctx, {})
