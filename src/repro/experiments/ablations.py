"""Ablations beyond the paper's figures — the design choices §5.1 argues
for in prose, made measurable:

* **enforcement point** — sender-side counters (deployed) vs the idealized
  ready-queue semantics vs DAG-dependency chaining (the strawman §5.1
  rejects because it forfeits pipelining) vs no enforcement;
* **comparator erratum** — Eq. 6 vs Algorithm 3's comparator as printed
  (inverted; see :mod:`repro.core.comparator`);
* **TIC vs TIC+** — single-shot Algorithm 2 vs the iterative
  timing-independent variant;
* **oracle quality** — TAC under the min-of-5 estimated oracle vs the
  exact oracle vs a heavily perturbed one;
* **gRPC reorder noise** — sensitivity of gains to residual reordering;
* **sharding strategy** — greedy-by-bytes vs round-robin placement.
"""

from __future__ import annotations

import time

from ..core.comparator import precedes_as_printed
from ..core.tac import tac
from ..ps import ClusterSpec, build_reference_partition
from ..models import build_model
from ..sim import simulate_cluster
from ..timing import ENV_G, PerturbedOracle, estimate_time_oracle
from .common import Context, ExperimentOutput, finish, render_rows

MODEL = "ResNet-50 v1"
WORKERS, PS = 4, 1


def _throughput(ctx: Context, ir, spec, *, schedule=None, algorithm="baseline",
                config=None) -> float:
    result = simulate_cluster(
        ir, spec, algorithm=algorithm, schedule=schedule, platform="envG",
        config=config or ctx.sim_config(),
    )
    return result.throughput


def run(ctx: Context) -> ExperimentOutput:
    t0 = time.perf_counter()
    ir = build_model(MODEL)
    spec = ClusterSpec(n_workers=WORKERS, n_ps=PS, workload="training")
    rows = []

    base_tp = _throughput(ctx, ir, spec, algorithm="baseline")

    def add(group: str, variant: str, tp: float) -> None:
        rows.append(
            {
                "group": group,
                "variant": variant,
                "throughput_sps": round(tp, 1),
                "vs_baseline_pct": round((tp - base_tp) / base_tp * 100, 1),
            }
        )

    add("enforcement", "none (baseline)", base_tp)
    for mode in ("sender", "ready_queue", "dag"):
        tp = _throughput(
            ctx, ir, spec, algorithm="tic",
            config=ctx.sim_config(enforcement=mode),
        )
        add("enforcement", mode, tp)

    # --- comparator erratum ---------------------------------------------
    reference = build_reference_partition(ir, workload="training", n_ps=PS)
    oracle = estimate_time_oracle(reference.graph, ENV_G, seed=ctx.seed)
    sched_eq6 = tac(reference.graph, oracle)
    sched_printed = tac(
        reference.graph, oracle, comparator=precedes_as_printed,
        algorithm_name="tac_as_printed",
    )
    add("comparator", "tac (Eq. 6)", _throughput(ctx, ir, spec, schedule=sched_eq6))
    add("comparator", "tac (as printed)",
        _throughput(ctx, ir, spec, schedule=sched_printed))

    # --- TIC vs TIC+ -------------------------------------------------------
    for algo in ("tic", "tic_plus"):
        add("tic_variant", algo, _throughput(ctx, ir, spec, algorithm=algo))

    # --- oracle quality ----------------------------------------------------
    add("oracle", "estimated (min of 5)",
        _throughput(ctx, ir, spec, schedule=sched_eq6))
    exact = tac(reference.graph, ENV_G.oracle(), algorithm_name="tac_exact")
    add("oracle", "exact", _throughput(ctx, ir, spec, schedule=exact))
    noisy = tac(
        reference.graph, PerturbedOracle(oracle, sigma=1.0, seed=ctx.seed),
        algorithm_name="tac_noisy",
    )
    add("oracle", "perturbed (sigma=1.0)", _throughput(ctx, ir, spec, schedule=noisy))

    # --- reorder-noise sensitivity -----------------------------------------
    for prob in (0.0, 0.005, 0.05):
        tp = _throughput(
            ctx, ir, spec, algorithm="tic",
            config=ctx.sim_config(grpc_reorder_prob=prob),
        )
        add("grpc_noise", f"p={prob}", tp)

    # --- sharding strategy ---------------------------------------------------
    for strategy in ("greedy", "round_robin"):
        spec_s = ClusterSpec(n_workers=WORKERS, n_ps=2, workload="training",
                             sharding=strategy)
        tp = _throughput(ctx, ir, spec_s, algorithm="tic")
        rows.append(
            {
                "group": "sharding",
                "variant": strategy,
                "throughput_sps": round(tp, 1),
                "vs_baseline_pct": float("nan"),
            }
        )

    text = render_rows(
        rows, f"Ablations ({MODEL}, training, {WORKERS} workers, envG)"
    )
    return finish(ctx, "ablations", rows, text, t0=t0)
