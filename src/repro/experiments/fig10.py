"""Fig. 10 — speedup vs. computational load (batch-size factor).

Each model runs at its standard batch size scaled by x0.5 / x1 / x2
(envG, 4 workers, inference — the paper's Fig. 10 setting). Scaling batch
size moves the communication/computation ratio: when communication
dominates, a bigger batch increases overlap opportunity and scheduling
gains; when computation already dominates, gains shrink.
"""

from __future__ import annotations

import time

from ..sweep import GridSpec
from .common import Context, ExperimentOutput, finish, render_rows

BATCH_FACTORS = (0.5, 1.0, 2.0)


def run(ctx: Context, *, algorithm: str = "tic", n_workers: int = 4) -> ExperimentOutput:
    t0 = time.perf_counter()
    cells = GridSpec(
        models=ctx.scale.models,
        workloads=("inference",),
        worker_counts=(n_workers,),
        ps_counts=(1,),
        algorithms=(algorithm,),
        platforms=("envG",),
        batch_factors=BATCH_FACTORS,
    ).cells(ctx.sim_config())
    rows = []
    for cell, (gain, sched, base) in zip(cells, ctx.sweep.run_speedups(cells)):
        rows.append(
            {
                "model": cell.model,
                "batch_factor": cell.batch_factor,
                "batch": sched.batch_size,
                "baseline_sps": round(base.throughput, 1),
                f"{algorithm}_sps": round(sched.throughput, 1),
                "speedup_pct": round(gain, 1),
            }
        )
        ctx.log(f"  fig10 {cell.model} x{cell.batch_factor}: {gain:+.1f}%")
    text = render_rows(
        rows,
        f"Fig. 10: speedup of {algorithm.upper()} vs baseline under batch-size "
        f"scaling (envG, {n_workers} workers, inference)",
    )
    return finish(ctx, "fig10_batch_scaling", rows, text, t0=t0)
