"""Fig. 10 — speedup vs. computational load (batch-size factor).

.. deprecated:: use ``repro.api.Session(...).run("fig10")``; this module
   is a shim over the scenario registry (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ..api.scenarios import BATCH_FACTORS  # noqa: F401 — legacy re-export
from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def run(ctx: Context, *, algorithm: str = "tic", n_workers: int = 4) -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("fig10", ...)``."""
    return run_scenario_shim(
        "fig10", ctx, {"algorithm": algorithm, "n_workers": n_workers}
    )
