"""Fig. 10 — speedup vs. computational load (batch-size factor).

Each model runs at its standard batch size scaled by x0.5 / x1 / x2
(envG, 4 workers, inference — the paper's Fig. 10 setting). Scaling batch
size moves the communication/computation ratio: when communication
dominates, a bigger batch increases overlap opportunity and scheduling
gains; when computation already dominates, gains shrink.
"""

from __future__ import annotations

import time

from ..ps import ClusterSpec
from ..sim import speedup_vs_baseline
from .common import Context, ExperimentOutput, finish, render_rows

BATCH_FACTORS = (0.5, 1.0, 2.0)


def run(ctx: Context, *, algorithm: str = "tic", n_workers: int = 4) -> ExperimentOutput:
    t0 = time.perf_counter()
    rows = []
    for model in ctx.scale.models:
        for factor in BATCH_FACTORS:
            spec = ClusterSpec(n_workers=n_workers, n_ps=1, workload="inference")
            gain, sched, base = speedup_vs_baseline(
                model, spec, algorithm=algorithm, platform="envG",
                config=ctx.sim_config(), batch_factor=factor,
            )
            rows.append(
                {
                    "model": model,
                    "batch_factor": factor,
                    "batch": sched.batch_size,
                    "baseline_sps": round(base.throughput, 1),
                    f"{algorithm}_sps": round(sched.throughput, 1),
                    "speedup_pct": round(gain, 1),
                }
            )
            ctx.log(f"  fig10 {model} x{factor}: {gain:+.1f}%")
    text = render_rows(
        rows,
        f"Fig. 10: speedup of {algorithm.upper()} vs baseline under batch-size "
        f"scaling (envG, {n_workers} workers, inference)",
    )
    return finish(ctx, "fig10_batch_scaling", rows, text, t0=t0)
