"""Fig. 12 — scheduling efficiency vs. step time, and consistency (envC).

.. deprecated:: use ``repro.api.Session(...).run("fig12")``; this module
   is a shim over the scenario registry (see :mod:`repro.api.scenarios`).
"""

from __future__ import annotations

from ._shim import run_scenario_shim
from .common import Context, ExperimentOutput


def run(
    ctx: Context,
    *,
    model: str = "Inception v2",
    n_workers: int = 4,
) -> ExperimentOutput:
    """Deprecated: equivalent to ``Session.run("fig12", ...)``."""
    return run_scenario_shim(
        "fig12", ctx, {"model": model, "n_workers": n_workers}
    )
